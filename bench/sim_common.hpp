// Shared plumbing for the figure/table reproduction binaries.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "sim/apps/lbench.hpp"
#include "sim/locks/registry.hpp"
#include "util/table.hpp"

namespace bench {

// The paper's x-axis for Figures 2, 3, 5 and 6.
inline const std::vector<unsigned>& paper_thread_counts() {
  static const std::vector<unsigned> counts = {1,  16,  32,  64,  96,
                                               128, 160, 192, 224, 256};
  return counts;
}

// Figure 4 zooms into 1..16 threads.
inline const std::vector<unsigned>& low_thread_counts() {
  static const std::vector<unsigned> counts = {1, 2, 4, 8, 16};
  return counts;
}

inline sim::lbench_params default_lbench(unsigned threads) {
  sim::lbench_params p;
  p.threads = threads;
  p.warmup_ns = 300'000;
  p.duration_ns = 3'000'000;
  return p;
}

// Runs the LBench sweep and prints one metric column per lock.
// metric: extracts the reported value from an lbench_result.
template <typename Metric>
void print_lbench_sweep(const std::string& title, const std::string& unit,
                        const std::vector<std::string>& locks,
                        const std::vector<unsigned>& thread_counts,
                        bool abortable, Metric&& metric, int precision = 3) {
  std::cout << title << "\n"
            << "(simulated T5440-like machine: 4 clusters; values in " << unit
            << ")\n";
  std::vector<std::string> header{"threads"};
  for (const auto& l : locks) header.push_back(l);
  cohort::text_table table(header);
  for (unsigned n : thread_counts) {
    table.start_row();
    table.add(std::to_string(n));
    for (const auto& l : locks) {
      const auto p = default_lbench(n);
      const auto r =
          abortable ? sim::run_lbench_abortable(l, p) : sim::run_lbench(l, p);
      table.add(metric(r), precision);
    }
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace bench
