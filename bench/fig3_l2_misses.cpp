// Figure 3: L2 coherence misses per critical section (misses served from a
// remote cluster's cache), same experiment as Figure 2.  Lower is better;
// the paper's log-scale plot shows cohort locks a factor >= 2 below every
// other lock.
#include "sim_common.hpp"

int main() {
  bench::print_lbench_sweep(
      "Figure 3: L2 coherence misses per critical section",
      "misses/CS (lower is better)", sim::fig2_lock_names(),
      bench::paper_thread_counts(), /*abortable=*/false,
      [](const sim::lbench_result& r) { return r.l2_misses_per_cs; });
  return 0;
}
