// Ablation of the may-pass-local bound (§3.7, §4.1.1): throughput vs
// fairness as the consecutive-local-handoff limit sweeps from 1 to
// unbounded.  The paper reports (unpublished runs) that unbounded cohorts
// out-scale the bound-64 version by ~10% while becoming grossly unfair
// (hundreds of thousands of consecutive local handoffs).
#include <iostream>

#include "sim/apps/lbench.hpp"
#include "util/table.hpp"

int main() {
  const std::vector<std::uint64_t> limits = {1,  4,   16,  64,
                                             256, 4096, ~std::uint64_t{0}};
  std::cout << "Ablation: may-pass-local bound for C-BO-MCS at 256 threads\n";
  cohort::text_table table(
      {"pass_limit", "Mops/s", "stddev_%", "l2_miss/CS", "avg_batch"});
  for (std::uint64_t limit : limits) {
    sim::lbench_params p;
    p.threads = 256;
    p.warmup_ns = 300'000;
    p.duration_ns = 3'000'000;
    p.pass_limit = limit;
    const auto r = sim::run_lbench("C-BO-MCS", p);
    table.start_row();
    table.add(limit == ~std::uint64_t{0} ? std::string("unbounded")
                                         : std::to_string(limit));
    table.add(r.throughput_per_sec / 1e6, 3);
    table.add(r.stddev_pct, 1);
    table.add(r.l2_misses_per_cs, 3);
    table.add(r.avg_batch, 1);
  }
  table.print(std::cout);
  std::cout << "\n";
  return 0;
}
