// Real-machine key-value store benchmark (google-benchmark): the Table 1
// code path executed for real -- a memaslap-style get/set mix against the
// single-cache-lock kv_store, with the lock dispatched by registry name so
// the compared dimension is exactly the paper's table rows.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "kvstore/kvstore.hpp"
#include "locks/registry.hpp"
#include "numa/topology.hpp"
#include "util/rng.hpp"

namespace {

const std::vector<std::string>& keyspace() {
  static const std::vector<std::string> keys = kvstore::make_keyspace(4096);
  return keys;
}

template <typename Lock>
struct kv_fixture {
  std::unique_ptr<kvstore::kv_store<Lock>> kv;
};

template <typename Lock>
void bench_kv_mix(benchmark::State& state,
                  std::shared_ptr<kv_fixture<Lock>> fix) {
  if (state.thread_index() == 0) {
    fix->kv = std::make_unique<kvstore::kv_store<Lock>>(1024);
    for (const auto& k : keyspace()) fix->kv->set(k, "initial-value");
  }
  cohort::numa::set_thread_cluster(
      static_cast<unsigned>(state.thread_index()));
  const double get_ratio = static_cast<double>(state.range(0)) / 100.0;
  cohort::xorshift rng(static_cast<std::uint64_t>(state.thread_index()) + 1);
  const auto& keys = keyspace();
  for (auto _ : state) {
    const auto& key = keys[rng.next_range(keys.size())];
    if (rng.next_double() < get_ratio) {
      benchmark::DoNotOptimize(fix->kv->get(key));
    } else {
      fix->kv->set(key, "updated-value");
    }
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

int main(int argc, char** argv) {
  cohort::numa::set_system_topology(cohort::numa::topology::synthetic(2));

  for (const auto& name : cohort::reg::table_lock_names()) {
    // Params would be dead here: only the lock *type* is used, and the
    // kv_store default-constructs its lock from the global topology above.
    cohort::reg::with_lock_type(name, {}, [&](auto factory) {
      using lock_t = typename decltype(factory())::element_type;
      auto fix = std::make_shared<kv_fixture<lock_t>>();
      // Arg = get percentage (90 / 50 / 10, Table 1's three mixes).
      benchmark::RegisterBenchmark(("kv_mix/" + name).c_str(),
                                   bench_kv_mix<lock_t>, fix)
          ->Arg(90)
          ->Arg(50)
          ->Arg(10)
          ->Threads(1)
          ->Threads(4);
    });
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
