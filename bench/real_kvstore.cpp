// Real-machine key-value store benchmark (google-benchmark): the Table 1
// code path executed for real -- a memaslap-style get/set mix against the
// single-cache-lock kv_store, with the lock type as the compared dimension.
#include <benchmark/benchmark.h>

#include "kvstore/kvstore.hpp"
#include "locks/pthread_lock.hpp"
#include "numa/topology.hpp"
#include "util/rng.hpp"

namespace {

template <typename Lock>
void bench_kv_mix(benchmark::State& state) {
  static kvstore::kv_store<Lock>* kv = nullptr;
  static std::vector<std::string>* keys = nullptr;
  if (state.thread_index() == 0) {
    cohort::numa::set_system_topology(cohort::numa::topology::synthetic(2));
    delete kv;
    kv = new kvstore::kv_store<Lock>(1024);
    if (keys == nullptr) keys = new auto(kvstore::make_keyspace(4096));
    for (const auto& k : *keys) kv->set(k, "initial-value");
  }
  cohort::numa::set_thread_cluster(
      static_cast<unsigned>(state.thread_index()));
  const double get_ratio = static_cast<double>(state.range(0)) / 100.0;
  cohort::xorshift rng(state.thread_index() + 1);
  for (auto _ : state) {
    const auto& key = (*keys)[rng.next_range(keys->size())];
    if (rng.next_double() < get_ratio) {
      benchmark::DoNotOptimize(kv->get(key));
    } else {
      kv->set(key, "updated-value");
    }
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

// Arg = get percentage (90 / 50 / 10, Table 1's three mixes).
BENCHMARK_TEMPLATE(bench_kv_mix, cohort::pthread_lock)
    ->Arg(90)->Arg(50)->Arg(10)->Threads(1)->Threads(4);
BENCHMARK_TEMPLATE(bench_kv_mix, cohort::mcs_lock)
    ->Arg(90)->Arg(50)->Arg(10)->Threads(1)->Threads(4);
BENCHMARK_TEMPLATE(bench_kv_mix, cohort::c_tkt_tkt_lock)
    ->Arg(90)->Arg(50)->Arg(10)->Threads(1)->Threads(4);
BENCHMARK_TEMPLATE(bench_kv_mix, cohort::c_bo_mcs_lock)
    ->Arg(90)->Arg(50)->Arg(10)->Threads(1)->Threads(4);

BENCHMARK_MAIN();
