// Real-machine key-value benchmark (google-benchmark): the Table 1 code path
// executed for real -- the shared command-layer mix (kvstore/command.hpp,
// the same implementation behind --workload kv/kvnet and the server)
// against the sharded kv engine, with the lock dispatched by registry name
// and the shard count as a benchmark dimension, so the compared axes are
// the paper's table rows times the sharding ablation.
#include <benchmark/benchmark.h>

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "kvstore/command.hpp"
#include "locks/registry.hpp"
#include "numa/topology.hpp"
#include "util/rng.hpp"

namespace {

constexpr std::size_t kShardCounts[] = {1, 4, 16};

const std::vector<std::string>& keyspace() {
  static const std::vector<std::string> keys = kvstore::make_keyspace(4096);
  return keys;
}

// One store per (lock, shard count), built and prefilled on first use so a
// --benchmark_filter run only pays for the stores it drives.  call_once is
// the barrier the bare thread_index()==0 idiom lacks: every benchmark
// thread waits until the store exists before making a handle.
template <typename Lock>
struct kv_fixture {
  kv_fixture(std::size_t shards, std::function<std::unique_ptr<Lock>()> make)
      : shards_(shards), make_(std::move(make)) {}

  kvstore::sharded_store<Lock>& store() {
    std::call_once(once_, [&] {
      store_ = std::make_unique<kvstore::sharded_store<Lock>>(
          kvstore::kv_config{.shards = shards_, .buckets = 1024}, make_);
      kvstore::prefill_keyspace(*store_, keyspace(), "initial-value",
                                /*numa_place=*/false);
    });
    return *store_;
  }

 private:
  std::size_t shards_;
  std::function<std::unique_ptr<Lock>()> make_;
  std::once_flag once_;
  std::unique_ptr<kvstore::sharded_store<Lock>> store_;
};

template <typename Lock>
void bench_kv_mix(benchmark::State& state,
                  std::shared_ptr<kv_fixture<Lock>> fix) {
  cohort::numa::set_thread_cluster(
      static_cast<unsigned>(state.thread_index()));
  auto& store = fix->store();
  kvstore::command_executor ex(store);
  const double get_ratio = static_cast<double>(state.range(0)) / 100.0;
  const kvstore::mix_workload mix(keyspace(), get_ratio, /*zipf_theta=*/0.0,
                                  "updated-value");
  cohort::xorshift rng(static_cast<std::uint64_t>(state.thread_index()) + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mix.step(ex, rng));
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

int main(int argc, char** argv) {
  cohort::numa::set_system_topology(cohort::numa::topology::synthetic(2));

  for (const auto& name : cohort::reg::table_lock_names()) {
    for (std::size_t shards : kShardCounts) {
      cohort::reg::with_lock_type(name, {}, [&](auto factory) {
        using lock_t = typename decltype(factory())::element_type;
        auto fix = std::make_shared<kv_fixture<lock_t>>(shards, factory);
        // Arg = get percentage (90 / 50 / 10, Table 1's three mixes).
        benchmark::RegisterBenchmark(
            ("kv_mix/" + name + "/shards:" + std::to_string(shards)).c_str(),
            bench_kv_mix<lock_t>, fix)
            ->Arg(90)
            ->Arg(50)
            ->Arg(10)
            ->Threads(1)
            ->Threads(4);
      });
    }
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
