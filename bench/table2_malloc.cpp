// Table 2: the mmicro malloc stress test on the single-lock splay-tree
// allocator (malloc-free pairs per millisecond).  Paper shape: pthread flat
// near its single-thread rate; classic spin locks peak around 2x; tuned HBO
// peaks then collapses; cohort locks scale 5-6x because LIFO-recycled
// blocks circulate within the cluster that holds the lock.
#include <iostream>

#include "sim/apps/mallocsim.hpp"
#include "sim/locks/registry.hpp"
#include "util/table.hpp"

namespace {

const std::vector<unsigned>& thread_counts() {
  static const std::vector<unsigned> counts = {1,  2,  4,  8,   16,
                                               32, 64, 128, 255};
  return counts;
}

sim::malloc_params params(unsigned threads) {
  sim::malloc_params p;
  p.threads = threads;
  p.warmup_ns = 300'000;
  p.duration_ns = 6'000'000;
  return p;
}

}  // namespace

int main() {
  const auto& locks = sim::table2_lock_names();
  std::cout << "Table 2: malloc-free pairs per millisecond (mmicro, 64-byte "
               "blocks,\nsingle-lock splay-tree allocator)\n";
  std::vector<std::string> header{"threads"};
  for (const auto& l : locks) header.push_back(l);
  cohort::text_table table(header);
  for (unsigned n : thread_counts()) {
    table.start_row();
    table.add(std::to_string(n));
    for (const auto& l : locks) {
      const auto r = sim::run_malloc(l, params(n));
      table.add(r.pairs_per_ms, 0);
    }
  }
  table.print(std::cout);
  std::cout << "\n";
  return 0;
}
