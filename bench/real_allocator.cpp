// Real-machine allocator benchmark (google-benchmark): mmicro's
// allocate/write/free loop against the real single-lock splay-tree arena,
// with the lock dispatched by registry name (the Table 2 code path executed
// for real).  The loop itself is the shared alloc-workload implementation
// (src/bench/alloc_workload.hpp) -- the same code `cohort_bench --workload
// alloc` measures under the windowed driver, so the two harnesses cannot
// drift apart.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "bench/alloc_workload.hpp"
#include "locks/registry.hpp"
#include "numa/topology.hpp"

namespace {

using cohort::bench::alloc::arena_set;
using cohort::bench::alloc::mmicro_params;
using cohort::bench::alloc::mmicro_worker;

template <typename Lock>
struct arena_fixture {
  std::unique_ptr<arena_set<Lock>> arenas;
};

template <typename Lock>
void bench_mmicro(benchmark::State& state,
                  std::shared_ptr<arena_fixture<Lock>> fix) {
  if (state.thread_index() == 0)
    fix->arenas = std::make_unique<arena_set<Lock>>(
        16u << 20, /*per_cluster=*/false,
        [] { return std::make_unique<Lock>(); });
  const unsigned tid = static_cast<unsigned>(state.thread_index());
  cohort::numa::set_thread_cluster(tid);
  // mmicro's defaults: 64-byte blocks, first four words written, a small
  // per-thread working set recycled LIFO-ish through the ring.
  mmicro_worker<cohortalloc::arena<Lock>> worker(
      tid, mmicro_params{.alloc_min = 64, .alloc_max = 64, .working_set = 8});
  // fix->arenas is only safe to dereference once the state loop's start
  // barrier has let thread 0 finish constructing it.
  cohortalloc::arena<Lock>* arena = nullptr;
  for (auto _ : state) {
    if (arena == nullptr) arena = &fix->arenas->for_cluster(tid);
    benchmark::DoNotOptimize(worker.step(*arena));
  }
  if (arena != nullptr) worker.drain(*arena);
  if (worker.tag_mismatches() != 0)
    state.SkipWithError("owner-tag mismatch: block handed out twice");
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

int main(int argc, char** argv) {
  cohort::numa::set_system_topology(cohort::numa::topology::synthetic(2));

  for (const auto& name : cohort::reg::table_lock_names()) {
    // Params would be dead here: only the lock *type* is used, and the
    // fixture default-constructs its locks from the global topology above.
    cohort::reg::with_lock_type(name, {}, [&](auto factory) {
      using lock_t = typename decltype(factory())::element_type;
      auto fix = std::make_shared<arena_fixture<lock_t>>();
      benchmark::RegisterBenchmark(("mmicro/" + name).c_str(),
                                   bench_mmicro<lock_t>, fix)
          ->Threads(1)
          ->Threads(4);
    });
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
