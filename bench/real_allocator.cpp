// Real-machine allocator benchmark (google-benchmark): mmicro's
// allocate/initialise/free loop against the real single-lock splay-tree
// arena, with the lock dispatched by registry name (the Table 2 code path
// executed for real).
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>

#include "alloc/arena.hpp"
#include "locks/registry.hpp"
#include "numa/topology.hpp"

namespace {

template <typename Lock>
struct arena_fixture {
  std::unique_ptr<cohortalloc::arena<Lock>> arena;
};

template <typename Lock>
void bench_mmicro(benchmark::State& state,
                  std::shared_ptr<arena_fixture<Lock>> fix) {
  if (state.thread_index() == 0)
    fix->arena = std::make_unique<cohortalloc::arena<Lock>>(16u << 20);
  cohort::numa::set_thread_cluster(
      static_cast<unsigned>(state.thread_index()));
  for (auto _ : state) {
    void* p = fix->arena->allocate(64);
    if (p != nullptr) {
      // mmicro writes the first four words of every block.
      std::memset(p, 0xab, 32);
      fix->arena->deallocate(p);
    }
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

int main(int argc, char** argv) {
  cohort::numa::set_system_topology(cohort::numa::topology::synthetic(2));

  for (const auto& name : cohort::reg::table_lock_names()) {
    // Params would be dead here: only the lock *type* is used, and the
    // arena default-constructs its lock from the global topology above.
    cohort::reg::with_lock_type(name, {}, [&](auto factory) {
      using lock_t = typename decltype(factory())::element_type;
      auto fix = std::make_shared<arena_fixture<lock_t>>();
      benchmark::RegisterBenchmark(("mmicro/" + name).c_str(),
                                   bench_mmicro<lock_t>, fix)
          ->Threads(1)
          ->Threads(4);
    });
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
