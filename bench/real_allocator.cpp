// Real-machine allocator benchmark (google-benchmark): mmicro's
// allocate/initialise/free loop against the real single-lock splay-tree
// arena, comparing lock types (the Table 2 code path executed for real).
#include <benchmark/benchmark.h>

#include <cstring>

#include "alloc/arena.hpp"
#include "locks/pthread_lock.hpp"
#include "numa/topology.hpp"
#include "util/rng.hpp"

namespace {

template <typename Lock>
void bench_mmicro(benchmark::State& state) {
  static cohortalloc::arena<Lock>* arena = nullptr;
  if (state.thread_index() == 0) {
    cohort::numa::set_system_topology(cohort::numa::topology::synthetic(2));
    delete arena;
    arena = new cohortalloc::arena<Lock>(16u << 20);
  }
  cohort::numa::set_thread_cluster(
      static_cast<unsigned>(state.thread_index()));
  for (auto _ : state) {
    void* p = arena->allocate(64);
    if (p != nullptr) {
      // mmicro writes the first four words of every block.
      std::memset(p, 0xab, 32);
      arena->deallocate(p);
    }
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

BENCHMARK_TEMPLATE(bench_mmicro, cohort::pthread_lock)->Threads(1)->Threads(4);
BENCHMARK_TEMPLATE(bench_mmicro, cohort::mcs_lock)->Threads(1)->Threads(4);
BENCHMARK_TEMPLATE(bench_mmicro, cohort::c_tkt_tkt_lock)
    ->Threads(1)
    ->Threads(4);
BENCHMARK_TEMPLATE(bench_mmicro, cohort::c_bo_mcs_lock)
    ->Threads(1)
    ->Threads(4);

BENCHMARK_MAIN();
