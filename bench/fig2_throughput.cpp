// Figure 2: LBench throughput (critical + non-critical section pairs per
// second) vs thread count, for the nine locks of the paper's Figure 2.
// Paper shape: MCS lowest and flat; HBO unstable; HCLH/FC-MCS mid; all five
// cohort locks on top, C-BO-MCS best at ~60% over FC-MCS.
#include "sim_common.hpp"

int main() {
  bench::print_lbench_sweep(
      "Figure 2: LBench throughput vs thread count", "ops/sec (millions)",
      sim::fig2_lock_names(), bench::paper_thread_counts(),
      /*abortable=*/false,
      [](const sim::lbench_result& r) { return r.throughput_per_sec / 1e6; });
  return 0;
}
