// Ablation over the simulated machine: how the cohort advantage scales with
// the number of clusters and with the remote:local latency ratio.  The
// paper's design intuition: the more non-uniform the machine, the more lock
// cohorting pays.
#include <iostream>

#include "sim/apps/lbench.hpp"
#include "util/table.hpp"

namespace {

sim::lbench_params params(unsigned clusters, sim::tick remote_wire) {
  sim::lbench_params p;
  p.threads = 128;
  p.clusters = clusters;
  p.warmup_ns = 300'000;
  p.duration_ns = 3'000'000;
  p.machine.clusters = clusters;
  p.machine.remote_wire = remote_wire;
  return p;
}

}  // namespace

int main() {
  std::cout << "Ablation: cohort advantage (C-TKT-MCS vs MCS, 128 threads)\n"
               "across cluster count and remote-transfer latency\n";
  cohort::text_table table({"clusters", "remote_ns", "MCS_Mops", "C_Mops",
                            "speedup"});
  for (unsigned clusters : {2u, 4u, 8u}) {
    for (sim::tick wire : {30u, 60u, 120u}) {
      const auto mcs = sim::run_lbench("MCS", params(clusters, wire));
      const auto coh = sim::run_lbench("C-TKT-MCS", params(clusters, wire));
      table.start_row();
      table.add(std::to_string(clusters));
      table.add(std::to_string(wire));
      table.add(mcs.throughput_per_sec / 1e6, 3);
      table.add(coh.throughput_per_sec / 1e6, 3);
      table.add(coh.throughput_per_sec / mcs.throughput_per_sec, 2);
    }
  }
  table.print(std::cout);
  std::cout << "\n";
  return 0;
}
