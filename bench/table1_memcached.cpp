// Table 1: memcached-substitute scalability (speedup over pthread locks at 1
// thread) for (a) read-heavy 90/10, (b) mixed 50/50 and (c) write-heavy
// 10/90 get/set mixes.  Paper shape: all decent locks plateau around 4.5x;
// untuned HBO and C-BO-BO scale poorly everywhere; for write-heavy mixes the
// NUMA-aware locks beat the NUMA-oblivious ones by >= 20%.
#include <iostream>

#include "sim/apps/kvsim.hpp"
#include "sim/locks/registry.hpp"
#include "util/table.hpp"

namespace {

const std::vector<unsigned>& thread_counts() {
  static const std::vector<unsigned> counts = {1, 4, 8, 16, 32, 64, 96, 128};
  return counts;
}

sim::kv_params params(unsigned threads, double get_ratio) {
  sim::kv_params p;
  p.threads = threads;
  p.get_ratio = get_ratio;
  p.warmup_ns = 300'000;
  p.duration_ns = 6'000'000;
  return p;
}

void run_mix(char label, double get_ratio) {
  const auto& locks = sim::table1_lock_names();
  std::cout << "Table 1(" << label << "): " << static_cast<int>(get_ratio * 100)
            << "% gets / " << static_cast<int>((1 - get_ratio) * 100)
            << "% sets -- speedup over pthread locks at 1 thread\n";
  const double base =
      sim::run_kv("pthread", params(1, get_ratio)).ops_per_sec;
  std::vector<std::string> header{"threads"};
  for (const auto& l : locks) header.push_back(l);
  cohort::text_table table(header);
  for (unsigned n : thread_counts()) {
    table.start_row();
    table.add(std::to_string(n));
    for (const auto& l : locks) {
      const auto r = sim::run_kv(l, params(n, get_ratio));
      table.add(r.ops_per_sec / base, 2);
    }
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  run_mix('a', 0.9);
  run_mix('b', 0.5);
  run_mix('c', 0.1);
  return 0;
}
