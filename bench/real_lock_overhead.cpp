// Real-machine microbenchmark (google-benchmark): acquisition/release cost
// of every registry lock on the host, single-threaded and at small thread
// counts.  On a non-NUMA host this measures the §4.1.3 low-contention
// property -- cohort locks must stay competitive despite acquiring two locks
// -- not the NUMA speedups (those come from cohort_bench on real NUMA
// hardware or the simulated figures).
//
// Locks are dispatched by registry name through with_lock_type, so the
// measured loop is monomorphised (no virtual-dispatch tax on a ~10 ns
// reading) and a lock added to the registry table shows up here
// automatically.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "locks/registry.hpp"
#include "numa/topology.hpp"

namespace {

template <typename Lock>
void bench_lock(benchmark::State& state, std::shared_ptr<Lock> lock) {
  cohort::numa::set_thread_cluster(
      static_cast<unsigned>(state.thread_index()));
  typename Lock::context ctx{};
  long local = 0;
  for (auto _ : state) {
    lock->lock(ctx);
    benchmark::DoNotOptimize(++local);
    lock->unlock(ctx);
  }
}

void register_lock_bench(const std::string& prefix, const std::string& name,
                         int threads) {
  const bool known = cohort::reg::with_lock_type(
      name, {.clusters = 2}, [&](auto factory) {
        using lock_t = typename decltype(factory())::element_type;
        std::shared_ptr<lock_t> lock(factory());
        benchmark::RegisterBenchmark((prefix + "/" + name).c_str(),
                                     bench_lock<lock_t>, lock)
            ->Threads(threads);
      });
  if (!known) {
    std::fprintf(stderr, "real_lock_overhead: unknown lock '%s'\n",
                 name.c_str());
    std::exit(2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  cohort::numa::set_system_topology(cohort::numa::topology::synthetic(2));

  for (const auto& name : cohort::reg::all_lock_names())
    register_lock_bench("uncontended", name, 1);
  // A couple of contended points on the locks that matter most for the
  // paper's argument -- the -fp pairs show what fission costs once a second
  // thread arrives.
  for (const auto* name :
       {"pthread", "MCS", "C-BO-MCS", "C-BO-MCS-fp", "C-TKT-TKT",
        "C-TKT-TKT-fp", "C-MCS-MCS", "C-MCS-MCS-fp"})
    register_lock_bench("contended", name, 2);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
