// Real-machine microbenchmark (google-benchmark): acquisition/release cost
// of every real lock in this library on the host, single-threaded and at
// small thread counts.  On a non-NUMA host this measures the §4.1.3
// low-contention property -- cohort locks must stay competitive despite
// acquiring two locks -- not the NUMA speedups (those come from the
// simulated figures).
#include <benchmark/benchmark.h>

#include "cohort/locks.hpp"
#include "locks/fcmcs.hpp"
#include "locks/hbo.hpp"
#include "locks/hclh.hpp"
#include "locks/pthread_lock.hpp"
#include "numa/topology.hpp"

namespace {

template <typename Lock>
void bench_lock(benchmark::State& state) {
  static Lock lock;  // shared across benchmark threads
  if (state.thread_index() == 0)
    cohort::numa::set_system_topology(cohort::numa::topology::synthetic(2));
  cohort::numa::set_thread_cluster(
      static_cast<unsigned>(state.thread_index()));
  long local = 0;
  for (auto _ : state) {
    cohort::scoped<Lock> g(lock);
    benchmark::DoNotOptimize(++local);
  }
}

}  // namespace

BENCHMARK_TEMPLATE(bench_lock, cohort::pthread_lock);
BENCHMARK_TEMPLATE(bench_lock, cohort::bo_lock);
BENCHMARK_TEMPLATE(bench_lock, cohort::fib_bo_lock);
BENCHMARK_TEMPLATE(bench_lock, cohort::ticket_lock);
BENCHMARK_TEMPLATE(bench_lock, cohort::mcs_lock);
BENCHMARK_TEMPLATE(bench_lock, cohort::clh_lock);
BENCHMARK_TEMPLATE(bench_lock, cohort::aclh_lock);
BENCHMARK_TEMPLATE(bench_lock, cohort::hbo_lock);
BENCHMARK_TEMPLATE(bench_lock, cohort::hclh_lock);
BENCHMARK_TEMPLATE(bench_lock, cohort::fc_mcs_lock);
BENCHMARK_TEMPLATE(bench_lock, cohort::c_bo_bo_lock);
BENCHMARK_TEMPLATE(bench_lock, cohort::c_tkt_tkt_lock);
BENCHMARK_TEMPLATE(bench_lock, cohort::c_bo_mcs_lock);
BENCHMARK_TEMPLATE(bench_lock, cohort::c_tkt_mcs_lock);
BENCHMARK_TEMPLATE(bench_lock, cohort::c_mcs_mcs_lock);
BENCHMARK_TEMPLATE(bench_lock, cohort::a_c_bo_bo_lock);
BENCHMARK_TEMPLATE(bench_lock, cohort::a_c_bo_clh_lock);

// A couple of contended points on locks that matter most for the paper.
BENCHMARK_TEMPLATE(bench_lock, cohort::pthread_lock)->Threads(2);
BENCHMARK_TEMPLATE(bench_lock, cohort::mcs_lock)->Threads(2);
BENCHMARK_TEMPLATE(bench_lock, cohort::c_bo_mcs_lock)->Threads(2);
BENCHMARK_TEMPLATE(bench_lock, cohort::c_tkt_tkt_lock)->Threads(2);

BENCHMARK_MAIN();
