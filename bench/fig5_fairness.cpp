// Figure 5: fairness, as the standard deviation of per-thread throughput in
// percent of the mean (same run as Figure 2).  Paper shape: HBO least fair
// by far; C-BO-MCS second (the global BO lock is re-won by the releasing
// cluster through cache arbitration); C-BO-BO milder; ticket/MCS-based
// global locks fair (<5%).
#include "sim_common.hpp"

int main() {
  bench::print_lbench_sweep(
      "Figure 5: per-thread throughput standard deviation",
      "% of mean (lower is fairer)", sim::fig2_lock_names(),
      bench::paper_thread_counts(), /*abortable=*/false,
      [](const sim::lbench_result& r) { return r.stddev_pct; }, 1);
  return 0;
}
