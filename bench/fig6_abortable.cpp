// Figure 6: abortable-lock throughput (A-CLH, A-HBO, A-C-BO-BO, A-C-BO-CLH)
// on LBench with bounded patience.  Paper shape: both abortable cohort locks
// far above the baselines (up to 6x), A-C-BO-CLH above A-C-BO-BO at high
// thread counts; abort rates stay ~1% or below.
#include "sim_common.hpp"

int main() {
  bench::print_lbench_sweep(
      "Figure 6: abortable lock throughput", "ops/sec (millions)",
      sim::fig6_lock_names(), bench::paper_thread_counts(),
      /*abortable=*/true,
      [](const sim::lbench_result& r) { return r.throughput_per_sec / 1e6; });

  bench::print_lbench_sweep(
      "Figure 6 (companion): abort rate", "aborted acquisition attempts",
      sim::fig6_lock_names(), bench::paper_thread_counts(),
      /*abortable=*/true,
      [](const sim::lbench_result& r) { return r.abort_rate; }, 4);
  return 0;
}
