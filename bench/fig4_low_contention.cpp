// Figure 4: the low-contention zoom of Figure 2 (1..16 threads).  Paper
// shape: despite acquiring two locks, cohort locks stay competitive with
// single-level locks because the extra acquisition vanishes under non-trivial
// critical/non-critical work.
#include "sim_common.hpp"

int main() {
  bench::print_lbench_sweep(
      "Figure 4: LBench throughput at low contention (1-16 threads)",
      "ops/sec (millions)", sim::fig2_lock_names(),
      bench::low_thread_counts(), /*abortable=*/false,
      [](const sim::lbench_result& r) { return r.throughput_per_sec / 1e6; });
  return 0;
}
