#!/usr/bin/env bash
# Net chaos smoke (CI): start kvstore_server with an active fault plan and
# every hardening knob engaged, hammer it with retrying clients
# (`cohort_bench --workload kvnet --drive`), SIGTERM it mid-load, and
# require:
#   - the drive made real progress despite the injected faults,
#   - the server exits 0 (under an ASan build dir that includes the leak
#     check),
#   - the quiescent report shows the plan fired (injected_faults > 0),
#   - "accounting ok": accepted == shed + closed + timeouts + resets
#     + drained,
#   - "drain ok": the graceful drain beat its deadline.
#
#   BUILD_DIR=build-asan scripts/check_net_chaos.sh
#
# Environment knobs:
#   BUILD_DIR   cmake build directory with kvstore_server + cohort_bench
#                                                        (default: build)
#   CHAOS_LOCK  registry cache lock for the server       (default: C-TKT-TKT)
#   CHAOS_FAULT fault spec for the server                (default below)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
CHAOS_LOCK=${CHAOS_LOCK:-C-TKT-TKT}
CHAOS_FAULT=${CHAOS_FAULT:-seed=20120225,short_read=0.05,short_write=0.05,eintr=0.02,reset=0.01,stall=0.01,stall_us=200}
SERVER="$BUILD_DIR/kvstore_server"
BENCH="$BUILD_DIR/cohort_bench"
for bin in "$SERVER" "$BENCH"; do
  if [ ! -x "$bin" ]; then
    echo "error: $bin not built (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR)" >&2
    exit 1
  fi
done

log=$(mktemp)
drive_log=$(mktemp)
server_pid=
drive_pid=
cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  [ -n "$drive_pid" ] && kill "$drive_pid" 2>/dev/null || true
  rm -f "$log" "$drive_log"
}
trap cleanup EXIT

"$SERVER" --port 0 --lock "$CHAOS_LOCK" --shards 4 --io-threads 2 \
  --net-fault "$CHAOS_FAULT" \
  --idle-timeout-ms 2000 --max-requests 500 --max-conns 32 \
  --drain-ms 5000 > "$log" 2>&1 &
server_pid=$!

port=
for _ in $(seq 1 100); do
  port=$(awk '/^listening on / { n = split($3, a, ":"); print a[n]; exit }' "$log")
  [ -n "$port" ] && break
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "error: server exited during startup" >&2
    cat "$log" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$port" ]; then
  echo "error: server never reported its port" >&2
  cat "$log" >&2
  exit 1
fi
grep -q "fault plan active" "$log" || {
  echo "error: server did not report an active fault plan" >&2
  cat "$log" >&2
  exit 1
}
echo "server up on port $port (lock $CHAOS_LOCK, faults on), driving load"

# Retrying load in the background; SIGTERM the server mid-drive so the
# graceful drain runs with connections still open and requests in flight.
"$BENCH" --workload kvnet --drive --net-port "$port" \
  --threads 4 --duration 4 --net-op-timeout-ms 500 --net-retries 5 \
  > "$drive_log" 2>&1 &
drive_pid=$!

sleep 2
kill -TERM "$server_pid"
rc=0
wait "$server_pid" || rc=$?
server_pid=
if [ "$rc" -ne 0 ]; then
  echo "error: server exit code $rc (expected clean drain + accounting)" >&2
  cat "$log" >&2
  exit 1
fi

drive_rc=0
wait "$drive_pid" || drive_rc=$?
drive_pid=
echo "--- drive log ---"
cat "$drive_log"
if [ "$drive_rc" -ne 0 ]; then
  echo "error: drive made no progress (exit $drive_rc)" >&2
  exit 1
fi

echo "--- server log ---"
cat "$log"
fail=0
grep -q "^accounting ok$" "$log" || { echo "error: close-reason accounting mismatch" >&2; fail=1; }
grep -q "^drain ok$" "$log" || { echo "error: drain missed its deadline" >&2; fail=1; }
faults=$(awk '/injected_faults=/ { n = split($NF, a, "="); print a[n]; exit }' "$log")
if [ -z "$faults" ] || [ "$faults" -eq 0 ]; then
  echo "error: fault plan never fired (injected_faults=${faults:-missing})" >&2
  fail=1
fi
[ "$fail" -eq 0 ] || exit 1
echo "net chaos smoke passed (injected_faults=$faults)"
