#!/usr/bin/env bash
# Loopback server smoke (CI): start the kvstore_server binary on an
# ephemeral port, run the scripted protocol exchange against it
# (`cohort_bench --workload kvnet --smoke`: get/set/delete/stats, a
# pipelined burst, and the malformed-command / oversized-value error
# paths), then SIGTERM the server and require a clean exit 0 -- which,
# under an ASan build dir, includes the leak check.
#
#   BUILD_DIR=build-asan scripts/server_smoke.sh
#
# Environment knobs:
#   BUILD_DIR   cmake build directory with kvstore_server + cohort_bench
#                                                        (default: build)
#   SMOKE_LOCK  registry cache lock for the server       (default: C-TKT-TKT)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
SMOKE_LOCK=${SMOKE_LOCK:-C-TKT-TKT}
SERVER="$BUILD_DIR/kvstore_server"
BENCH="$BUILD_DIR/cohort_bench"
for bin in "$SERVER" "$BENCH"; do
  if [ ! -x "$bin" ]; then
    echo "error: $bin not built (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR)" >&2
    exit 1
  fi
done

log=$(mktemp)
server_pid=
cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  rm -f "$log"
}
trap cleanup EXIT

# Small value cap so the smoke's oversized set trips the SERVER_ERROR path.
"$SERVER" --port 0 --lock "$SMOKE_LOCK" --shards 4 --io-threads 2 \
  --max-value-bytes 65536 > "$log" 2>&1 &
server_pid=$!

port=
for _ in $(seq 1 100); do
  port=$(awk '/^listening on / { n = split($3, a, ":"); print a[n]; exit }' "$log")
  [ -n "$port" ] && break
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "error: server exited during startup" >&2
    cat "$log" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$port" ]; then
  echo "error: server never reported its port" >&2
  cat "$log" >&2
  exit 1
fi
echo "server up on port $port (lock $SMOKE_LOCK), running scripted exchange"

"$BENCH" --workload kvnet --smoke --net-port "$port"

kill -TERM "$server_pid"
rc=0
wait "$server_pid" || rc=$?
server_pid=
if [ "$rc" -ne 0 ]; then
  echo "error: server exit code $rc (expected clean shutdown)" >&2
  cat "$log" >&2
  exit 1
fi
echo "--- server log ---"
cat "$log"
echo "server smoke passed"
