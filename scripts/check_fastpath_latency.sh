#!/usr/bin/env bash
# Single-thread latency smoke for the fast-path cohort locks, run by CI on
# every push (and by hand before regenerating BENCH_real.json).
#
# Two guarantees:
#   1. Registry completeness (hard, environment-independent): every lock
#      whose descriptor says fp_composable (cohort compositions and the
#      compact post-cohort locks; cohort_bench --list-locks is the source
#      of truth) must have its "-fp" fast-path variant registered -- a
#      composable lock added without one fails here, not in a downstream
#      experiment.
#   2. Latency: each "-fp" lock's uncontended acquire/release must sit
#      within FP_TATAS_FACTOR x the TATAS time (default 1.5, the hardware
#      floor a single CAS can realistically hit).  Because every plain
#      composition costs at least FP_BASELINE_SPEEDUP x that bound on real
#      hardware, holding the TATAS bound is what forces the >=2x win over
#      the baseline wherever the baseline leaves room for one; demanding
#      2x against a baseline already near TATAS would mean beating bare
#      TATAS itself.  A latency *inversion* -- an -fp lock slower than its
#      own baseline -- fails regardless of the TATAS bound.
#
# Environment knobs:
#   BUILD_DIR            cmake build dir with real_lock_overhead (default: build)
#   FP_TATAS_FACTOR      allowed slowdown vs TATAS          (default: 1.5)
#   FP_INVERSION_SLACK   noise headroom for the fp-vs-baseline inversion
#                        check (default: 1.10)
#   FP_MIN_TIME          google-benchmark min time per case  (default: 0.15)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
FP_TATAS_FACTOR=${FP_TATAS_FACTOR:-1.5}
FP_INVERSION_SLACK=${FP_INVERSION_SLACK:-1.10}
FP_MIN_TIME=${FP_MIN_TIME:-0.15}

BENCH="$BUILD_DIR/real_lock_overhead"
if [ ! -x "$BENCH" ]; then
  echo "error: $BENCH not built (needs google-benchmark; cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR)" >&2
  exit 1
fi
CLI="$BUILD_DIR/cohort_bench"
if [ ! -x "$CLI" ]; then
  echo "error: $CLI not built (needed for --list-locks descriptor metadata)" >&2
  exit 1
fi

# The composable set from the descriptor registry, not from a name pattern:
# a lock whose caps include fp_composable must have a "-fp" twin.
COMPOSABLE=$("$CLI" --list-locks | awk -F'\t' '$3 ~ /fp_composable/ { print $1 }')

out=$(mktemp)
trap 'rm -f "$out"' EXIT

# One pass over every registered lock at threads=1; real_lock_overhead
# enumerates the registry itself, so the JSON below contains every name.
"$BENCH" --benchmark_filter='^uncontended/' \
  --benchmark_min_time="$FP_MIN_TIME" \
  --benchmark_format=json > "$out" 2>/dev/null

FP_TATAS_FACTOR="$FP_TATAS_FACTOR" FP_INVERSION_SLACK="$FP_INVERSION_SLACK" \
FP_COMPOSABLE="$COMPOSABLE" \
python3 - "$out" <<'EOF'
import json, os, re, sys

with open(sys.argv[1]) as f:
    data = json.load(f)

times = {}
for b in data.get("benchmarks", []):
    m = re.fullmatch(r"uncontended/(.+)/threads:1", b["name"])
    if m:
        times[m.group(1)] = float(b["cpu_time"])

if "TATAS" not in times:
    sys.exit("error: TATAS missing from the uncontended benchmark set")
tatas = times["TATAS"]

cohorts = os.environ["FP_COMPOSABLE"].split()
absent = [n for n in cohorts if n not in times]
if absent:
    sys.exit("error: fp_composable lock(s) missing from the benchmark set: "
             + ", ".join(sorted(absent)))
missing = [n for n in cohorts if n + "-fp" not in times]
if missing:
    sys.exit("error: fp_composable lock(s) missing a fast-path build: "
             + ", ".join(sorted(missing)))

factor = float(os.environ["FP_TATAS_FACTOR"])
slack = float(os.environ["FP_INVERSION_SLACK"])
failures = []
print(f"{'lock':<16} {'base ns':>8} {'fp ns':>8} {'vs TATAS':>9} {'speedup':>8}")
for base in sorted(cohorts):
    b, fp = times[base], times[base + "-fp"]
    # Hard bound: the fast path must track the TATAS hardware floor.  A
    # latency inversion (fp slower than its own baseline, beyond noise
    # slack) fails even if the baseline happens to sit inside the bound.
    ok = fp <= tatas * factor and fp <= b * slack
    verdict = "ok" if ok else "FAIL"
    print(f"{base:<16} {b:8.1f} {fp:8.1f} {fp / tatas:8.2f}x {b / fp:7.2f}x  {verdict}")
    if not ok:
        failures.append(base)
print(f"TATAS reference: {tatas:.1f} ns; bound = TATAS*{factor}, no inversion past {slack}x")
if failures:
    sys.exit("error: fast path too slow for: " + ", ".join(failures))
print("fast-path latency smoke: ok")
EOF
