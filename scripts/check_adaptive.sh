#!/usr/bin/env bash
# Adaptive-lock smoke, run by CI on every push (and by hand before
# regenerating BENCH_real.json).
#
# Three guarantees:
#   1. Registry completeness (hard, environment-independent): the adaptive
#      entry is registered with family=adaptive, honours every rung's knobs
#      (pass_limit, fp, gcr) plus its own monitor knobs, and every ladder
#      rung is itself a registered lock -- the ladder can never name a lock
#      the registry cannot build.
#   2. Telemetry: every adaptive JSON record carries schema_version 2, the
#      adaptive_* knob echo and the ladder, and the policy gauges
#      (policy_switches / current_policy) in the whole-run cohort block, in
#      every windows[] entry, and per shard.
#   3. Adaptivity (the point): on the kv workload at saturation (nproc
#      threads) the adaptive lock must hold at least ADAPTIVE_MIN_RATIO x
#      the best uniform rung's throughput on a uniform key mix AND under
#      Zipf skew -- near-best everywhere is the claim, not best somewhere.
#      A separate oversubscribed skew run (>= 4 threads even on a tiny
#      box, where saturation may mean a single uncontended thread) must
#      actually adapt: policy switches occur, and the per-shard rung
#      gauges are heterogeneous at some sampled instant (hot shards
#      escalate, cold shards stay on the base rung).  The ratio is not
#      enforced on that run: at many-threads-per-CPU a FIFO handoff to a
#      preempted waiter is the known worst case for every queue lock, and
#      surviving it is the opt-in gcr rung's job, not the default ladder's.
#
# Environment knobs:
#   BUILD_DIR           cmake build dir with cohort_bench    (default: build)
#   ADAPTIVE_MIN_RATIO  required adaptive/best-uniform ratio (default: 0.70;
#                       the pin/unpin admission pair costs two uncontended
#                       RMWs per acquisition, which on a trivial critical
#                       section at a single saturated thread lands the true
#                       ratio near 0.8 -- the floor leaves noise headroom)
#   ADAPTIVE_DURATION   measured seconds per run             (default: 1.0)
#   ADAPTIVE_ZIPF       key-skew theta for the skewed half   (default: 1.1)
#   ADAPTIVE_SHARDS     engine shards                        (default: 8)
#   ADAPTIVE_WINDOW     monitor window for the skewed half   (default: 512)
#   ADAPTIVE_REPS       reps per lock on the ratio runs; the check compares
#                       best-of-N against best-of-N           (default: 3)
#   ADAPTIVE_ATTEMPTS   full measurement attempts before the perf check is
#                       declared failed (default: 3).  Shared boxes show
#                       +-20% run-to-run noise, which a hard ratio floor
#                       cannot absorb; a genuine collapse (a broken swap
#                       path runs at a fraction of any rung) fails every
#                       attempt, noise does not fail three in a row.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
ADAPTIVE_MIN_RATIO=${ADAPTIVE_MIN_RATIO:-0.70}
ADAPTIVE_DURATION=${ADAPTIVE_DURATION:-1.0}
ADAPTIVE_ZIPF=${ADAPTIVE_ZIPF:-1.1}
ADAPTIVE_SHARDS=${ADAPTIVE_SHARDS:-8}
ADAPTIVE_WINDOW=${ADAPTIVE_WINDOW:-512}
ADAPTIVE_REPS=${ADAPTIVE_REPS:-3}
ADAPTIVE_ATTEMPTS=${ADAPTIVE_ATTEMPTS:-3}
# The expected rung sequence, cheapest first (adaptive_lock::ladder()).
ADAPTIVE_LADDER="TATAS C-BO-MCS-fp C-BO-MCS gcr-C-BO-MCS"

CLI="$BUILD_DIR/cohort_bench"
if [ ! -x "$CLI" ]; then
  echo "error: $CLI not built (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR)" >&2
  exit 1
fi

# ---- 1. registry completeness ------------------------------------------
"$CLI" --list-locks | ADAPTIVE_LADDER="$ADAPTIVE_LADDER" python3 -c '
import os, sys

rows = [line.rstrip("\n").split("\t") for line in sys.stdin if line.strip()]
names = {r[0] for r in rows}
fam = [r for r in rows if len(r) > 1 and r[1] == "adaptive"]

if [r[0] for r in fam] != ["adaptive"]:
    sys.exit("error: family=adaptive rows out of sync, got: "
             + ", ".join(r[0] for r in fam))
row = fam[0]
knobs = row[3] if len(row) > 3 else ""
for knob in ("pass_limit", "fp", "gcr", "adaptive"):
    if knob not in knobs.split(","):
        sys.exit(f"error: adaptive entry does not honour the {knob} knobs "
                 f"(knob column: {knobs!r})")
ladder = os.environ["ADAPTIVE_LADDER"].split()
missing = [r for r in ladder if r not in names]
if missing:
    sys.exit("error: ladder rung(s) not in the registry: " + ", ".join(missing))
print(f"adaptive registry completeness: ok ({len(ladder)} rungs)")
'

# ---- 2+3. adaptive vs best uniform, uniform and skewed ------------------
ONLINE=$(nproc 2>/dev/null || echo 1)
# Ratio runs at saturation: one thread per CPU, the regime the default
# ladder targets.  The adaptivity run needs real overlap even on a
# single-CPU box, so it gets at least four workers.
ADAPT_THREADS=$((ONLINE * 2))
[ "$ADAPT_THREADS" -lt 4 ] && ADAPT_THREADS=4

uni=$(mktemp) skew=$(mktemp) adapt=$(mktemp)
trap 'rm -f "$uni" "$skew" "$adapt"' EXIT

lock_args=(--lock adaptive)
for rung in $ADAPTIVE_LADDER; do
  # The gcr rung is opt-in (max_level 3); compare against the default
  # ladder's uniform rungs only.
  [ "$rung" = "gcr-C-BO-MCS" ] && continue
  lock_args+=(--lock "$rung")
done

ok=0
for attempt in $(seq 1 "$ADAPTIVE_ATTEMPTS"); do
  [ "$attempt" -gt 1 ] && echo "retrying (attempt $attempt of $ADAPTIVE_ATTEMPTS)..."
  "$CLI" --workload kv "${lock_args[@]}" --threads "$ONLINE" \
    --shards "$ADAPTIVE_SHARDS" --duration "$ADAPTIVE_DURATION" \
    --warmup 0.2 --reps "$ADAPTIVE_REPS" --json > "$uni"
  "$CLI" --workload kv "${lock_args[@]}" --threads "$ONLINE" \
    --shards "$ADAPTIVE_SHARDS" --zipf "$ADAPTIVE_ZIPF" \
    --adaptive-window "$ADAPTIVE_WINDOW" --adaptive-hysteresis 1 \
    --duration "$ADAPTIVE_DURATION" --warmup 0.2 --reps "$ADAPTIVE_REPS" \
    --json > "$skew"
  "$CLI" --workload kv --lock adaptive --threads "$ADAPT_THREADS" \
    --shards "$ADAPTIVE_SHARDS" --zipf "$ADAPTIVE_ZIPF" \
    --adaptive-window "$ADAPTIVE_WINDOW" --adaptive-hysteresis 1 \
    --duration "$ADAPTIVE_DURATION" --warmup 0.2 --json > "$adapt"

  if ADAPTIVE_MIN_RATIO="$ADAPTIVE_MIN_RATIO" ADAPTIVE_LADDER="$ADAPTIVE_LADDER" \
     python3 - "$uni" "$skew" "$adapt" <<'EOF'
import json, os, sys

need = float(os.environ["ADAPTIVE_MIN_RATIO"])
ladder = os.environ["ADAPTIVE_LADDER"].split()

def load(path):
    """Validate every record; keep the best rep per lock (ratio runs use
    --reps, so best-of-N compares against best-of-N)."""
    with open(path) as f:
        recs = json.load(f)
    recs = recs if isinstance(recs, list) else [recs]
    by_lock = {}
    for r in recs:
        if r["schema_version"] != 2:
            sys.exit(f"error: {r['lock']} record has schema_version "
                     f"{r['schema_version']}, wanted 2")
        if not r["mutual_exclusion_ok"]:
            sys.exit(f"error: mutual exclusion violated under {r['lock']}")
        best = by_lock.get(r["lock"])
        if best is None or r["throughput_ops_s"] > best["throughput_ops_s"]:
            by_lock[r["lock"]] = r
    return by_lock

def check_ratio(tag, by_lock):
    ad = by_lock["adaptive"]
    uniforms = {n: r for n, r in by_lock.items() if n != "adaptive"}
    best_name = max(uniforms, key=lambda n: uniforms[n]["throughput_ops_s"])
    best = uniforms[best_name]["throughput_ops_s"]
    ratio = ad["throughput_ops_s"] / max(best, 1e-9)
    for n, r in sorted(by_lock.items()):
        print(f"  {tag:<8} {n:<14} {r['throughput_ops_s']:14.0f} ops/s")
    print(f"  {tag:<8} ratio {ratio:.2f}x of best uniform ({best_name}), "
          f"need >= {need}")
    if ratio < need:
        sys.exit(f"error: adaptive at {ratio:.2f}x of {best_name} on the "
                 f"{tag} mix, wanted >= {need}")
    return ad

uni = load(sys.argv[1])
skew = load(sys.argv[2])
oversub = load(sys.argv[3])["adaptive"]

# Telemetry shape on every adaptive record.
for tag, rec in (("uniform", uni["adaptive"]), ("zipf", skew["adaptive"]),
                 ("oversub", oversub)):
    if rec.get("adaptive_ladder") != ladder:
        sys.exit(f"error: {tag} record ladder {rec.get('adaptive_ladder')} "
                 f"!= expected {ladder}")
    for k in ("adaptive_window", "adaptive_escalate_pct",
              "adaptive_deescalate_pct", "adaptive_hysteresis",
              "adaptive_max_level", "adaptive_gcr_waiters"):
        if k not in rec:
            sys.exit(f"error: {tag} adaptive record lacks knob {k}")
    for g in ("policy_switches", "current_policy"):
        if g not in rec["cohort"]:
            sys.exit(f"error: {tag} adaptive cohort block lacks {g}")
    if not rec["windows"]:
        sys.exit(f"error: {tag} adaptive record has no windows[]")
    for w in rec["windows"]:
        for g in ("policy_switches", "current_policy"):
            if g not in w["cohort"]:
                sys.exit(f"error: {tag} windows[] entry lacks {g}")
        for sh in w.get("per_shard", []):
            if "current_policy" not in sh:
                sys.exit(f"error: {tag} windows[] per_shard entry lacks "
                         "current_policy")
    for sh in rec["per_shard"]:
        if "current_policy" not in sh["cohort"]:
            sys.exit(f"error: {tag} per_shard cohort block lacks "
                     "current_policy")

check_ratio("uniform", uni)
check_ratio("zipf", skew)

# The oversubscribed skew run must actually adapt: switches happened, and
# at some point in the run the per-shard rungs were heterogeneous (hot
# shards escalated while cold shards had not followed).  Scan the final
# gauges AND every windows[] sample -- a shard can legitimately walk back
# down before the run ends.
if oversub["cohort"]["policy_switches"] == 0:
    sys.exit("error: no policy switches under oversubscribed Zipf skew -- "
             "monitor inert?")
rungs = [sh["cohort"]["current_policy"] for sh in oversub["per_shard"]]
samples = [rungs] + [[sh["current_policy"] for sh in w.get("per_shard", [])]
                     for w in oversub["windows"]]
if not any(len(set(s)) > 1 for s in samples if s):
    sys.exit(f"error: per-shard rungs never heterogeneous under skew: "
             f"{samples}")
print(f"  oversub  switches={oversub['cohort']['policy_switches']} "
      f"threads={oversub['threads']} final per-shard rungs={rungs}")
print("adaptive smoke: ok")
EOF
  then ok=1; break; fi
done
[ "$ok" = 1 ] || { echo "error: adaptive smoke failed $ADAPTIVE_ATTEMPTS attempts" >&2; exit 1; }
