#!/usr/bin/env bash
# GCR oversubscription smoke, run by CI on every push (and by hand before
# regenerating BENCH_real.json).
#
# Three guarantees:
#   1. Registry completeness (hard, environment-independent): every gcr-
#      lock in the registry wraps a registered base (strip "gcr-", the rest
#      must be a lock name), carries the gcr knob flag, and the expected
#      admission set is covered -- a wrapped family added without its gcr
#      twin, or a stray twin, fails here, not in a downstream experiment.
#   2. Telemetry: every gcr- JSON record carries the admission gauges
#      (active_set / active_target / parked / rotations) in the whole-run
#      cohort block AND in every windows[] entry, plus the oversubscription
#      factor.
#   3. Saturation (the paper's point): at GCR_OVERSUB x the online CPU
#      count, the gcr-wrapped lock must hold at least GCR_MIN_RATIO x the
#      plain lock's throughput.  Admission parks the surplus so the wrapped
#      lock sidesteps the scalability collapse the plain lock suffers; on a
#      quiet box the ratio is far above 1, so the default bound of 1.0
#      (CI passes slack for shared runners) is conservative.
#
# Environment knobs:
#   BUILD_DIR      cmake build dir with cohort_bench      (default: build)
#   GCR_LOCK       base lock to compare                   (default: C-BO-MCS)
#   GCR_OVERSUB    thread multiple of online CPUs         (default: 4)
#   GCR_MIN_RATIO  required gcr/plain throughput ratio    (default: 1.0)
#   GCR_DURATION   measured seconds per run               (default: 1.0)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
GCR_LOCK=${GCR_LOCK:-C-BO-MCS}
GCR_OVERSUB=${GCR_OVERSUB:-4}
GCR_MIN_RATIO=${GCR_MIN_RATIO:-1.0}
GCR_DURATION=${GCR_DURATION:-1.0}

CLI="$BUILD_DIR/cohort_bench"
if [ ! -x "$CLI" ]; then
  echo "error: $CLI not built (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR)" >&2
  exit 1
fi

# ---- 1. registry completeness ------------------------------------------
# The twin set from the descriptor registry (family column), not from a
# name pattern; --list-locks is the source of truth.
"$CLI" --list-locks | GCR_EXPECTED_BASES="TATAS C-BO-MCS C-MCS-MCS cna reciprocating C-BO-MCS-fp C-MCS-MCS-fp cna-fp reciprocating-fp" \
python3 -c '
import os, sys

rows = [line.rstrip("\n").split("\t") for line in sys.stdin if line.strip()]
names = {r[0] for r in rows}
twins = {r[0] for r in rows if len(r) > 1 and r[1] == "gcr"}

bad = [n for n in twins if not n.startswith("gcr-")]
if bad:
    sys.exit("error: gcr-family lock(s) without the gcr- prefix: " + ", ".join(sorted(bad)))
orphans = [n for n in twins if n[4:] not in names]
if orphans:
    sys.exit("error: gcr twin(s) wrapping an unregistered base: " + ", ".join(sorted(orphans)))
noknob = [r[0] for r in rows if r[0] in twins and (len(r) < 4 or "gcr" not in r[3])]
if noknob:
    sys.exit("error: gcr twin(s) not honouring the gcr knobs: " + ", ".join(sorted(noknob)))
expected = {"gcr-" + b for b in os.environ["GCR_EXPECTED_BASES"].split()}
if twins != expected:
    missing, stray = expected - twins, twins - expected
    msg = []
    if missing: msg.append("missing: " + ", ".join(sorted(missing)))
    if stray:   msg.append("stray: " + ", ".join(sorted(stray)))
    sys.exit("error: gcr twin set out of sync (" + "; ".join(msg) + ")")
print(f"gcr registry completeness: ok ({len(twins)} twins)")
'

# ---- 2+3. oversubscribed throughput + telemetry shape -------------------
ONLINE=$(nproc 2>/dev/null || echo 1)
THREADS=$((ONLINE * GCR_OVERSUB))

out=$(mktemp)
trap 'rm -f "$out"' EXIT

"$CLI" --lock "$GCR_LOCK" --lock "gcr-$GCR_LOCK" --threads "$THREADS" \
  --duration "$GCR_DURATION" --warmup 0.2 --json > "$out"

GCR_LOCK="$GCR_LOCK" GCR_MIN_RATIO="$GCR_MIN_RATIO" \
GCR_OVERSUB="$GCR_OVERSUB" python3 - "$out" <<'EOF'
import json, os, sys

with open(sys.argv[1]) as f:
    recs = json.load(f)
base_name = os.environ["GCR_LOCK"]
by_lock = {r["lock"]: r for r in recs}
plain, gcr = by_lock[base_name], by_lock["gcr-" + base_name]

oversub = float(os.environ["GCR_OVERSUB"])
for r in (plain, gcr):
    if not r["mutual_exclusion_ok"]:
        sys.exit(f"error: mutual exclusion violated under {r['lock']}")
    if r["oversubscription"] < oversub:
        sys.exit(f"error: {r['lock']} ran at oversubscription "
                 f"{r['oversubscription']}, wanted >= {oversub}")

# Telemetry shape: admission gauges in the whole-run cohort block and in
# every window, knobs in the record.
gauges = ("active_set", "active_target", "parked", "rotations")
for g in gauges:
    if g not in gcr["cohort"]:
        sys.exit(f"error: gcr record cohort block lacks {g}")
for w in gcr["windows"]:
    for g in gauges:
        if g not in w["cohort"]:
            sys.exit(f"error: gcr windows[] entry lacks {g}")
for k in ("gcr_min_active", "gcr_max_active", "gcr_rotation", "gcr_tune_window"):
    if k not in gcr:
        sys.exit(f"error: gcr record lacks knob {k}")
if gcr["cohort"]["parked"] == 0:
    sys.exit("error: gcr lock never parked a thread at "
             f"{oversub}x oversubscription -- admission gate inert?")

ratio = gcr["throughput_ops_s"] / max(plain["throughput_ops_s"], 1e-9)
need = float(os.environ["GCR_MIN_RATIO"])
print(f"{base_name:<14} {plain['throughput_ops_s']:14.0f} ops/s")
print(f"{'gcr-' + base_name:<14} {gcr['throughput_ops_s']:14.0f} ops/s "
      f"(parked={gcr['cohort']['parked']}, rotations={gcr['cohort']['rotations']}, "
      f"target={gcr['cohort']['active_target']})")
print(f"ratio {ratio:.2f}x (need >= {need})")
if ratio < need:
    sys.exit(f"error: gcr-{base_name} at {ratio:.2f}x of plain, "
             f"wanted >= {need} at {oversub}x oversubscription")
print("gcr saturation smoke: ok")
EOF
