#!/usr/bin/env bash
# Dump the full real-thread benchmark matrix to a BENCH_real.json trajectory
# file: every registry lock on the "cs" microbenchmark, plus a
# lock x shard-count sweep of the "kv" application workload, merged into one
# JSON array.
#
#   scripts/run_bench_matrix.sh [out.json]
#
# Environment knobs:
#   BUILD_DIR  cmake build directory holding cohort_bench   (default: build)
#   THREADS    worker threads per run                       (default: nproc)
#   DURATION   measured seconds per (lock, rep)             (default: 1)
#   REPS       repetitions per lock                         (default: 3)
#   KV_LOCKS   locks for the kv sweep    (default: pthread C-TKT-TKT C-BO-MCS)
#   KV_SHARDS  shard counts for the kv sweep               (default: 1 4 16)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
OUT=${1:-BENCH_real.json}
THREADS=${THREADS:-$(nproc)}
DURATION=${DURATION:-1}
REPS=${REPS:-3}
KV_LOCKS=${KV_LOCKS:-pthread C-TKT-TKT C-BO-MCS}
KV_SHARDS=${KV_SHARDS:-1 4 16}

if [ ! -x "$BUILD_DIR/cohort_bench" ]; then
  echo "error: $BUILD_DIR/cohort_bench not built (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR)" >&2
  exit 1
fi

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

# Lock-overhead matrix: every registry lock on the cs microbenchmark.
"$BUILD_DIR/cohort_bench" --all --threads "$THREADS" --duration "$DURATION" \
  --reps "$REPS" --json > "$tmpdir/cs.json"

# Application matrix: kv workload, lock x shard-count sweep.
kv_lock_args=()
for lock in $KV_LOCKS; do kv_lock_args+=(--lock "$lock"); done
for shards in $KV_SHARDS; do
  "$BUILD_DIR/cohort_bench" --workload kv "${kv_lock_args[@]}" \
    --threads "$THREADS" --shards "$shards" --duration "$DURATION" \
    --reps "$REPS" --json > "$tmpdir/kv-$shards.json"
done

# Merge all record sets (cohort_bench prints a bare object for a single run,
# an array otherwise) into one flat array.
python3 - "$OUT" "$tmpdir"/*.json <<'EOF'
import json, sys
out, *parts = sys.argv[1:]
records = []
for part in parts:
    with open(part) as f:
        data = json.load(f)
    records.extend(data if isinstance(data, list) else [data])
with open(out, "w") as f:
    json.dump(records, f, indent=2)
    f.write("\n")
EOF

echo "wrote $OUT ($(wc -c < "$OUT") bytes)" >&2
