#!/usr/bin/env bash
# Dump the full real-thread benchmark matrix to a BENCH_real.json trajectory
# file: every registry lock on the "cs" microbenchmark, a contention sweep
# (threads = 1, 2, one-per-cluster, saturation, 2x and 4x oversubscription)
# of the fast-path locks against their baselines, TATAS, and the gcr
# admission twins -- so the low-contention fast-path win, the saturation
# non-regression, and the oversubscription collapse-vs-admission contrast
# land side by side -- a fast-path
# hysteresis sweep over the fission_limit x reengage_drains knobs, a lock x
# shard-count sweep of the "kv" application workload recorded as
# placed/unplaced pairs (the NUMA-placement ablation: identical configs
# differing only in numa_place, so a real NUMA box can diff first-touch
# placement against lock-carried NUMA awareness directly), a lock x threads
# sweep of the "kvnet" served workload (the same mix through loopback
# sockets and the epoll front-end), an adaptive-vs-best-uniform kv ablation
# pair (uniform keys and Zipf skew, the adaptive ladder against each of its
# uniform rungs), and every registry lock on the "alloc" (mmicro) workload
# plus a Zipf size-class ablation pair, merged into one JSON array.  Every record carries windows[] batch-length telemetry; kv
# and kvnet records add per-shard hit-rate per window.
#
#   scripts/run_bench_matrix.sh [--dry-run] [out.json]
#
# The lock and workload axes are enumerated from the cohort_bench binary
# (--list / --list-workloads), so this script cannot drift from the
# registries; --dry-run validates that enumeration and prints every run it
# would launch without executing any (CI runs it on each push).
#
# Environment knobs:
#   BUILD_DIR  cmake build directory holding cohort_bench   (default: build)
#   THREADS    worker threads per run                       (default: nproc)
#   DURATION   measured seconds per (lock, rep)             (default: 1)
#   REPS       repetitions per lock                         (default: 3)
#   KV_LOCKS   locks for the kv sweep
#                        (default: pthread C-TKT-TKT C-TKT-TKT-fp C-BO-MCS
#                         plus the compact locks cna reciprocating)
#   KV_SHARDS  shard counts for the kv sweep               (default: 1 4 16)
#   NET_LOCKS    locks for the kvnet served sweep
#                        (default: pthread C-TKT-TKT C-TKT-TKT-fp
#                         plus the compact locks cna reciprocating)
#   NET_THREADS  client connection counts for kvnet
#                        (default: "2 <THREADS>", deduplicated)
#   NET_IO_THREADS  server event-loop threads for kvnet    (default: 2)
#   NET_SHARDS      engine shards for kvnet                (default: 4)
#   SWEEP_LOCKS    locks for the contention sweep
#                        (default: TATAS plus each -fp lock and its baseline,
#                         every family=compact lock and its twin, and every
#                         family=gcr admission twin -- cross-checked below
#                         against --list-locks)
#   SWEEP_THREADS  thread counts for the contention sweep
#                        (default: "1 2 <clusters> <THREADS> <2x> <4x>",
#                         deduplicated; the oversubscribed points drive the
#                         gcr admission ablation)
#   FP_HYST_LOCK      lock for the hysteresis sweep (default: C-TKT-TKT-fp)
#   FP_FISSION_LIMITS fission_limit axis             (default: "2 8 32")
#   FP_REENGAGE_DRAINS reengage_drains axis          (default: "1 4 16")
#   ALLOC_SIZE_ZIPF   theta for the alloc size-class ablation (default: 1.1)
#   ALLOC_ZIPF_LOCKS  locks for that ablation (default: pthread C-TKT-TKT)
#   ADAPT_LOCKS    locks for the adaptive-vs-best-uniform kv ablation
#                        (default: adaptive plus each of its uniform rungs
#                         TATAS C-BO-MCS-fp C-BO-MCS; cross-checked below
#                         against family=adaptive in --list-locks)
#   ADAPT_ZIPF     key-skew theta for the ablation's skewed half (default: 1.1)
#   ADAPT_SHARDS   engine shards for the adaptive ablation     (default: 8)
set -euo pipefail

cd "$(dirname "$0")/.."

DRY_RUN=0
OUT=BENCH_real.json
for arg in "$@"; do
  case "$arg" in
    --dry-run) DRY_RUN=1 ;;
    -h|--help) awk 'NR>1 && !/^#/{exit} NR>1{sub(/^# ?/,""); print}' "$0"; exit 0 ;;
    -*) echo "error: unknown option '$arg' (supported: --dry-run)" >&2; exit 2 ;;
    *) OUT=$arg ;;
  esac
done

BUILD_DIR=${BUILD_DIR:-build}
THREADS=${THREADS:-$(nproc)}
DURATION=${DURATION:-1}
REPS=${REPS:-3}
KV_LOCKS=${KV_LOCKS:-pthread C-TKT-TKT C-TKT-TKT-fp C-BO-MCS cna reciprocating}
KV_SHARDS=${KV_SHARDS:-1 4 16}
NET_LOCKS=${NET_LOCKS:-pthread C-TKT-TKT C-TKT-TKT-fp cna reciprocating}
NET_IO_THREADS=${NET_IO_THREADS:-2}
NET_SHARDS=${NET_SHARDS:-4}
FP_HYST_LOCK=${FP_HYST_LOCK:-C-TKT-TKT-fp}
FP_FISSION_LIMITS=${FP_FISSION_LIMITS:-2 8 32}
FP_REENGAGE_DRAINS=${FP_REENGAGE_DRAINS:-1 4 16}
ALLOC_SIZE_ZIPF=${ALLOC_SIZE_ZIPF:-1.1}
ALLOC_ZIPF_LOCKS=${ALLOC_ZIPF_LOCKS:-pthread C-TKT-TKT}
ADAPT_LOCKS=${ADAPT_LOCKS:-adaptive TATAS C-BO-MCS-fp C-BO-MCS}
ADAPT_ZIPF=${ADAPT_ZIPF:-1.1}
ADAPT_SHARDS=${ADAPT_SHARDS:-8}

# Contention sweep axis: each fast-path lock, its non-fp baseline, and the
# TATAS reference, at 1 thread (uncontended latency), 2 (first contention),
# one per cluster (pure cross-cluster traffic), saturation ($THREADS), and
# 2x/4x oversubscription (more threads than CPUs -- where the gcr admission
# gate earns its keep and the plain locks collapse).  The compact
# (post-cohort) locks ride along so CNA / Reciprocating batching lands next
# to the cohort compositions at every contention level, and the gcr twins
# ride along so admission vs collapse lands in the same records.
SWEEP_LOCKS=${SWEEP_LOCKS:-TATAS C-TKT-TKT C-TKT-TKT-fp C-BO-MCS C-BO-MCS-fp C-MCS-MCS C-MCS-MCS-fp cna cna-fp reciprocating reciprocating-fp gcr-TATAS gcr-C-BO-MCS gcr-C-BO-MCS-fp gcr-C-MCS-MCS gcr-C-MCS-MCS-fp gcr-cna gcr-cna-fp gcr-reciprocating gcr-reciprocating-fp}
host_clusters=0
for node in /sys/devices/system/node/node[0-9]*; do
  [ -e "$node" ] && host_clusters=$((host_clusters + 1))
done
[ "$host_clusters" -ge 1 ] || host_clusters=1
SWEEP_THREADS=${SWEEP_THREADS:-1 2 $host_clusters $THREADS $((2 * THREADS)) $((4 * THREADS))}
SWEEP_THREADS=$(printf '%s\n' $SWEEP_THREADS | awk '!seen[$0]++' | tr '\n' ' ')
NET_THREADS=${NET_THREADS:-2 $THREADS}
NET_THREADS=$(printf '%s\n' $NET_THREADS | awk '!seen[$0]++' | tr '\n' ' ')

BENCH="$BUILD_DIR/cohort_bench"
if [ ! -x "$BENCH" ]; then
  echo "error: $BENCH not built (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR)" >&2
  exit 1
fi

# Enumerate both registries from the binary and cross-check this script's
# own axes against them, so a renamed lock or workload fails loudly here.
mapfile -t ALL_LOCKS < <("$BENCH" --list)
WORKLOADS=$("$BENCH" --list-workloads | awk '/^[a-z]/ { print $1 }')
for wl in cs kv kvnet alloc; do
  if ! grep -qx "$wl" <<<"$WORKLOADS"; then
    echo "error: workload '$wl' missing from $BENCH --list-workloads" >&2
    exit 1
  fi
done
for lock in $KV_LOCKS; do
  if ! printf '%s\n' "${ALL_LOCKS[@]}" | grep -qx "$lock"; then
    echo "error: KV_LOCKS entry '$lock' is not a registry lock (see $BENCH --list)" >&2
    exit 1
  fi
done
for lock in $NET_LOCKS $FP_HYST_LOCK $ALLOC_ZIPF_LOCKS $ADAPT_LOCKS; do
  if ! printf '%s\n' "${ALL_LOCKS[@]}" | grep -qx "$lock"; then
    echo "error: NET/FP/ALLOC lock '$lock' is not a registry lock (see $BENCH --list)" >&2
    exit 1
  fi
done
for lock in $SWEEP_LOCKS; do
  if ! printf '%s\n' "${ALL_LOCKS[@]}" | grep -qx "$lock"; then
    echo "error: SWEEP_LOCKS entry '$lock' is not a registry lock (see $BENCH --list)" >&2
    exit 1
  fi
done

# Descriptor coverage cross-check: every family=compact lock in the registry
# (and its -fp twin) must be on the contention-sweep axis, so a compact lock
# added to the descriptor table without matrix coverage fails loudly here.
COMPACT_LOCKS=$("$BENCH" --list-locks | awk -F'\t' '$2 == "compact" { print $1 }')
for lock in $COMPACT_LOCKS; do
  for want in "$lock" "$lock-fp"; do
    if ! grep -qxF "$want" <(printf '%s\n' $SWEEP_LOCKS); then
      echo "error: compact lock '$want' missing from SWEEP_LOCKS (descriptor says family=compact; see $BENCH --list-locks)" >&2
      exit 1
    fi
  done
done

# Same for the gcr admission twins: every family=gcr lock must be on the
# sweep axis, so the oversubscribed thread points always carry the
# admission-vs-collapse contrast for every wrapped family.
GCR_LOCKS=$("$BENCH" --list-locks | awk -F'\t' '$2 == "gcr" { print $1 }')
for lock in $GCR_LOCKS; do
  if ! grep -qxF "$lock" <(printf '%s\n' $SWEEP_LOCKS); then
    echo "error: gcr lock '$lock' missing from SWEEP_LOCKS (descriptor says family=gcr; see $BENCH --list-locks)" >&2
    exit 1
  fi
done

# And for the adaptive ladder: every family=adaptive lock must be on the
# adaptive ablation axis, so the adaptive-vs-best-uniform contrast always
# covers whatever the registry grows in that family.
ADAPTIVE_LOCKS=$("$BENCH" --list-locks | awk -F'\t' '$2 == "adaptive" { print $1 }')
for lock in $ADAPTIVE_LOCKS; do
  if ! grep -qxF "$lock" <(printf '%s\n' $ADAPT_LOCKS); then
    echo "error: adaptive lock '$lock' missing from ADAPT_LOCKS (descriptor says family=adaptive; see $BENCH --list-locks)" >&2
    exit 1
  fi
done

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

run() {  # run <output-file> <cohort_bench args...>
  local out=$1
  shift
  if [ "$DRY_RUN" = 1 ]; then
    echo "would run: $BENCH $*"
  else
    "$BENCH" "$@" > "$out"
  fi
}

# Lock-overhead matrix: every registry lock on the cs microbenchmark.
run "$tmpdir/cs.json" --all --threads "$THREADS" --duration "$DURATION" \
  --reps "$REPS" --json

# Contention sweep: the fast-path ablation across thread counts.  The
# single-thread records expose the fast-path latency win; the saturation
# records prove cohort batching survives the extra gate CAS.
sweep_lock_args=()
for lock in $SWEEP_LOCKS; do sweep_lock_args+=(--lock "$lock"); done
for t in $SWEEP_THREADS; do
  run "$tmpdir/sweep-$t.json" "${sweep_lock_args[@]}" --threads "$t" \
    --duration "$DURATION" --reps "$REPS" --json
done

# Application matrix: kv workload, lock x shard-count sweep, recorded as a
# placed/unplaced ablation pair per configuration (numa_place: false/true).
kv_lock_args=()
for lock in $KV_LOCKS; do kv_lock_args+=(--lock "$lock"); done
for shards in $KV_SHARDS; do
  run "$tmpdir/kv-$shards.json" --workload kv "${kv_lock_args[@]}" \
    --threads "$THREADS" --shards "$shards" --duration "$DURATION" \
    --reps "$REPS" --json
  run "$tmpdir/kv-$shards-placed.json" --workload kv "${kv_lock_args[@]}" \
    --threads "$THREADS" --shards "$shards" --duration "$DURATION" \
    --reps "$REPS" --numa-place --json
done

# Fast-path hysteresis sweep (ROADMAP "fast-path tuning sweep"): one -fp
# lock at saturation across the fission_limit x reengage_drains grid, so
# the engage/disengage oscillation cost is visible next to the 8/4 default.
for fl in $FP_FISSION_LIMITS; do
  for rd in $FP_REENGAGE_DRAINS; do
    run "$tmpdir/fp-hyst-$fl-$rd.json" --lock "$FP_HYST_LOCK" \
      --threads "$THREADS" --fission-limit "$fl" --reengage-drains "$rd" \
      --duration "$DURATION" --reps "$REPS" --json
  done
done

# Served-traffic matrix: the kv mix through loopback sockets and the epoll
# front-end, lock x client-connection count (server io threads fixed), so
# BENCH_real.json carries the paper's §4.2 experiment end to end next to
# the in-process kv numbers.
net_lock_args=()
for lock in $NET_LOCKS; do net_lock_args+=(--lock "$lock"); done
for t in $NET_THREADS; do
  run "$tmpdir/kvnet-$t.json" --workload kvnet "${net_lock_args[@]}" \
    --threads "$t" --shards "$NET_SHARDS" --io-threads "$NET_IO_THREADS" \
    --duration "$DURATION" --reps "$REPS" --json
done

# Adaptive-vs-best-uniform ablation pair: the adaptive ladder against each
# of its uniform rungs on the kv workload, once with uniform keys and once
# under Zipf skew.  The skewed half is the headline: per-shard contention is
# heterogeneous, so the uniform rungs each lose somewhere while the adaptive
# lock escalates only the hot shards (per_shard[].current_policy in the
# records shows the split).
adapt_lock_args=()
for lock in $ADAPT_LOCKS; do adapt_lock_args+=(--lock "$lock"); done
run "$tmpdir/kv-adaptive-uniform.json" --workload kv "${adapt_lock_args[@]}" \
  --threads "$THREADS" --shards "$ADAPT_SHARDS" --duration "$DURATION" \
  --reps "$REPS" --json
run "$tmpdir/kv-adaptive-zipf.json" --workload kv "${adapt_lock_args[@]}" \
  --threads "$THREADS" --shards "$ADAPT_SHARDS" --zipf "$ADAPT_ZIPF" \
  --duration "$DURATION" --reps "$REPS" --json

# Allocator matrix: every registry lock on the mmicro loop (Table 2's axis).
run "$tmpdir/alloc.json" --workload alloc --all --threads "$THREADS" \
  --duration "$DURATION" --reps "$REPS" --json

# Size-class skew ablation (ROADMAP "Zipfian alloc size classes"): the same
# mmicro loop with Zipf(theta) sizes over the geometric class ladder,
# paired with the uniform records above.
alloc_zipf_args=()
for lock in $ALLOC_ZIPF_LOCKS; do alloc_zipf_args+=(--lock "$lock"); done
run "$tmpdir/alloc-zipf.json" --workload alloc "${alloc_zipf_args[@]}" \
  --threads "$THREADS" --size-zipf "$ALLOC_SIZE_ZIPF" \
  --duration "$DURATION" --reps "$REPS" --json

if [ "$DRY_RUN" = 1 ]; then
  echo "dry run: ${#ALL_LOCKS[@]} locks, workloads: $(echo $WORKLOADS | tr '\n' ' ')" >&2
  exit 0
fi

# Merge all record sets (cohort_bench prints a bare object for a single run,
# an array otherwise) into one flat array.
python3 - "$OUT" "$tmpdir"/*.json <<'EOF'
import json, sys
out, *parts = sys.argv[1:]
records = []
for part in parts:
    with open(part) as f:
        data = json.load(f)
    records.extend(data if isinstance(data, list) else [data])
with open(out, "w") as f:
    json.dump(records, f, indent=2)
    f.write("\n")
EOF

echo "wrote $OUT ($(wc -c < "$OUT") bytes)" >&2
