#!/usr/bin/env bash
# Dump the full real-thread benchmark matrix (every registry lock) to a
# BENCH_real.json trajectory file.
#
#   scripts/run_bench_matrix.sh [out.json]
#
# Environment knobs:
#   BUILD_DIR  cmake build directory holding cohort_bench   (default: build)
#   THREADS    worker threads per run                       (default: nproc)
#   DURATION   measured seconds per (lock, rep)             (default: 1)
#   REPS       repetitions per lock                         (default: 3)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
OUT=${1:-BENCH_real.json}
THREADS=${THREADS:-$(nproc)}
DURATION=${DURATION:-1}
REPS=${REPS:-3}

if [ ! -x "$BUILD_DIR/cohort_bench" ]; then
  echo "error: $BUILD_DIR/cohort_bench not built (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR)" >&2
  exit 1
fi

"$BUILD_DIR/cohort_bench" --all --threads "$THREADS" --duration "$DURATION" \
  --reps "$REPS" --json > "$OUT"

echo "wrote $OUT ($(wc -c < "$OUT") bytes)" >&2
