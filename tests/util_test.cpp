#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/align.hpp"
#include "util/backoff.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace cohort {
namespace {

// ---- align ------------------------------------------------------------------

TEST(Align, PaddedIsLineMultipleAndAligned) {
  EXPECT_EQ(sizeof(padded<int>), cache_line_size);
  EXPECT_EQ(alignof(padded<int>), cache_line_size);
  struct big {
    char data[cache_line_size + 1];
  };
  EXPECT_EQ(sizeof(padded<big>) % cache_line_size, 0u);
}

TEST(Align, PaddedArrayElementsOnDistinctLines) {
  padded<int> arr[4];
  for (int i = 0; i < 3; ++i) {
    auto a = reinterpret_cast<std::uintptr_t>(&arr[i].get());
    auto b = reinterpret_cast<std::uintptr_t>(&arr[i + 1].get());
    EXPECT_GE(b - a, cache_line_size);
  }
}

TEST(Align, PaddedAccessors) {
  padded<int> p(42);
  EXPECT_EQ(p.get(), 42);
  *p = 7;
  EXPECT_EQ(p.get(), 7);
}

// ---- rng --------------------------------------------------------------------

TEST(Rng, DeterministicPerSeed) {
  xorshift a(123), b(123), c(456);
  bool all_equal = true, any_diff = false;
  for (int i = 0; i < 1000; ++i) {
    const auto va = a.next();
    all_equal &= (va == b.next());
    any_diff |= (va != c.next());
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff);
}

TEST(Rng, RangeBounds) {
  xorshift r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_range(17), 17u);
  }
  EXPECT_EQ(r.next_range(0), 0u);
  EXPECT_EQ(r.next_range(1), 0u);
}

TEST(Rng, DoubleInUnitInterval) {
  xorshift r(99);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ZeroSeedStillProducesValues) {
  xorshift r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(r.next());
  EXPECT_GT(seen.size(), 90u);
}

// ---- backoff ----------------------------------------------------------------

TEST(Backoff, ExpWindowGrowsAndCaps) {
  exp_backoff bo({.min_spins = 4, .max_spins = 64, .multiplier = 2});
  xorshift r(1);
  EXPECT_EQ(bo.window(), 4u);
  for (int i = 0; i < 10; ++i) bo.pause(r);
  EXPECT_EQ(bo.window(), 64u);
  bo.reset();
  EXPECT_EQ(bo.window(), 4u);
}

TEST(Backoff, FibWindowFollowsFibonacci) {
  fib_backoff bo({.min_spins = 8, .max_spins = 1000});
  xorshift r(1);
  EXPECT_EQ(bo.window(), 8u);
  bo.pause(r);  // 8 -> 8 (0+8)
  EXPECT_EQ(bo.window(), 8u);
  bo.pause(r);  // -> 16
  EXPECT_EQ(bo.window(), 16u);
  bo.pause(r);  // -> 24
  EXPECT_EQ(bo.window(), 24u);
  bo.pause(r);  // -> 40
  EXPECT_EQ(bo.window(), 40u);
  for (int i = 0; i < 20; ++i) bo.pause(r);
  EXPECT_EQ(bo.window(), 1000u);
}

// ---- stats ------------------------------------------------------------------

TEST(Stats, SummarizeBasics) {
  const auto s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // classic population-stddev example
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.stddev_pct(), 40.0);
}

TEST(Stats, SummarizeEmptyAndZeroMean) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.stddev_pct(), 0.0);
  const auto z = summarize({0.0, 0.0});
  EXPECT_DOUBLE_EQ(z.stddev_pct(), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(Stats, HistogramBucketsAndOverflow) {
  histogram h(4);
  h.add(0);
  h.add(1);
  h.add(1);
  h.add(100);  // overflow bucket
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Stats, WelfordMatchesBatch) {
  running_stats rs;
  std::vector<double> xs;
  xorshift r(5);
  for (int i = 0; i < 500; ++i) {
    const double x = static_cast<double>(r.next_range(1000));
    rs.add(x);
    xs.push_back(x);
  }
  const auto a = rs.finish();
  const auto b = summarize(xs);
  EXPECT_NEAR(a.mean, b.mean, 1e-9);
  EXPECT_NEAR(a.stddev, b.stddev, 1e-9);
}

// ---- table ------------------------------------------------------------------

TEST(Table, AlignsColumns) {
  text_table t({"name", "value"});
  t.start_row();
  t.add("x");
  t.add(3.14159, 2);
  t.start_row();
  t.add("longer");
  t.add(std::uint64_t{7});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("  name  value"), std::string::npos);
  EXPECT_NE(os.str().find("3.14"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.row(1).at(0), "longer");
}

}  // namespace
}  // namespace cohort
