// Engine and memory-model tests: virtual-time semantics, coherence-state
// transitions, miss counting, waiting (including the lost-wakeup regression)
// and determinism.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/memory.hpp"
#include "sim/task.hpp"

namespace sim {
namespace {

config test_cfg() {
  config c;
  c.clusters = 4;
  return c;
}

TEST(Engine, DelayAdvancesVirtualTime) {
  engine eng(test_cfg());
  auto& t = eng.add_thread(0);
  eng.spawn([](thread_ctx& th) -> task<void> {
    co_await th.eng->delay(1000);
    co_await th.eng->delay(500);
  }(t));
  eng.run();
  EXPECT_EQ(eng.now(), 1500u);
}

TEST(Engine, EventsFireInTimeThenInsertionOrder) {
  engine eng(test_cfg());
  std::vector<int> order;
  auto mk = [&order, &eng](int id, tick d) -> task<void> {
    co_await eng.delay(d);
    order.push_back(id);
  };
  auto& t = eng.add_thread(0);
  (void)t;
  eng.spawn(mk(1, 100));
  eng.spawn(mk(2, 50));
  eng.spawn(mk(3, 100));  // same time as 1, spawned later
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1, 3}));
}

TEST(Engine, HardStopBoundsRun) {
  engine eng(test_cfg());
  auto& t = eng.add_thread(0);
  eng.spawn([](thread_ctx& th) -> task<void> {
    for (;;) co_await th.eng->delay(1000);
  }(t));
  eng.run(10'000);
  EXPECT_LE(eng.now(), 10'000u);
}

TEST(Memory, AtomOpsHaveSequentialSemantics) {
  engine eng(test_cfg());
  auto& t = eng.add_thread(0);
  atom a(eng, 5);
  eng.spawn([](thread_ctx& th, atom& x) -> task<void> {
    EXPECT_EQ(co_await x.load(th), 5u);
    co_await x.store(th, 7);
    EXPECT_EQ(co_await x.exchange(th, 9), 7u);
    EXPECT_EQ(co_await x.fetch_add(th, 3), 9u);
    auto r1 = co_await x.cas(th, 12, 20);
    EXPECT_TRUE(r1.ok);
    auto r2 = co_await x.cas(th, 12, 30);
    EXPECT_FALSE(r2.ok);
    EXPECT_EQ(r2.old_value, 20u);
  }(t, a));
  eng.run();
  EXPECT_EQ(a.peek(), 20u);
}

TEST(Memory, LocalHitVsRemoteMissCosts) {
  engine eng(test_cfg());
  auto& t0 = eng.add_thread(0);
  auto& t1 = eng.add_thread(1);
  atom a(eng, 0);
  // t0 writes (cold), then re-writes (local hit).  t1 then writes: a
  // coherence miss served remotely.
  eng.spawn([](thread_ctx& th, atom& x) -> task<void> {
    co_await x.store(th, 1);
    co_await x.store(th, 2);
  }(t0, a));
  eng.run();
  EXPECT_EQ(eng.memstats.cold_misses, 1u);
  EXPECT_EQ(eng.memstats.coherence_misses, 0u);
  eng.spawn([](thread_ctx& th, atom& x) -> task<void> {
    co_await x.store(th, 3);
  }(t1, a));
  eng.run();
  EXPECT_EQ(eng.memstats.coherence_misses, 1u);
}

TEST(Memory, ReadSharingThenInvalidationFanOut) {
  engine eng(test_cfg());
  auto& t0 = eng.add_thread(0);
  auto& t1 = eng.add_thread(1);
  auto& t2 = eng.add_thread(2);
  atom a(eng, 0);
  eng.spawn([](thread_ctx& th, atom& x) -> task<void> {
    co_await x.store(th, 1);
  }(t0, a));
  eng.run();
  // Two remote readers -> 2 coherence misses; line becomes Shared.
  eng.spawn([](thread_ctx& th, atom& x) -> task<void> {
    (void)co_await x.load(th);
  }(t1, a));
  eng.spawn([](thread_ctx& th, atom& x) -> task<void> {
    (void)co_await x.load(th);
  }(t2, a));
  eng.run();
  EXPECT_EQ(eng.memstats.coherence_misses, 2u);
  // A reader in the owning cluster hits locally.
  auto& t0b = eng.add_thread(0);
  eng.spawn([](thread_ctx& th, atom& x) -> task<void> {
    (void)co_await x.load(th);
  }(t0b, a));
  eng.run();
  EXPECT_EQ(eng.memstats.coherence_misses, 2u);
}

TEST(Memory, WaitUntilWokenByWrite) {
  engine eng(test_cfg());
  auto& waiter = eng.add_thread(0);
  auto& writer = eng.add_thread(1);
  atom a(eng, 0);
  std::uint64_t observed = 0;
  eng.spawn([](thread_ctx& th, atom& x, std::uint64_t& out) -> task<void> {
    out = co_await x.wait_until(
        th, [](std::uint64_t v, std::uint64_t) { return v == 42; }, 0);
  }(waiter, a, observed));
  eng.spawn([](thread_ctx& th, atom& x) -> task<void> {
    co_await th.eng->delay(5000);
    co_await x.store(th, 41);  // spurious wake: pred still false
    co_await th.eng->delay(5000);
    co_await x.store(th, 42);
  }(writer, a));
  eng.run();
  EXPECT_EQ(observed, 42u);
  EXPECT_GE(eng.now(), 10'000u);
}

TEST(Memory, WaitUntilForTimesOut) {
  engine eng(test_cfg());
  auto& waiter = eng.add_thread(0);
  atom a(eng, 0);
  bool timed_out = false;
  eng.spawn([](thread_ctx& th, atom& x, bool& out) -> task<void> {
    auto r = co_await x.wait_until_for(
        th, [](std::uint64_t v, std::uint64_t) { return v == 1; }, 0, 3000);
    out = !r.has_value();
  }(waiter, a, timed_out));
  eng.run();
  EXPECT_TRUE(timed_out);
  EXPECT_GE(eng.now(), 3000u);
}

// Regression: a waiter that loads a stale value and registers while a write
// is in flight must still be woken (wakes fire at write *completion*).
// Ping-pong would hang (engine would drain with a suspended waiter) if the
// wake were scheduled at issue time.
TEST(Memory, PingPongNeverLosesWakeups) {
  engine eng(test_cfg());
  auto& t0 = eng.add_thread(0);
  auto& t1 = eng.add_thread(1);
  atom a(eng, 0);
  int rounds0 = 0, rounds1 = 0;
  auto pinger = [](thread_ctx& th, atom& x, std::uint64_t mine,
                   std::uint64_t other, int& rounds) -> task<void> {
    for (int i = 0; i < 2000; ++i) {
      co_await x.wait_until(
          th, [](std::uint64_t v, std::uint64_t want) { return v == want; },
          mine);
      co_await x.store(th, other);
      ++rounds;
    }
  };
  eng.spawn(pinger(t0, a, 0, 1, rounds0));
  eng.spawn(pinger(t1, a, 1, 0, rounds1));
  eng.run();
  EXPECT_EQ(rounds0, 2000);
  EXPECT_EQ(rounds1, 2000);
}

TEST(Memory, InterconnectQueuesUnderBurst) {
  engine eng(test_cfg());
  // 8 remote transfers issued back-to-back occupy the channel serially.
  const tick t0 = 1000;
  tick last = 0;
  for (int i = 0; i < 8; ++i) last = eng.interconnect_transfer(t0);
  // The 8th transfer starts after 7 service slots of queueing.
  EXPECT_GE(last, t0 + 7 * eng.cfg().interconnect_service +
                      eng.cfg().remote_wire);
  EXPECT_EQ(eng.interconnect_busy_time(),
            8 * eng.cfg().interconnect_service);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    engine eng(test_cfg());
    auto& t0 = eng.add_thread(0);
    auto& t1 = eng.add_thread(2);
    auto a = std::make_unique<atom>(eng, 0);
    auto worker = [](thread_ctx& th, atom& x) -> task<void> {
      for (int i = 0; i < 500; ++i) {
        co_await x.fetch_add(th, 1);
        co_await th.eng->delay(th.rng.next_range(100) + 1);
      }
    };
    eng.spawn(worker(t0, *a));
    eng.spawn(worker(t1, *a));
    eng.run();
    return std::pair<tick, std::uint64_t>{eng.now(),
                                          eng.memstats.coherence_misses};
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(Memory, DatalineChargesWithoutValue) {
  engine eng(test_cfg());
  auto& t0 = eng.add_thread(0);
  auto& t1 = eng.add_thread(1);
  dataline d(eng);
  eng.spawn([](thread_ctx& th, dataline& dl) -> task<void> {
    co_await dl.write(th);
    co_await dl.read(th);
  }(t0, d));
  eng.run();
  const auto before = eng.memstats.coherence_misses;
  eng.spawn([](thread_ctx& th, dataline& dl) -> task<void> {
    co_await dl.write(th);
  }(t1, d));
  eng.run();
  EXPECT_EQ(eng.memstats.coherence_misses, before + 1);
}

}  // namespace
}  // namespace sim
