// The net front-end end to end over loopback (DESIGN.md §6): protocol
// parsing (including pipelined, malformed, and oversized inputs), the
// client, multi-connection concurrency, and clean shutdown.  Runs under the
// ASan/UBSan and TSan CI jobs -- the server's io threads drive the store's
// shard locks concurrently, so a synchronisation bug here is a sanitizer
// report, not a flake.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "kvstore/command.hpp"
#include "net/client.hpp"
#include "net/memcache_proto.hpp"
#include "net/server.hpp"
#include "numa/topology.hpp"
#include "util/rng.hpp"

namespace cohort::net {
namespace {

using kvstore::cmd_status;

// ---- parser unit tests ------------------------------------------------------

parse_event feed_all(request_parser& p, const std::string& bytes) {
  p.feed(bytes.data(), bytes.size());
  return p.next();
}

TEST(Proto, ParsesSimpleCommands) {
  request_parser p;
  parse_event ev = feed_all(p, "get alpha beta\r\n");
  ASSERT_EQ(ev.what, parse_event::kind::request);
  EXPECT_EQ(ev.request.op, text_request::kind::get);
  ASSERT_EQ(ev.request.keys.size(), 2u);
  EXPECT_EQ(ev.request.keys[0], "alpha");
  EXPECT_EQ(ev.request.keys[1], "beta");

  ev = feed_all(p, "delete alpha\r\n");
  ASSERT_EQ(ev.what, parse_event::kind::request);
  EXPECT_EQ(ev.request.op, text_request::kind::del);
  EXPECT_EQ(ev.request.key, "alpha");

  ev = feed_all(p, "stats\r\n");
  EXPECT_EQ(ev.request.op, text_request::kind::stats);
  ev = feed_all(p, "quit\r\n");
  EXPECT_EQ(ev.request.op, text_request::kind::quit);
}

TEST(Proto, SetCarriesDataBlock) {
  request_parser p;
  parse_event ev = feed_all(p, "set k 7 0 5\r\nhello\r\n");
  ASSERT_EQ(ev.what, parse_event::kind::request);
  EXPECT_EQ(ev.request.op, text_request::kind::set);
  EXPECT_EQ(ev.request.key, "k");
  EXPECT_EQ(ev.request.flags, 7u);
  EXPECT_EQ(ev.request.data, "hello");
  EXPECT_FALSE(ev.request.noreply);
}

TEST(Proto, SetBodySpansArbitraryChunks) {
  request_parser p;
  const std::string wire = "set k 0 0 10\r\n0123456789\r\n";
  for (char c : wire) {
    p.feed(&c, 1);
  }
  parse_event ev = p.next();
  ASSERT_EQ(ev.what, parse_event::kind::request);
  EXPECT_EQ(ev.request.data, "0123456789");
  EXPECT_EQ(p.next().what, parse_event::kind::need_more);
}

TEST(Proto, PipelinedRequestsYieldInOrder) {
  request_parser p;
  const std::string wire = "set a 0 0 1\r\nx\r\nget a\r\ndelete a noreply\r\n";
  p.feed(wire.data(), wire.size());
  parse_event ev = p.next();
  ASSERT_EQ(ev.what, parse_event::kind::request);
  EXPECT_EQ(ev.request.op, text_request::kind::set);
  ev = p.next();
  ASSERT_EQ(ev.what, parse_event::kind::request);
  EXPECT_EQ(ev.request.op, text_request::kind::get);
  ev = p.next();
  ASSERT_EQ(ev.what, parse_event::kind::request);
  EXPECT_EQ(ev.request.op, text_request::kind::del);
  EXPECT_TRUE(ev.request.noreply);
  EXPECT_EQ(p.next().what, parse_event::kind::need_more);
}

TEST(Proto, MalformedCommandsReportAndResync) {
  request_parser p;
  parse_event ev = feed_all(p, "frobnicate k\r\n");
  ASSERT_EQ(ev.what, parse_event::kind::error);
  EXPECT_EQ(ev.reply, "ERROR\r\n");

  ev = feed_all(p, "set k 0 0 nan\r\n");
  ASSERT_EQ(ev.what, parse_event::kind::error);
  EXPECT_EQ(ev.reply.rfind("CLIENT_ERROR", 0), 0u);

  // The parser resynchronises: a good request still parses afterwards.
  ev = feed_all(p, "get k\r\n");
  EXPECT_EQ(ev.what, parse_event::kind::request);
}

TEST(Proto, BadDataChunkTerminatorIsReported) {
  request_parser p;
  parse_event ev = feed_all(p, "set k 0 0 5\r\nhelloXXget k\r\n");
  ASSERT_EQ(ev.what, parse_event::kind::error);
  EXPECT_EQ(ev.reply, "CLIENT_ERROR bad data chunk\r\n");
}

TEST(Proto, OversizedValueIsSwallowedInChunks) {
  request_parser p({.max_value_bytes = 16, .max_line_bytes = 8192});
  p.feed("set big 0 0 64\r\n", 16);
  parse_event ev = p.next();
  EXPECT_EQ(ev.what, parse_event::kind::need_more);  // swallowing
  const std::string chunk(33, 'x');
  p.feed(chunk.data(), chunk.size());
  EXPECT_EQ(p.next().what, parse_event::kind::need_more);
  EXPECT_LT(p.buffered(), 8u);  // discarded, not accreted
  p.feed(chunk.data(), chunk.size());  // 66 bytes total = data + CRLF
  ev = p.next();
  ASSERT_EQ(ev.what, parse_event::kind::error);
  EXPECT_EQ(ev.reply, reply_too_large);
  // The stream stays framed: the next command parses.
  ev = feed_all(p, "version\r\n");
  EXPECT_EQ(ev.what, parse_event::kind::request);
}

TEST(Proto, TooManyGetKeysIsRefused) {
  request_parser p({.max_value_bytes = 1024, .max_line_bytes = 8192,
                    .max_get_keys = 4});
  parse_event ev = feed_all(p, "get a b c d\r\n");
  ASSERT_EQ(ev.what, parse_event::kind::request);
  EXPECT_EQ(ev.request.keys.size(), 4u);
  ev = feed_all(p, "get a b c d e\r\n");
  ASSERT_EQ(ev.what, parse_event::kind::error);
  EXPECT_EQ(ev.reply, "CLIENT_ERROR too many keys in get\r\n");
  // Resynchronised: the next request parses.
  ev = feed_all(p, "get a\r\n");
  EXPECT_EQ(ev.what, parse_event::kind::request);
}

TEST(Proto, UnterminatedLinePastCapIsFatal) {
  request_parser p({.max_value_bytes = 1024, .max_line_bytes = 32});
  const std::string junk(100, 'a');
  parse_event ev = feed_all(p, junk);
  ASSERT_EQ(ev.what, parse_event::kind::fatal_error);
  EXPECT_EQ(ev.reply.rfind("CLIENT_ERROR", 0), 0u);
}

TEST(Proto, MalformedCorpusByteAtATimeNeverWedges) {
  // A fixed corpus of hostile inputs -- truncations, embedded NULs, bad
  // counts, bare CR/LF, overlong tokens, negative and huge sizes -- fed one
  // byte at a time (the short-read worst case).  The parser must never
  // crash, must classify every corpus entry as an error, and must stay
  // framed: after each entry a well-formed request still parses.
  const std::string corpus[] = {
      "\r\n",
      "\n",
      "get\r\n",
      "set k\r\n",
      "set k 0 0\r\n",
      "set k 0 0 -1\r\n",
      "set k 0 0 99999999999999999999\r\n",
      "set k 0 0 5\r\nab\rcd\r\n",
      "set k 0 0 0\r\nx\r\n",
      "delete\r\n",
      "get \r\n",
      std::string("get k\0y\r\n", 9),
      "SET K 0 0 1\r\nx\r\n",
      "set k 0 0 1 yesreply\r\nx\r\n",
      "   \r\n",
      "stats extra args here\r\n",
  };
  for (const std::string& input : corpus) {
    request_parser p({.max_value_bytes = 64, .max_line_bytes = 128});
    bool saw_error = false;
    for (char ch : input) {
      p.feed(&ch, 1);
      for (;;) {
        const parse_event ev = p.next();
        if (ev.what == parse_event::kind::need_more) break;
        if (ev.what == parse_event::kind::error ||
            ev.what == parse_event::kind::fatal_error) {
          saw_error = true;
          continue;
        }
        // A corpus entry that happens to parse (e.g. zero-byte set) is
        // fine -- the point is no crash and no wedge -- but it must be a
        // complete request, never garbage.
        EXPECT_EQ(ev.what, parse_event::kind::request);
      }
      if (saw_error) break;  // fatal errors stop consuming; don't loop
    }
    // Resync check on non-fatal streams: a fresh parser-visible request
    // must still go through after the noise.  The extra CRLF terminates
    // any dangling partial line the entry left behind (one more error at
    // most), which is exactly how a real client would resynchronise.
    request_parser q({.max_value_bytes = 64, .max_line_bytes = 128});
    const std::string noise_then_good = input + "\r\nget resync\r\n";
    bool parsed_good = false;
    for (char ch : noise_then_good) {
      q.feed(&ch, 1);
      for (;;) {
        const parse_event ev = q.next();
        if (ev.what == parse_event::kind::need_more) break;
        if (ev.what == parse_event::kind::fatal_error) goto next_entry;
        if (ev.what == parse_event::kind::request &&
            !ev.request.keys.empty() && ev.request.keys[0] == "resync")
          parsed_good = true;
      }
    }
    EXPECT_TRUE(parsed_good) << "no resync after: " << input;
  next_entry:;
  }
}

// ---- server + client over loopback ------------------------------------------

struct server_fixture {
  std::unique_ptr<kvstore::any_sharded_store> store;
  std::unique_ptr<kv_server> server;

  explicit server_fixture(const std::string& lock = "C-TKT-TKT",
                          unsigned io_threads = 2,
                          std::size_t max_value = 1 << 20) {
    numa::set_system_topology(numa::topology::synthetic(2));
    store = kvstore::make_any_sharded_store(lock, {.shards = 4});
    server_config cfg;
    cfg.io_threads = io_threads;
    cfg.limits.max_value_bytes = max_value;
    server = std::make_unique<kv_server>(*store, cfg);
    std::string err;
    if (!server->start(&err)) throw std::runtime_error(err);
  }
  ~server_fixture() {
    if (server) server->stop();
  }
};

TEST(Server, GetSetDeleteStatsRoundTrip) {
  server_fixture f;
  memcache_client cl;
  ASSERT_TRUE(cl.connect("127.0.0.1", f.server->port())) << cl.last_error();

  EXPECT_EQ(cl.get("nope", nullptr), cmd_status::miss);
  EXPECT_EQ(cl.set("k", "value-1"), cmd_status::stored);
  std::string out;
  EXPECT_EQ(cl.get("k", &out), cmd_status::hit);
  EXPECT_EQ(out, "value-1");
  EXPECT_EQ(cl.del("k"), cmd_status::deleted);
  EXPECT_EQ(cl.del("k"), cmd_status::not_found);

  std::vector<std::pair<std::string, std::string>> st;
  ASSERT_TRUE(cl.stats(&st)) << cl.last_error();
  bool saw_get = false, saw_items = false;
  for (const auto& [k, v] : st) {
    if (k == "cmd_get") saw_get = true;
    if (k == "curr_items") saw_items = true;
  }
  EXPECT_TRUE(saw_get);
  EXPECT_TRUE(saw_items);

  std::string ver;
  EXPECT_TRUE(cl.version(&ver));
  cl.quit();
}

TEST(Server, BinaryValuesSurviveRoundTrip) {
  server_fixture f;
  memcache_client cl;
  ASSERT_TRUE(cl.connect("127.0.0.1", f.server->port()));
  std::string blob;
  cohort::xorshift rng(5);
  for (int i = 0; i < 1000; ++i)
    blob.push_back(static_cast<char>(rng.next() & 0xff));
  EXPECT_EQ(cl.set("blob", blob), cmd_status::stored);
  std::string out;
  EXPECT_EQ(cl.get("blob", &out), cmd_status::hit);
  EXPECT_EQ(out, blob);
  cl.quit();
}

TEST(Server, PipelinedRequestsAnswerInOrder) {
  server_fixture f;
  memcache_client cl;
  ASSERT_TRUE(cl.connect("127.0.0.1", f.server->port()));
  ASSERT_TRUE(cl.send_raw("set p 0 0 3\r\nabc\r\n"
                          "get p\r\n"
                          "get p missing\r\n"
                          "delete p\r\n"
                          "delete p\r\n"));
  std::string line, data;
  ASSERT_TRUE(cl.read_line(&line));
  EXPECT_EQ(line, "STORED");
  ASSERT_TRUE(cl.read_line(&line));
  EXPECT_EQ(line, "VALUE p 0 3");
  ASSERT_TRUE(cl.read_exact(5, &data));
  EXPECT_EQ(data, "abc\r\n");
  ASSERT_TRUE(cl.read_line(&line));
  EXPECT_EQ(line, "END");
  // multi-get: only the present key comes back
  ASSERT_TRUE(cl.read_line(&line));
  EXPECT_EQ(line, "VALUE p 0 3");
  ASSERT_TRUE(cl.read_exact(5, &data));
  ASSERT_TRUE(cl.read_line(&line));
  EXPECT_EQ(line, "END");
  ASSERT_TRUE(cl.read_line(&line));
  EXPECT_EQ(line, "DELETED");
  ASSERT_TRUE(cl.read_line(&line));
  EXPECT_EQ(line, "NOT_FOUND");
  cl.quit();
}

TEST(Server, NoreplySuppressesResponses) {
  server_fixture f;
  memcache_client cl;
  ASSERT_TRUE(cl.connect("127.0.0.1", f.server->port()));
  // Two noreply ops then a get: the first reply line on the wire must be
  // the get's VALUE.
  ASSERT_TRUE(cl.send_raw("set n 0 0 2 noreply\r\nhi\r\n"
                          "set n2 0 0 2 noreply\r\nho\r\n"
                          "get n\r\n"));
  std::string line;
  ASSERT_TRUE(cl.read_line(&line));
  EXPECT_EQ(line, "VALUE n 0 2");
  std::string data;
  ASSERT_TRUE(cl.read_exact(4, &data));
  ASSERT_TRUE(cl.read_line(&line));
  EXPECT_EQ(line, "END");
  cl.quit();
}

TEST(Server, OversizedAndMalformedErrorPaths) {
  server_fixture f("C-TKT-TKT", 2, /*max_value=*/1024);
  memcache_client cl;
  ASSERT_TRUE(cl.connect("127.0.0.1", f.server->port()));

  const std::string big(4096, 'x');
  EXPECT_EQ(cl.set("big", big), cmd_status::too_large);
  EXPECT_EQ(cl.get("big", nullptr), cmd_status::miss);
  // The connection survives and still serves.
  EXPECT_EQ(cl.set("ok", "fine"), cmd_status::stored);

  std::string line;
  ASSERT_TRUE(cl.send_raw("warble\r\n"));
  ASSERT_TRUE(cl.read_line(&line));
  EXPECT_EQ(line, "ERROR");
  ASSERT_TRUE(cl.send_raw("set broken 0 0 notanumber\r\n"));
  ASSERT_TRUE(cl.read_line(&line));
  EXPECT_EQ(line.rfind("CLIENT_ERROR", 0), 0u);

  EXPECT_EQ(cl.set("still-ok", "yes"), cmd_status::stored);
  const server_counters sc = f.server->counters();
  EXPECT_GE(sc.protocol_errors, 3u);
  cl.quit();
}

TEST(Server, FlushAllEmptiesTheStore) {
  server_fixture f;
  memcache_client cl;
  ASSERT_TRUE(cl.connect("127.0.0.1", f.server->port()));
  for (int i = 0; i < 50; ++i)
    ASSERT_EQ(cl.set("f" + std::to_string(i), "v"), cmd_status::stored);
  EXPECT_EQ(cl.flush(), cmd_status::ok);
  EXPECT_EQ(cl.get("f0", nullptr), cmd_status::miss);
  EXPECT_EQ(f.store->size(), 0u);
  cl.quit();
}

TEST(Server, ManyConcurrentConnections) {
  server_fixture f("C-TKT-TKT", 3);
  constexpr int kClients = 8;
  constexpr int kOps = 300;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      memcache_client cl;
      if (!cl.connect("127.0.0.1", f.server->port())) {
        ++failures;
        return;
      }
      cohort::xorshift rng(77 + t);
      for (int i = 0; i < kOps; ++i) {
        const std::string key =
            "c" + std::to_string(t) + "-" + std::to_string(rng.next_range(32));
        switch (rng.next_range(3)) {
          case 0:
            if (cl.set(key, "v" + std::to_string(i)) != cmd_status::stored)
              ++failures;
            break;
          case 1: {
            const cmd_status st = cl.get(key, nullptr);
            if (st != cmd_status::hit && st != cmd_status::miss) ++failures;
            break;
          }
          default: {
            const cmd_status st = cl.del(key);
            if (st != cmd_status::deleted && st != cmd_status::not_found)
              ++failures;
            break;
          }
        }
      }
      // Plain close, not quit: every op round-tripped, so the server has
      // processed exactly kOps commands for this connection by now (a quit
      // has no reply to synchronise on and would make the count racy).
      cl.close();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  const server_counters sc = f.server->counters();
  EXPECT_EQ(sc.connections, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(sc.protocol_errors, 0u);
  EXPECT_EQ(sc.commands, static_cast<std::uint64_t>(kClients) * kOps);
}

TEST(Server, HalfCloseDrainsAllBufferedReplies) {
  // A pipelining client that bursts requests and then shuts down its write
  // side must still receive every reply -- the reply volume here far
  // exceeds a socket buffer, so the server has to keep draining through
  // write readiness after seeing EOF.
  server_fixture f;
  memcache_client cl;
  ASSERT_TRUE(cl.connect("127.0.0.1", f.server->port()));
  const std::string value(64 * 1024, 'v');
  ASSERT_EQ(cl.set("big", value), cmd_status::stored);

  constexpr int kGets = 200;
  std::string burst;
  for (int i = 0; i < kGets; ++i) burst += "get big\r\n";
  ASSERT_TRUE(cl.send_raw(burst));
  cl.shutdown_write();

  const std::string header =
      "VALUE big 0 " + std::to_string(value.size());
  for (int i = 0; i < kGets; ++i) {
    std::string line, data;
    ASSERT_TRUE(cl.read_line(&line)) << "reply " << i << ": "
                                     << cl.last_error();
    ASSERT_EQ(line, header) << "reply " << i;
    ASSERT_TRUE(cl.read_exact(value.size() + 2, &data));
    ASSERT_TRUE(cl.read_line(&line));
    ASSERT_EQ(line, "END") << "reply " << i;
  }
  // After the last reply the server closes its side too.
  std::string extra;
  EXPECT_FALSE(cl.read_line(&extra));
}

TEST(Server, OutputHighWaterThrottlesWithoutLosingReplies) {
  // Small value cap -> small high-water mark; a burst whose replies far
  // exceed it exercises the park/resume path (reads disabled while the
  // buffer is over the mark, parser work resumed as writes drain).
  server_fixture f("C-TKT-TKT", 2, /*max_value=*/1024);
  memcache_client cl;
  ASSERT_TRUE(cl.connect("127.0.0.1", f.server->port()));
  const std::string value(1024, 'w');
  ASSERT_EQ(cl.set("k", value), cmd_status::stored);

  constexpr int kGets = 2000;  // ~2 MB of replies vs ~263 KB high water
  std::string burst;
  for (int i = 0; i < kGets; ++i) burst += "get k\r\n";
  ASSERT_TRUE(cl.send_raw(burst));
  cl.shutdown_write();

  int got = 0;
  for (int i = 0; i < kGets; ++i) {
    std::string line, data;
    ASSERT_TRUE(cl.read_line(&line)) << "reply " << i;
    ASSERT_EQ(line, "VALUE k 0 1024");
    ASSERT_TRUE(cl.read_exact(value.size() + 2, &data));
    ASSERT_TRUE(cl.read_line(&line));
    ASSERT_EQ(line, "END");
    ++got;
  }
  EXPECT_EQ(got, kGets);
  std::string extra;
  EXPECT_FALSE(cl.read_line(&extra));
}

TEST(Server, CleanShutdownWithLiveConnections) {
  auto f = std::make_unique<server_fixture>();
  memcache_client cl;
  ASSERT_TRUE(cl.connect("127.0.0.1", f->server->port()));
  ASSERT_EQ(cl.set("k", "v"), cmd_status::stored);
  f->server->stop();  // with the connection still open
  EXPECT_FALSE(f->server->running());
  {
    // The engine is intact after shutdown.  (Scoped: a handle must not
    // outlive its store.)
    kvstore::command_executor ex(*f->store);
    std::string out;
    EXPECT_EQ(ex.get("k", &out), cmd_status::hit);
    EXPECT_EQ(out, "v");
  }
  f.reset();  // destructor path: no double-stop issues
}

TEST(Server, PollFallbackBackendServes) {
  // Force the poll(2) backend through the environment and run a round trip
  // so both poller implementations stay covered.
  ::setenv("COHORT_NET_POLL", "1", 1);
  {
    server_fixture f;
    EXPECT_FALSE(poller().using_epoll());
    memcache_client cl;
    ASSERT_TRUE(cl.connect("127.0.0.1", f.server->port()));
    EXPECT_EQ(cl.set("p", "fallback"), cmd_status::stored);
    std::string out;
    EXPECT_EQ(cl.get("p", &out), cmd_status::hit);
    EXPECT_EQ(out, "fallback");
    cl.quit();
  }
  ::unsetenv("COHORT_NET_POLL");
}

}  // namespace
}  // namespace cohort::net
