// Abortable lock tests (paper §3.6): timeouts fire, aborts never deadlock
// the lock, and the viable-successor guarantee holds under churn.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "cohort/locks.hpp"
#include "numa/topology.hpp"

namespace cohort {
namespace {

using namespace std::chrono_literals;

class AbortableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    numa::set_system_topology(numa::topology::synthetic(2));
    numa::reset_round_robin_for_test();
  }
};

TEST_F(AbortableTest, AclhTimesOutWhileHeld) {
  aclh_lock lock;
  aclh_lock::context holder;
  lock.lock(holder);
  std::thread waiter([&] {
    aclh_lock::context ctx;
    const auto t0 = lock_clock::now();
    EXPECT_FALSE(lock.try_lock(ctx, deadline_after(5ms)));
    EXPECT_GE(lock_clock::now() - t0, 4ms);
    // After an abort the context must be reusable.
    EXPECT_TRUE(lock.try_lock(ctx, deadline_never()));
    lock.unlock(ctx);
  });
  std::this_thread::sleep_for(20ms);
  lock.unlock(holder);
  waiter.join();
}

template <typename Lock>
void expect_timeout_then_acquire(Lock& lock) {
  typename Lock::context holder;
  ASSERT_TRUE(lock.try_lock(holder, deadline_never()));
  std::atomic<bool> timed_out{false};
  std::thread waiter([&] {
    numa::set_thread_cluster(1);
    typename Lock::context ctx;
    timed_out = !lock.try_lock(ctx, deadline_after(5ms));
    if (!timed_out) lock.unlock(ctx);
  });
  waiter.join();
  EXPECT_TRUE(timed_out.load());
  lock.unlock(holder);
  // Lock must still be acquirable after the abort.
  typename Lock::context again;
  ASSERT_TRUE(lock.try_lock(again, deadline_after(100ms)));
  lock.unlock(again);
}

TEST_F(AbortableTest, ACBoBoTimesOut) {
  numa::set_thread_cluster(0);
  a_c_bo_bo_lock lock;
  expect_timeout_then_acquire(lock);
  EXPECT_GE(lock.stats().local_timeouts + lock.stats().global_timeouts, 1u);
}

TEST_F(AbortableTest, ACBoClhTimesOut) {
  numa::set_thread_cluster(0);
  a_c_bo_clh_lock lock;
  expect_timeout_then_acquire(lock);
}

// The §3.6 hazard: waiters abort after the releaser saw a non-empty cohort.
// Hammer the lock with threads using tiny random patience and verify the
// count is exact and the lock ends up free.
template <typename Lock>
void abort_storm(unsigned pass_limit) {
  Lock lock{pass_policy{.limit = pass_limit}, 2};
  std::atomic<long> acquired{0};
  long counter = 0;
  constexpr int kThreads = 6, kIters = 1200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      numa::set_thread_cluster(static_cast<unsigned>(t % 2));
      xorshift rng(static_cast<std::uint64_t>(t) + 17);
      typename Lock::context ctx;
      for (int i = 0; i < kIters; ++i) {
        const auto patience =
            std::chrono::microseconds(rng.next_range(60));
        if (lock.try_lock(ctx, deadline_after(patience))) {
          ++counter;
          acquired.fetch_add(1, std::memory_order_relaxed);
          lock.unlock(ctx);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, acquired.load());
  const auto s = lock.stats();
  EXPECT_EQ(s.acquisitions, static_cast<std::uint64_t>(acquired.load()));
  // No deadlock: a fresh acquisition succeeds immediately.
  typename Lock::context ctx;
  ASSERT_TRUE(lock.try_lock(ctx, deadline_after(1s)));
  lock.unlock(ctx);
}

TEST_F(AbortableTest, ACBoBoAbortStorm) { abort_storm<a_c_bo_bo_lock>(64); }
TEST_F(AbortableTest, ACBoClhAbortStorm) { abort_storm<a_c_bo_clh_lock>(64); }
TEST_F(AbortableTest, ACBoBoAbortStormTinyBatches) {
  abort_storm<a_c_bo_bo_lock>(1);
}
TEST_F(AbortableTest, ACBoClhAbortStormTinyBatches) {
  abort_storm<a_c_bo_clh_lock>(1);
}

TEST_F(AbortableTest, AclhAbortStorm) {
  aclh_lock lock;
  std::atomic<long> acquired{0};
  long counter = 0;
  constexpr int kThreads = 6, kIters = 1200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      xorshift rng(static_cast<std::uint64_t>(t) + 5);
      aclh_lock::context ctx;
      for (int i = 0; i < kIters; ++i) {
        const auto patience =
            std::chrono::microseconds(rng.next_range(60));
        if (lock.try_lock(ctx, deadline_after(patience))) {
          ++counter;
          acquired.fetch_add(1, std::memory_order_relaxed);
          lock.unlock(ctx);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, acquired.load());
  aclh_lock::context ctx;
  ASSERT_TRUE(lock.try_lock(ctx, deadline_after(1s)));
  lock.unlock(ctx);
}

TEST_F(AbortableTest, HandoffFailureAccounting) {
  // Every acquisition is accounted exactly once: it either took the global
  // lock itself or inherited it through a successful local handoff.  (A
  // handoff *failure* releases the global lock, so its successor shows up in
  // global_acquires -- failures are deliberately not part of the identity.)
  numa::set_thread_cluster(0);
  a_c_bo_clh_lock lock;
  constexpr int kThreads = 6, kIters = 800;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      numa::set_thread_cluster(static_cast<unsigned>(t % 2));
      xorshift rng(static_cast<std::uint64_t>(t) + 99);
      a_c_bo_clh_lock::context ctx;
      for (int i = 0; i < kIters; ++i) {
        const auto patience =
            std::chrono::microseconds(rng.next_range(40) + 1);
        if (lock.try_lock(ctx, deadline_after(patience))) lock.unlock(ctx);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto s = lock.stats();
  EXPECT_EQ(s.global_acquires + s.local_handoffs, s.acquisitions);
}

}  // namespace
}  // namespace cohort
