// Behavioural tests of the compact NUMA locks (locks/cna.hpp,
// locks/reciprocating.hpp): CNA's same-socket preference and its
// pass_policy starvation bound, Reciprocating's arrival-reversed wave order
// and constant-space claim -- all as deterministic single-outcome
// scenarios, orchestrated by parking waiter threads on flags and watching
// the holder-side queue-introspection hooks until each enqueue has
// completed.  Plus mutual-exclusion sweeps over both locks and their -fp
// twins through the registry.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "cohort/locks.hpp"
#include "locks/registry.hpp"
#include "numa/topology.hpp"

namespace cohort {
namespace {

class CompactLockTest : public ::testing::Test {
 protected:
  void SetUp() override {
    numa::set_system_topology(numa::topology::synthetic(2));
    numa::reset_round_robin_for_test();
  }
};

// A waiter parked on a flag: released by the coordinator, then acquires the
// lock, appends its tag to the shared order log (under the lock -- the lock
// is the only synchronisation), and releases.
template <typename Lock>
struct tagged_waiter {
  Lock& lock;
  unsigned cluster;
  char tag;
  std::vector<char>& order;
  std::atomic<bool> go{false};
  std::thread thread;

  tagged_waiter(Lock& l, unsigned c, char t, std::vector<char>& o)
      : lock(l), cluster(c), tag(t), order(o) {
    thread = std::thread([this] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      numa::set_thread_cluster(cluster);
      typename Lock::context ctx;
      lock.lock(ctx);
      order.push_back(tag);
      lock.unlock(ctx);
    });
  }
  void release() { go.store(true, std::memory_order_release); }
  void join() { thread.join(); }
};

TEST_F(CompactLockTest, CnaSoloAcquiresAreAllGlobal) {
  numa::set_thread_cluster(0);
  cna_lock lock;
  cna_lock::context ctx;
  for (int i = 0; i < 10; ++i) {
    lock.lock(ctx);
    EXPECT_EQ(lock.unlock(ctx), release_kind::global);
  }
  const cohort_stats s = lock.stats();
  EXPECT_EQ(s.acquisitions, 10u);
  EXPECT_EQ(s.global_acquires, 10u);
  EXPECT_EQ(s.local_handoffs, 0u);
  EXPECT_EQ(s.deferrals, 0u);
}

TEST_F(CompactLockTest, CnaPrefersSameSocketSuccessor) {
  // Queue built deterministically behind the holder: remote R first, then
  // local L.  The release must skip R, defer it, and admit L; L's release
  // promotes the deferred list and admits R.  Single admissible outcome:
  // L before R despite R arriving first.
  numa::set_thread_cluster(0);
  cna_lock lock(pass_policy{.limit = 64});
  cna_lock::context holder;
  lock.lock(holder);

  std::vector<char> order;
  tagged_waiter<cna_lock> r(lock, /*cluster=*/1, 'R', order);
  tagged_waiter<cna_lock> l(lock, /*cluster=*/0, 'L', order);

  r.release();
  while (lock.queued_waiters(holder) != 1) std::this_thread::yield();
  l.release();
  while (lock.queued_waiters(holder) != 2) std::this_thread::yield();

  EXPECT_EQ(lock.unlock(holder), release_kind::local);
  r.join();
  l.join();

  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 'L');
  EXPECT_EQ(order[1], 'R');
  const cohort_stats s = lock.stats();
  EXPECT_EQ(s.acquisitions, 3u);
  EXPECT_EQ(s.deferrals, 1u);       // R parked on the secondary list once
  EXPECT_EQ(s.local_handoffs, 1u);  // L continued the holder's batch
  // Batch starts: the holder's fresh acquire and R's forced new batch.
  EXPECT_EQ(s.global_acquires, 2u);
}

TEST_F(CompactLockTest, CnaStarvationBoundForcesRemoteAdmission) {
  // pass_policy{.limit = 1}: after one same-socket handoff the batch must
  // end, so the deferred remote waiter is spliced back in *front* of the
  // remaining local waiter.  Queue behind the holder: R (remote), L1, L2
  // (local).  Forced order: L1 (one handoff), then R (bound hit), then L2.
  numa::set_thread_cluster(0);
  cna_lock lock(pass_policy{.limit = 1});
  cna_lock::context holder;
  lock.lock(holder);

  std::vector<char> order;
  tagged_waiter<cna_lock> r(lock, 1, 'R', order);
  tagged_waiter<cna_lock> l1(lock, 0, '1', order);
  tagged_waiter<cna_lock> l2(lock, 0, '2', order);

  r.release();
  while (lock.queued_waiters(holder) != 1) std::this_thread::yield();
  l1.release();
  while (lock.queued_waiters(holder) != 2) std::this_thread::yield();
  l2.release();
  while (lock.queued_waiters(holder) != 3) std::this_thread::yield();

  EXPECT_EQ(lock.unlock(holder), release_kind::local);
  r.join();
  l1.join();
  l2.join();

  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], '1');  // same-socket preference, batch length 1
  EXPECT_EQ(order[1], 'R');  // starvation bound: remote spliced to the front
  EXPECT_EQ(order[2], '2');
  const cohort_stats s = lock.stats();
  EXPECT_EQ(s.acquisitions, 4u);
  EXPECT_EQ(s.deferrals, 1u);
  EXPECT_EQ(s.local_handoffs, 1u);   // only L1; the bound capped the batch
  EXPECT_EQ(s.global_acquires, 3u);  // holder, R, L2 all started batches
}

TEST_F(CompactLockTest, ReciprocatingSoloAcquiresAreAllGlobal) {
  numa::set_thread_cluster(0);
  reciprocating_lock lock;
  reciprocating_lock::context ctx;
  for (int i = 0; i < 10; ++i) {
    lock.lock(ctx);
    EXPECT_EQ(lock.unlock(ctx), release_kind::global);
  }
  const cohort_stats s = lock.stats();
  EXPECT_EQ(s.acquisitions, 10u);
  EXPECT_EQ(s.global_acquires, 10u);
  EXPECT_EQ(s.local_handoffs, 0u);
}

TEST_F(CompactLockTest, ReciprocatingWaveDrainsInArrivalReversedOrder) {
  // A, B, C accumulate on the entry segment (in that arrival order) while
  // the holder works.  The release detaches the segment as one wave, which
  // must drain newest-first: C, B, A.
  numa::set_thread_cluster(0);
  reciprocating_lock lock;
  reciprocating_lock::context holder;
  lock.lock(holder);

  std::vector<char> order;
  tagged_waiter<reciprocating_lock> a(lock, 0, 'A', order);
  tagged_waiter<reciprocating_lock> b(lock, 1, 'B', order);
  tagged_waiter<reciprocating_lock> c(lock, 0, 'C', order);

  a.release();
  while (lock.entry_segment_length() != 1) std::this_thread::yield();
  b.release();
  while (lock.entry_segment_length() != 2) std::this_thread::yield();
  c.release();
  while (lock.entry_segment_length() != 3) std::this_thread::yield();

  EXPECT_EQ(lock.unlock(holder), release_kind::local);
  a.join();
  b.join();
  c.join();

  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 'C');
  EXPECT_EQ(order[1], 'B');
  EXPECT_EQ(order[2], 'A');
  const cohort_stats s = lock.stats();
  EXPECT_EQ(s.acquisitions, 4u);
  // Wave starts count as global acquires: the holder's fresh acquire and
  // C's wave head; B and A were within-wave admissions.
  EXPECT_EQ(s.global_acquires, 2u);
  EXPECT_EQ(s.local_handoffs, 2u);
  EXPECT_DOUBLE_EQ(s.avg_batch(), 2.0);
}

TEST_F(CompactLockTest, ReciprocatingAdmissionDirectionAlternates) {
  // Wave 1 = {C, B, A} (arrival-reversed).  While C holds, D then E arrive
  // and accumulate.  Wave 1 keeps draining (B, A); A's release detaches the
  // next segment, so wave 2 = {E, D} -- again arrival-reversed.  Full
  // deterministic order: C B A E D.
  numa::set_thread_cluster(0);
  reciprocating_lock lock;
  reciprocating_lock::context holder;
  lock.lock(holder);

  std::vector<char> order;
  // C is hand-rolled: it must enqueue *last* (so it heads the wave) and
  // then hold the lock until D and E have accumulated.
  std::atomic<bool> c_go{false};
  std::atomic<bool> c_may_release{false};
  std::thread c_thread([&] {
    while (!c_go.load(std::memory_order_acquire)) std::this_thread::yield();
    numa::set_thread_cluster(0);
    reciprocating_lock::context ctx;
    lock.lock(ctx);
    order.push_back('C');
    while (!c_may_release.load(std::memory_order_acquire))
      std::this_thread::yield();
    lock.unlock(ctx);
  });
  tagged_waiter<reciprocating_lock> a(lock, 0, 'A', order);
  tagged_waiter<reciprocating_lock> b(lock, 1, 'B', order);

  a.release();
  while (lock.entry_segment_length() != 1) std::this_thread::yield();
  b.release();
  while (lock.entry_segment_length() != 2) std::this_thread::yield();
  c_go.store(true, std::memory_order_release);
  while (lock.entry_segment_length() != 3) std::this_thread::yield();

  lock.unlock(holder);  // wave 1 detached: C holds next

  // C is in its critical section (parked on the flag); enqueue D, then E.
  tagged_waiter<reciprocating_lock> d(lock, 0, 'D', order);
  tagged_waiter<reciprocating_lock> e(lock, 1, 'E', order);
  d.release();
  while (lock.entry_segment_length() != 1) std::this_thread::yield();
  e.release();
  while (lock.entry_segment_length() != 2) std::this_thread::yield();

  c_may_release.store(true, std::memory_order_release);
  c_thread.join();
  a.join();
  b.join();
  d.join();
  e.join();

  const std::string got(order.begin(), order.end());
  EXPECT_EQ(got, "CBAED");
}

TEST_F(CompactLockTest, ReciprocatingContextIsConstantSpace) {
  // The paper's headline claim: a thread's footprint is one small context,
  // reused verbatim across acquisitions -- no per-acquisition allocation,
  // no growth under contention.  (Compile-time bound in reciprocating.hpp.)
  EXPECT_LE(sizeof(reciprocating_lock::context), 4 * sizeof(void*));
  reciprocating_lock lock;
  constexpr int kThreads = 4, kIters = 2000;
  long counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      numa::set_thread_cluster(static_cast<unsigned>(t % 2));
      reciprocating_lock::context ctx;  // the thread's entire footprint
      for (int i = 0; i < kIters; ++i) {
        lock.lock(ctx);
        ++counter;
        lock.unlock(ctx);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
  EXPECT_EQ(lock.stats().acquisitions,
            static_cast<std::uint64_t>(kThreads) * kIters);
}

// Registry-level mutual-exclusion sweep: both compact locks and their -fp
// twins, across thread counts and pass limits, counter protected only by
// the lock under test.
struct sweep_case {
  const char* name;
  unsigned threads;
  std::uint64_t pass_limit;
};

class CompactSweepTest : public ::testing::TestWithParam<sweep_case> {
 protected:
  void SetUp() override {
    numa::set_system_topology(numa::topology::synthetic(2));
    numa::reset_round_robin_for_test();
  }
};

TEST_P(CompactSweepTest, MutualExclusionHolds) {
  const sweep_case& p = GetParam();
  auto lock = reg::make_lock(
      p.name, {.clusters = 2, .cohort = {.pass_limit = p.pass_limit}});
  ASSERT_NE(lock, nullptr) << p.name;
  constexpr int kIters = 1500;
  long counter = 0;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < p.threads; ++t) {
    threads.emplace_back([&, t] {
      numa::set_thread_cluster(t % 2);
      auto ctx = lock->make_context();
      for (int i = 0; i < kIters; ++i) {
        lock->lock(ctx);
        ++counter;
        lock->unlock(ctx);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<long>(p.threads) * kIters);
  const auto s = lock->stats();
  ASSERT_TRUE(s.has_value()) << p.name;
  EXPECT_EQ(s->acquisitions,
            static_cast<std::uint64_t>(p.threads) * kIters);
  EXPECT_EQ(s->acquisitions, s->fast_acquires + s->global_acquires +
                                 s->local_handoffs + s->handoff_failures)
      << p.name;
}

INSTANTIATE_TEST_SUITE_P(
    CompactLocks, CompactSweepTest,
    ::testing::Values(sweep_case{"cna", 2, 1}, sweep_case{"cna", 4, 64},
                      sweep_case{"cna-fp", 4, 64},
                      sweep_case{"reciprocating", 2, 64},
                      sweep_case{"reciprocating", 4, 64},
                      sweep_case{"reciprocating-fp", 4, 64}),
    [](const ::testing::TestParamInfo<sweep_case>& info) {
      std::string name = info.param.name;
      for (char& ch : name)
        if (ch == '-') ch = '_';
      return name + "_t" + std::to_string(info.param.threads) + "_p" +
             std::to_string(info.param.pass_limit);
    });

}  // namespace
}  // namespace cohort
