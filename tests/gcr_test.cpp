// Behavioural tests of the GCR admission combinator (cohort/gcr.hpp): the
// passive set's park/unpark ordering (FIFO rotation grants), the no-lost-
// wakeup guarantee across rotations (asserted sharply: everything completes
// with ZERO park-timeout force-admissions, so every park ended in a proper
// grant), the active-set invariants (the sampled set never exceeds a fixed
// target; the machine recovers after a parked waiter cancels itself on
// timeout), the hysteresis tuner's bounds, and the solo stats identity --
// all as deterministic single-outcome scenarios where possible, staged by
// parking waiter threads and watching the combinator's observability hooks
// (active_set / parked_now / admission_stats) until each transition has
// completed.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "cohort/gcr.hpp"
#include "cohort/locks.hpp"
#include "numa/topology.hpp"

namespace cohort {
namespace {

using test_lock = gcr<tas_spin_lock>;

class GcrTest : public ::testing::Test {
 protected:
  void SetUp() override {
    numa::set_system_topology(numa::topology::synthetic(1));
    numa::reset_round_robin_for_test();
  }
};

void spin_until_eq(std::uint32_t want, auto&& get) {
  while (get() != want) std::this_thread::yield();
}

TEST_F(GcrTest, SoloRoundTripsNeverPark) {
  test_lock lock(gcr_policy{.min_active = 2, .max_active = 2});
  test_lock::context ctx;
  for (int i = 0; i < 10; ++i) {
    lock.lock(ctx);
    // A stat-less inner's release frees the whole lock: reported as global.
    EXPECT_EQ(lock.unlock(ctx), release_kind::global);
  }
  const cohort_stats s = lock.stats();
  EXPECT_EQ(s.acquisitions, 10u);
  EXPECT_EQ(s.global_acquires, 10u);
  EXPECT_EQ(s.active_set, 0u);
  EXPECT_EQ(s.active_target, 2u);
  EXPECT_EQ(s.parked, 0u);
  EXPECT_EQ(s.rotations, 0u);
  EXPECT_EQ(lock.admission_stats().park_timeouts, 0u);
}

TEST_F(GcrTest, ActiveSetNeverExceedsTarget) {
  // 6 threads against a fixed target of 2, with the timeout backstop pushed
  // out of reach: the only admissions are proper ones, so a sampled
  // active_set above 2 is a protocol violation, not scheduling noise.
  // Parking is forced deterministically: main holds the lock (one slot),
  // exactly one worker admits into the second slot and blocks on the inner
  // lock, and the remaining five MUST park before main lets go.  (Without
  // the staging, a single-CPU box can run each worker to completion before
  // the next is scheduled and never contend at all.)
  test_lock lock(gcr_policy{.min_active = 2,
                            .max_active = 2,
                            .rotation_interval = 64,
                            .park_timeout_us = 60'000'000});
  constexpr unsigned kThreads = 6;
  constexpr std::uint64_t kIters = 2000;
  std::uint64_t counter = 0;
  std::atomic<std::uint32_t> max_seen{0};
  test_lock::context holder;
  lock.lock(holder);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      test_lock::context ctx;
      for (std::uint64_t i = 0; i < kIters; ++i) {
        lock.lock(ctx);
        ++counter;
        const std::uint32_t a = lock.active_set();
        std::uint32_t m = max_seen.load(std::memory_order_relaxed);
        while (a > m &&
               !max_seen.compare_exchange_weak(m, a,
                                               std::memory_order_relaxed))
          ;
        lock.unlock(ctx);
      }
    });
  spin_until_eq(kThreads - 1, [&] { return lock.parked_now(); });
  ++counter;
  lock.unlock(holder);
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, kThreads * kIters + 1);
  EXPECT_LE(max_seen.load(), 2u);
  EXPECT_EQ(lock.active_set(), 0u);
  const gcr_stats s = lock.admission_stats();
  EXPECT_GE(s.parks, kThreads - 1) << "5 of 6 workers were staged as parked";
  EXPECT_EQ(s.park_timeouts, 0u);
  EXPECT_EQ(lock.stats().acquisitions, kThreads * kIters + 1);
}

TEST_F(GcrTest, RotationGrantsPassiveWaitersInFifoOrder) {
  // Deterministic park/unpark ordering: with target 1 and rotation every
  // release, a holder's unlock must hand its slot to the OLDEST passive
  // waiter.  Stage W1 then W2 behind a held lock; the only admissible
  // completion order is holder, W1, W2.
  test_lock lock(gcr_policy{.min_active = 1,
                            .max_active = 1,
                            .rotation_interval = 1,
                            .park_timeout_us = 60'000'000});
  std::vector<int> order;
  test_lock::context holder;
  lock.lock(holder);
  auto waiter = [&](int tag) {
    return std::thread([&lock, &order, tag] {
      test_lock::context ctx;
      lock.lock(ctx);
      order.push_back(tag);
      lock.unlock(ctx);
    });
  };
  std::thread w1 = waiter(1);
  spin_until_eq(1, [&] { return lock.parked_now(); });
  std::thread w2 = waiter(2);
  spin_until_eq(2, [&] { return lock.parked_now(); });

  order.push_back(0);
  lock.unlock(holder);  // rotation due: slot goes to W1, then W1's to W2
  w1.join();
  w2.join();

  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  const gcr_stats s = lock.admission_stats();
  EXPECT_EQ(s.parks, 2u);
  EXPECT_EQ(s.unparks, 2u);
  EXPECT_EQ(s.rotations, 2u);
  EXPECT_EQ(s.park_timeouts, 0u);
  EXPECT_EQ(lock.active_set(), 0u);
}

TEST_F(GcrTest, NoLostWakeupsAcrossRotation) {
  // 8 threads, target 2, rotations every 8 releases, and a park timeout far
  // beyond the test's runtime.  If any park were lost the run would hang
  // (caught by the test timeout); if any wake were late enough to trip the
  // backstop, park_timeouts would show it.  Completion with zero timeouts
  // proves every one of the thousands of parks ended in a proper grant --
  // through rotation, top-up, or cancellation.
  test_lock lock(gcr_policy{.min_active = 2,
                            .max_active = 2,
                            .rotation_interval = 8,
                            .park_timeout_us = 60'000'000});
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kIters = 500;
  std::uint64_t counter = 0;
  // Stage real parking before the churn (see ActiveSetNeverExceedsTarget):
  // main holds one of the two slots until 7 of the 8 workers are parked.
  test_lock::context holder;
  lock.lock(holder);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      test_lock::context ctx;
      for (std::uint64_t i = 0; i < kIters; ++i) {
        lock.lock(ctx);
        ++counter;
        lock.unlock(ctx);
      }
    });
  spin_until_eq(kThreads - 1, [&] { return lock.parked_now(); });
  ++counter;
  lock.unlock(holder);
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, kThreads * kIters + 1);
  const gcr_stats s = lock.admission_stats();
  EXPECT_GE(s.parks, kThreads - 1);
  EXPECT_EQ(s.park_timeouts, 0u) << "a wake was lost and the backstop fired";
  EXPECT_EQ(lock.active_set(), 0u);
  EXPECT_EQ(lock.parked_now(), 0u);
}

TEST_F(GcrTest, RecoversAfterParkedWaiterCancels) {
  // Active-set recovery: W1 parks behind a held lock whose rotation never
  // fires before W1's short timeout, so W1 cancels itself and force-admits
  // (the liveness backstop).  The set transiently overshoots (2 > target 1)
  // and must shed back to 0; a later waiter (W2, long patience via re-park
  // loops) must still be served through the normal grant path, proving the
  // passive list survived the cancellation intact.
  test_lock lock(gcr_policy{.min_active = 1,
                            .max_active = 1,
                            .rotation_interval = 1,
                            .park_timeout_us = 2'000});
  std::atomic<std::uint32_t> done{0};
  test_lock::context holder;
  lock.lock(holder);

  std::thread w1([&] {
    test_lock::context ctx;
    lock.lock(ctx);  // parks; times out; force-admits; blocks on inner
    done.fetch_add(1);
    lock.unlock(ctx);
  });
  spin_until_eq(1, [&] {
    return static_cast<std::uint32_t>(lock.admission_stats().park_timeouts);
  });
  // W1 has force-admitted past the target: the set overshoots by design.
  EXPECT_EQ(lock.active_set(), 2u);

  std::thread w2([&] {
    test_lock::context ctx;
    lock.lock(ctx);  // set is over target: parks (or re-parks on timeout)
    done.fetch_add(1);
    lock.unlock(ctx);
  });

  lock.unlock(holder);  // frees the inner lock; W1 proceeds
  w1.join();
  w2.join();
  EXPECT_EQ(done.load(), 2u);
  EXPECT_GE(lock.admission_stats().park_timeouts, 1u);
  // Overshoot shed: the machine is back to a quiescent, servable state.
  EXPECT_EQ(lock.active_set(), 0u);
  EXPECT_EQ(lock.parked_now(), 0u);
  lock.lock(holder);
  lock.unlock(holder);
  EXPECT_EQ(lock.active_set(), 0u);
}

TEST_F(GcrTest, HysteresisTunerStaysInsideBounds) {
  // Fast tuning cadence under real contention: wherever the hill-climb
  // wanders, the published target must stay inside [min, max], and with
  // min < max it must have moved at least once (the first window always
  // probes downward from max).
  test_lock lock(gcr_policy{.min_active = 1,
                            .max_active = 4,
                            .rotation_interval = 16,
                            .tune_window = 64,
                            .park_timeout_us = 60'000'000});
  constexpr unsigned kThreads = 6;
  constexpr std::uint64_t kIters = 3000;
  std::uint64_t counter = 0;
  std::atomic<bool> out_of_bounds{false};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      test_lock::context ctx;
      for (std::uint64_t i = 0; i < kIters; ++i) {
        lock.lock(ctx);
        ++counter;
        const std::uint32_t tgt = lock.active_target();
        if (tgt < 1 || tgt > 4)
          out_of_bounds.store(true, std::memory_order_relaxed);
        lock.unlock(ctx);
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, kThreads * kIters);
  EXPECT_FALSE(out_of_bounds.load());
  const std::uint32_t final_target = lock.active_target();
  EXPECT_GE(final_target, 1u);
  EXPECT_LE(final_target, 4u);
  EXPECT_GT(lock.admission_stats().target_moves, 0u);
}

TEST_F(GcrTest, ComposesOverCohortAndFpInners) {
  // The combinator must preserve the inner lock's stats surface: a wrapped
  // cohort composition keeps its batching counters, with the admission
  // gauges layered on top.
  gcr<c_bo_mcs_lock> lock(gcr_policy{.min_active = 1, .max_active = 2},
                          pass_policy{.limit = 64}, 1u);
  gcr<c_bo_mcs_lock>::context ctx;
  for (int i = 0; i < 5; ++i) {
    lock.lock(ctx);
    EXPECT_EQ(lock.unlock(ctx), release_kind::global);  // solo: always drains
  }
  const cohort_stats s = lock.stats();
  EXPECT_EQ(s.acquisitions, 5u);
  EXPECT_EQ(s.global_acquires, 5u);
  EXPECT_EQ(s.active_target, 2u);
  EXPECT_EQ(s.parked, 0u);

  gcr<c_bo_mcs_fp_lock> fp_lock(gcr_policy{.min_active = 1, .max_active = 2},
                                fastpath_policy{}, pass_policy{.limit = 64},
                                1u);
  gcr<c_bo_mcs_fp_lock>::context fctx;
  for (int i = 0; i < 5; ++i) {
    fp_lock.lock(fctx);
    EXPECT_EQ(fp_lock.unlock(fctx), release_kind::global);
  }
  const cohort_stats fs = fp_lock.stats();
  EXPECT_EQ(fs.acquisitions, 5u);
  // Solo acquisitions ride the fissile fast path inside the gate.
  EXPECT_EQ(fs.fast_acquires + fs.global_acquires, 5u);
  EXPECT_EQ(fs.active_target, 2u);
}

}  // namespace
}  // namespace cohort
