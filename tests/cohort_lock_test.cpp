// Behavioural tests of the cohort transformation itself: batching bounds,
// statistics, policy knobs, per-cluster isolation.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "cohort/locks.hpp"
#include "numa/topology.hpp"

namespace cohort {
namespace {

class CohortLockTest : public ::testing::Test {
 protected:
  void SetUp() override {
    numa::set_system_topology(numa::topology::synthetic(2));
    numa::reset_round_robin_for_test();
  }
};

TEST_F(CohortLockTest, SoloAcquisitionsAreAllGlobal) {
  numa::set_thread_cluster(0);
  c_bo_mcs_lock lock;
  for (int i = 0; i < 100; ++i) {
    c_bo_mcs_lock::context ctx;
    lock.lock(ctx);
    lock.unlock(ctx);
  }
  const auto s = lock.stats();
  EXPECT_EQ(s.acquisitions, 100u);
  // Alone every time: no local handoffs, every acquire took the global lock.
  EXPECT_EQ(s.local_handoffs, 0u);
  EXPECT_EQ(s.global_acquires, 100u);
  EXPECT_DOUBLE_EQ(s.avg_batch(), 1.0);
}

TEST_F(CohortLockTest, StatsAccountingConsistent) {
  c_tkt_mcs_lock lock;
  constexpr int kThreads = 4, kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      numa::set_thread_cluster(static_cast<unsigned>(t % 2));
      c_tkt_mcs_lock::context ctx;
      for (int i = 0; i < kIters; ++i) {
        lock.lock(ctx);
        lock.unlock(ctx);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto s = lock.stats();
  EXPECT_EQ(s.acquisitions, static_cast<std::uint64_t>(kThreads) * kIters);
  // Every acquisition either took the global lock or inherited it locally.
  EXPECT_EQ(s.global_acquires + s.local_handoffs + s.handoff_failures,
            s.acquisitions);
  // Non-abortable locals never fail a handoff.
  EXPECT_EQ(s.handoff_failures, 0u);
}

TEST_F(CohortLockTest, PassLimitBoundsAverageBatch) {
  constexpr std::uint64_t kLimit = 8;
  c_tkt_mcs_lock lock(pass_policy{.limit = kLimit}, /*clusters=*/2);
  constexpr int kThreads = 4, kIters = 3000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      numa::set_thread_cluster(static_cast<unsigned>(t % 2));
      c_tkt_mcs_lock::context ctx;
      for (int i = 0; i < kIters; ++i) {
        lock.lock(ctx);
        lock.unlock(ctx);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto s = lock.stats();
  // A batch is one global acquire plus at most kLimit local handoffs.
  EXPECT_LE(s.avg_batch(), static_cast<double>(kLimit) + 1.0);
}

TEST_F(CohortLockTest, PassLimitZeroDisablesLocalHandoff) {
  c_bo_mcs_lock lock(pass_policy{.limit = 0}, /*clusters=*/2);
  constexpr int kThreads = 4, kIters = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      numa::set_thread_cluster(static_cast<unsigned>(t % 2));
      c_bo_mcs_lock::context ctx;
      for (int i = 0; i < kIters; ++i) {
        lock.lock(ctx);
        lock.unlock(ctx);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto s = lock.stats();
  EXPECT_EQ(s.local_handoffs, 0u);
  EXPECT_EQ(s.global_acquires, s.acquisitions);
}

TEST_F(CohortLockTest, PerClusterStatsSumToTotal) {
  c_tkt_tkt_lock lock(pass_policy{}, /*clusters=*/2);
  constexpr int kThreads = 4, kIters = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      numa::set_thread_cluster(static_cast<unsigned>(t % 2));
      c_tkt_tkt_lock::context ctx;
      for (int i = 0; i < kIters; ++i) {
        lock.lock(ctx);
        lock.unlock(ctx);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto total = lock.stats();
  std::uint64_t acq = 0;
  for (unsigned c = 0; c < lock.clusters(); ++c)
    acq += lock.cluster_stats(c).acquisitions;
  EXPECT_EQ(acq, total.acquisitions);
  lock.reset_stats();
  EXPECT_EQ(lock.stats().acquisitions, 0u);
}

TEST_F(CohortLockTest, ClusterCountDefaultsToTopology) {
  numa::set_system_topology(numa::topology::synthetic(3));
  c_bo_bo_lock lock;
  EXPECT_EQ(lock.clusters(), 3u);
  c_bo_bo_lock fixed(pass_policy{}, 8);
  EXPECT_EQ(fixed.clusters(), 8u);
}

// Parameterised sweep: the transformation must deliver mutual exclusion for
// any pass limit.
class PassLimitSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PassLimitSweep, MutualExclusionHolds) {
  numa::set_system_topology(numa::topology::synthetic(2));
  c_bo_mcs_lock lock(pass_policy{.limit = GetParam()}, 2);
  long counter = 0;
  constexpr int kThreads = 4, kIters = 800;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      numa::set_thread_cluster(static_cast<unsigned>(t % 2));
      c_bo_mcs_lock::context ctx;
      for (int i = 0; i < kIters; ++i) {
        lock.lock(ctx);
        ++counter;
        lock.unlock(ctx);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

INSTANTIATE_TEST_SUITE_P(Limits, PassLimitSweep,
                         ::testing::Values(0, 1, 2, 8, 64, unbounded_pass));

}  // namespace
}  // namespace cohort
