// Mutual exclusion and protocol checks for every simulated lock, run inside
// the deterministic engine.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "sim/locks/registry.hpp"

namespace sim {
namespace {

struct mutex_check {
  long counter = 0;
  bool in_cs = false;
  bool overlap = false;
};

template <typename Lock>
task<void> mutex_worker(thread_ctx& t, Lock& lock, mutex_check& chk,
                        int iters) {
  typename Lock::context ctx(*t.eng);
  for (int i = 0; i < iters; ++i) {
    co_await do_lock(lock, t, ctx);
    if (chk.in_cs) chk.overlap = true;
    chk.in_cs = true;
    co_await t.eng->delay(t.rng.next_range(40) + 1);
    chk.in_cs = false;
    ++chk.counter;
    co_await do_unlock(lock, t, ctx);
    co_await t.eng->delay(t.rng.next_range(200) + 1);
  }
}

template <typename Lock>
task<void> abortable_worker(thread_ctx& t, Lock& lock, mutex_check& chk,
                            int iters) {
  typename Lock::context ctx(*t.eng);
  for (int i = 0; i < iters; ++i) {
    const tick patience = t.eng->now() + t.rng.next_range(3000) + 50;
    const bool ok = co_await do_try_lock(lock, t, ctx, patience);
    if (ok) {
      if (chk.in_cs) chk.overlap = true;
      chk.in_cs = true;
      co_await t.eng->delay(t.rng.next_range(40) + 1);
      chk.in_cs = false;
      ++chk.counter;
      co_await do_unlock(lock, t, ctx);
      ++t.ops;
    } else {
      ++t.aborts;
    }
    co_await t.eng->delay(t.rng.next_range(200) + 1);
  }
}

class SimLockMutex : public ::testing::TestWithParam<std::string> {};

TEST_P(SimLockMutex, MutualExclusion) {
  constexpr unsigned kThreads = 12;
  constexpr int kIters = 400;
  mutex_check chk;
  lock_params lp{4, 64};
  bool known = with_lock_type(GetParam(), lp, [&](auto factory) {
    engine eng(config{});
    auto lock = factory(eng);
    using lock_t = typename std::remove_reference_t<decltype(*lock)>;
    for (unsigned i = 0; i < kThreads; ++i) {
      thread_ctx& t = eng.add_thread(i % 4);
      eng.spawn(mutex_worker<lock_t>(t, *lock, chk, kIters));
    }
    eng.run(30'000'000'000ull);
  });
  ASSERT_TRUE(known);
  EXPECT_FALSE(chk.overlap);
  EXPECT_EQ(chk.counter, static_cast<long>(kThreads) * kIters);
}

INSTANTIATE_TEST_SUITE_P(AllLocks, SimLockMutex,
                         ::testing::ValuesIn(table1_lock_names()));

class SimAbortableMutex : public ::testing::TestWithParam<std::string> {};

TEST_P(SimAbortableMutex, MutualExclusionWithAborts) {
  constexpr unsigned kThreads = 12;
  constexpr int kIters = 400;
  mutex_check chk;
  std::uint64_t ops = 0, aborts = 0;
  lock_params lp{4, 64};
  bool known = with_abortable_lock_type(GetParam(), lp, [&](auto factory) {
    engine eng(config{});
    auto lock = factory(eng);
    using lock_t = typename std::remove_reference_t<decltype(*lock)>;
    for (unsigned i = 0; i < kThreads; ++i) {
      thread_ctx& t = eng.add_thread(i % 4);
      eng.spawn(abortable_worker<lock_t>(t, *lock, chk, kIters));
    }
    eng.run(30'000'000'000ull);
    for (std::size_t i = 0; i < eng.threads(); ++i) {
      ops += eng.thread(i).ops;
      aborts += eng.thread(i).aborts;
    }
  });
  ASSERT_TRUE(known);
  EXPECT_FALSE(chk.overlap);
  // Every attempt either succeeded (counted) or aborted.
  EXPECT_EQ(ops + aborts, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(chk.counter, static_cast<long>(ops));
}

INSTANTIATE_TEST_SUITE_P(AllAbortable, SimAbortableMutex,
                         ::testing::ValuesIn(fig6_lock_names()));

// Cohort-specific: the sim transform keeps exact accounting, and batches
// respect the pass limit.
TEST(SimCohort, StatsAndBatchBound) {
  engine eng(config{});
  s_c_tkt_mcs_lock lock(eng, 4, /*pass_limit=*/8);
  mutex_check chk;
  for (unsigned i = 0; i < 16; ++i) {
    thread_ctx& t = eng.add_thread(i % 4);
    eng.spawn(mutex_worker<s_c_tkt_mcs_lock>(t, lock, chk, 300));
  }
  eng.run(30'000'000'000ull);
  const auto s = lock.stats();
  EXPECT_EQ(s.acquisitions, 16u * 300u);
  EXPECT_EQ(s.global_acquires + s.local_handoffs + s.handoff_failures,
            s.acquisitions);
  EXPECT_LE(static_cast<double>(s.acquisitions) /
                static_cast<double>(s.global_acquires),
            9.0);  // batch <= limit + 1
}

TEST(SimCohort, SingleClusterNeverReleasesGlobalUnderLimit) {
  // With all threads in one cluster and an unbounded pass limit, the global
  // lock is taken exactly once.
  engine eng(config{});
  s_c_bo_mcs_lock lock(eng, 4, ~std::uint64_t{0});
  mutex_check chk;
  for (unsigned i = 0; i < 6; ++i) {
    thread_ctx& t = eng.add_thread(0);
    eng.spawn(mutex_worker<s_c_bo_mcs_lock>(t, lock, chk, 200));
  }
  eng.run(30'000'000'000ull);
  EXPECT_FALSE(chk.overlap);
  const auto s = lock.stats();
  EXPECT_EQ(s.acquisitions, 6u * 200u);
  // The queue occasionally drains (alone() true) and the global lock is
  // re-acquired, but handoffs dominate overwhelmingly.
  EXPECT_GT(s.local_handoffs * 10, s.acquisitions * 8);
}

}  // namespace
}  // namespace sim
