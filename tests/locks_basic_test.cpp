// Mutual-exclusion and interface tests over every real lock type, via typed
// test suites so each lock exercises an identical battery.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "cohort/locks.hpp"
#include "locks/fcmcs.hpp"
#include "locks/hbo.hpp"
#include "locks/hclh.hpp"
#include "locks/pthread_lock.hpp"
#include "numa/topology.hpp"

namespace cohort {
namespace {

// The harness machine may have a single core; keep contention bounded.
constexpr int kThreads = 4;
constexpr int kIters = 1500;

template <typename Lock>
struct make_lock {
  static Lock make() { return Lock{}; }
};

template <typename Lock>
class BasicLockTest : public ::testing::Test {
 protected:
  void SetUp() override {
    numa::set_system_topology(numa::topology::synthetic(2));
    numa::reset_round_robin_for_test();
  }
};

using AllLocks =
    ::testing::Types<bo_lock, fib_bo_lock, tas_spin_lock, ticket_lock,
                     mcs_lock, clh_lock, aclh_lock, hbo_lock, hclh_lock,
                     fc_mcs_lock, pthread_lock, park_lock, c_bo_bo_lock,
                     c_tkt_tkt_lock, c_bo_mcs_lock, c_tkt_mcs_lock,
                     c_mcs_mcs_lock, c_park_mcs_lock, a_c_bo_bo_lock,
                     a_c_bo_clh_lock>;
TYPED_TEST_SUITE(BasicLockTest, AllLocks);

TYPED_TEST(BasicLockTest, SingleThreadLockUnlock) {
  TypeParam lock;
  for (int i = 0; i < 100; ++i) {
    scoped<TypeParam> g(lock);
  }
}

TYPED_TEST(BasicLockTest, MutualExclusionCounter) {
  TypeParam lock;
  long counter = 0;  // deliberately non-atomic: the lock must protect it
  std::atomic<int> in_cs{0};
  std::atomic<bool> overlap{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      numa::set_thread_cluster(static_cast<unsigned>(t));
      for (int i = 0; i < kIters; ++i) {
        scoped<TypeParam> g(lock);
        if (in_cs.fetch_add(1, std::memory_order_acq_rel) != 0)
          overlap.store(true, std::memory_order_relaxed);
        ++counter;
        in_cs.fetch_sub(1, std::memory_order_acq_rel);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(overlap.load());
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TYPED_TEST(BasicLockTest, HandoffAcrossManyShortSections) {
  // Rapid-fire handoffs with an empty critical section stress the release
  // protocols (queue-lock tail races, cohort handoff edges).
  TypeParam lock;
  std::atomic<long> acquired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      numa::set_thread_cluster(static_cast<unsigned>(t));
      for (int i = 0; i < kIters; ++i) {
        scoped<TypeParam> g(lock);
        acquired.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(acquired.load(), static_cast<long>(kThreads) * kIters);
}

// ---- lock-specific interface tests -------------------------------------------

TEST(Tatas, TryLockSemantics) {
  bo_lock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_TRUE(lock.is_locked());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_FALSE(lock.is_locked());
}

TEST(Tatas, TryLockDeadlineExpires) {
  bo_lock lock;
  lock.lock();
  const auto t0 = lock_clock::now();
  EXPECT_FALSE(lock.try_lock(deadline_after(std::chrono::milliseconds(5))));
  EXPECT_GE(lock_clock::now() - t0, std::chrono::milliseconds(4));
  lock.unlock();
  EXPECT_TRUE(lock.try_lock(deadline_after(std::chrono::milliseconds(5))));
  lock.unlock();
}

TEST(Ticket, ThreadObliviousUnlock) {
  // The defining property for a cohort global lock: lock on one thread,
  // unlock on another.
  ticket_lock lock;
  lock.lock();
  std::thread([&lock] { lock.unlock(); }).join();
  EXPECT_FALSE(lock.is_locked());
  lock.lock();
  lock.unlock();
}

TEST(Tatas, ThreadObliviousUnlock) {
  tas_spin_lock lock;
  lock.lock();
  std::thread([&lock] { lock.unlock(); }).join();
  EXPECT_FALSE(lock.is_locked());
}

TEST(Park, ThreadObliviousUnlockAndWake) {
  // The futex word protocol allows a different thread to release, which is
  // what qualifies park_lock as a cohort global lock.
  park_lock lock;
  lock.lock();
  std::thread([&lock] { lock.unlock(); }).join();
  EXPECT_FALSE(lock.is_locked());
  // A parked waiter is woken by the (foreign) releaser.
  lock.lock();
  std::atomic<bool> got{false};
  std::thread waiter([&] {
    lock.lock();
    got = true;
    lock.unlock();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  lock.unlock();
  waiter.join();
  EXPECT_TRUE(got.load());
}

TEST(Park, TryLockSemantics) {
  park_lock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(ObliviousMcs, UnlockFromOtherThread) {
  oblivious_mcs_lock lock;
  lock.lock();
  std::thread([&lock] { lock.unlock(); }).join();
  EXPECT_FALSE(lock.is_locked());
}

TEST(ObliviousMcs, NodeCirculationStaysBounded) {
  oblivious_mcs_lock lock;
  for (int i = 0; i < 1000; ++i) {
    lock.lock();
    lock.unlock();
  }
  // Uncontended same-thread usage must recycle a single node.
  EXPECT_LE(oblivious_mcs_lock::nodes_allocated_this_thread(), 4u);
}

TEST(Hbo, WordHoldsClusterAndFrees) {
  numa::set_system_topology(numa::topology::synthetic(4));
  numa::set_thread_cluster(1);
  hbo_lock lock(hbo_microbench_tuning());
  lock.lock();
  EXPECT_TRUE(lock.is_locked());
  lock.unlock();
  EXPECT_FALSE(lock.is_locked());
}

TEST(Hbo, TryLockTimesOutWhileHeld) {
  hbo_lock lock;
  lock.lock();
  EXPECT_FALSE(lock.try_lock(deadline_after(std::chrono::milliseconds(2))));
  lock.unlock();
}

TEST(CohortMcs, EmptyQueueAcquisitionIsGlobal) {
  cohort_mcs_lock lock;
  cohort_mcs_lock::context ctx;
  EXPECT_EQ(lock.lock(ctx), release_kind::global);
  EXPECT_TRUE(lock.alone(ctx));
  lock.release_global(ctx);
  EXPECT_FALSE(lock.is_locked());
}

TEST(CohortTicket, TopGrantedHandoff) {
  cohort_ticket_lock lock;
  cohort_ticket_lock::context a, b;
  EXPECT_EQ(lock.lock(a), release_kind::global);
  std::thread waiter([&] {
    cohort_ticket_lock::context c;
    // Inherits the (conceptual) global lock through top-granted.
    EXPECT_EQ(lock.lock(c), release_kind::local);
    lock.release_global(c);
  });
  // Wait until the waiter has queued, then hand off locally.
  spin_until([&] { return !lock.alone(a); });
  EXPECT_TRUE(lock.release_local(a));
  waiter.join();
  (void)b;
}

TEST(CohortBo, ReleaseStatesRoundTrip) {
  cohort_bo_lock<exp_backoff> lock;
  empty_context ctx;
  EXPECT_EQ(lock.lock(ctx), release_kind::global);
  EXPECT_TRUE(lock.release_local(ctx));  // non-abortable never fails
  // The local release leaves the lock acquirable in LOCAL state.
  EXPECT_EQ(lock.lock(ctx), release_kind::local);
  lock.release_global(ctx);
  EXPECT_EQ(lock.lock(ctx), release_kind::global);
  lock.release_global(ctx);
}

}  // namespace
}  // namespace cohort
