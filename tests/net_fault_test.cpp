// The fault-injection seam and the server/client robustness machinery
// (DESIGN.md §11): spec/env parsing, seam install/restore, and -- over real
// loopback sockets -- EMFILE accept backoff, slowloris eviction, overload
// shedding, request caps, graceful and forced drain, client retry, and a
// seeded chaos soak asserting the close-reason accounting identity.  Runs
// under the ASan/UBSan and TSan CI jobs: the injected faults hammer every
// error path the sanitizers can see.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "kvstore/command.hpp"
#include "net/client.hpp"
#include "net/fault.hpp"
#include "net/io_ops.hpp"
#include "net/server.hpp"
#include "numa/topology.hpp"
#include "util/rng.hpp"

namespace cohort::net {
namespace {

using kvstore::cmd_status;

// Restore the real io_ops table no matter how a test exits.
struct fault_guard {
  explicit fault_guard(const fault_plan& plan) { install_fault_plan(plan); }
  ~fault_guard() { clear_fault_plan(); }
};

struct server_fixture {
  std::unique_ptr<kvstore::any_sharded_store> store;
  std::unique_ptr<kv_server> server;

  explicit server_fixture(server_config cfg = {}) {
    numa::set_system_topology(numa::topology::synthetic(2));
    store = kvstore::make_any_sharded_store("C-TKT-TKT", {.shards = 2});
    if (cfg.io_threads == 0) cfg.io_threads = 2;
    server = std::make_unique<kv_server>(*store, cfg);
    std::string err;
    if (!server->start(&err)) throw std::runtime_error(err);
  }
  ~server_fixture() {
    if (server) server->stop();
  }
};

// connections == shed + closed + timeouts + resets + drained: every
// accepted socket must land in exactly one close-reason bucket.
::testing::AssertionResult accounted(const server_counters& sc) {
  const std::uint64_t sum =
      sc.shed + sc.closed + sc.timeouts + sc.resets + sc.drained;
  if (sc.connections == sum) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "connections=" << sc.connections << " != shed=" << sc.shed
         << " + closed=" << sc.closed << " + timeouts=" << sc.timeouts
         << " + resets=" << sc.resets << " + drained=" << sc.drained;
}

// ---- plan parsing and the seam ----------------------------------------------

TEST(FaultPlan, SpecParses) {
  fault_plan p;
  std::string err;
  ASSERT_TRUE(parse_fault_spec(
      "seed=42,short_read=0.25,short_write=0.5,eintr=0.1,eagain=0.05,"
      "reset=0.01,emfile=0.02,stall=0.03,stall_us=500",
      &p, &err))
      << err;
  EXPECT_EQ(p.seed, 42u);
  EXPECT_DOUBLE_EQ(p.short_read, 0.25);
  EXPECT_DOUBLE_EQ(p.short_write, 0.5);
  EXPECT_DOUBLE_EQ(p.eintr, 0.1);
  EXPECT_DOUBLE_EQ(p.eagain, 0.05);
  EXPECT_DOUBLE_EQ(p.reset, 0.01);
  EXPECT_DOUBLE_EQ(p.emfile, 0.02);
  EXPECT_DOUBLE_EQ(p.stall, 0.03);
  EXPECT_EQ(p.stall_us, 500u);
  EXPECT_TRUE(p.active());
}

TEST(FaultPlan, BadSpecsAreRejectedAndLeaveOutputUntouched) {
  fault_plan p;
  p.seed = 7;
  std::string err;
  EXPECT_FALSE(parse_fault_spec("bogus_key=1", &p, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(parse_fault_spec("short_read=1.5", &p, &err));  // p > 1
  EXPECT_FALSE(parse_fault_spec("short_read=abc", &p, &err));
  EXPECT_FALSE(parse_fault_spec("short_read", &p, &err));  // no '='
  EXPECT_FALSE(parse_fault_spec("stall_us=0", &p, &err));  // below clamp
  EXPECT_EQ(p.seed, 7u);             // untouched on every failure
  EXPECT_FALSE(p.active());
}

TEST(FaultPlan, EmptySpecIsInactive) {
  fault_plan p;
  std::string err;
  ASSERT_TRUE(parse_fault_spec("", &p, &err)) << err;
  EXPECT_FALSE(p.active());
}

TEST(FaultPlan, EnvBuildsPlan) {
  ::setenv("COHORT_NET_FAULT_SEED", "9", 1);
  ::setenv("COHORT_NET_FAULT_RESET", "0.125", 1);
  ::setenv("COHORT_NET_FAULT_STALL_US", "250", 1);
  const fault_plan p = fault_plan_from_env();
  ::unsetenv("COHORT_NET_FAULT_SEED");
  ::unsetenv("COHORT_NET_FAULT_RESET");
  ::unsetenv("COHORT_NET_FAULT_STALL_US");
  EXPECT_EQ(p.seed, 9u);
  EXPECT_DOUBLE_EQ(p.reset, 0.125);
  EXPECT_EQ(p.stall_us, 250u);
  EXPECT_TRUE(p.active());
  EXPECT_FALSE(fault_plan_from_env().active());  // env cleared
}

TEST(FaultPlan, SeamInstallsAndRestores) {
  const io_ops* real = &io();
  EXPECT_EQ(real, &real_io_ops());
  fault_plan p;
  p.reset = 0.5;
  {
    fault_guard g(p);
    EXPECT_NE(&io(), &real_io_ops());
    EXPECT_DOUBLE_EQ(current_fault_plan().reset, 0.5);
  }
  EXPECT_EQ(&io(), &real_io_ops());
  EXPECT_FALSE(current_fault_plan().active());
}

TEST(FaultPlan, InactivePlanInstallsNothing) {
  install_fault_plan(fault_plan{});  // all-zero probabilities
  EXPECT_EQ(&io(), &real_io_ops());
}

// ---- fault injection over live sockets --------------------------------------

TEST(FaultInject, ShortIoNeverCorruptsData) {
  // Aggressive truncation on both directions: every transfer may be cut to
  // a random prefix, yet the byte streams must reassemble exactly -- the
  // injector only shortens, it never corrupts.
  server_fixture f;
  fault_plan p;
  p.seed = 11;
  p.short_read = 0.6;
  p.short_write = 0.6;
  fault_guard g(p);

  memcache_client cl;
  ASSERT_TRUE(cl.connect("127.0.0.1", f.server->port())) << cl.last_error();
  std::string blob;
  cohort::xorshift rng(23);
  for (int i = 0; i < 20000; ++i)
    blob.push_back(static_cast<char>(rng.next() & 0xff));
  ASSERT_EQ(cl.set("blob", blob), cmd_status::stored) << cl.last_error();
  std::string out;
  ASSERT_EQ(cl.get("blob", &out), cmd_status::hit) << cl.last_error();
  EXPECT_EQ(out, blob);
  cl.quit();
  const fault_counters& fc = fault_stats();
  EXPECT_GT(fc.short_reads.load() + fc.short_writes.load(), 0u);
}

TEST(FaultInject, EmfileAcceptBackoffRecovers) {
  // An fd-exhaustion storm on accept must not kill the accept loop: while
  // the plan is live new connections starve; once it clears, the parked
  // backoff expires and the very same listener serves again.
  server_config cfg;
  cfg.io_threads = 1;
  server_fixture f(cfg);

  {
    fault_plan p;
    p.seed = 3;
    p.emfile = 1.0;
    fault_guard g(p);
    // TCP-level connect lands in the backlog, but accept4 fails with
    // EMFILE every time, so no reply ever comes.
    memcache_client starved(client_config{.op_timeout_ms = 200});
    if (starved.connect("127.0.0.1", f.server->port())) {
      std::string ver;
      EXPECT_FALSE(starved.version(&ver));
    }
    EXPECT_GT(fault_stats().emfiles.load(), 0u);
  }

  // Plan cleared: the next op must go through (the accept backoff is
  // capped, so recovery is bounded, not wedged).
  memcache_client cl;
  ASSERT_TRUE(cl.connect("127.0.0.1", f.server->port())) << cl.last_error();
  EXPECT_EQ(cl.set("after", "storm"), cmd_status::stored) << cl.last_error();
  cl.quit();
}

// ---- timeouts, shedding, caps -----------------------------------------------

TEST(Harden, SlowlorisIdleConnectionIsEvicted) {
  server_config cfg;
  cfg.idle_timeout_ms = 60;
  server_fixture f(cfg);

  // The read deadline only bounds the test on failure; eviction lands
  // far sooner.
  memcache_client cl(client_config{.op_timeout_ms = 10000});
  ASSERT_TRUE(cl.connect("127.0.0.1", f.server->port()));
  ASSERT_EQ(cl.set("k", "v"), cmd_status::stored);
  // Go silent well past the idle deadline: the wheel must evict us.
  std::string line;
  EXPECT_FALSE(cl.read_line(&line));  // server closed: EOF or reset

  // Eventually-consistent counter read: eviction happens on the sweep.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (f.server->counters().timeouts == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const server_counters sc = f.server->counters();
  EXPECT_EQ(sc.timeouts, 1u);
  f.server->stop();
  EXPECT_TRUE(accounted(f.server->counters()));
}

TEST(Harden, LifetimeCapEvictsBusyConnection) {
  // Unlike idle eviction, a lifetime cap fires even while the connection
  // is actively making requests.
  server_config cfg;
  cfg.max_conn_lifetime_ms = 80;
  server_fixture f(cfg);

  memcache_client cl;
  ASSERT_TRUE(cl.connect("127.0.0.1", f.server->port()));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  bool evicted = false;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cl.set("k", "v") != cmd_status::stored) {
      evicted = true;
      break;
    }
  }
  EXPECT_TRUE(evicted);
  EXPECT_GE(f.server->counters().timeouts, 1u);
  f.server->stop();
  EXPECT_TRUE(accounted(f.server->counters()));
}

TEST(Harden, OverCapConnectionsAreShed) {
  server_config cfg;
  cfg.io_threads = 1;
  cfg.max_conns_per_worker = 1;
  server_fixture f(cfg);

  memcache_client first;
  ASSERT_TRUE(first.connect("127.0.0.1", f.server->port()));
  ASSERT_EQ(first.set("k", "v"), cmd_status::stored);  // accepted + live

  // Over the cap: the server answers SERVER_ERROR busy and closes.
  memcache_client second;
  ASSERT_TRUE(second.connect("127.0.0.1", f.server->port()));
  EXPECT_EQ(second.set("x", "y"), cmd_status::error);
  EXPECT_EQ(second.last_error(), "server busy (shed)");

  // The survivor is untouched.
  std::string out;
  EXPECT_EQ(first.get("k", &out), cmd_status::hit);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (f.server->counters().shed == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const server_counters sc = f.server->counters();
  EXPECT_EQ(sc.shed, 1u);
  EXPECT_EQ(sc.connections, 2u);  // shed sockets still count as accepted
  first.quit();
  f.server->stop();
  EXPECT_TRUE(accounted(f.server->counters()));
}

TEST(Harden, ShedIsTransientForARetryingClient) {
  server_config cfg;
  cfg.io_threads = 1;
  cfg.max_conns_per_worker = 1;
  server_fixture f(cfg);

  auto first = std::make_unique<memcache_client>();
  ASSERT_TRUE(first->connect("127.0.0.1", f.server->port()));
  ASSERT_EQ(first->set("k", "v"), cmd_status::stored);

  // The retrying client gets shed while `first` holds the only slot...
  memcache_client second(client_config{.max_retries = 20});
  ASSERT_TRUE(second.connect("127.0.0.1", f.server->port()));
  std::thread release([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    first->quit();
    first.reset();  // slot freed mid-retry
  });
  // ...but its bounded backoff-and-reconnect lands once the slot frees.
  EXPECT_EQ(second.set("x", "y"), cmd_status::stored) << second.last_error();
  EXPECT_GT(second.retries(), 0u);
  release.join();
  second.quit();
}

TEST(Harden, RequestCapClosesConnectionAfterReply) {
  server_config cfg;
  cfg.max_requests_per_conn = 3;
  server_fixture f(cfg);

  memcache_client cl;
  ASSERT_TRUE(cl.connect("127.0.0.1", f.server->port()));
  EXPECT_EQ(cl.set("a", "1"), cmd_status::stored);
  EXPECT_EQ(cl.set("b", "2"), cmd_status::stored);
  // The capth request is still answered...
  EXPECT_EQ(cl.set("c", "3"), cmd_status::stored);
  // ...then the server closes; the next op fails on a dead transport.
  EXPECT_EQ(cl.set("d", "4"), cmd_status::error);

  f.server->stop();
  const server_counters sc = f.server->counters();
  EXPECT_GE(sc.closed, 1u);  // request-cap close is a normal close
  EXPECT_TRUE(accounted(sc));
}

// ---- drain ------------------------------------------------------------------

TEST(Drain, GracefulDrainFlushesBufferedReplies) {
  server_fixture f;
  memcache_client cl;
  ASSERT_TRUE(cl.connect("127.0.0.1", f.server->port()));
  const std::string value(64 * 1024, 'd');
  ASSERT_EQ(cl.set("big", value), cmd_status::stored);

  // A pipelined burst whose replies (~1.3 MB) far exceed the socket
  // buffer, unread: at drain time the server still owes us most of them.
  constexpr int kGets = 20;
  std::string burst;
  for (int i = 0; i < kGets; ++i) burst += "get big\r\n";
  ASSERT_TRUE(cl.send_raw(burst));
  // Let the worker read and parse the burst before the drain begins --
  // drain only promises to finish what the server has already taken in.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::atomic<bool> clean{false};
  std::thread drainer([&] { clean.store(f.server->drain()); });

  const std::string header = "VALUE big 0 " + std::to_string(value.size());
  int complete = 0;
  for (int i = 0; i < kGets; ++i) {
    std::string line, data;
    if (!cl.read_line(&line)) break;
    ASSERT_EQ(line, header) << "reply " << i;
    ASSERT_TRUE(cl.read_exact(value.size() + 2, &data));
    ASSERT_TRUE(cl.read_line(&line));
    ASSERT_EQ(line, "END");
    ++complete;
  }
  std::string extra;
  EXPECT_FALSE(cl.read_line(&extra));  // server closed after the flush
  drainer.join();

  EXPECT_EQ(complete, kGets);  // nothing the server had taken in was lost
  EXPECT_TRUE(clean.load());
  const server_counters sc = f.server->counters();
  EXPECT_EQ(sc.drained, 1u);
  EXPECT_TRUE(accounted(sc));
}

TEST(Drain, DeadlineForcesStuckConnectionsClosed) {
  server_config cfg;
  cfg.drain_deadline_ms = 100;
  server_fixture f(cfg);
  memcache_client cl;
  ASSERT_TRUE(cl.connect("127.0.0.1", f.server->port()));
  const std::string value(64 * 1024, 'f');
  ASSERT_EQ(cl.set("big", value), cmd_status::stored);

  // Burst, then never read: ~50 MB of replies dwarf what the loopback
  // socket buffers can absorb, so with no reader the flush can't
  // complete and the deadline must force the close.
  std::string burst;
  for (int i = 0; i < 800; ++i) burst += "get big\r\n";
  ASSERT_TRUE(cl.send_raw(burst));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const auto t0 = std::chrono::steady_clock::now();
  const bool clean = f.server->drain();
  const auto took = std::chrono::steady_clock::now() - t0;
  EXPECT_FALSE(clean);
  // Bounded: the deadline plus scheduling slack, not a hang.
  EXPECT_LT(took, std::chrono::seconds(5));
  const server_counters sc = f.server->counters();
  EXPECT_EQ(sc.drained, 1u);
  EXPECT_TRUE(accounted(sc));
}

TEST(Drain, IdleServerDrainsImmediatelyAndStopStaysIdempotent) {
  server_fixture f;
  EXPECT_TRUE(f.server->drain());
  EXPECT_FALSE(f.server->running());
  f.server->stop();  // after drain: no-op
  EXPECT_TRUE(accounted(f.server->counters()));
}

// ---- the chaos soak ---------------------------------------------------------

TEST(Chaos, SeededSoakKeepsAccountingExact) {
  // Everything at once: short I/O, EINTR/EAGAIN storms, resets, stalls,
  // accept failures on the server plus timeouts, retries, and reconnects
  // on the clients -- then a graceful drain.  The invariants: the server
  // never crashes or wedges, every accepted connection lands in exactly
  // one close-reason bucket, the plan demonstrably fired, and the store
  // answered exactly one kv op per answered command.
  server_config cfg;
  cfg.io_threads = 2;
  cfg.idle_timeout_ms = 500;
  cfg.max_requests_per_conn = 200;
  cfg.max_conns_per_worker = 8;
  server_fixture f(cfg);

  fault_plan p;
  p.seed = 20120225;  // the paper's conference date, for luck
  p.short_read = 0.05;
  p.short_write = 0.05;
  p.eintr = 0.02;
  p.eagain = 0.005;
  p.reset = 0.01;
  p.emfile = 0.02;
  p.stall = 0.01;
  p.stall_us = 200;
  fault_guard g(p);

  constexpr int kThreads = 4;
  std::atomic<std::uint64_t> ok_ops{0};
  std::atomic<std::uint64_t> failed_ops{0};
  std::atomic<std::uint64_t> retries{0};
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(600);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      memcache_client cl(
          client_config{.op_timeout_ms = 300, .max_retries = 5});
      (void)cl.connect("127.0.0.1", f.server->port());
      cohort::xorshift rng(911 + t);
      while (std::chrono::steady_clock::now() < deadline) {
        const std::string key = "c" + std::to_string(t) + "-" +
                                std::to_string(rng.next_range(64));
        cmd_status st;
        switch (rng.next_range(3)) {
          case 0:
            st = cl.set(key, "v");
            break;
          case 1:
            st = cl.get(key, nullptr);
            break;
          default:
            st = cl.del(key);
            break;
        }
        if (st == cmd_status::error)
          ++failed_ops;
        else
          ++ok_ops;
      }
      retries += cl.retries();
      cl.close();
    });
  }
  for (auto& th : threads) th.join();

  const bool clean = f.server->drain();
  (void)clean;  // stuck flushes under a hostile plan are legitimate
  const server_counters sc = f.server->counters();

  EXPECT_TRUE(accounted(sc));
  EXPECT_GT(ok_ops.load(), 0u);  // made real progress under fire
  EXPECT_GT(sc.injected_faults, 0u);
  // Answered commands bound the client view from both sides.
  EXPECT_GE(sc.commands, ok_ops.load());
  EXPECT_LE(sc.commands, ok_ops.load() + failed_ops.load() + retries.load());
  // Truncation and resets never fabricate bytes, so the server must not
  // have seen malformed requests beyond attempts that died mid-send.
  EXPECT_LE(sc.protocol_errors, failed_ops.load() + retries.load());
  // The store executed exactly one kv op per answered command.
  const kvstore::kv_stats ks = f.store->stats();
  EXPECT_EQ(ks.gets + ks.sets + ks.deletes, sc.commands);
}

}  // namespace
}  // namespace cohort::net
