// The shared kv command layer (kvstore/command.hpp): result codes per op,
// the value-size cap, flush, live stats snapshots, the execute() bridge,
// and the mix generator that every load driver shares.  Runs under the
// ASan/TSan CI jobs: the concurrent case drives executors from several
// threads so the counter-cell sampling contract is sanitizer-checked.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "kvstore/command.hpp"
#include "numa/topology.hpp"
#include "util/rng.hpp"

namespace kvstore {
namespace {

TEST(Command, ResultCodesPerOp) {
  auto store = make_any_sharded_store("pthread", {.shards = 2});
  ASSERT_NE(store, nullptr);
  command_executor ex(*store);

  EXPECT_EQ(ex.get("missing", nullptr), cmd_status::miss);
  EXPECT_EQ(ex.set("k", "v1"), cmd_status::stored);
  std::string out;
  EXPECT_EQ(ex.get("k", &out), cmd_status::hit);
  EXPECT_EQ(out, "v1");
  EXPECT_EQ(ex.set("k", "v2"), cmd_status::stored);
  EXPECT_EQ(ex.get("k", &out), cmd_status::hit);
  EXPECT_EQ(out, "v2");
  EXPECT_EQ(ex.del("k"), cmd_status::deleted);
  EXPECT_EQ(ex.del("k"), cmd_status::not_found);
  EXPECT_EQ(ex.get("k", nullptr), cmd_status::miss);
}

TEST(Command, ValueCapRefusesOversized) {
  auto store = make_any_sharded_store("pthread", {});
  ASSERT_NE(store, nullptr);
  command_executor ex(*store, /*max_value_bytes=*/8);
  EXPECT_EQ(ex.set("small", "12345678"), cmd_status::stored);
  EXPECT_EQ(ex.set("big", "123456789"), cmd_status::too_large);
  EXPECT_EQ(ex.get("big", nullptr), cmd_status::miss);
}

TEST(Command, FlushDropsItemsKeepsCounters) {
  auto store = make_any_sharded_store("C-TKT-TKT", {.shards = 4});
  ASSERT_NE(store, nullptr);
  command_executor ex(*store);
  for (int i = 0; i < 100; ++i)
    ex.set("k" + std::to_string(i), "v");
  store_snapshot before = ex.stats();
  EXPECT_EQ(before.items, 100u);
  EXPECT_EQ(before.counters.sets, 100u);
  EXPECT_EQ(ex.flush(), cmd_status::ok);
  store_snapshot after = ex.stats();
  EXPECT_EQ(after.items, 0u);
  EXPECT_EQ(after.counters.sets, 100u);  // cumulative, memcached-style
  EXPECT_EQ(ex.get("k0", nullptr), cmd_status::miss);
  EXPECT_EQ(after.shards, 4u);
}

TEST(Command, ExecuteBridgesToTypedOps) {
  auto store = make_any_sharded_store("pthread", {});
  ASSERT_NE(store, nullptr);
  command_executor ex(*store);

  command set{.op = cmd_op::set, .key = "a", .value = "payload"};
  EXPECT_EQ(ex.execute(set).status, cmd_status::stored);
  command get{.op = cmd_op::get, .key = "a"};
  command_reply r = ex.execute(get);
  EXPECT_EQ(r.status, cmd_status::hit);
  EXPECT_EQ(r.value, "payload");
  command del{.op = cmd_op::del, .key = "a"};
  EXPECT_EQ(ex.execute(del).status, cmd_status::deleted);
  command stats{.op = cmd_op::stats};
  r = ex.execute(stats);
  EXPECT_EQ(r.status, cmd_status::ok);
  EXPECT_EQ(r.stats.counters.gets, 1u);
  EXPECT_EQ(r.stats.counters.deletes, 1u);
}

TEST(Command, StatusNamesAreStable) {
  EXPECT_STREQ(status_name(cmd_status::hit), "hit");
  EXPECT_STREQ(status_name(cmd_status::too_large), "too_large");
  EXPECT_STREQ(status_name(cmd_status::error), "error");
}

TEST(Command, MonomorphisedStoreWorksToo) {
  bool ran = false;
  with_store("C-BO-MCS", {.shards = 2, .buckets = 64}, {},
             [&](auto& store) {
               ran = true;
               command_executor ex(store);
               EXPECT_EQ(ex.set("x", "y"), cmd_status::stored);
               std::string out;
               EXPECT_EQ(ex.get("x", &out), cmd_status::hit);
               EXPECT_EQ(out, "y");
             });
  EXPECT_TRUE(ran);
}

TEST(Command, PrefillPopulatesEveryKey) {
  auto store = make_any_sharded_store("pthread", {.shards = 4});
  ASSERT_NE(store, nullptr);
  const auto keys = make_keyspace(500);
  prefill_keyspace(*store, keys, "val", /*numa_place=*/false);
  command_executor ex(*store);
  std::string out;
  for (const auto& k : keys) {
    ASSERT_EQ(ex.get(k, &out), cmd_status::hit) << k;
    ASSERT_EQ(out, "val");
  }
  EXPECT_EQ(ex.stats().items, 500u);
}

TEST(Command, MixRoutesEveryOpThroughExecutor) {
  auto store = make_any_sharded_store("pthread", {.shards = 2});
  ASSERT_NE(store, nullptr);
  const auto keys = make_keyspace(100);
  prefill_keyspace(*store, keys, "v", false);
  const mix_workload mix(keys, /*get_ratio=*/0.5, /*zipf_theta=*/0.0, "v");

  command_executor ex(*store);
  cohort::xorshift rng(9);
  const std::uint64_t ops = 10'000;
  for (std::uint64_t i = 0; i < ops; ++i) {
    const cmd_status st = mix.step(ex, rng);
    ASSERT_TRUE(st == cmd_status::hit || st == cmd_status::stored) << i;
  }
  const store_snapshot snap = ex.stats();
  // Every mix step bumped exactly one counter; prefill adds 100 sets.
  EXPECT_EQ(snap.counters.gets + snap.counters.sets, ops + keys.size());
  EXPECT_EQ(snap.counters.get_hits, snap.counters.gets);  // all prefilled
}

TEST(Command, ConcurrentExecutorsAndLiveStats) {
  cohort::numa::set_system_topology(cohort::numa::topology::synthetic(2));
  auto store = make_any_sharded_store("C-TKT-TKT", {.shards = 4});
  ASSERT_NE(store, nullptr);
  const auto keys = make_keyspace(256);
  const mix_workload mix(keys, 0.7, 0.0, "vv");

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      cohort::numa::set_thread_cluster(static_cast<unsigned>(t % 2));
      command_executor ex(*store);
      cohort::xorshift rng(100 + t);
      while (!stop.load(std::memory_order_relaxed)) mix.step(ex, rng);
    });
  }
  // Live sampling while the writers run: the single-writer-cell contract
  // under test (TSan job).  Cells only grow, and every sample reads each
  // cell later than the last one did, so the sums must be monotone even
  // though cross-counter identities are quiescent-only.
  command_executor sampler(*store);
  // On an oversubscribed host the spinning workers may not have been
  // scheduled at all yet; yield until the first operation lands so the
  // samples (and the final quiescent check) observe real traffic.
  for (;;) {
    const store_snapshot s0 = sampler.stats();
    if (s0.counters.gets + s0.counters.sets > 0) break;
    std::this_thread::yield();
  }
  std::uint64_t prev = 0;
  for (int i = 0; i < 200; ++i) {
    const store_snapshot s = sampler.stats();
    const std::uint64_t total = s.counters.gets + s.counters.sets;
    ASSERT_GE(total, prev);
    prev = total;
  }
  stop = true;
  for (auto& w : workers) w.join();
  const store_snapshot s = sampler.stats();
  EXPECT_GT(s.counters.gets + s.counters.sets, 0u);
  EXPECT_LE(s.items, 256u);
}

}  // namespace
}  // namespace kvstore
