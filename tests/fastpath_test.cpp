// Behavioural tests of the Fissile-style fast path (cohort/fastpath.hpp):
// mixed fast/slow mutual exclusion, the quiescent stats identity
// (acquisitions == fast_acquires + global_acquires + local_handoffs +
// handoff_failures), and the engage -> fissioned -> re-engaged hysteresis
// transitions, exercised deterministically.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "cohort/locks.hpp"
#include "numa/topology.hpp"

namespace cohort {
namespace {

class FastPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    numa::set_system_topology(numa::topology::synthetic(2));
    numa::reset_round_robin_for_test();
  }
};

// The quiescent identity every fissile lock must satisfy.
template <typename Stats>
void expect_identity(const Stats& s, const char* what) {
  EXPECT_EQ(s.acquisitions, s.fast_acquires + s.global_acquires +
                                s.local_handoffs + s.handoff_failures)
      << what;
}

TEST_F(FastPathTest, SoloTrafficStaysOnFastPath) {
  numa::set_thread_cluster(0);
  c_tkt_tkt_fp_lock lock;
  for (int i = 0; i < 100; ++i) {
    c_tkt_tkt_fp_lock::context ctx;
    lock.lock(ctx);
    lock.unlock(ctx);
  }
  const auto s = lock.stats();
  // An uncontended acquirer takes one CAS and never touches the local queue
  // or the global lock.
  EXPECT_EQ(s.acquisitions, 100u);
  EXPECT_EQ(s.fast_acquires, 100u);
  EXPECT_EQ(s.global_acquires, 0u);
  EXPECT_EQ(s.local_handoffs, 0u);
  EXPECT_EQ(s.fissions, 0u);
  EXPECT_TRUE(lock.fast_path_engaged());
  expect_identity(s, "solo");
}

TEST_F(FastPathTest, MixedFastSlowMutualExclusion) {
  c_bo_mcs_fp_lock lock(fastpath_policy{}, pass_policy{}, /*clusters=*/2);
  long counter = 0;  // non-atomic: the lock is the only synchronisation
  constexpr int kThreads = 4, kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      numa::set_thread_cluster(static_cast<unsigned>(t % 2));
      c_bo_mcs_fp_lock::context ctx;
      for (int i = 0; i < kIters; ++i) {
        lock.lock(ctx);
        ++counter;
        lock.unlock(ctx);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
  const auto s = lock.stats();
  EXPECT_EQ(s.acquisitions, static_cast<std::uint64_t>(kThreads) * kIters);
  expect_identity(s, "mixed");
}

TEST_F(FastPathTest, AggressiveHysteresisKeepsMutualExclusion) {
  // fission_limit 1 / reengage_drains 1 maximises engage/disengage churn:
  // every failed CAS disengages, every drained release re-engages, so fast
  // and slow acquirers constantly interleave across the transition edges.
  c_tkt_tkt_fp_lock lock(
      fastpath_policy{.fission_limit = 1, .reengage_drains = 1},
      pass_policy{.limit = 4}, 2);
  long counter = 0;
  constexpr int kThreads = 4, kIters = 1500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      numa::set_thread_cluster(static_cast<unsigned>(t % 2));
      c_tkt_tkt_fp_lock::context ctx;
      for (int i = 0; i < kIters; ++i) {
        lock.lock(ctx);
        ++counter;
        lock.unlock(ctx);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
  expect_identity(lock.stats(), "aggressive hysteresis");
  // Transitions alternate starting from the engaged construction state.
  const auto fs = lock.fp_stats();
  EXPECT_GE(fs.disengages, fs.reengages);
}

TEST_F(FastPathTest, ContentionDisengagesThenDrainReengages) {
  numa::set_thread_cluster(0);
  c_tkt_tkt_fp_lock lock(
      fastpath_policy{.fission_limit = 2, .reengage_drains = 3},
      pass_policy{}, 2);
  ASSERT_TRUE(lock.fast_path_engaged());

  // Hold the lock through the fast path, then let a second thread fission
  // against it: its failed CASes must disengage the fast path while we
  // still hold the gate.
  c_tkt_tkt_fp_lock::context holder;
  lock.lock(holder);
  EXPECT_EQ(lock.stats().fast_acquires, 1u);

  std::thread waiter([&] {
    numa::set_thread_cluster(1);
    c_tkt_tkt_fp_lock::context ctx;
    lock.lock(ctx);  // fissions into the cohort, spins on the gate
    lock.unlock(ctx);
  });
  // The waiter disengages after fission_limit failed gate attempts; only
  // then do we release, so the transition is deterministic.
  while (lock.fast_path_engaged()) std::this_thread::yield();
  lock.unlock(holder);
  waiter.join();

  auto fs = lock.fp_stats();
  EXPECT_FALSE(lock.fast_path_engaged());
  EXPECT_GE(fs.fissions, 1u);
  EXPECT_EQ(fs.disengages, 1u);
  EXPECT_EQ(fs.reengages, 0u);

  // Drained solo traffic now flows through the slow path; every release is
  // a global release, and the reengage_drains-th consecutive one (the
  // waiter's own drained release already counted) re-engages.
  int slow_iters = 0;
  while (!lock.fast_path_engaged()) {
    c_tkt_tkt_fp_lock::context ctx;
    lock.lock(ctx);
    lock.unlock(ctx);
    ASSERT_LE(++slow_iters, 3);
  }
  EXPECT_GE(slow_iters, 1);
  EXPECT_EQ(lock.fp_stats().reengages, 1u);

  // And the next acquisition rides the fast path again.
  const auto fast_before = lock.stats().fast_acquires;
  c_tkt_tkt_fp_lock::context ctx;
  lock.lock(ctx);
  lock.unlock(ctx);
  EXPECT_EQ(lock.stats().fast_acquires, fast_before + 1);
  expect_identity(lock.stats(), "transitions");
}

TEST_F(FastPathTest, AbortableGateTimeoutBacksOutCleanly) {
  numa::set_thread_cluster(0);
  a_c_bo_bo_fp_lock lock(fastpath_policy{}, pass_policy{}, 2);

  a_c_bo_bo_fp_lock::context holder;
  ASSERT_TRUE(lock.try_lock(holder, deadline_never()));  // fast acquire

  std::thread waiter([&] {
    numa::set_thread_cluster(1);
    a_c_bo_bo_fp_lock::context ctx;
    // Fissions, acquires the inner cohort lock, then times out waiting on
    // the gate and must back the inner acquisition out.  (Generous budget:
    // sanitizer runs on a loaded host must reach the gate before expiry.)
    EXPECT_FALSE(
        lock.try_lock(ctx, deadline_after(std::chrono::milliseconds(250))));
  });
  waiter.join();
  // The holder went fast and never touched the inner lock, so the waiter
  // sailed through the inner protocol and must have timed out on the gate.
  EXPECT_GE(lock.fp_stats().gate_timeouts, 1u);

  lock.unlock(holder);

  // The lock must still work after the back-out, on either path.
  a_c_bo_bo_fp_lock::context again;
  ASSERT_TRUE(lock.try_lock(again, deadline_after(std::chrono::seconds(5))));
  lock.unlock(again);
  expect_identity(lock.stats(), "abortable back-out");
}

TEST_F(FastPathTest, AbortableMixedStressKeepsIdentity) {
  a_c_bo_clh_fp_lock lock(fastpath_policy{}, pass_policy{.limit = 8}, 2);
  std::atomic<long> completed{0};
  long counter = 0;
  constexpr int kThreads = 4, kIters = 800;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      numa::set_thread_cluster(static_cast<unsigned>(t % 2));
      a_c_bo_clh_fp_lock::context ctx;
      for (int i = 0; i < kIters; ++i) {
        if (lock.try_lock(ctx,
                          deadline_after(std::chrono::microseconds(200)))) {
          ++counter;
          lock.unlock(ctx);
          completed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, completed.load());
  // Acquisitions include backed-out inner acquisitions (they completed the
  // inner protocol), so the identity is >= the critical sections entered.
  const auto s = lock.stats();
  EXPECT_GE(s.acquisitions, static_cast<std::uint64_t>(completed.load()));
  expect_identity(s, "abortable stress");
}

}  // namespace
}  // namespace cohort
