// Exhaustive configuration matrix over the simulated locks: every registry
// lock is exercised at several thread counts, cluster counts and pass
// limits, each configuration checking mutual exclusion and exact operation
// accounting.  Parameterised so every configuration reports as its own test.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "sim/locks/registry.hpp"

namespace sim {
namespace {

struct matrix_config {
  std::string lock;
  unsigned threads;
  unsigned clusters;
  std::uint64_t pass_limit;
};

void PrintTo(const matrix_config& c, std::ostream* os) {
  *os << c.lock << "/t" << c.threads << "/c" << c.clusters << "/p"
      << c.pass_limit;
}

struct check_state {
  long counter = 0;
  bool in_cs = false;
  bool overlap = false;
};

template <typename Lock>
task<void> worker(thread_ctx& t, Lock& lock, check_state& chk, int iters) {
  typename Lock::context ctx(*t.eng);
  for (int i = 0; i < iters; ++i) {
    co_await do_lock(lock, t, ctx);
    if (chk.in_cs) chk.overlap = true;
    chk.in_cs = true;
    co_await t.eng->delay(t.rng.next_range(60) + 1);
    chk.in_cs = false;
    ++chk.counter;
    co_await do_unlock(lock, t, ctx);
    co_await t.eng->delay(t.rng.next_range(300) + 1);
  }
}

class LockMatrix : public ::testing::TestWithParam<matrix_config> {};

TEST_P(LockMatrix, MutualExclusionAndAccounting) {
  const auto& cfg = GetParam();
  constexpr int kIters = 150;
  check_state chk;
  lock_params lp{cfg.clusters, cfg.pass_limit};
  const bool known = with_lock_type(cfg.lock, lp, [&](auto factory) {
    config machine;
    machine.clusters = cfg.clusters;
    engine eng(machine);
    auto lock = factory(eng);
    using lock_t = typename std::remove_reference_t<decltype(*lock)>;
    for (unsigned i = 0; i < cfg.threads; ++i) {
      thread_ctx& t = eng.add_thread(i % cfg.clusters);
      eng.spawn(worker<lock_t>(t, *lock, chk, kIters));
    }
    eng.run(60'000'000'000ull);
  });
  ASSERT_TRUE(known) << cfg.lock;
  EXPECT_FALSE(chk.overlap);
  EXPECT_EQ(chk.counter, static_cast<long>(cfg.threads) * kIters);
}

std::vector<matrix_config> make_matrix() {
  std::vector<matrix_config> configs;
  for (const auto& lock : table1_lock_names()) {
    for (unsigned threads : {3u, 17u}) {
      configs.push_back({lock, threads, 4, 64});
    }
    // Odd cluster counts and degenerate pass limits for the cohort locks.
    if (lock.rfind("C-", 0) == 0) {
      configs.push_back({lock, 9, 3, 1});
      configs.push_back({lock, 8, 2, ~std::uint64_t{0}});
      configs.push_back({lock, 6, 1, 64});  // single cluster: degenerate NUMA
    }
  }
  return configs;
}

std::string matrix_name(
    const ::testing::TestParamInfo<matrix_config>& info) {
  std::string name = info.param.lock + "_t" +
                     std::to_string(info.param.threads) + "_c" +
                     std::to_string(info.param.clusters) + "_p" +
                     (info.param.pass_limit == ~std::uint64_t{0}
                          ? std::string("inf")
                          : std::to_string(info.param.pass_limit));
  for (char& c : name)
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, LockMatrix,
                         ::testing::ValuesIn(make_matrix()), matrix_name);

// The same matrix idea for the abortable locks, with mixed patience so some
// configurations abort heavily.
struct abort_config {
  std::string lock;
  unsigned threads;
  tick patience;
};

template <typename Lock>
task<void> abort_worker(thread_ctx& t, Lock& lock, check_state& chk,
                        int iters, tick patience) {
  typename Lock::context ctx(*t.eng);
  for (int i = 0; i < iters; ++i) {
    const bool ok =
        co_await do_try_lock(lock, t, ctx, t.eng->now() + patience);
    if (ok) {
      if (chk.in_cs) chk.overlap = true;
      chk.in_cs = true;
      co_await t.eng->delay(t.rng.next_range(60) + 1);
      chk.in_cs = false;
      ++chk.counter;
      co_await do_unlock(lock, t, ctx);
      ++t.ops;
    } else {
      ++t.aborts;
    }
    co_await t.eng->delay(t.rng.next_range(300) + 1);
  }
}

class AbortMatrix
    : public ::testing::TestWithParam<std::tuple<std::string, tick>> {};

TEST_P(AbortMatrix, NeverDeadlocksOrOvercounts) {
  const auto& [name, patience] = GetParam();
  constexpr unsigned kThreads = 14;
  constexpr int kIters = 150;
  check_state chk;
  std::uint64_t ops = 0, aborts = 0;
  lock_params lp{4, 64};
  const bool known = with_abortable_lock_type(name, lp, [&](auto factory) {
    engine eng(config{});
    auto lock = factory(eng);
    using lock_t = typename std::remove_reference_t<decltype(*lock)>;
    for (unsigned i = 0; i < kThreads; ++i) {
      thread_ctx& t = eng.add_thread(i % 4);
      eng.spawn(abort_worker<lock_t>(t, *lock, chk, kIters, patience));
    }
    eng.run(60'000'000'000ull);
    for (std::size_t i = 0; i < eng.threads(); ++i) {
      ops += eng.thread(i).ops;
      aborts += eng.thread(i).aborts;
    }
  });
  ASSERT_TRUE(known);
  EXPECT_FALSE(chk.overlap);
  EXPECT_EQ(ops + aborts, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(chk.counter, static_cast<long>(ops));
}

INSTANTIATE_TEST_SUITE_P(
    PatienceSweep, AbortMatrix,
    ::testing::Combine(::testing::ValuesIn(fig6_lock_names()),
                       ::testing::Values<tick>(50, 700, 20'000, 400'000)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, tick>>& info) {
      std::string name = std::get<0>(info.param) + "_p" +
                         std::to_string(std::get<1>(info.param));
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

}  // namespace
}  // namespace sim
