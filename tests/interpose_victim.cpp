// Plain pthread program used as the LD_PRELOAD interposition target (paper
// §4.2: cohort locks installed under the pthread mutex API without touching
// the application).  Run by CTest with LD_PRELOAD=libcohort_pthread.so; the
// program is also correct without the preload.
#include <pthread.h>

#include <cstdio>

namespace {

constexpr int kThreads = 4;
constexpr int kIters = 20000;

pthread_mutex_t mutex_a = PTHREAD_MUTEX_INITIALIZER;
pthread_mutex_t mutex_b = PTHREAD_MUTEX_INITIALIZER;
long counter_a = 0;
long counter_b = 0;

void* worker(void*) {
  for (int i = 0; i < kIters; ++i) {
    pthread_mutex_lock(&mutex_a);
    ++counter_a;
    pthread_mutex_unlock(&mutex_a);
    if (i % 3 == 0) {
      // Nested acquisition of a second mutex exercises per-thread contexts
      // for multiple interposed locks at once.
      pthread_mutex_lock(&mutex_b);
      ++counter_b;
      pthread_mutex_unlock(&mutex_b);
    }
  }
  return nullptr;
}

}  // namespace

int main() {
  pthread_t threads[kThreads];
  for (auto& t : threads) pthread_create(&t, nullptr, worker, nullptr);
  for (auto& t : threads) pthread_join(t, nullptr);

  const long want_a = static_cast<long>(kThreads) * kIters;
  const long want_b = static_cast<long>(kThreads) * ((kIters + 2) / 3);
  if (counter_a != want_a || counter_b != want_b) {
    std::fprintf(stderr, "counter mismatch: a=%ld (want %ld) b=%ld (want %ld)\n",
                 counter_a, want_a, counter_b, want_b);
    return 1;
  }
  std::printf("interpose_victim: ok (a=%ld b=%ld)\n", counter_a, counter_b);
  return 0;
}
