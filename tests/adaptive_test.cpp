// Adaptive lock tests: deterministic escalation/de-escalation along the
// policy ladder, swap safety while the lock is held (no acquisition is ever
// lost or blocked on a retired version), knob resolution through the
// flag/env default chain, and per-shard policy heterogeneity through the kv
// engine.  The multithreaded cases run under the ASan/UBSan and TSan CI
// jobs -- the swap protocol's pin/retire/gate handover is exactly what TSan
// is pointed at here.
#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

#include "kvstore/sharded_store.hpp"
#include "locks/adaptive.hpp"
#include "locks/registry.hpp"
#include "numa/topology.hpp"

namespace cohort {
namespace {

class AdaptiveLockTest : public ::testing::Test {
 protected:
  void SetUp() override {
    numa::set_system_topology(numa::topology::synthetic(2));
    numa::reset_round_robin_for_test();
  }
};

// One fully-contended round: the main thread holds the lock while kHelpers
// threads pin behind it, so at least kHelpers of the round's kHelpers+1
// acquisitions count as contended -- enough to make any window with
// escalate_pct <= 75 deterministically hot.
void contended_round(adaptive_lock& lock, adaptive_lock::context& main_ctx,
                     int helpers) {
  lock.lock(main_ctx);
  std::vector<std::thread> threads;
  for (int t = 0; t < helpers; ++t) {
    threads.emplace_back([&, t] {
      numa::set_thread_cluster(static_cast<unsigned>(t % 2));
      adaptive_lock::context ctx;
      lock.lock(ctx);
      lock.unlock(ctx);
    });
  }
  // Helpers have pinned (and therefore sampled as contended) once the pin
  // gauge covers the holder plus every helper.
  while (lock.pinned() < static_cast<std::uint32_t>(helpers) + 1)
    std::this_thread::yield();
  lock.unlock(main_ctx);
  for (auto& th : threads) th.join();
}

TEST_F(AdaptiveLockTest, LadderNamesAreRegistryNames) {
  for (const char* rung : adaptive_lock::ladder())
    EXPECT_TRUE(reg::is_lock_name(rung)) << rung;
}

TEST_F(AdaptiveLockTest, StartsOnLadderBaseAndSynthesisesStats) {
  adaptive_lock lock;  // default policy: window 2048, so no decisions here
  EXPECT_EQ(lock.level(), 0u);
  adaptive_lock::context ctx;
  for (int i = 0; i < 10; ++i) {
    lock.lock(ctx);
    // The adaptive holder is the global holder even on the TATAS rung.
    EXPECT_EQ(lock.unlock(ctx), release_kind::global);
  }
  const cohort_stats s = lock.stats();
  EXPECT_EQ(s.acquisitions, 10u);
  EXPECT_EQ(s.global_acquires, 10u);
  EXPECT_EQ(s.local_handoffs, 0u);
  EXPECT_EQ(s.policy_switches, 0u);
  EXPECT_EQ(s.current_policy, 1u);  // 1-based rung gauge
  EXPECT_EQ(lock.switches(), 0u);
}

TEST_F(AdaptiveLockTest, EscalatesUnderContentionThenDeescalatesWhenCold) {
  adaptive_lock lock({.window = 32,
                      .escalate_pct = 50,
                      .deescalate_pct = 10,
                      .hysteresis = 1,
                      .max_level = 2});
  adaptive_lock::context ctx;

  // Hot phase: every round is >= 75% contended, so each completed window is
  // hot and (hysteresis 1) escalates one rung.  Two windows reach the
  // C-BO-MCS ceiling; the round bound only guards a broken monitor.
  int rounds = 0;
  while (lock.level() < 2u && rounds < 200) {
    contended_round(lock, ctx, /*helpers=*/3);
    ++rounds;
  }
  EXPECT_EQ(lock.level(), 2u);
  const std::uint64_t up_switches = lock.switches();
  EXPECT_GE(up_switches, 2u);

  // Cold phase: solo acquisitions are never contended, so every window is
  // 0% <= deescalate_pct and the ladder walks back to TATAS.
  for (int i = 0; i < 500 && lock.level() > 0u; ++i) {
    lock.lock(ctx);
    lock.unlock(ctx);
  }
  EXPECT_EQ(lock.level(), 0u);
  EXPECT_GE(lock.switches(), up_switches + 2);
  EXPECT_EQ(lock.stats().current_policy, 1u);
}

TEST_F(AdaptiveLockTest, GcrRungIsGatedOnWaiterCountAndOptIn) {
  // max_level 3 enables the gcr rung, but with an unreachable waiter gate
  // the ladder must stop at C-BO-MCS no matter how hot it runs.
  adaptive_lock gated({.window = 16,
                       .escalate_pct = 50,
                       .deescalate_pct = 1,
                       .hysteresis = 1,
                       .max_level = 3,
                       .gcr_waiters = 1000});
  adaptive_lock::context ctx;
  for (int i = 0; i < 40 && gated.level() < 3u; ++i)
    contended_round(gated, ctx, /*helpers=*/3);
  EXPECT_EQ(gated.level(), 2u);

  // With the gate at 2 waiters the same load escalates all the way up.
  adaptive_lock open({.window = 16,
                      .escalate_pct = 50,
                      .deescalate_pct = 1,
                      .hysteresis = 1,
                      .max_level = 3,
                      .gcr_waiters = 2});
  adaptive_lock::context octx;
  int rounds = 0;
  while (open.level() < 3u && rounds < 200) {
    contended_round(open, octx, /*helpers=*/3);
    ++rounds;
  }
  EXPECT_EQ(open.level(), 3u);
}

TEST_F(AdaptiveLockTest, SwapDuringHeldLockDrainsAndAdmitsNewAcquirers) {
  // window 4 and escalate_pct 25: the round's own four acquisitions (three
  // contended) complete a hot window, so the swap decision fires inside the
  // main thread's unlock *while helpers are still pinned on the old
  // version* -- the drain path under test.
  adaptive_lock lock({.window = 4,
                      .escalate_pct = 25,
                      .deescalate_pct = 1,
                      .hysteresis = 1,
                      .max_level = 2});
  adaptive_lock::context ctx;
  const std::uint32_t before = lock.level();
  contended_round(lock, ctx, /*helpers=*/3);
  // Every helper completed (join returned), nobody blocked on the retired
  // version, and the swap landed.
  EXPECT_GT(lock.level(), before);
  EXPECT_GE(lock.switches(), 1u);

  // A fresh context acquires through the successor's gate.
  adaptive_lock::context fresh;
  lock.lock(fresh);
  lock.unlock(fresh);
  const cohort_stats s = lock.stats();
  EXPECT_EQ(s.current_policy, lock.level() + 1);
  // Lifetime counters span retired versions: 4 round acquisitions + 1.
  EXPECT_EQ(s.acquisitions, 5u);
}

TEST_F(AdaptiveLockTest, SwapStormKeepsMutualExclusion) {
  // Hammer with a hair-trigger monitor so swaps happen constantly in both
  // directions; the non-atomic counter and the exact lifetime acquisition
  // count catch any overlap between a retired version's holder and the
  // successor's.
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  adaptive_lock lock({.window = 16,
                      .escalate_pct = 1,
                      .deescalate_pct = 1,
                      .hysteresis = 1,
                      .max_level = 2});
  long counter = 0;  // non-atomic: the adaptive lock is the only sync
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      numa::set_thread_cluster(static_cast<unsigned>(t % 2));
      adaptive_lock::context ctx;
      for (int i = 0; i < kIters; ++i) {
        lock.lock(ctx);
        ++counter;
        lock.unlock(ctx);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
  // Exactly one acquisition counted per lock() across all versions.
  EXPECT_EQ(lock.stats().acquisitions,
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST_F(AdaptiveLockTest, KnobChainResolvesEnvThenFlags) {
  // Env layer beats compiled defaults...
  ::setenv("COHORT_ADAPTIVE_WINDOW", "123", 1);
  ::setenv("COHORT_ADAPTIVE_ESCALATE", "77", 1);
  ::setenv("COHORT_ADAPTIVE_DEESCALATE", "7", 1);
  ::setenv("COHORT_ADAPTIVE_HYSTERESIS", "5", 1);
  ::setenv("COHORT_ADAPTIVE_MAX_LEVEL", "3", 1);
  ::setenv("COHORT_ADAPTIVE_GCR_WAITERS", "9", 1);
  const adaptive_policy from_env = reg::effective_adaptive({});
  EXPECT_EQ(from_env.window, 123u);
  EXPECT_EQ(from_env.escalate_pct, 77u);
  EXPECT_EQ(from_env.deescalate_pct, 7u);
  EXPECT_EQ(from_env.hysteresis, 5u);
  EXPECT_EQ(from_env.max_level, 3u);
  EXPECT_EQ(from_env.gcr_waiters, 9u);
  // ...and explicit params (the --adaptive-* flags) beat the env.
  reg::lock_params lp;
  lp.adaptive.window = 64;
  lp.adaptive.max_level = 1;
  const adaptive_policy from_flags = reg::effective_adaptive(lp);
  EXPECT_EQ(from_flags.window, 64u);
  EXPECT_EQ(from_flags.max_level, 1u);
  EXPECT_EQ(from_flags.escalate_pct, 77u);  // env still fills the rest
  for (const char* var :
       {"COHORT_ADAPTIVE_WINDOW", "COHORT_ADAPTIVE_ESCALATE",
        "COHORT_ADAPTIVE_DEESCALATE", "COHORT_ADAPTIVE_HYSTERESIS",
        "COHORT_ADAPTIVE_MAX_LEVEL", "COHORT_ADAPTIVE_GCR_WAITERS"})
    ::unsetenv(var);
  // Back to compiled defaults once the env is clean.
  EXPECT_EQ(reg::effective_adaptive({}).window, adaptive_policy{}.window);
}

TEST_F(AdaptiveLockTest, RegistryEntryBuildsAndReportsAdaptiveGauges) {
  auto lock = reg::make_lock("adaptive", {.clusters = 2});
  ASSERT_NE(lock, nullptr);
  EXPECT_EQ(lock->name(), "adaptive");
  EXPECT_FALSE(lock->abortable());
  auto ctx = lock->make_context();
  lock->lock(ctx);
  lock->unlock(ctx);
  const auto s = lock->stats();
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->acquisitions, 1u);
  EXPECT_EQ(s->current_policy, 1u);
  EXPECT_EQ(s->policy_switches, 0u);
  const reg::lock_descriptor* d = reg::find_lock("adaptive");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->family, reg::lock_family::adaptive);
  EXPECT_TRUE(d->uses_adaptive_knobs);
}

TEST_F(AdaptiveLockTest, ShardedStoreEscalatesHotShardOnly) {
  // The headline behaviour: under skewed load only the hot shard pays for a
  // heavier lock; cold shards stay on the TATAS rung.
  bool ran = false;
  kvstore::with_store(
      "adaptive", {.shards = 4, .buckets = 64},
      {.adaptive = {.window = 64, .escalate_pct = 30, .hysteresis = 1}},
      [&](auto& store) {
        ran = true;
        const std::string hot_key = "hot";
        const std::size_t hot = store.shard_of(hot_key);
        {
          auto h = store.make_handle();
          store.set(h, hot_key, "v");
        }
        // Hammer the one key with genuinely overlapping threads (a start
        // barrier, then sustained load) until its shard escalates; with
        // four threads on one lock the contended fraction is far above
        // 30%, so the iteration bound only guards a broken monitor.
        constexpr int kThreads = 4;
        std::atomic<bool> go{false}, done{false};
        std::vector<std::thread> threads;
        for (int t = 0; t < kThreads; ++t) {
          threads.emplace_back([&, t] {
            cohort::numa::set_thread_cluster(static_cast<unsigned>(t % 2));
            auto h = store.make_handle();
            while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
            for (int i = 0; i < 2'000'000 && !done.load(std::memory_order_relaxed);
                 ++i)
              ASSERT_TRUE(store.get(h, hot_key).has_value());
          });
        }
        go.store(true, std::memory_order_release);
        for (int spins = 0; spins < 20'000; ++spins) {
          if (store.lock_stats(hot)->current_policy > 1u) break;
          std::this_thread::yield();
        }
        done.store(true, std::memory_order_relaxed);
        for (auto& th : threads) th.join();
        EXPECT_GT(store.lock_stats(hot)->current_policy, 1u);
        EXPECT_GT(store.lock_stats(hot)->policy_switches, 0u);
        for (std::size_t s = 0; s < store.shard_count(); ++s) {
          if (s == hot) continue;
          EXPECT_EQ(store.lock_stats(s)->current_policy, 1u) << s;
          EXPECT_EQ(store.lock_stats(s)->policy_switches, 0u) << s;
        }
      });
  EXPECT_TRUE(ran);
}

}  // namespace
}  // namespace cohort
