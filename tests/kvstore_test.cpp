// Key-value store (memcached substitute) tests: hash/LRU correctness and a
// concurrent stress under the cache lock.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "kvstore/kvstore.hpp"
#include "numa/topology.hpp"

namespace kvstore {
namespace {

TEST(Fnv1a, KnownVectors) {
  // Reference values for FNV-1a 64-bit.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(KvStore, SetGetEraseRoundTrip) {
  kv_store<> kv(64);
  EXPECT_FALSE(kv.get("missing").has_value());
  kv.set("k1", "v1");
  kv.set("k2", "v2");
  EXPECT_EQ(kv.get("k1").value(), "v1");
  EXPECT_EQ(kv.get("k2").value(), "v2");
  kv.set("k1", "v1b");  // overwrite
  EXPECT_EQ(kv.get("k1").value(), "v1b");
  EXPECT_EQ(kv.size(), 2u);
  EXPECT_TRUE(kv.erase("k1"));
  EXPECT_FALSE(kv.erase("k1"));
  EXPECT_FALSE(kv.get("k1").has_value());
  EXPECT_EQ(kv.size(), 1u);
}

TEST(KvStore, StatsCountHitsAndMisses) {
  kv_store<> kv(16);
  kv.set("a", "1");
  (void)kv.get("a");
  (void)kv.get("b");
  const auto s = kv.stats();
  EXPECT_EQ(s.sets, 1u);
  EXPECT_EQ(s.gets, 2u);
  EXPECT_EQ(s.get_hits, 1u);
}

TEST(KvStore, LruEvictsOldest) {
  kv_store<> kv(16, /*max_items=*/3);
  kv.set("a", "1");
  kv.set("b", "2");
  kv.set("c", "3");
  (void)kv.get("a");  // bump a: b is now the oldest
  kv.set("d", "4");   // evicts b
  EXPECT_TRUE(kv.get("a").has_value());
  EXPECT_FALSE(kv.get("b").has_value());
  EXPECT_TRUE(kv.get("c").has_value());
  EXPECT_TRUE(kv.get("d").has_value());
  EXPECT_EQ(kv.stats().evictions, 1u);
  EXPECT_EQ(kv.size(), 3u);
}

TEST(KvStore, ManyKeysAcrossBuckets) {
  kv_store<> kv(8);  // force chains
  const auto keys = make_keyspace(500);
  for (std::size_t i = 0; i < keys.size(); ++i)
    kv.set(keys[i], std::to_string(i));
  for (std::size_t i = 0; i < keys.size(); ++i)
    EXPECT_EQ(kv.get(keys[i]).value(), std::to_string(i));
  EXPECT_EQ(kv.size(), 500u);
}

TEST(KvStore, ConcurrentDisjointWriters) {
  cohort::numa::set_system_topology(cohort::numa::topology::synthetic(2));
  kv_store<cohort::c_bo_mcs_lock> kv(256);
  constexpr int kThreads = 4, kKeys = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&kv, t] {
      cohort::numa::set_thread_cluster(static_cast<unsigned>(t % 2));
      for (int i = 0; i < kKeys; ++i) {
        const std::string key =
            "t" + std::to_string(t) + "-" + std::to_string(i);
        kv.set(key, key + "-value");
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(kv.size(), static_cast<std::size_t>(kThreads) * kKeys);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kKeys; ++i) {
      const std::string key = "t" + std::to_string(t) + "-" + std::to_string(i);
      ASSERT_EQ(kv.get(key).value(), key + "-value");
    }
  }
}

TEST(KvStore, ConcurrentMixedWorkload) {
  kv_store<cohort::c_tkt_tkt_lock> kv(256);
  const auto keys = make_keyspace(200);
  for (const auto& k : keys) kv.set(k, "init");
  std::atomic<long> hits{0};
  constexpr int kThreads = 4, kOps = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      cohort::xorshift rng(static_cast<std::uint64_t>(t) + 3);
      for (int i = 0; i < kOps; ++i) {
        const auto& key = keys[rng.next_range(keys.size())];
        if (rng.next_range(10) < 9) {
          if (kv.get(key).has_value())
            hits.fetch_add(1, std::memory_order_relaxed);
        } else {
          kv.set(key, "updated");
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // Keys are never erased, so every get hits.
  const auto s = kv.stats();
  EXPECT_EQ(s.get_hits, s.gets);
  EXPECT_EQ(static_cast<long>(s.get_hits), hits.load());
}

}  // namespace
}  // namespace kvstore
