// kv engine tests, layer by layer: hash vectors, the lock-free-of-locking
// kv_shard core (hash/LRU/stats semantics), and the sharded_store policy
// paths -- monomorphised registry dispatch (with_store) and the type-erased
// any_lock construction (make_any_sharded_store).  Cross-thread consistency
// lives in sharded_store_test.cpp.
#include <gtest/gtest.h>

#include <string>

#include "kvstore/kv_shard.hpp"
#include "kvstore/sharded_store.hpp"
#include "numa/topology.hpp"

namespace kvstore {
namespace {

TEST(Fnv1a, KnownVectors) {
  // Reference values for FNV-1a 64-bit.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

// kv_shard is driven without any lock here: single-threaded semantics tests.

std::optional<std::string> sget(kv_shard& s, const std::string& k) {
  return s.get(k, fnv1a64(k));
}
void sset(kv_shard& s, const std::string& k, std::string v) {
  s.set(k, std::move(v), fnv1a64(k));
}
bool serase(kv_shard& s, const std::string& k) {
  return s.erase(k, fnv1a64(k));
}

TEST(KvShard, SetGetEraseRoundTrip) {
  kv_shard shard(64);
  EXPECT_FALSE(sget(shard, "missing").has_value());
  sset(shard, "k1", "v1");
  sset(shard, "k2", "v2");
  EXPECT_EQ(sget(shard, "k1").value(), "v1");
  EXPECT_EQ(sget(shard, "k2").value(), "v2");
  sset(shard, "k1", "v1b");  // overwrite
  EXPECT_EQ(sget(shard, "k1").value(), "v1b");
  EXPECT_EQ(shard.size(), 2u);
  EXPECT_TRUE(serase(shard, "k1"));
  EXPECT_FALSE(serase(shard, "k1"));
  EXPECT_FALSE(sget(shard, "k1").has_value());
  EXPECT_EQ(shard.size(), 1u);
}

TEST(KvShard, StatsCountHitsAndMisses) {
  kv_shard shard(16);
  sset(shard, "a", "1");
  (void)sget(shard, "a");
  (void)sget(shard, "b");
  const auto& s = shard.stats();
  EXPECT_EQ(s.sets, 1u);
  EXPECT_EQ(s.gets, 2u);
  EXPECT_EQ(s.get_hits, 1u);
}

TEST(KvShard, LruEvictsOldest) {
  kv_shard shard(16, /*max_items=*/3);
  sset(shard, "a", "1");
  sset(shard, "b", "2");
  sset(shard, "c", "3");
  (void)sget(shard, "a");  // bump a: b is now the oldest
  sset(shard, "d", "4");   // evicts b
  EXPECT_TRUE(sget(shard, "a").has_value());
  EXPECT_FALSE(sget(shard, "b").has_value());
  EXPECT_TRUE(sget(shard, "c").has_value());
  EXPECT_TRUE(sget(shard, "d").has_value());
  EXPECT_EQ(shard.stats().evictions, 1u);
  EXPECT_EQ(shard.size(), 3u);
}

TEST(KvShard, ManyKeysAcrossBuckets) {
  kv_shard shard(8);  // force chains
  const auto keys = make_keyspace(500);
  for (std::size_t i = 0; i < keys.size(); ++i)
    sset(shard, keys[i], std::to_string(i));
  for (std::size_t i = 0; i < keys.size(); ++i)
    EXPECT_EQ(sget(shard, keys[i]).value(), std::to_string(i));
  EXPECT_EQ(shard.size(), 500u);
}

// ---- policy layer: registry-name dispatch -----------------------------------

TEST(ShardedStore, SingleShardReproducesCacheLockSemantics) {
  cohort::numa::set_system_topology(cohort::numa::topology::synthetic(2));
  bool ran = false;
  const bool known = with_store(
      "C-TKT-TKT", {.shards = 1, .buckets = 64}, {}, [&](auto& store) {
        ran = true;
        ASSERT_EQ(store.shard_count(), 1u);
        auto h = store.make_handle();
        EXPECT_FALSE(store.get(h, "missing").has_value());
        store.set(h, "k1", "v1");
        store.set(h, "k2", "v2");
        EXPECT_EQ(store.get(h, "k1").value(), "v1");
        store.set(h, "k1", "v1b");
        EXPECT_EQ(store.get(h, "k1").value(), "v1b");
        EXPECT_EQ(store.size(), 2u);
        EXPECT_TRUE(store.erase(h, "k1"));
        EXPECT_FALSE(store.erase(h, "k1"));
        EXPECT_EQ(store.size(), 1u);
        const auto s = store.stats();
        EXPECT_EQ(s.sets, 3u);
        EXPECT_EQ(s.gets, 3u);
        EXPECT_EQ(s.get_hits, 2u);
        // The single shard's lock is a cohort composition: batching counters
        // must be present and match the op count.
        const auto ls = store.lock_stats(0);
        ASSERT_TRUE(ls.has_value());
        EXPECT_EQ(ls->acquisitions, 8u);  // 3 sets + 3 gets + 2 erases
      });
  EXPECT_TRUE(known);
  EXPECT_TRUE(ran);
}

TEST(ShardedStore, UnknownLockNameRejected) {
  EXPECT_FALSE(with_store("no-such-lock", {}, {}, [](auto&) { FAIL(); }));
  EXPECT_EQ(make_any_sharded_store("no-such-lock"), nullptr);
}

TEST(ShardedStore, ShardingSpreadsKeysAndAggregates) {
  cohort::numa::set_system_topology(cohort::numa::topology::synthetic(2));
  auto store =
      make_any_sharded_store("C-BO-MCS", {.shards = 4, .buckets = 32});
  ASSERT_NE(store, nullptr);
  ASSERT_EQ(store->shard_count(), 4u);
  // Home clusters are assigned round-robin over the topology.
  EXPECT_EQ(store->home_cluster(0), 0u);
  EXPECT_EQ(store->home_cluster(1), 1u);
  EXPECT_EQ(store->home_cluster(2), 0u);
  EXPECT_EQ(store->home_cluster(3), 1u);

  const auto keys = make_keyspace(400);
  auto h = store->make_handle();
  for (std::size_t i = 0; i < keys.size(); ++i)
    store->set(h, keys[i], std::to_string(i));
  for (std::size_t i = 0; i < keys.size(); ++i)
    EXPECT_EQ(store->get(h, keys[i]).value(), std::to_string(i));
  EXPECT_EQ(store->size(), 400u);

  // Every shard holds its own slice and the slices partition the keyspace.
  std::size_t resident = 0;
  std::size_t populated_shards = 0;
  for (std::size_t s = 0; s < store->shard_count(); ++s) {
    resident += store->shard(s).size();
    if (store->shard(s).size() != 0) ++populated_shards;
    EXPECT_TRUE(store->lock_stats(s).has_value());
  }
  EXPECT_EQ(resident, 400u);
  EXPECT_GT(populated_shards, 1u);
  // shard_of agrees with where the items actually landed.
  for (const auto& k : keys) EXPECT_LT(store->shard_of(k), 4u);

  const auto agg = store->stats();
  EXPECT_EQ(agg.sets, 400u);
  EXPECT_EQ(agg.gets, 400u);
  EXPECT_EQ(agg.get_hits, 400u);
}

TEST(ShardedStore, EvictionBudgetSplitsAcrossShards) {
  cohort::numa::set_system_topology(cohort::numa::topology::synthetic(2));
  // Total budget 40 over 4 shards = 10 per shard.
  auto store = make_any_sharded_store(
      "pthread", {.shards = 4, .buckets = 16, .max_items = 40});
  ASSERT_NE(store, nullptr);
  auto h = store->make_handle();
  const auto keys = make_keyspace(400);
  for (const auto& k : keys) store->set(h, k, "v");
  EXPECT_LE(store->size(), 40u);
  for (std::size_t s = 0; s < store->shard_count(); ++s) {
    EXPECT_LE(store->shard(s).size(), 10u);
    // Unique keys only: every set is an insert, so inserts that are no
    // longer resident must have been evicted.
    EXPECT_EQ(store->shard(s).stats().sets,
              store->shard(s).size() + store->shard(s).stats().evictions);
  }
  // Plain pthread locks expose no cohort counters.
  EXPECT_FALSE(store->lock_stats(0).has_value());
}

TEST(ShardedStore, NumaPlacementConstructsAndServes) {
  cohort::numa::set_system_topology(cohort::numa::topology::synthetic(2));
  // numa_place exercises the pinned first-touch construction path; on a
  // synthetic topology pinning fails gracefully and placement degrades to
  // plain construction.
  bool ran = false;
  const bool known = with_store(
      "C-TKT-TKT", {.shards = 2, .buckets = 32, .numa_place = true}, {},
      [&](auto& store) {
        ran = true;
        auto h = store.make_handle();
        store.set(h, "k", "v");
        EXPECT_EQ(store.get(h, "k").value(), "v");
        EXPECT_EQ(store.home_cluster(0), 0u);
        EXPECT_EQ(store.home_cluster(1), 1u);
      });
  EXPECT_TRUE(known);
  EXPECT_TRUE(ran);
}

}  // namespace
}  // namespace kvstore
