// Multithreaded sharded_store consistency: concurrent get/set/erase across
// clusters, with size/eviction/hit-count invariants checked at quiescence
// (after join).  Runs under the ASan/UBSan and TSan CI jobs -- the kv engine
// mutates unsynchronised shard state under the registry locks, so a locking
// bug here is exactly what the sanitizers are pointed at.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "kvstore/sharded_store.hpp"
#include "numa/topology.hpp"
#include "util/rng.hpp"

namespace kvstore {
namespace {

std::string owned_key(int t, int i) {
  return "t" + std::to_string(t) + "-" + std::to_string(i);
}

TEST(ShardedStoreConcurrent, DisjointWritersAcrossClusters) {
  cohort::numa::set_system_topology(cohort::numa::topology::synthetic(2));
  bool ran = false;
  with_store(
      "C-BO-MCS", {.shards = 4, .buckets = 64}, {}, [&](auto& store) {
        ran = true;
        constexpr int kThreads = 4, kKeys = 400;
        std::vector<std::thread> threads;
        for (int t = 0; t < kThreads; ++t) {
          threads.emplace_back([&store, t] {
            cohort::numa::set_thread_cluster(static_cast<unsigned>(t % 2));
            auto h = store.make_handle();
            for (int i = 0; i < kKeys; ++i) {
              const std::string key = owned_key(t, i);
              store.set(h, key, key + "-value");
            }
          });
        }
        for (auto& th : threads) th.join();

        EXPECT_EQ(store.size(), static_cast<std::size_t>(kThreads) * kKeys);
        auto h = store.make_handle();
        for (int t = 0; t < kThreads; ++t)
          for (int i = 0; i < kKeys; ++i) {
            const std::string key = owned_key(t, i);
            ASSERT_EQ(store.get(h, key).value(), key + "-value");
          }
        // Unique keys: resident items across shards partition the inserts.
        std::size_t resident = 0;
        for (std::size_t s = 0; s < store.shard_count(); ++s)
          resident += store.shard(s).size();
        EXPECT_EQ(resident, store.size());
      });
  EXPECT_TRUE(ran);
}

// The main consistency stress: every thread owns a key range it sets and
// erases, all threads read a shared prefilled range, and every thread counts
// its own operations.  At quiescence the store's aggregated counters must
// equal the sum of the per-thread counts -- the kv counters are plain
// non-atomic fields guarded only by the shard locks, so a lock that admits
// two threads at once loses updates and fails these identities.
TEST(ShardedStoreConcurrent, MixedGetSetEraseInvariants) {
  cohort::numa::set_system_topology(cohort::numa::topology::synthetic(2));
  bool ran = false;
  with_store(
      "C-TKT-TKT", {.shards = 4, .buckets = 64}, {}, [&](auto& store) {
        ran = true;
        const auto shared_keys = make_keyspace(256);
        {
          auto h = store.make_handle();
          for (const auto& k : shared_keys) store.set(h, k, "shared");
        }
        const std::uint64_t prefill_sets = store.stats().sets;

        constexpr int kThreads = 4, kOps = 3000;
        std::atomic<std::uint64_t> total_gets{0}, total_sets{0},
            total_erases{0}, total_erase_hits{0};
        std::vector<std::thread> threads;
        for (int t = 0; t < kThreads; ++t) {
          threads.emplace_back([&, t] {
            cohort::numa::set_thread_cluster(static_cast<unsigned>(t % 2));
            auto h = store.make_handle();
            cohort::xorshift rng(static_cast<std::uint64_t>(t) + 7);
            std::uint64_t gets = 0, sets = 0, erases = 0, erase_hits = 0;
            for (int i = 0; i < kOps; ++i) {
              const std::uint64_t dice = rng.next_range(10);
              if (dice < 6) {
                // Shared range: never erased, so every get must hit.
                const auto& key =
                    shared_keys[rng.next_range(shared_keys.size())];
                ASSERT_TRUE(store.get(h, key).has_value());
                ++gets;
              } else if (dice < 8) {
                store.set(h, owned_key(t, static_cast<int>(rng.next_range(64))),
                          "mine");
                ++sets;
              } else {
                ++erases;
                if (store.erase(
                        h, owned_key(t, static_cast<int>(rng.next_range(64)))))
                  ++erase_hits;
              }
            }
            total_gets.fetch_add(gets);
            total_sets.fetch_add(sets);
            total_erases.fetch_add(erases);
            total_erase_hits.fetch_add(erase_hits);
          });
        }
        for (auto& th : threads) th.join();

        // Quiescent aggregation after join.
        const kv_stats agg = store.stats();
        EXPECT_EQ(agg.gets, total_gets.load());
        EXPECT_EQ(agg.get_hits, total_gets.load());  // shared range only
        EXPECT_EQ(agg.sets, prefill_sets + total_sets.load());
        EXPECT_EQ(agg.evictions, 0u);  // no budget configured

        // Residency identity: shared keys all present; each owned key is
        // present iff its last writer was a set, and the per-shard sizes sum
        // to exactly the resident count.
        auto h = store.make_handle();
        std::size_t present = 0;
        for (const auto& k : shared_keys)
          present += store.get(h, k).has_value() ? 1 : 0;
        EXPECT_EQ(present, shared_keys.size());
        std::size_t owned_present = 0;
        for (int t = 0; t < kThreads; ++t)
          for (int i = 0; i < 64; ++i)
            owned_present += store.get(h, owned_key(t, i)).has_value() ? 1 : 0;
        EXPECT_EQ(store.size(), shared_keys.size() + owned_present);

        // Per-shard cohort counters are present and sum to >= the op count
        // (each op is exactly one acquisition of one shard lock).
        std::uint64_t acquisitions = 0;
        for (std::size_t s = 0; s < store.shard_count(); ++s) {
          auto ls = store.lock_stats(s);
          ASSERT_TRUE(ls.has_value());
          acquisitions += ls->acquisitions;
        }
        // Post-join gets above are acquisitions too, hence >=.
        EXPECT_GE(acquisitions,
                  total_gets.load() + total_sets.load() + total_erases.load());
      });
  EXPECT_TRUE(ran);
}

TEST(ShardedStoreConcurrent, EvictionBudgetHeldUnderContention) {
  cohort::numa::set_system_topology(cohort::numa::topology::synthetic(2));
  // Type-erased path under contention (the server example's configuration).
  auto store = make_any_sharded_store(
      "C-BO-MCS", {.shards = 2, .buckets = 32, .max_items = 64});
  ASSERT_NE(store, nullptr);
  constexpr int kThreads = 4, kKeys = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      cohort::numa::set_thread_cluster(static_cast<unsigned>(t % 2));
      auto h = store->make_handle();
      for (int i = 0; i < kKeys; ++i)
        store->set(h, owned_key(t, i), "v");
    });
  }
  for (auto& th : threads) th.join();

  // Budget 64 over 2 shards = 32 per shard, never exceeded.
  EXPECT_LE(store->size(), 64u);
  const kv_stats agg = store->stats();
  EXPECT_EQ(agg.sets, static_cast<std::uint64_t>(kThreads) * kKeys);
  for (std::size_t s = 0; s < store->shard_count(); ++s) {
    EXPECT_LE(store->shard(s).size(), 32u);
    // Unique keys: inserts not resident must have been evicted.
    EXPECT_EQ(store->shard(s).stats().sets,
              store->shard(s).size() + store->shard(s).stats().evictions);
  }
}

// flush() walks every shard lock in turn while other handles keep reading
// and writing -- the command layer's flush_all racing live traffic.  Run on
// the adaptive lock with a hair-trigger monitor so the flusher's sweeps
// overlap hot-swaps in flight: a flush must neither lose items it did not
// race nor corrupt the counters, whichever rung each shard is on.
TEST(ShardedStoreConcurrent, FlushRacesConcurrentGetSet) {
  cohort::numa::set_system_topology(cohort::numa::topology::synthetic(2));
  bool ran = false;
  with_store(
      "adaptive", {.shards = 4, .buckets = 64},
      {.adaptive = {.window = 32, .escalate_pct = 20, .hysteresis = 1}},
      [&](auto& store) {
        ran = true;
        constexpr int kWriters = 3, kOps = 4000, kFlushes = 50;
        std::atomic<std::uint64_t> total_gets{0}, total_sets{0};
        std::atomic<bool> stop{false};
        std::vector<std::thread> threads;
        for (int t = 0; t < kWriters; ++t) {
          threads.emplace_back([&, t] {
            cohort::numa::set_thread_cluster(static_cast<unsigned>(t % 2));
            auto h = store.make_handle();
            std::uint64_t gets = 0, sets = 0;
            for (int i = 0; i < kOps; ++i) {
              const std::string key = owned_key(t, i % 64);
              store.set(h, key, "v");
              ++sets;
              // May miss if a flush swept between the set and the get;
              // both outcomes are legal, the op just must not wedge.
              (void)store.get(h, key);
              ++gets;
            }
            total_gets.fetch_add(gets);
            total_sets.fetch_add(sets);
          });
        }
        std::thread flusher([&] {
          cohort::numa::set_thread_cluster(1);
          auto h = store.make_handle();
          for (int i = 0; i < kFlushes; ++i) {
            store.flush(h);
            std::this_thread::yield();
          }
          stop.store(true);
        });
        for (auto& th : threads) th.join();
        flusher.join();
        EXPECT_TRUE(stop.load());

        // Quiescent audit: flush preserves cumulative counters, so the op
        // totals must balance exactly despite the races.
        const kv_stats agg = store.stats();
        EXPECT_EQ(agg.gets, total_gets.load());
        EXPECT_EQ(agg.sets, total_sets.load());
        EXPECT_LE(agg.get_hits, agg.gets);
        EXPECT_EQ(agg.evictions, 0u);

        // The store still works: re-set and read back, then a final flush
        // with no concurrent writers empties it completely.
        auto h = store.make_handle();
        for (int t = 0; t < kWriters; ++t)
          store.set(h, owned_key(t, 0), "again");
        for (int t = 0; t < kWriters; ++t)
          EXPECT_EQ(store.get(h, owned_key(t, 0)).value(), "again");
        store.flush(h);
        EXPECT_EQ(store.size(), 0u);
        for (std::size_t s = 0; s < store.shard_count(); ++s)
          EXPECT_EQ(store.shard(s).size(), 0u);
      });
  EXPECT_TRUE(ran);
}

TEST(ShardedStoreConcurrent, NumaPlacedStoreSurvivesMixedLoad) {
  cohort::numa::set_system_topology(cohort::numa::topology::synthetic(2));
  bool ran = false;
  with_store(
      "C-MCS-MCS", {.shards = 2, .buckets = 64, .numa_place = true}, {},
      [&](auto& store) {
        ran = true;
        const auto keys = make_keyspace(128);
        {
          auto h = store.make_handle();
          for (const auto& k : keys) store.set(h, k, "init");
        }
        constexpr int kThreads = 4, kOps = 2000;
        std::vector<std::thread> threads;
        for (int t = 0; t < kThreads; ++t) {
          threads.emplace_back([&, t] {
            cohort::numa::set_thread_cluster(static_cast<unsigned>(t % 2));
            auto h = store.make_handle();
            cohort::xorshift rng(static_cast<std::uint64_t>(t) + 3);
            for (int i = 0; i < kOps; ++i) {
              const auto& key = keys[rng.next_range(keys.size())];
              if (rng.next_range(10) < 9)
                ASSERT_TRUE(store.get(h, key).has_value());
              else
                store.set(h, key, "updated");
            }
          });
        }
        for (auto& th : threads) th.join();
        const kv_stats agg = store.stats();
        EXPECT_EQ(agg.get_hits, agg.gets);  // keys are never erased
        EXPECT_EQ(agg.gets + agg.sets,
                  static_cast<std::uint64_t>(kThreads) * kOps + keys.size());
        EXPECT_EQ(store.size(), keys.size());
      });
  EXPECT_TRUE(ran);
}

}  // namespace
}  // namespace kvstore
