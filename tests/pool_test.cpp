#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/pool.hpp"

namespace cohort {
namespace {

struct test_node : pool_node {
  int payload = 0;
};

TEST(NodePool, AcquireAllocatesThenReuses) {
  node_pool<test_node> pool;
  test_node* a = pool.acquire();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(pool.allocated(), 1u);
  pool.release(a);
  test_node* b = pool.acquire();
  EXPECT_EQ(b, a);  // LIFO reuse
  EXPECT_EQ(pool.allocated(), 1u);
}

TEST(NodePool, DistinctNodesWhileOutstanding) {
  node_pool<test_node> pool;
  test_node* a = pool.acquire();
  test_node* b = pool.acquire();
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.allocated(), 2u);
  pool.release(a);
  pool.release(b);
}

TEST(NodePool, MultiProducerReturns) {
  node_pool<test_node> pool;
  constexpr int per_thread = 200;
  // Owner hands out nodes; 4 foreign threads return them concurrently.
  std::vector<test_node*> nodes;
  for (int i = 0; i < 4 * per_thread; ++i) nodes.push_back(pool.acquire());
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&pool, &nodes, t] {
      for (int i = 0; i < per_thread; ++i)
        pool.release(nodes[t * per_thread + i]);
    });
  }
  for (auto& th : threads) th.join();
  // All returned; the owner can now reuse without new allocation.
  const std::size_t before = pool.allocated();
  for (int i = 0; i < 4 * per_thread; ++i) pool.acquire();
  EXPECT_EQ(pool.allocated(), before);
}

TEST(NodePool, BoundedAllocationUnderChurn) {
  node_pool<test_node> pool;
  for (int round = 0; round < 1000; ++round) {
    test_node* n = pool.acquire();
    pool.release(n);
  }
  EXPECT_EQ(pool.allocated(), 1u);
}

TEST(ThreadLocalPool, StablePerThread) {
  auto& a = thread_local_pool<test_node>();
  auto& b = thread_local_pool<test_node>();
  EXPECT_EQ(&a, &b);
  node_pool<test_node>* other = nullptr;
  std::thread([&other] { other = &thread_local_pool<test_node>(); }).join();
  EXPECT_NE(other, &a);
}

}  // namespace
}  // namespace cohort
