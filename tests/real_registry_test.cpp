// Real-lock registry tests: every canonical name constructs through both
// dispatch layers, round-trips lock/unlock under 4 threads with mutual
// exclusion intact, and unknown names are rejected.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "bench/harness.hpp"
#include "locks/registry.hpp"
#include "numa/topology.hpp"

namespace cohort::reg {
namespace {

class RealRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    numa::set_system_topology(numa::topology::synthetic(2));
    numa::reset_round_robin_for_test();
  }
};

TEST_F(RealRegistryTest, NameListsAreConsistent) {
  EXPECT_FALSE(all_lock_names().empty());
  for (const auto& name : all_lock_names()) EXPECT_TRUE(is_lock_name(name));
  for (const auto& name : cohort_lock_names()) EXPECT_TRUE(is_lock_name(name));
  for (const auto& name : abortable_lock_names())
    EXPECT_TRUE(is_lock_name(name));
}

TEST_F(RealRegistryTest, DescriptorsCoverEveryName) {
  // One descriptor per canonical name, same order, find_lock agrees.
  ASSERT_EQ(all_locks().size(), all_lock_names().size());
  for (std::size_t i = 0; i < all_locks().size(); ++i) {
    const lock_descriptor& d = all_locks()[i];
    EXPECT_EQ(d.name, all_lock_names()[i]);
    EXPECT_EQ(find_lock(d.name), &d);
    EXPECT_FALSE(d.summary.empty()) << d.name;
    ASSERT_TRUE(static_cast<bool>(d.make)) << d.name;
    // The descriptor factory is the same path make_lock takes.
    auto lock = d.make({.clusters = 2});
    ASSERT_NE(lock, nullptr) << d.name;
    EXPECT_EQ(lock->name(), d.name);
  }
  EXPECT_EQ(find_lock("NOPE"), nullptr);
}

TEST_F(RealRegistryTest, NameListsMatchDescriptorCaps) {
  // cohort_lock_names / abortable_lock_names are capability filters over the
  // descriptors -- membership must match the flags exactly.
  for (const auto& d : all_locks()) {
    bool in_cohort = false;
    for (const auto& n : cohort_lock_names())
      if (n == d.name) in_cohort = true;
    EXPECT_EQ(in_cohort, d.caps.reports_batch_stats) << d.name;
    bool in_abortable = false;
    for (const auto& n : abortable_lock_names())
      if (n == d.name) in_abortable = true;
    EXPECT_EQ(in_abortable, d.caps.abortable) << d.name;
  }
}

TEST_F(RealRegistryTest, KnobFlagsMatchFamilies) {
  for (const auto& d : all_locks()) {
    // The fast-path hysteresis knobs are honoured by the -fp composites, by
    // gcr wrappers whose INNER is an -fp composite (the knobs pass through
    // the gate to the wrapped lock), and by the adaptive ladder (whose -fp
    // rung is built back through the registry).
    const bool fp_inner =
        d.name.size() > 3 && d.name.rfind("-fp") == d.name.size() - 3;
    EXPECT_EQ(d.uses_fp_knobs, d.family == lock_family::fp_composite ||
                                   (d.family == lock_family::gcr && fp_inner) ||
                                   d.family == lock_family::adaptive)
        << d.name;
    // The gcr wrappers and the adaptive ladder (opt-in gcr rung) honour the
    // admission knobs, and an admission gate must never be offered as a
    // fissile inner (a fast path outside the gate would bypass admission
    // entirely).
    EXPECT_EQ(d.uses_gcr_knobs, d.family == lock_family::gcr ||
                                    d.family == lock_family::adaptive)
        << d.name;
    // Exactly the adaptive ladder honours the monitor knobs.
    EXPECT_EQ(d.uses_adaptive_knobs, d.family == lock_family::adaptive)
        << d.name;
    if (d.family == lock_family::gcr) {
      EXPECT_FALSE(d.caps.fp_composable) << d.name;
      EXPECT_TRUE(d.caps.reports_batch_stats) << d.name;
    }
    // Cohort compositions honour pass_limit; plain and queue locks must not
    // claim to.
    if (d.family == lock_family::cohort) {
      EXPECT_TRUE(d.uses_pass_limit) << d.name;
    }
    if (d.family == lock_family::plain || d.family == lock_family::queue) {
      EXPECT_FALSE(d.uses_pass_limit) << d.name;
      EXPECT_FALSE(d.caps.fp_composable) << d.name;
      EXPECT_FALSE(d.caps.reports_batch_stats) << d.name;
    }
    // A composite must not itself be offered as a fast-path inner.
    if (d.family == lock_family::fp_composite) {
      EXPECT_FALSE(d.caps.fp_composable) << d.name;
    }
    // Compact locks keep batch stats by design.
    if (d.family == lock_family::compact) {
      EXPECT_TRUE(d.caps.reports_batch_stats) << d.name;
      EXPECT_TRUE(d.caps.fp_composable) << d.name;
    }
    // The adaptive ladder honours every rung's knobs, reports batch stats
    // (synthesised when the live rung has none), and is neither abortable
    // (a blocking rung would starve try_lock_for) nor fp_composable (the
    // ladder already contains the -fp rung; a fissile gate outside the swap
    // protocol would bypass the version pins).
    if (d.family == lock_family::adaptive) {
      EXPECT_TRUE(d.uses_pass_limit) << d.name;
      EXPECT_TRUE(d.caps.cluster_aware) << d.name;
      EXPECT_TRUE(d.caps.reports_batch_stats) << d.name;
      EXPECT_FALSE(d.caps.abortable) << d.name;
      EXPECT_FALSE(d.caps.fp_composable) << d.name;
    }
  }
}

TEST_F(RealRegistryTest, UnlockReportsReleaseKind) {
  // The unified unlock contract: plain and queue locks report none; every
  // solo release of a batching lock reports global (the lock drained --
  // nobody was waiting).
  for (const auto& d : all_locks()) {
    auto lock = d.make({.clusters = 2});
    ASSERT_NE(lock, nullptr) << d.name;
    auto ctx = lock->make_context();
    lock->lock(ctx);
    const release_kind k = lock->unlock(ctx);
    if (d.caps.reports_batch_stats)
      EXPECT_EQ(k, release_kind::global) << d.name;
    else
      EXPECT_EQ(k, release_kind::none) << d.name;
  }
}

TEST_F(RealRegistryTest, UnknownNamesAreRejected) {
  for (const auto* bad : {"", "mcs", "C-BO", "C-BO-MCS ", "NOPE"}) {
    EXPECT_FALSE(is_lock_name(bad)) << bad;
    EXPECT_EQ(make_lock(bad), nullptr) << bad;
    EXPECT_FALSE(with_lock_type(bad, {}, [](auto) {})) << bad;
  }
}

TEST_F(RealRegistryTest, UnknownNameSuggestionsAreClose) {
  // Case-insensitive prefix match: "c-bo" surfaces the C-BO-* entries.
  const auto pre = suggest_lock_names("c-bo");
  ASSERT_FALSE(pre.empty());
  for (const auto& n : pre) EXPECT_EQ(n.substr(0, 4), "C-BO") << n;
  // A one-edit typo lands on the canonical name first.
  const auto typo = suggest_lock_names("adaptve");
  ASSERT_FALSE(typo.empty());
  EXPECT_EQ(typo[0], "adaptive");
  const auto swapped = suggest_lock_names("C-BO-MSC");
  ASSERT_FALSE(swapped.empty());
  EXPECT_EQ(swapped[0], "C-BO-MCS");
  // Garbage earns no candidates, and the message still points at the list.
  EXPECT_TRUE(suggest_lock_names("qqqqqqqqqqqq").empty());
  const std::string msg = unknown_lock_message("adaptve");
  EXPECT_NE(msg.find("unknown lock 'adaptve'"), std::string::npos);
  EXPECT_NE(msg.find("'adaptive'"), std::string::npos);
  EXPECT_NE(unknown_lock_message("qqqqqqqqqqqq").find("--list-locks"),
            std::string::npos);
  // Suggestions never invent names.
  for (const auto& n : suggest_lock_names("gcr-")) EXPECT_TRUE(is_lock_name(n));
}

TEST_F(RealRegistryTest, EveryNameConstructs) {
  for (const auto& name : all_lock_names()) {
    auto lock = make_lock(name, {.clusters = 2, .cohort = {.pass_limit = 16}});
    ASSERT_NE(lock, nullptr) << name;
    EXPECT_EQ(lock->name(), name);
    // Solo round trip.
    auto ctx = lock->make_context();
    lock->lock(ctx);
    lock->unlock(ctx);
  }
}

TEST_F(RealRegistryTest, AbortableFlagMatchesNameList) {
  for (const auto& name : all_lock_names()) {
    auto lock = make_lock(name);
    ASSERT_NE(lock, nullptr) << name;
    bool expected = false;
    for (const auto& a : abortable_lock_names())
      if (a == name) expected = true;
    EXPECT_EQ(lock->abortable(), expected) << name;
  }
}

TEST_F(RealRegistryTest, CohortLocksExposeStats) {
  for (const auto& name : cohort_lock_names()) {
    auto lock = make_lock(name, {.clusters = 2});
    ASSERT_NE(lock, nullptr) << name;
    ASSERT_TRUE(lock->stats().has_value()) << name;
    auto ctx = lock->make_context();
    for (int i = 0; i < 10; ++i) {
      lock->lock(ctx);
      lock->unlock(ctx);
    }
    const auto s = *lock->stats();
    EXPECT_EQ(s.acquisitions, 10u) << name;
    // Solo acquisitions either took the global lock or -- for the -fp
    // variants -- the top-level fast path; never a local handoff.
    EXPECT_EQ(s.global_acquires + s.fast_acquires, 10u) << name;
    EXPECT_EQ(s.local_handoffs, 0u) << name;
    if (s.fast_acquires == 0) {
      EXPECT_GT(s.avg_batch(), 0.0) << name;
    } else {
      // A solo fast-path lock may never touch the global lock at all.
      EXPECT_EQ(s.fast_acquires, 10u) << name;
    }
  }
}

TEST_F(RealRegistryTest, EveryCohortCompositionHasAFastPathVariant) {
  // The fast-path build must cover every fissile-composable lock: a
  // composition added to the registry without its "-fp" twin fails here,
  // not in a downstream latency comparison.  (Keyed on fp_composable, not
  // cohort_lock_names: gcr wrappers report batch stats but deliberately
  // refuse fissile composition.)
  for (const auto& d : all_locks()) {
    if (!d.caps.fp_composable) continue;
    EXPECT_TRUE(is_lock_name(d.name + "-fp")) << d.name;
  }
}

TEST_F(RealRegistryTest, EveryGcrTwinWrapsARegisteredBase) {
  // gcr- names are strictly twins: stripping the prefix must land on a
  // registered lock, and the expected admission-worthy set is covered both
  // ways (every expected base has its gcr- twin; no stray gcr- entries).
  const std::vector<std::string> expected = {
      "gcr-TATAS",        "gcr-C-BO-MCS",      "gcr-C-MCS-MCS",
      "gcr-cna",          "gcr-reciprocating", "gcr-C-BO-MCS-fp",
      "gcr-C-MCS-MCS-fp", "gcr-cna-fp",        "gcr-reciprocating-fp"};
  std::vector<std::string> found;
  for (const auto& d : all_locks()) {
    if (d.family != lock_family::gcr) continue;
    found.push_back(d.name);
    ASSERT_GT(d.name.size(), 4u) << d.name;
    EXPECT_EQ(d.name.substr(0, 4), "gcr-") << d.name;
    EXPECT_TRUE(is_lock_name(d.name.substr(4)))
        << d.name << " wraps an unregistered base";
  }
  EXPECT_EQ(found, expected);
}

TEST_F(RealRegistryTest, EveryNameRoundTripsUnderFourThreads) {
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  for (const auto& name : all_lock_names()) {
    auto lock = make_lock(name, {.clusters = 2});
    ASSERT_NE(lock, nullptr) << name;
    long counter = 0;  // non-atomic: the lock is the only synchronisation
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        numa::set_thread_cluster(static_cast<unsigned>(t));
        auto ctx = lock->make_context();
        for (int i = 0; i < kIters; ++i) {
          lock->lock(ctx);
          ++counter;
          lock->unlock(ctx);
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters) << name;
  }
}

TEST_F(RealRegistryTest, AbortableLocksTimeOutWhileHeld) {
  for (const auto& name : abortable_lock_names()) {
    auto lock = make_lock(name, {.clusters = 2});
    ASSERT_NE(lock, nullptr) << name;
    auto holder = lock->make_context();
    lock->lock(holder);
    std::thread waiter([&] {
      numa::set_thread_cluster(1);
      auto ctx = lock->make_context();
      EXPECT_FALSE(lock->try_lock_for(ctx, std::chrono::milliseconds(5)))
          << name;
    });
    waiter.join();
    lock->unlock(holder);
    // The lock must still work after the timeout.
    auto ctx = lock->make_context();
    EXPECT_TRUE(lock->try_lock_for(ctx, std::chrono::milliseconds(100)))
        << name;
    lock->unlock(ctx);
  }
}

TEST_F(RealRegistryTest, HarnessSmokeRunsEveryLock) {
  bench::bench_config cfg;
  cfg.threads = 4;
  cfg.duration_s = 0.02;
  cfg.warmup_s = 0.005;
  cfg.clusters = 2;
  cfg.pin = false;
  for (const auto& name : all_lock_names()) {
    cfg.lock_name = name;
    const auto res = bench::run_bench(cfg);
    EXPECT_TRUE(res.mutual_exclusion_ok) << name;
    // total_ops (the measured window) can legitimately be 0 on a heavily
    // oversubscribed host; whole-run ops are guaranteed by construction.
    EXPECT_GE(res.whole_run_ops, static_cast<std::uint64_t>(cfg.threads))
        << name;
    const auto rec = bench::to_json(res);
    const std::string dumped = rec.dump();
    EXPECT_NE(dumped.find("\"lock\":\"" + name + "\""), std::string::npos);
    EXPECT_NE(dumped.find("throughput_ops_s"), std::string::npos);
  }
  EXPECT_THROW(bench::run_bench(bench::bench_config{.lock_name = "NOPE"}),
               std::invalid_argument);
}

}  // namespace
}  // namespace cohort::reg
