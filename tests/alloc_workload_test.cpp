// The "alloc" benchmark workload (bench/alloc_workload.*) and the workload
// registry (bench/workload.*): the mmicro loop runs across a representative
// lock subset with the arena occupancy audit intact, no block is ever
// handed out twice, per-cluster placement builds one arena per cluster, and
// the windows[] telemetry tiles the measured interval exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/alloc_workload.hpp"
#include "bench/harness.hpp"
#include "bench/workload.hpp"
#include "locks/registry.hpp"
#include "numa/topology.hpp"

namespace cohort::bench {
namespace {

class AllocWorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    numa::set_system_topology(numa::topology::synthetic(2));
    numa::reset_round_robin_for_test();
  }

  bench_config base_config() const {
    bench_config cfg;
    cfg.workload = "alloc";
    cfg.threads = 4;
    cfg.duration_s = 0.03;
    cfg.warmup_s = 0.01;
    cfg.clusters = 2;
    cfg.pin = false;
    cfg.working_set = 16;
    cfg.alloc_min = 48;
    cfg.alloc_max = 192;
    cfg.arena_mb = 8;
    return cfg;
  }
};

TEST_F(AllocWorkloadTest, RegistryListsThePaperWorkloads) {
  EXPECT_EQ(all_workloads().size(), all_workload_names().size());
  for (const auto* name : {"cs", "kv", "alloc"}) {
    EXPECT_TRUE(is_workload_name(name)) << name;
    const workload_info* w = find_workload(name);
    ASSERT_NE(w, nullptr) << name;
    EXPECT_NE(w->run, nullptr) << name;
    EXPECT_STRNE(w->audit, "") << name;
  }
  EXPECT_FALSE(is_workload_name("nope"));
  EXPECT_EQ(find_workload("nope"), nullptr);
  // Every registered name round-trips through the joined diagnostic list.
  const std::string joined = workload_names_joined();
  for (const auto& name : all_workload_names())
    EXPECT_NE(joined.find(name), std::string::npos) << name;
}

TEST_F(AllocWorkloadTest, UnknownWorkloadThrowsListingNames) {
  bench_config cfg = base_config();
  cfg.workload = "bogus";
  try {
    run_bench(cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus"), std::string::npos);
    for (const auto& name : all_workload_names())
      EXPECT_NE(what.find(name), std::string::npos) << name;
  }
}

// The occupancy/leak audit across a representative lock subset: the pthread
// baseline, a full cohort composition, and the paper's default allocator
// lock.  After the post-join drain every arena must be one coalesced free
// chunk, the alloc/free counter identities must hold against whole-run
// ops, and the owner tags must show no block was ever handed out twice.
TEST_F(AllocWorkloadTest, AuditHoldsAcrossLockSubset) {
  for (const std::string lock : {"pthread", "C-BO-MCS", "C-TKT-TKT"}) {
    bench_config cfg = base_config();
    cfg.lock_name = lock;
    const bench_result res = run_bench(cfg);
    EXPECT_TRUE(res.mutual_exclusion_ok) << lock;
    EXPECT_EQ(res.tag_mismatches, 0u) << lock;
    EXPECT_GE(res.whole_run_ops, static_cast<std::uint64_t>(cfg.threads))
        << lock;
    ASSERT_FALSE(res.arena_reports.empty()) << lock;
    for (const arena_report& ar : res.arena_reports) {
      EXPECT_TRUE(ar.heap_ok) << lock;
      EXPECT_EQ(ar.alloc.allocated_bytes, 0u) << lock;  // leak audit
      EXPECT_EQ(ar.alloc.free_chunks, 1u) << lock;      // fully coalesced
    }
    EXPECT_EQ(res.alloc.alloc_calls,
              res.whole_run_ops + res.whole_run_timeouts)
        << lock;
    EXPECT_EQ(res.alloc.free_calls, res.whole_run_ops) << lock;
    // Cohort compositions must surface batching counters, whole-run and
    // per-arena; the acquisition count is exactly the alloc+free calls
    // (every operation takes the arena lock once per allocate and free).
    if (lock != "pthread") {
      EXPECT_TRUE(res.has_cohort_stats) << lock;
      EXPECT_EQ(res.cohort.acquisitions,
                res.alloc.alloc_calls + res.alloc.free_calls)
          << lock;
      for (const arena_report& ar : res.arena_reports)
        EXPECT_TRUE(ar.has_cohort) << lock;
    }
    const json rec = to_json(res);
    const std::string dumped = rec.dump();
    EXPECT_NE(dumped.find("\"workload\":\"alloc\""), std::string::npos);
    EXPECT_NE(dumped.find("\"per_arena\""), std::string::npos);
    EXPECT_NE(dumped.find("\"windows\""), std::string::npos);
  }
}

TEST_F(AllocWorkloadTest, NumaPlaceBuildsOneArenaPerCluster) {
  bench_config cfg = base_config();
  cfg.lock_name = "C-TKT-TKT";
  cfg.numa_place = true;
  const bench_result res = run_bench(cfg);
  EXPECT_TRUE(res.mutual_exclusion_ok);
  ASSERT_EQ(res.arena_reports.size(), 2u);
  EXPECT_EQ(res.arena_reports[0].home_cluster, 0u);
  EXPECT_EQ(res.arena_reports[1].home_cluster, 1u);
  // Both clusters' threads allocated (2 threads per cluster with 4 threads
  // on the synthetic 2-cluster topology).
  for (const arena_report& ar : res.arena_reports)
    EXPECT_GT(ar.alloc.alloc_calls, 0u) << ar.home_cluster;
}

// windows[] must tile the run: warmup windows first, then measured windows
// whose op counts sum exactly to total_ops (the boundary samples are the
// same snapshots the throughput reduction uses).
TEST_F(AllocWorkloadTest, WindowsPartitionTheMeasuredInterval) {
  for (const std::string workload : {"cs", "kv", "alloc"}) {
    bench_config cfg = base_config();
    cfg.workload = workload;
    cfg.lock_name = "C-TKT-TKT";
    cfg.snap_windows = 4;
    const bench_result res = run_bench(cfg);
    ASSERT_FALSE(res.windows.empty()) << workload;
    EXPECT_TRUE(res.windows.front().warmup) << workload;
    EXPECT_FALSE(res.windows.back().warmup) << workload;
    std::uint64_t measured_ops = 0;
    unsigned measured_windows = 0;
    double prev_t1 = res.windows.front().t0_s;
    for (const bench_window& w : res.windows) {
      EXPECT_GE(w.t1_s, w.t0_s) << workload;
      EXPECT_EQ(w.t0_s, prev_t1) << workload;  // contiguous tiling
      prev_t1 = w.t1_s;
      if (!w.warmup) {
        measured_ops += w.ops;
        ++measured_windows;
      }
      // A cohort lock drives every workload here, so each window carries
      // batching deltas.
      EXPECT_TRUE(w.has_cohort) << workload;
    }
    EXPECT_EQ(measured_windows, cfg.snap_windows) << workload;
    EXPECT_EQ(measured_ops, res.total_ops) << workload;
  }
}

// A plain lock produces windows without cohort deltas.
TEST_F(AllocWorkloadTest, PlainLockWindowsOmitCohort) {
  bench_config cfg = base_config();
  cfg.lock_name = "pthread";
  cfg.snap_windows = 2;
  const bench_result res = run_bench(cfg);
  ASSERT_FALSE(res.windows.empty());
  for (const bench_window& w : res.windows) EXPECT_FALSE(w.has_cohort);
}

TEST_F(AllocWorkloadTest, ParameterValidation) {
  for (auto mutate : std::vector<void (*)(bench_config&)>{
           [](bench_config& c) { c.alloc_min = 4; },
           [](bench_config& c) { c.alloc_max = c.alloc_min - 1; },
           [](bench_config& c) { c.working_set = 0; },
           [](bench_config& c) { c.arena_mb = 0; },
           // 4 threads x 4096 blocks x 1 KiB cannot fit a 1 MiB arena.
           [](bench_config& c) {
             c.arena_mb = 1;
             c.alloc_max = 1024;
             c.working_set = 4096;
           }}) {
    bench_config cfg = base_config();
    mutate(cfg);
    EXPECT_THROW(run_bench(cfg), std::invalid_argument);
  }
}

// The double-handout detector itself: hand the same block to two workers by
// bypassing the arena with a broken stub and check the tag audit trips.
TEST_F(AllocWorkloadTest, TagAuditDetectsDoubleHandout) {
  struct broken_arena {
    std::uint64_t block[64] = {};
    void* allocate(std::size_t) { return block; }  // same block every time
    void deallocate(void*) {}
  } arena;
  alloc::mmicro_params params{.alloc_min = 64, .alloc_max = 64,
                              .working_set = 4};
  alloc::mmicro_worker<broken_arena> a(0, params);
  alloc::mmicro_worker<broken_arena> b(1, params);
  for (int i = 0; i < 8; ++i) {
    a.step(arena);
    b.step(arena);  // scribbles a's tag
  }
  a.drain(arena);
  b.drain(arena);
  EXPECT_GT(a.tag_mismatches() + b.tag_mismatches(), 0u);
}

}  // namespace
}  // namespace cohort::bench
