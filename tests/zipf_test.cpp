// util/zipf.hpp: the CDF table behind every skewed axis (kv --zipf key
// skew, alloc --size-zipf size classes).  Checks the distribution itself --
// CDF monotonicity, the theta=0 uniform fallback, hot-key mass at large
// theta -- so a table bug cannot masquerade as a workload effect.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace cohort {
namespace {

TEST(Zipf, CdfIsMonotoneAndEndsAtOne) {
  for (double theta : {0.0, 0.5, 0.99, 2.0}) {
    const zipf_sampler z(1000, theta);
    double prev = 0.0;
    for (std::size_t k = 0; k < 1000; ++k) {
      const double c = z.cdf(k);
      ASSERT_GE(c, prev) << "theta=" << theta << " k=" << k;
      ASSERT_LE(c, 1.0 + 1e-12);
      prev = c;
    }
    EXPECT_DOUBLE_EQ(z.cdf(999), 1.0) << "theta=" << theta;
  }
}

TEST(Zipf, ThetaZeroIsUniform) {
  const std::size_t n = 16;
  const zipf_sampler z(n, 0.0);
  EXPECT_TRUE(z.uniform());

  // Empirical check: every index within 20% of the uniform expectation.
  xorshift rng(42);
  std::vector<std::uint64_t> counts(n, 0);
  const std::uint64_t draws = 160'000;
  for (std::uint64_t i = 0; i < draws; ++i) {
    const std::size_t k = z(rng);
    ASSERT_LT(k, n);
    ++counts[k];
  }
  const double expect = static_cast<double>(draws) / static_cast<double>(n);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_GT(counts[k], 0.8 * expect) << "index " << k;
    EXPECT_LT(counts[k], 1.2 * expect) << "index " << k;
  }
}

TEST(Zipf, HotKeyMassGrowsWithTheta) {
  // P(0) = (1/1^t) / H_{n,t}; for theta=3 and n=1000 that is ~0.83.
  const std::size_t n = 1000;
  const zipf_sampler z(n, 3.0);
  EXPECT_FALSE(z.uniform());
  EXPECT_GT(z.cdf(0), 0.8);

  xorshift rng(7);
  std::uint64_t hot = 0;
  const std::uint64_t draws = 100'000;
  for (std::uint64_t i = 0; i < draws; ++i)
    if (z(rng) == 0) ++hot;
  EXPECT_GT(static_cast<double>(hot) / static_cast<double>(draws), 0.75);

  // And the YCSB-style 0.99 is strictly less head-heavy than theta=3 but
  // much heavier than uniform.
  const zipf_sampler y(n, 0.99);
  EXPECT_LT(y.cdf(0), z.cdf(0));
  EXPECT_GT(y.cdf(0), 10.0 / static_cast<double>(n));
}

TEST(Zipf, AnalyticHeadMassMatchesHarmonicSum) {
  const std::size_t n = 100;
  const double theta = 1.5;
  const zipf_sampler z(n, theta);
  double sum = 0.0;
  for (std::size_t k = 0; k < n; ++k)
    sum += 1.0 / std::pow(static_cast<double>(k + 1), theta);
  EXPECT_NEAR(z.cdf(0), 1.0 / sum, 1e-12);
  EXPECT_NEAR(z.cdf(1), (1.0 + 1.0 / std::pow(2.0, theta)) / sum, 1e-12);
}

TEST(Zipf, DrawsAreDeterministicPerSeed) {
  const zipf_sampler z(64, 0.99);
  xorshift a(123), b(123), c(124);
  bool diverged = false;
  for (int i = 0; i < 1000; ++i) {
    const std::size_t ka = z(a);
    ASSERT_EQ(ka, z(b));
    if (ka != z(c)) diverged = true;
  }
  EXPECT_TRUE(diverged);  // different seeds explore different sequences
}

TEST(Zipf, DegenerateSizes) {
  // n = 0 clamps to 1; every draw is index 0 at any theta.
  xorshift rng(1);
  zipf_sampler z0(0, 0.99);
  EXPECT_EQ(z0.size(), 1u);
  EXPECT_EQ(z0(rng), 0u);
  EXPECT_DOUBLE_EQ(z0.cdf(0), 1.0);
  zipf_sampler z1(1, 0.0);
  EXPECT_EQ(z1(rng), 0u);
}

}  // namespace
}  // namespace cohort
