#include <gtest/gtest.h>

#include <thread>

#include "numa/topology.hpp"

namespace cohort::numa {
namespace {

TEST(Cpulist, ParsesRangesAndSingles) {
  EXPECT_EQ(topology::parse_cpulist("0-3"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(topology::parse_cpulist("5"), (std::vector<int>{5}));
  EXPECT_EQ(topology::parse_cpulist("0-1,4,6-7"),
            (std::vector<int>{0, 1, 4, 6, 7}));
  EXPECT_EQ(topology::parse_cpulist(""), (std::vector<int>{}));
  EXPECT_EQ(topology::parse_cpulist("2,3\n"), (std::vector<int>{2, 3}));
}

TEST(Topology, DiscoverIsNonEmpty) {
  const topology t = topology::discover();
  EXPECT_GE(t.clusters(), 1u);
  std::size_t cpus = 0;
  for (const auto& c : t.cpus) cpus += c.size();
  EXPECT_GE(cpus, 1u);
}

TEST(Topology, SyntheticHasRequestedClusters) {
  EXPECT_EQ(topology::synthetic(4).clusters(), 4u);
  EXPECT_EQ(topology::synthetic(0).clusters(), 1u);  // clamped
}

TEST(ThreadCluster, ExplicitAssignmentWrapsModuloClusters) {
  set_system_topology(topology::synthetic(4));
  set_thread_cluster(2);
  EXPECT_EQ(thread_cluster(), 2u);
  set_thread_cluster(7);
  EXPECT_EQ(thread_cluster(), 3u);
}

TEST(ThreadCluster, RoundRobinSpreadsThreads) {
  set_system_topology(topology::synthetic(2));
  reset_round_robin_for_test();
  std::vector<unsigned> clusters(4);
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&clusters, i] { clusters[i] = thread_cluster(); });
    threads.back().join();
  }
  // 4 fresh threads over 2 clusters round-robin: two per cluster.
  const int c0 = static_cast<int>(
      std::count(clusters.begin(), clusters.end(), 0u));
  EXPECT_EQ(c0, 2);
}

TEST(ThreadCluster, PinRecordsClusterEvenWithoutCpus) {
  const topology t = topology::synthetic(3);
  set_system_topology(t);
  // Synthetic topologies carry no CPU lists, so pinning fails but the
  // cluster id is still recorded.
  EXPECT_FALSE(pin_thread_to_cluster(t, 2));
  EXPECT_EQ(thread_cluster(), 2u);
}

TEST(ThreadCluster, PinToRealTopology) {
  const topology t = topology::discover();
  set_system_topology(t);
  if (!t.cpus.empty() && !t.cpus[0].empty()) {
    EXPECT_TRUE(pin_thread_to_cluster(t, 0));
    EXPECT_EQ(thread_cluster(), 0u);
  }
}

}  // namespace
}  // namespace cohort::numa
