// Splay-tree and arena-allocator tests, including randomized property tests
// over the heap invariants and a threaded stress under a cohort lock.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "alloc/arena.hpp"
#include "locks/pthread_lock.hpp"
#include "numa/topology.hpp"
#include "util/rng.hpp"

namespace cohortalloc {
namespace {

// ---- splay tree ----------------------------------------------------------------

TEST(SplayTree, InsertFindRemove) {
  splay_tree t;
  splay_node a, b, c;
  a.key = 10;
  b.key = 20;
  c.key = 30;
  t.insert(&a);
  t.insert(&b);
  t.insert(&c);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_TRUE(t.check_invariants());
  EXPECT_EQ(t.find_best_fit(15), &b);
  EXPECT_EQ(t.root(), &b);  // best-fit splays to the root
  EXPECT_EQ(t.find_best_fit(31), nullptr);
  t.remove(&b);
  EXPECT_EQ(t.find_best_fit(15), &c);
  EXPECT_TRUE(t.check_invariants());
}

TEST(SplayTree, InsertedNodeBecomesRoot) {
  splay_tree t;
  splay_node nodes[8];
  for (int i = 0; i < 8; ++i) {
    nodes[i].key = 64;  // all equal: the paper's single-size workload
    t.insert(&nodes[i]);
    EXPECT_EQ(t.root(), &nodes[i]);
  }
  // Most recently freed equal-sized block is found first (LIFO recycling).
  EXPECT_EQ(t.find_best_fit(64), &nodes[7]);
}

TEST(SplayTree, RandomizedInvariantProperty) {
  splay_tree t;
  std::vector<splay_node> pool(256);
  std::vector<splay_node*> in_tree;
  cohort::xorshift rng(2026);
  std::size_t free_top = 0;
  for (int step = 0; step < 4000; ++step) {
    const bool do_insert =
        free_top < pool.size() && (in_tree.empty() || rng.next_range(2) == 0);
    if (do_insert) {
      splay_node* n = &pool[free_top++];
      n->key = rng.next_range(512) + 16;
      t.insert(n);
      in_tree.push_back(n);
    } else if (!in_tree.empty()) {
      const std::size_t i = rng.next_range(in_tree.size());
      t.remove(in_tree[i]);
      in_tree[i] = in_tree.back();
      in_tree.pop_back();
    }
    if (step % 64 == 0) ASSERT_TRUE(t.check_invariants()) << "step " << step;
  }
  EXPECT_EQ(t.size(), in_tree.size());
}

TEST(SplayTree, BestFitIsSmallestSufficient) {
  splay_tree t;
  splay_node n16, n32, n64, n128;
  n16.key = 16;
  n32.key = 32;
  n64.key = 64;
  n128.key = 128;
  t.insert(&n64);
  t.insert(&n16);
  t.insert(&n128);
  t.insert(&n32);
  EXPECT_EQ(t.find_best_fit(17), &n32);
  EXPECT_EQ(t.find_best_fit(33), &n64);
  EXPECT_EQ(t.find_best_fit(128), &n128);
  EXPECT_EQ(t.find_best_fit(1), &n16);
}

// ---- arena core -----------------------------------------------------------------

TEST(ArenaCore, AllocateWritesDoNotOverlap) {
  arena_core a(64 * 1024);
  std::vector<char*> blocks;
  for (int i = 0; i < 100; ++i) {
    char* p = static_cast<char*>(a.allocate(64));
    ASSERT_NE(p, nullptr);
    std::memset(p, i, 64);
    blocks.push_back(p);
  }
  for (int i = 0; i < 100; ++i)
    for (int j = 0; j < 64; ++j)
      ASSERT_EQ(blocks[i][j], static_cast<char>(i));
  EXPECT_TRUE(a.check_heap());
  for (char* p : blocks) a.deallocate(p);
  EXPECT_TRUE(a.check_heap());
}

TEST(ArenaCore, FreeAllCoalescesToOneChunk) {
  arena_core a(32 * 1024);
  std::vector<void*> blocks;
  for (int i = 0; i < 50; ++i) blocks.push_back(a.allocate(100));
  for (void* p : blocks) a.deallocate(p);
  EXPECT_EQ(a.stats().free_chunks, 1u);
  EXPECT_EQ(a.stats().allocated_bytes, 0u);
  EXPECT_GT(a.stats().coalesces, 0u);
  EXPECT_TRUE(a.check_heap());
  // The whole arena is reusable as one block again.
  void* big = a.allocate(16 * 1024);
  EXPECT_NE(big, nullptr);
  a.deallocate(big);
}

TEST(ArenaCore, LifoRecyclingOfEqualSizes) {
  arena_core a(64 * 1024);
  // Spacers keep p1/p2 physically non-adjacent so freeing them cannot
  // coalesce; both end up as equal-sized tree nodes.
  void* p1 = a.allocate(64);
  void* s1 = a.allocate(64);
  void* p2 = a.allocate(64);
  void* s2 = a.allocate(64);
  a.deallocate(p1);
  a.deallocate(p2);
  // Most recently freed first: the paper's root-recycling behaviour.
  void* q = a.allocate(64);
  EXPECT_EQ(q, p2);
  void* r = a.allocate(64);
  EXPECT_EQ(r, p1);
  a.deallocate(q);
  a.deallocate(r);
  a.deallocate(s1);
  a.deallocate(s2);
}

TEST(ArenaCore, OutOfMemoryReturnsNull) {
  arena_core a(4 * 1024);
  EXPECT_EQ(a.allocate(1 << 20), nullptr);
  EXPECT_EQ(a.stats().failures, 1u);
  // Small allocations still work afterwards.
  void* p = a.allocate(64);
  EXPECT_NE(p, nullptr);
  a.deallocate(p);
}

TEST(ArenaCore, RandomizedHeapInvariant) {
  arena_core a(256 * 1024);
  cohort::xorshift rng(7);
  std::vector<std::pair<char*, std::pair<std::size_t, char>>> live;
  for (int step = 0; step < 5000; ++step) {
    if (live.empty() || rng.next_range(5) < 3) {
      const std::size_t n = rng.next_range(400) + 1;
      char* p = static_cast<char*>(a.allocate(n));
      if (p != nullptr) {
        const char tag = static_cast<char>(rng.next());
        std::memset(p, tag, n);
        live.push_back({p, {n, tag}});
      }
    } else {
      const std::size_t i = rng.next_range(live.size());
      auto [p, meta] = live[i];
      for (std::size_t j = 0; j < meta.first; ++j)
        ASSERT_EQ(p[j], meta.second) << "corruption at step " << step;
      a.deallocate(p);
      live[i] = live.back();
      live.pop_back();
    }
    if (step % 256 == 0) ASSERT_TRUE(a.check_heap()) << "step " << step;
  }
  for (auto& [p, meta] : live) a.deallocate(p);
  EXPECT_TRUE(a.check_heap());
  EXPECT_EQ(a.stats().allocated_bytes, 0u);
}

// ---- locked arena ----------------------------------------------------------------

TEST(Arena, ThreadedStressUnderCohortLock) {
  cohort::numa::set_system_topology(cohort::numa::topology::synthetic(2));
  arena<cohort::c_tkt_tkt_lock> a(1 << 20);
  constexpr int kThreads = 4, kIters = 1500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      cohort::numa::set_thread_cluster(static_cast<unsigned>(t % 2));
      cohort::xorshift rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kIters; ++i) {
        const std::size_t n = rng.next_range(128) + 16;
        char* p = static_cast<char*>(a.allocate(n));
        ASSERT_NE(p, nullptr);
        std::memset(p, t, n);
        for (std::size_t j = 0; j < n; ++j) ASSERT_EQ(p[j], t);
        a.deallocate(p);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto s = a.stats();
  EXPECT_EQ(s.alloc_calls, static_cast<std::size_t>(kThreads) * kIters);
  EXPECT_EQ(s.alloc_calls, s.free_calls);
  EXPECT_EQ(s.allocated_bytes, 0u);
}

TEST(Arena, WorksWithPthreadBaselineLock) {
  arena<cohort::pthread_lock> a(64 * 1024);
  void* p = a.allocate(100);
  ASSERT_NE(p, nullptr);
  a.deallocate(p);
  EXPECT_EQ(a.stats().allocated_bytes, 0u);
}

}  // namespace
}  // namespace cohortalloc
