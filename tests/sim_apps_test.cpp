// Workload-level tests: lbench / kvsim / mallocsim sanity, determinism, and
// the headline ordering properties the paper's figures rest on.
#include <gtest/gtest.h>

#include "sim/apps/kvsim.hpp"
#include "sim/apps/lbench.hpp"
#include "sim/apps/mallocsim.hpp"
#include "sim/locks/registry.hpp"

namespace sim {
namespace {

lbench_params quick_lbench(unsigned threads) {
  lbench_params p;
  p.threads = threads;
  p.warmup_ns = 100'000;
  p.duration_ns = 1'000'000;
  return p;
}

class LbenchLocks : public ::testing::TestWithParam<std::string> {};

TEST_P(LbenchLocks, ProducesThroughputAndSaneCounters) {
  const auto r = run_lbench(GetParam(), quick_lbench(16));
  EXPECT_GT(r.throughput_per_sec, 0.0);
  EXPECT_GT(r.total_ops, 0u);
  EXPECT_GE(r.l2_misses_per_cs, 0.0);
  EXPECT_LE(r.migrations_per_cs, 1.0);
  EXPECT_EQ(r.per_thread_ops.size(), 16u);
}

INSTANTIATE_TEST_SUITE_P(Fig2, LbenchLocks,
                         ::testing::ValuesIn(fig2_lock_names()));

TEST(Lbench, UnknownLockIsReported) {
  EXPECT_LT(run_lbench("no-such-lock", quick_lbench(2)).throughput_per_sec,
            0.0);
  EXPECT_LT(run_lbench_abortable("MCS", quick_lbench(2)).throughput_per_sec,
            0.0);  // MCS is not in the abortable registry
}

TEST(Lbench, DeterministicRuns) {
  const auto a = run_lbench("C-BO-MCS", quick_lbench(32));
  const auto b = run_lbench("C-BO-MCS", quick_lbench(32));
  EXPECT_EQ(a.total_ops, b.total_ops);
  EXPECT_DOUBLE_EQ(a.l2_misses_per_cs, b.l2_misses_per_cs);
}

TEST(Lbench, CohortMigratesLessThanMcs) {
  // The paper's core claim, as a property: at high contention cohort locks
  // migrate across clusters far less often than MCS.
  const auto mcs = run_lbench("MCS", quick_lbench(32));
  const auto cohort = run_lbench("C-TKT-MCS", quick_lbench(32));
  EXPECT_LT(cohort.migrations_per_cs * 4, mcs.migrations_per_cs);
  EXPECT_LT(cohort.l2_misses_per_cs * 2, mcs.l2_misses_per_cs);
}

TEST(Lbench, BatchRespectsPassLimit) {
  auto p = quick_lbench(32);
  p.pass_limit = 4;
  const auto r = run_lbench("C-BO-MCS", p);
  EXPECT_LE(r.avg_batch, 5.0 + 1e-9);
}

TEST(Lbench, UnboundedCohortOutscalesBounded) {
  // §4.1.1: removing the handoff bound buys ~10% throughput at high load
  // (at the cost of gross unfairness).
  auto bounded = quick_lbench(64);
  auto unbounded = quick_lbench(64);
  unbounded.pass_limit = ~std::uint64_t{0};
  const auto rb = run_lbench("C-TKT-MCS", bounded);
  const auto ru = run_lbench("C-TKT-MCS", unbounded);
  EXPECT_GE(ru.throughput_per_sec, rb.throughput_per_sec * 0.99);
}

TEST(LbenchAbortable, AbortRatesAreLowAtModeratePatience) {
  auto p = quick_lbench(32);
  p.patience_ns = 400'000;
  for (const auto& name : fig6_lock_names()) {
    const auto r = run_lbench_abortable(name, p);
    EXPECT_GT(r.total_ops, 0u) << name;
    EXPECT_LT(r.abort_rate, 0.25) << name;
  }
}

TEST(LbenchAbortable, TinyPatienceProducesAborts) {
  auto p = quick_lbench(32);
  p.patience_ns = 300;
  const auto r = run_lbench_abortable("A-CLH", p);
  EXPECT_GT(r.abort_rate, 0.0);
}

// ---- kvsim -------------------------------------------------------------------

kv_params quick_kv(unsigned threads, double get_ratio) {
  kv_params p;
  p.threads = threads;
  p.get_ratio = get_ratio;
  p.warmup_ns = 100'000;
  p.duration_ns = 2'000'000;
  return p;
}

TEST(KvSim, RunsForAllTable1Locks) {
  for (const auto& name : table1_lock_names()) {
    const auto r = run_kv(name, quick_kv(8, 0.5));
    EXPECT_GT(r.ops_per_sec, 0.0) << name;
  }
}

TEST(KvSim, WriteHeavyFavoursNumaAwareLocks) {
  const auto mcs = run_kv("MCS", quick_kv(32, 0.1));
  const auto cohort = run_kv("C-TKT-MCS", quick_kv(32, 0.1));
  EXPECT_GT(cohort.ops_per_sec, mcs.ops_per_sec);
}

TEST(KvSim, ReadHeavyNarrowsTheGap) {
  const auto mcs = run_kv("MCS", quick_kv(32, 0.9));
  const auto cohort = run_kv("C-TKT-MCS", quick_kv(32, 0.9));
  const auto mcs_w = run_kv("MCS", quick_kv(32, 0.1));
  const auto cohort_w = run_kv("C-TKT-MCS", quick_kv(32, 0.1));
  const double read_gap = cohort.ops_per_sec / mcs.ops_per_sec;
  const double write_gap = cohort_w.ops_per_sec / mcs_w.ops_per_sec;
  EXPECT_GT(write_gap, read_gap * 0.98);
}

TEST(KvSim, Deterministic) {
  const auto a = run_kv("C-BO-MCS", quick_kv(16, 0.5));
  const auto b = run_kv("C-BO-MCS", quick_kv(16, 0.5));
  EXPECT_EQ(a.total_ops, b.total_ops);
}

// ---- mallocsim ----------------------------------------------------------------

malloc_params quick_malloc(unsigned threads) {
  malloc_params p;
  p.threads = threads;
  p.warmup_ns = 100'000;
  p.duration_ns = 2'000'000;
  return p;
}

TEST(MallocSim, RunsForAllTable2Locks) {
  for (const auto& name : table2_lock_names()) {
    const auto r = run_malloc(name, quick_malloc(8));
    EXPECT_GT(r.pairs_per_ms, 0.0) << name;
  }
}

TEST(MallocSim, CohortRecyclesBlocksLocally) {
  const auto mcs = run_malloc("MCS", quick_malloc(32));
  const auto cohort = run_malloc("C-BO-MCS", quick_malloc(32));
  EXPECT_GT(cohort.pairs_per_ms, mcs.pairs_per_ms);
  EXPECT_LT(cohort.l2_misses_per_pair, mcs.l2_misses_per_pair);
}

TEST(MallocSim, Deterministic) {
  const auto a = run_malloc("C-TKT-TKT", quick_malloc(16));
  const auto b = run_malloc("C-TKT-TKT", quick_malloc(16));
  EXPECT_EQ(a.total_pairs, b.total_pairs);
}

}  // namespace
}  // namespace sim
