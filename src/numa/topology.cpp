#include "numa/topology.hpp"

#include <atomic>
#include <cstdlib>
#include <fstream>

#include <thread>
#include <utility>

#if defined(__linux__)
#include <sched.h>
#endif

namespace cohort::numa {

std::vector<int> topology::parse_cpulist(const std::string& s) {
  std::vector<int> cpus;
  std::size_t i = 0;
  while (i < s.size()) {
    // Skip separators and whitespace.
    while (i < s.size() && (s[i] == ',' || s[i] == ' ' || s[i] == '\n')) ++i;
    if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i])))
      break;
    char* end = nullptr;
    const long lo = std::strtol(s.c_str() + i, &end, 10);
    i = static_cast<std::size_t>(end - s.c_str());
    long hi = lo;
    if (i < s.size() && s[i] == '-') {
      ++i;
      hi = std::strtol(s.c_str() + i, &end, 10);
      i = static_cast<std::size_t>(end - s.c_str());
    }
    for (long c = lo; c <= hi; ++c) cpus.push_back(static_cast<int>(c));
  }
  return cpus;
}

topology topology::discover() {
  topology t;
  for (unsigned node = 0;; ++node) {
    std::ifstream f("/sys/devices/system/node/node" + std::to_string(node) +
                    "/cpulist");
    if (!f.is_open()) break;
    std::string line;
    std::getline(f, line);
    t.cpus.push_back(parse_cpulist(line));
  }
  if (t.cpus.empty()) {
    // No NUMA information: one cluster with every hardware thread.
    std::vector<int> all;
    const unsigned n = std::max(1u, std::thread::hardware_concurrency());
    for (unsigned c = 0; c < n; ++c) all.push_back(static_cast<int>(c));
    t.cpus.push_back(std::move(all));
  }
  return t;
}

topology topology::synthetic(unsigned clusters) {
  topology t;
  t.cpus.resize(std::max(1u, clusters));
  return t;
}

namespace {

// Deliberately NOT a std::mutex: this code runs underneath the
// pthread_mutex interposition library (src/interpose), where std::mutex
// would recurse straight back into the interposed pthread_mutex_lock.
class spin_guard_lock {
 public:
  void lock() noexcept {
    while (flag_.exchange(true, std::memory_order_acquire)) {
    }
  }
  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

spin_guard_lock g_topology_lock;
std::atomic<topology*> g_topology{nullptr};

std::atomic<unsigned> g_round_robin{0};

// -1 == unassigned.
thread_local int tls_cluster = -1;

}  // namespace

const topology& system_topology() {
  topology* t = g_topology.load(std::memory_order_acquire);
  if (t != nullptr) return *t;
  g_topology_lock.lock();
  t = g_topology.load(std::memory_order_relaxed);
  if (t == nullptr) {
    t = new topology(topology::discover());
    g_topology.store(t, std::memory_order_release);
  }
  g_topology_lock.unlock();
  return *t;
}

void set_system_topology(topology t) {
  // Old topologies are retired, never destroyed: other threads may still
  // hold a reference from system_topology().  Keeping them reachable in a
  // static list (rather than dropping the pointer) bounds the cost the same
  // way and keeps leak checkers quiet.  The list itself is heap-allocated
  // and intentionally not destroyed so no thread can observe its teardown.
  static std::vector<topology*>* retired = new std::vector<topology*>;
  g_topology_lock.lock();
  topology* old = g_topology.load(std::memory_order_relaxed);
  if (old != nullptr) retired->push_back(old);
  g_topology.store(new topology(std::move(t)), std::memory_order_release);
  g_topology_lock.unlock();
}

unsigned thread_cluster() {
  if (tls_cluster < 0) {
    const unsigned n = system_topology().clusters();
    tls_cluster = static_cast<int>(
        g_round_robin.fetch_add(1, std::memory_order_relaxed) % n);
  }
  return static_cast<unsigned>(tls_cluster);
}

void set_thread_cluster(unsigned c) {
  const unsigned n = system_topology().clusters();
  tls_cluster = static_cast<int>(c % n);
}

bool pin_thread_to_cluster(const topology& t, unsigned c) {
  const unsigned cluster = c % std::max(1u, t.clusters());
  tls_cluster = static_cast<int>(cluster);
#if defined(__linux__)
  if (cluster < t.cpus.size() && !t.cpus[cluster].empty()) {
    cpu_set_t set;
    CPU_ZERO(&set);
    for (int cpu : t.cpus[cluster]) CPU_SET(cpu, &set);
    return sched_setaffinity(0, sizeof(set), &set) == 0;
  }
#endif
  return false;
}

bool pin_thread_to_cpu_slot(const topology& t, unsigned c, unsigned slot) {
  const unsigned cluster = c % std::max(1u, t.clusters());
  tls_cluster = static_cast<int>(cluster);
#if defined(__linux__)
  if (cluster < t.cpus.size() && !t.cpus[cluster].empty()) {
    const auto& cpus = t.cpus[cluster];
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpus[slot % cpus.size()], &set);
    return sched_setaffinity(0, sizeof(set), &set) == 0;
  }
#else
  (void)slot;
#endif
  return false;
}

void reset_round_robin_for_test() {
  g_round_robin.store(0, std::memory_order_relaxed);
}

}  // namespace cohort::numa
