// NUMA topology discovery and thread-to-cluster assignment.
//
// Cohort locks need exactly two things from the platform:
//   1. the number of NUMA clusters, and
//   2. a fast "which cluster am I on?" query for the current thread.
//
// On a real NUMA Linux box we read /sys/devices/system/node.  On machines
// without NUMA (or for deterministic tests) a *virtual* topology can be
// installed: threads are assigned to clusters explicitly or round-robin,
// which is also how the paper's benchmarks place threads across the T5440's
// four sockets.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cohort::numa {

struct topology {
  // cpus[c] lists the logical CPU ids belonging to cluster c.  May be empty
  // for synthetic topologies (no pinning possible, ids still valid).
  std::vector<std::vector<int>> cpus;

  unsigned clusters() const noexcept {
    return static_cast<unsigned>(cpus.size());
  }

  // Reads /sys/devices/system/node/node*/cpulist.  Falls back to a single
  // cluster containing all online CPUs when sysfs is absent.
  static topology discover();

  // A synthetic topology with `clusters` clusters and no CPU lists.
  static topology synthetic(unsigned clusters);

  // Parses a Linux cpulist string like "0-3,8,10-11".  Exposed for tests.
  static std::vector<int> parse_cpulist(const std::string& s);
};

// ---- process-global topology -------------------------------------------
//
// The default cohort locks consult this.  It starts as discover() and can be
// replaced (e.g. with synthetic(4)) before threads start locking.

const topology& system_topology();
void set_system_topology(topology t);

// ---- per-thread cluster id ----------------------------------------------

// Returns this thread's cluster id.  If the thread never called
// set_thread_cluster(), it is auto-assigned round-robin on first use, which
// spreads benchmark threads across clusters the way the paper's runs do.
unsigned thread_cluster();

// Explicitly place the calling thread on cluster c (mod cluster count).
void set_thread_cluster(unsigned c);

// Pin the calling thread to the CPUs of cluster c of the given topology and
// record c as its cluster id.  Returns false when pinning is impossible
// (synthetic topology or sched_setaffinity failure); the cluster id is
// recorded either way.
bool pin_thread_to_cluster(const topology& t, unsigned c);

// Pin the calling thread to ONE CPU of cluster c: the slot-th entry of the
// cluster's CPU list, wrapping round-robin when slot exceeds the list (the
// oversubscribed case -- more threads than CPUs stack deterministically
// instead of floating).  Records c as the cluster id.  Returns false when
// pinning is impossible (synthetic topology or sched_setaffinity failure).
bool pin_thread_to_cpu_slot(const topology& t, unsigned c, unsigned slot);

// Resets the round-robin assignment counter (tests only).
void reset_round_robin_for_test();

}  // namespace cohort::numa
