// Adaptive lock: a contention-driven policy ladder with quiescent hot-swap.
//
// The paper's central result is that *which* lock design wins is a function
// of contention: plain TATAS beats cohort locks uncontended, the cohort
// compositions win hot, and (PR 7) GCR admission wins oversubscribed.  A
// sharded store under Zipf key skew has *heterogeneous* contention across
// shards at the same instant, so no uniform choice is right everywhere.
// adaptive_lock closes the loop per instance: it starts on TATAS and
// escalates / de-escalates its inner lock at runtime along
//
//     TATAS -> C-BO-MCS-fp -> C-BO-MCS [-> gcr-C-BO-MCS]
//
// driven by an acquisition-sampling monitor, swapping the inner lock with a
// quiescent-swap protocol that never blocks an acquisition on a retired
// lock.
//
// Contention signal.  pin() counts every acquisition and, when the pin
// count was already non-zero, a *contended* one -- another thread was
// inside lock()/unlock() at the same instant.  The signal is uniform
// across rungs (it does not depend on inner-lock internals) and rides the
// fetch_add the swap protocol already pays.  Every `window` acquisitions
// the current holder evaluates the contended fraction: at/above
// escalate_pct the window is hot, at/below deescalate_pct it is cold, and
// `hysteresis` consecutive hot (cold) windows trigger an escalation
// (de-escalation).  The gcr rung additionally requires the instantaneous
// pin count to reach gcr_waiters (default: the online CPU count) --
// admission control only pays for itself oversubscribed.
//
// Quiescent swap.  Each inner lock lives in a `version` node:
//
//     current_ --> [v2: gate, pins] --succ-- [v1: retired, draining] ...
//
//  * pin:   load current_, pins.fetch_add, then re-check version->retired;
//           a retired version is unpinned and the load retried, so no
//           acquisition ever *starts* on a retired version.
//  * swap:  only the current holder swaps, inner lock still held: install a
//           gate-closed successor as current_, then mark the old version
//           retired.  Pinners already admitted on the old version drain
//           through its inner lock undisturbed -- the swap never blocks
//           them and they never block on a lock that stopped existing.
//  * gate:  acquirers of the successor futex-wait until the predecessor's
//           pins drain to zero; the last unpinner of a retired version
//           opens the successor's gate.  Mutual exclusion hands over from
//           the old inner lock to the new one with no overlap (proof
//           sketch: DESIGN.md §10).
//
// Retired versions stay on the all-versions chain until the destructor, so
// stats() aggregates lifetime counters and no thread context ever dangles.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>

#include "locks/any_lock.hpp"
#include "util/align.hpp"
#include "util/futex.hpp"
#include "util/stat_cell.hpp"

namespace cohort {

// Fully-resolved monitor policy; reg::effective_adaptive() resolves the
// flag/env default chain (reg::adaptive_knobs) into one of these.
struct adaptive_policy {
  std::uint32_t window = 2048;        // acquisitions per decision window
  std::uint32_t escalate_pct = 50;    // contended % marking a window hot
  std::uint32_t deescalate_pct = 10;  // contended % marking a window cold
  std::uint32_t hysteresis = 2;       // consecutive windows before a swap
  std::uint32_t max_level = 2;        // highest rung; 3 enables the gcr rung
  std::uint32_t gcr_waiters = 0;      // pin gate for the gcr rung; 0 = CPUs
};

class adaptive_lock {
  struct version;

 public:
  // The ladder, cheapest rung first.  Every name is a registry name
  // (adaptive_test cross-checks), so the ladder can never name a lock the
  // registry cannot build.
  static constexpr std::array<const char*, 4> ladder() {
    return {{"TATAS", "C-BO-MCS-fp", "C-BO-MCS", "gcr-C-BO-MCS"}};
  }

  struct context {
    context() = default;
    context(context&&) = default;
    context& operator=(context&&) = default;

   private:
    friend class adaptive_lock;
    version* v = nullptr;          // version the inner context was made for
    reg::any_lock::context inner;  // owned by v->lock; must not outlive it
  };

  explicit adaptive_lock(adaptive_policy p = {}, reg::lock_params base = {})
      : policy_(sanitize(p)),
        base_(std::move(base)),
        ceiling_(std::min<std::uint32_t>(
            policy_.max_level, static_cast<std::uint32_t>(ladder().size()) - 1)),
        gcr_waiters_(policy_.gcr_waiters != 0
                         ? policy_.gcr_waiters
                         : std::max(1u, std::thread::hardware_concurrency())) {
    version* v0 = new version(build_rung(0, base_), 0, /*gate_open=*/true);
    versions_.store(v0, std::memory_order_relaxed);
    current_.store(v0, std::memory_order_release);
  }

  ~adaptive_lock() {
    version* v = versions_.load(std::memory_order_acquire);
    while (v != nullptr) {
      version* next = v->vnext;
      delete v;
      v = next;
    }
  }

  adaptive_lock(const adaptive_lock&) = delete;
  adaptive_lock& operator=(const adaptive_lock&) = delete;

  void lock(context& c) {
    version* v = pin();
    if (c.v != v) {
      // First acquisition on this version: rebuild the inner context.  The
      // old version is still on the chain, so resetting through it is safe.
      c.inner.reset();
      c.inner = v->lock->make_context();
      c.v = v;
    }
    // Gate: a successor admits holders only once the predecessor's pins
    // have drained (the last unpinner opens it and wakes the word).
    while (v->open.load(std::memory_order_acquire) == 0)
      futex::wait(v->open, 0u);
    v->lock->lock(c.inner);
    if (!v->has_stats) ++v->synth_acquires;  // holder-serialised cell
  }

  release_kind unlock(context& c) {
    version* v = c.v;
    // Policy decisions run holder-side, before the inner release, and only
    // on the live current version: decision state (streaks) is therefore
    // serialised by the global critical section itself.
    if (!v->retired.load(std::memory_order_acquire) &&
        v == current_.load(std::memory_order_relaxed))
      maybe_decide(v);
    const release_kind k = v->lock->unlock(c.inner);
    unpin(v);  // after the inner release: a held pin keeps successors gated
    // Plain rungs report none, but the adaptive holder *is* the global
    // holder; surface a global release for the harness's batch accounting.
    return k == release_kind::none ? release_kind::global : k;
  }

  // Lifetime counters across every version (exact at quiescence), plus the
  // adaptive gauges: current_policy is the 1-based rung of the live inner
  // lock, policy_switches the number of completed hot-swaps.
  cohort_stats stats() const {
    cohort_stats agg{};
    for (const version* v = versions_.load(std::memory_order_acquire);
         v != nullptr; v = v->vnext) {
      if (v->has_stats) {
        if (auto s = v->lock->stats()) agg += *s;
      } else {
        // Stat-less rungs (TATAS): every acquisition took "the global
        // lock", so the batch identity holds with batch length 1.
        const std::uint64_t n = v->synth_acquires.get();
        agg.acquisitions += n;
        agg.global_acquires += n;
      }
    }
    agg.policy_switches = switches_.get();
    agg.current_policy = level() + 1;
    return agg;
  }

  // Observability for tests, samplers, and the monitor's own gcr gate.
  std::uint32_t level() const {
    return current_.load(std::memory_order_acquire)->level;
  }
  std::uint64_t switches() const { return switches_.get(); }
  std::uint32_t pinned() const {
    return current_.load(std::memory_order_acquire)
        ->pins.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(destructive_interference_size) version {
    version(std::unique_ptr<reg::any_lock> l, std::uint32_t lvl,
            bool gate_open)
        : lock(std::move(l)),
          level(lvl),
          has_stats(lock->stats().has_value()),
          open(gate_open ? 1u : 0u) {}

    const std::unique_ptr<reg::any_lock> lock;
    const std::uint32_t level;
    const bool has_stats;

    std::atomic<std::uint32_t> pins{0};
    std::atomic<bool> retired{false};
    std::atomic<std::uint32_t> open;           // futex word; 1 = admitting
    std::atomic<version*> successor{nullptr};  // set before retired
    version* vnext = nullptr;                  // all-versions chain (newest first)
    stat_cell synth_acquires;                  // for stat-less inner locks
  };

  static adaptive_policy sanitize(adaptive_policy p) {
    if (p.window == 0) p.window = 1;
    if (p.hysteresis == 0) p.hysteresis = 1;
    if (p.escalate_pct == 0) p.escalate_pct = 1;
    if (p.escalate_pct > 100) p.escalate_pct = 100;
    if (p.deescalate_pct >= p.escalate_pct)
      p.deescalate_pct = p.escalate_pct - 1;  // keep the bands disjoint
    return p;
  }

  static std::unique_ptr<reg::any_lock> build_rung(
      std::uint32_t level, const reg::lock_params& base) {
    auto l = reg::make_lock(ladder()[level], base);
    if (l == nullptr)
      throw std::logic_error(std::string("adaptive ladder names an "
                                         "unregistered lock: ") +
                             ladder()[level]);
    return l;
  }

  version* pin() {
    for (;;) {
      version* v = current_.load(std::memory_order_acquire);
      const std::uint32_t prev =
          v->pins.fetch_add(1, std::memory_order_acq_rel);
      if (!v->retired.load(std::memory_order_acquire)) {
        // Admitted on a live version; count the monitor sample.  Contended
        // means another thread held a pin at the same instant.
        win_acq_.fetch_add(1, std::memory_order_relaxed);
        if (prev != 0) win_contended_.fetch_add(1, std::memory_order_relaxed);
        return v;
      }
      unpin(v);  // raced a swap: drop the pin (maybe opening the gate), retry
    }
  }

  void unpin(version* v) {
    if (v->pins.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
        v->retired.load(std::memory_order_acquire)) {
      // Last pin of a retired version: handover complete, admit the
      // successor's gated waiters.  Re-opening an open gate (a late pinner
      // bouncing off the retired check) is harmless.
      version* next = v->successor.load(std::memory_order_acquire);
      next->open.store(1, std::memory_order_release);
      futex::wake_all(next->open);
    }
  }

  void maybe_decide(version* cur) {
    const std::uint64_t acq = win_acq_.load(std::memory_order_relaxed);
    if (acq < policy_.window) return;
    const std::uint64_t hot = win_contended_.load(std::memory_order_relaxed);
    // Reset first; pinners racing the reset just count into the next
    // window, which only delays the next decision.
    win_acq_.store(0, std::memory_order_relaxed);
    win_contended_.store(0, std::memory_order_relaxed);

    const std::uint64_t pct = hot >= acq ? 100 : hot * 100 / acq;
    if (pct >= policy_.escalate_pct) {
      cold_streak_ = 0;
      std::uint32_t target = cur->level + 1;
      // The gcr rung is admission control: only worth entering when the
      // waiter gauge says the box is oversubscribed.
      if (target == ladder().size() - 1 &&
          cur->pins.load(std::memory_order_relaxed) < gcr_waiters_)
        target = cur->level;
      if (target > ceiling_ || target == cur->level) {
        hot_streak_ = 0;
        return;
      }
      if (++hot_streak_ >= policy_.hysteresis) {
        hot_streak_ = 0;
        swap_to(cur, target);
      }
    } else if (pct <= policy_.deescalate_pct) {
      hot_streak_ = 0;
      if (cur->level == 0) {
        cold_streak_ = 0;
        return;
      }
      if (++cold_streak_ >= policy_.hysteresis) {
        cold_streak_ = 0;
        swap_to(cur, cur->level - 1);
      }
    } else {
      hot_streak_ = 0;
      cold_streak_ = 0;
    }
  }

  // Called by the current holder with cur's inner lock held.  The successor
  // gate stays closed until every pin on cur (the holder's included) drains.
  void swap_to(version* cur, std::uint32_t new_level) {
    version* next =
        new version(build_rung(new_level, base_), new_level,
                    /*gate_open=*/false);
    next->vnext = versions_.load(std::memory_order_relaxed);
    versions_.store(next, std::memory_order_release);
    cur->successor.store(next, std::memory_order_release);
    current_.store(next, std::memory_order_release);
    // Retire last: a pinner that observes retired may rely on successor
    // being set and on current_ already pointing past this version.
    cur->retired.store(true, std::memory_order_release);
    ++switches_;  // holder-serialised cell
  }

  const adaptive_policy policy_;
  const reg::lock_params base_;
  const std::uint32_t ceiling_;
  const std::uint32_t gcr_waiters_;

  std::atomic<version*> current_{nullptr};
  std::atomic<version*> versions_{nullptr};  // ownership chain, newest first

  // Window counters: multi-writer relaxed; reset by the deciding holder
  // (lost increments shorten a window, never corrupt it).
  std::atomic<std::uint64_t> win_acq_{0};
  std::atomic<std::uint64_t> win_contended_{0};

  // Decision state: only the current holder, pre-release, ever touches
  // these, so plain fields are race-free (see unlock()).
  std::uint32_t hot_streak_ = 0;
  std::uint32_t cold_streak_ = 0;

  stat_cell switches_;  // completed swaps; holder-only writer
};

}  // namespace cohort
