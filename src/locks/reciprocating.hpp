// Reciprocating locks (Dice & Kogan, arXiv:2501.02380) -- the 2025 entry in
// the registry's 2012->2025 NUMA-lock design study.  Like CNA it is a
// single-word lock; unlike CNA it needs *no* cluster count and no queue
// surgery.  Arriving threads push themselves LIFO onto an entry segment
// hanging off the one lock word.  When the holder's current admission wave
// is exhausted, it detaches the accumulated entry segment in one swap and
// admits it as the next wave, which then drains in arrival-reversed order
// (the LIFO push makes the newest arrival the wave's head).  Admission
// direction therefore alternates between accumulation (newest-last) and
// drain (newest-first) -- the "reciprocating" motion -- and every waiter is
// admitted within two waves of its arrival, so no starvation bound knob is
// needed at all.
//
// The NUMA story is statistical rather than structural: threads that
// arrived close together in time -- under contention, typically a burst
// from the socket that owns the cache line -- drain as one wave, giving
// cohort-style batching without per-cluster locks, cluster ids, or a
// pass_limit.
//
// Space: one word in the lock, one qnode per thread (reused across
// acquisitions -- the releaser reads everything it needs from the grantee's
// node *before* granting, so a node is dead the instant its owner observes
// the grant).  Constant space per thread, independent of how many locks
// exist: the paper's headline claim, checked by a static_assert below and
// the wave-order unit tests.
//
// Word encoding (arrivals_):
//   0               free
//   1 (locked_tag)  held, no accumulated arrivals
//   else            held; pointer to the newest node of the entry segment
//
// Grant encoding (per-node spin word): pointer to the remainder of the wave
// (the nodes this grantee must admit before detaching a new segment), with
// bit 0 set = granted, bit 1 set = wave continuation (vs wave start).  Node
// alignment keeps both bits free.
//
// unlock() reports release_kind in the registry's unified vocabulary:
// `local` for any handoff (within a wave or opening a new one), `global`
// only when the lock was actually freed, so fissile_lock<reciprocating_lock>
// re-engages its fast path exactly when traffic drains.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "cohort/cohort_lock.hpp"
#include "cohort/core.hpp"
#include "util/align.hpp"
#include "util/spin.hpp"

namespace cohort {

class reciprocating_lock {
 public:
  struct qnode {
    std::atomic<std::uintptr_t> grant{0};
    qnode* next = nullptr;  // published by the arrival CAS (release)
  };
  struct context {
    qnode node;
    qnode* wave = nullptr;  // remainder of the admission wave; set by lock()
  };

  reciprocating_lock() = default;
  reciprocating_lock(const reciprocating_lock&) = delete;
  reciprocating_lock& operator=(const reciprocating_lock&) = delete;

  void lock(context& ctx) {
    qnode* me = &ctx.node;
    me->grant.store(0, std::memory_order_relaxed);
    std::uintptr_t cur = arrivals_.load(std::memory_order_relaxed);
    for (;;) {
      if (cur == word_free) {
        if (arrivals_.compare_exchange_weak(cur, locked_tag,
                                            std::memory_order_acquire,
                                            std::memory_order_relaxed)) {
          ctx.wave = nullptr;  // fresh acquire: no wave to drain
          ++counters_.acquisitions;
          ++counters_.global_acquires;
          return;
        }
      } else {
        // Held: prepend to the entry segment.  The segment chain terminates
        // at the node whose next is null (the oldest arrival).
        me->next = cur == locked_tag ? nullptr
                                     : reinterpret_cast<qnode*>(cur);
        if (arrivals_.compare_exchange_weak(
                cur, reinterpret_cast<std::uintptr_t>(me),
                std::memory_order_release, std::memory_order_relaxed)) {
          std::uintptr_t g;
          spin_until([&] {
            g = me->grant.load(std::memory_order_acquire);
            return g != 0;
          });
          ctx.wave = reinterpret_cast<qnode*>(g & ~grant_mask);
          ++counters_.acquisitions;
          if ((g & grant_wave_bit) != 0) {
            ++counters_.local_handoffs;  // admitted mid-wave
          } else {
            ++counters_.global_acquires;  // head of a new wave
          }
          return;
        }
      }
    }
  }

  release_kind unlock(context& ctx) {
    if (ctx.wave != nullptr) {
      // Drain the current wave: admit the next node, handing it the rest.
      // Read the grantee's chain link *before* granting -- after the grant
      // store the grantee may reuse its node for another acquisition.
      qnode* nxt = ctx.wave;
      qnode* rest = nxt->next;
      ctx.wave = nullptr;
      nxt->grant.store(reinterpret_cast<std::uintptr_t>(rest) | grant_bit |
                           grant_wave_bit,
                       std::memory_order_release);
      return release_kind::local;
    }
    // Wave exhausted: detach whatever accumulated while it drained and
    // admit it as the next wave, or free the lock if nothing arrived.
    std::uintptr_t cur = arrivals_.load(std::memory_order_relaxed);
    for (;;) {
      if (cur == locked_tag) {
        if (arrivals_.compare_exchange_weak(cur, word_free,
                                            std::memory_order_release,
                                            std::memory_order_relaxed))
          return release_kind::global;  // actually freed
      } else {
        // Swap the entry segment out, leaving the lock held-but-empty; its
        // newest arrival becomes the wave head (arrival-reversed drain).
        if (arrivals_.compare_exchange_weak(cur, locked_tag,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
          qnode* head = reinterpret_cast<qnode*>(cur);
          qnode* rest = head->next;
          head->grant.store(reinterpret_cast<std::uintptr_t>(rest) |
                                grant_bit,
                            std::memory_order_release);
          return release_kind::local;
        }
      }
    }
  }

  // Wave statistics in the cohort vocabulary: global_acquires counts wave
  // starts (plus fresh acquires), local_handoffs counts within-wave
  // admissions, so avg_batch() is the mean wave size.  Exact at quiescence,
  // sampleable mid-run.
  cohort_stats stats() const {
    cohort_stats s;
    counters_.add_into(s);
    return s;
  }

  void reset_stats() { counters_.reset(); }

  // Holder-only test/diagnostic hook: length of the accumulated entry
  // segment.  Safe while no grant can occur (the caller holds the lock, or
  // coordinates with the holder) -- segment nodes are stable until granted.
  std::size_t entry_segment_length() const {
    std::uintptr_t cur = arrivals_.load(std::memory_order_acquire);
    if (cur == word_free || cur == locked_tag) return 0;
    std::size_t n = 0;
    for (const qnode* q = reinterpret_cast<const qnode*>(cur); q != nullptr;
         q = q->next)
      ++n;
    return n;
  }

  bool is_locked() const {
    return arrivals_.load(std::memory_order_acquire) != word_free;
  }

 private:
  static constexpr std::uintptr_t word_free = 0;
  static constexpr std::uintptr_t locked_tag = 1;
  static constexpr std::uintptr_t grant_bit = 1;       // granted
  static constexpr std::uintptr_t grant_wave_bit = 2;  // within-wave admit
  static constexpr std::uintptr_t grant_mask = grant_bit | grant_wave_bit;
  static_assert(alignof(qnode) >= 4, "grant word steals two pointer bits");

  // The one lock word.
  alignas(destructive_interference_size) std::atomic<std::uintptr_t>
      arrivals_{word_free};

  // Sampled concurrently by coordinators; interference-aligned itself.
  cohort_counters counters_{};
};

// Constant-space claim, pinned at compile time: a thread's entire footprint
// is one context regardless of contention or lock count.
static_assert(sizeof(reciprocating_lock::context) <=
                  4 * sizeof(std::uintptr_t),
              "reciprocating context must stay a few words");

}  // namespace cohort
