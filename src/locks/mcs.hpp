// MCS queue locks (Mellor-Crummey & Scott):
//   * mcs_lock          -- the classic lock (NUMA-oblivious baseline),
//   * cohort_mcs_lock   -- local lock with 3-state grants for C-*-MCS (§3.3),
//   * oblivious_mcs_lock-- global MCS whose queue nodes circulate through
//                          per-thread pools so that a different thread can
//                          release than acquired (C-MCS-MCS, §3.4).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "cohort/core.hpp"
#include "util/align.hpp"
#include "util/pool.hpp"
#include "util/spin.hpp"

namespace cohort {

// ---- classic MCS lock -------------------------------------------------------

class mcs_lock {
 public:
  struct qnode {
    std::atomic<qnode*> next{nullptr};
    std::atomic<bool> granted{false};
  };
  struct context {
    qnode node;
  };

  void lock(context& ctx) {
    qnode* me = &ctx.node;
    me->next.store(nullptr, std::memory_order_relaxed);
    me->granted.store(false, std::memory_order_relaxed);
    qnode* pred = tail_.exchange(me, std::memory_order_acq_rel);
    if (pred != nullptr) {
      pred->next.store(me, std::memory_order_release);
      spin_until([&] { return me->granted.load(std::memory_order_acquire); });
    }
  }

  release_kind unlock(context& ctx) {
    qnode* me = &ctx.node;
    qnode* succ = me->next.load(std::memory_order_acquire);
    if (succ == nullptr) {
      qnode* expected = me;
      if (tail_.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_release,
                                        std::memory_order_relaxed))
        return release_kind::none;
      // A successor swapped the tail but has not linked yet.
      spin_until([&] {
        return (succ = me->next.load(std::memory_order_acquire)) != nullptr;
      });
    }
    succ->granted.store(true, std::memory_order_release);
    return release_kind::none;
  }

  bool is_locked() const {
    return tail_.load(std::memory_order_acquire) != nullptr;
  }

 private:
  alignas(cache_line_size) std::atomic<qnode*> tail_{nullptr};
};

// ---- cohort-detecting local MCS lock (§3.3) ---------------------------------
//
// The grant written into the successor's node carries the release state
// (busy / release-local / release-global).  A thread arriving at an empty
// queue acquired in GLOBAL-RELEASE state by definition (it has no
// predecessor to inherit the global lock from -- Figure 1).
// alone() is the non-null-successor check; a successor that has swapped the
// tail but not linked yet yields a false positive, which only costs an
// unnecessary global release.
class cohort_mcs_lock {
 public:
  struct qnode {
    std::atomic<qnode*> next{nullptr};
    std::atomic<std::uint8_t> state{state_busy};
  };
  struct context {
    qnode node;
  };

  release_kind lock(context& ctx) {
    qnode* me = &ctx.node;
    me->next.store(nullptr, std::memory_order_relaxed);
    me->state.store(state_busy, std::memory_order_relaxed);
    qnode* pred = tail_.exchange(me, std::memory_order_acq_rel);
    if (pred == nullptr) return release_kind::global;
    pred->next.store(me, std::memory_order_release);
    std::uint8_t s;
    spin_until([&] {
      s = me->state.load(std::memory_order_acquire);
      return s != state_busy;
    });
    return s == state_release_local ? release_kind::local
                                    : release_kind::global;
  }

  bool alone(context& ctx) const {
    return ctx.node.next.load(std::memory_order_acquire) == nullptr;
  }

  bool release_local(context& ctx) {
    // Precondition: alone() returned false, so the successor is linked.
    qnode* succ = ctx.node.next.load(std::memory_order_acquire);
    succ->state.store(state_release_local, std::memory_order_release);
    return true;
  }

  void release_global(context& ctx) {
    qnode* me = &ctx.node;
    qnode* succ = me->next.load(std::memory_order_acquire);
    if (succ == nullptr) {
      qnode* expected = me;
      if (tail_.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_release,
                                        std::memory_order_relaxed))
        return;
      spin_until([&] {
        return (succ = me->next.load(std::memory_order_acquire)) != nullptr;
      });
    }
    succ->state.store(state_release_global, std::memory_order_release);
  }

  bool is_locked() const {
    return tail_.load(std::memory_order_acquire) != nullptr;
  }

 private:
  static constexpr std::uint8_t state_busy = 0;
  static constexpr std::uint8_t state_release_local = 1;
  static constexpr std::uint8_t state_release_global = 2;

  alignas(cache_line_size) std::atomic<qnode*> tail_{nullptr};
};

// ---- thread-oblivious global MCS lock (§3.4) --------------------------------
//
// The acquiring thread's queue node must stay in the queue until some *other*
// cohort thread releases the lock, so nodes cannot live on the acquirer's
// stack.  Nodes come from per-thread pools with multi-producer returns
// (util/pool.hpp); the releaser returns the node to its owner's pool.  Pools
// are process-lifetime (deliberately leaked) so a node can be returned after
// its owning thread exited.
class oblivious_mcs_lock {
 public:
  static constexpr bool is_thread_oblivious = true;
  using context = empty_context;

  void lock() {
    gnode* me = acquire_node();
    me->next.store(nullptr, std::memory_order_relaxed);
    me->granted.store(false, std::memory_order_relaxed);
    gnode* pred = tail_.exchange(me, std::memory_order_acq_rel);
    if (pred != nullptr) {
      pred->next.store(me, std::memory_order_release);
      spin_until([&] { return me->granted.load(std::memory_order_acquire); });
    }
    // Only the lock holder (and, through the cohort handoff chain, the
    // eventual releaser) touches current_.
    current_ = me;
  }

  release_kind unlock() {
    gnode* me = current_;
    current_ = nullptr;
    gnode* succ = me->next.load(std::memory_order_acquire);
    if (succ == nullptr) {
      gnode* expected = me;
      if (tail_.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_release,
                                        std::memory_order_relaxed)) {
        me->owner->release(me);
        return release_kind::none;
      }
      spin_until([&] {
        return (succ = me->next.load(std::memory_order_acquire)) != nullptr;
      });
    }
    succ->granted.store(true, std::memory_order_release);
    me->owner->release(me);
    return release_kind::none;
  }

  void lock(context&) { lock(); }
  release_kind unlock(context&) { return unlock(); }

  bool is_locked() const {
    return tail_.load(std::memory_order_acquire) != nullptr;
  }

  // Diagnostics for tests: how many nodes this thread's pool has allocated.
  static std::size_t nodes_allocated_this_thread() {
    return my_pool().allocated();
  }

 private:
  struct gnode : pool_node {
    std::atomic<gnode*> next{nullptr};
    std::atomic<bool> granted{false};
    node_pool<gnode>* owner = nullptr;
  };

  // Process-lifetime per-thread pools.  The registry itself is leaked on
  // purpose: queue nodes may be returned to a pool after the owning thread
  // has exited, so pools must never be destroyed.
  static node_pool<gnode>& my_pool() {
    static std::mutex* reg_mutex = new std::mutex;
    static std::vector<node_pool<gnode>*>* registry =
        new std::vector<node_pool<gnode>*>;
    thread_local node_pool<gnode>* pool = [] {
      auto* p = new node_pool<gnode>;
      std::lock_guard<std::mutex> g(*reg_mutex);
      registry->push_back(p);
      return p;
    }();
    return *pool;
  }

  gnode* acquire_node() {
    auto& pool = my_pool();
    gnode* n = pool.acquire();
    n->owner = &pool;
    return n;
  }

  alignas(cache_line_size) std::atomic<gnode*> tail_{nullptr};
  // Queue node of the current holder; protected by the lock itself.
  gnode* current_ = nullptr;
};

}  // namespace cohort
