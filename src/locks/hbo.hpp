// HBO: the hierarchical backoff lock of Radovic & Hagersten (HPCA'03).
//
// A test-and-test-and-set lock whose word stores the *cluster id* of the
// holder.  A waiter that sees the lock held by its own cluster backs off
// briefly (it will likely get the line from the local cache soon); a waiter
// seeing a remote holder backs off for much longer, reducing
// cross-interconnect traffic and giving local threads a better chance --
// which is exactly the unfairness the paper measures in Figure 5.
//
// The two backoff ranges are the "platform and workload dependent tuning"
// the paper criticises: Tables 1 and 2 show the microbenchmark-tuned
// parameters hurting memcached and vice versa, so the parameters are
// explicit here and benchmarks instantiate both tunings.
#pragma once

#include <atomic>
#include <cstdint>

#include "cohort/core.hpp"
#include "locks/tatas.hpp"
#include "numa/topology.hpp"
#include "util/align.hpp"
#include "util/backoff.hpp"
#include "util/spin.hpp"

namespace cohort {

class hbo_lock {
 public:
  static constexpr bool is_thread_oblivious = true;
  using context = empty_context;

  struct params {
    exp_backoff::params local{.min_spins = 8, .max_spins = 256,
                              .multiplier = 2};
    exp_backoff::params remote{.min_spins = 128, .max_spins = 16 * 1024,
                               .multiplier = 2};
  };

  hbo_lock() = default;
  explicit hbo_lock(params p) : params_(p) {}

  void lock() { (void)try_lock_impl(deadline_never()); }

  // Abortable by definition (the paper's A-HBO simply returns failure).
  bool try_lock(deadline d) { return try_lock_impl(d); }

  release_kind unlock() {
    word_.store(free_word, std::memory_order_release);
    return release_kind::none;
  }

  void lock(context&) { lock(); }
  release_kind unlock(context&) { return unlock(); }

  bool is_locked() const {
    return word_.load(std::memory_order_acquire) != free_word;
  }

 private:
  static constexpr std::uint32_t free_word = 0xffffffffu;

  bool try_lock_impl(deadline d) {
    const std::uint32_t me = numa::thread_cluster();
    exp_backoff local_bo(params_.local);
    exp_backoff remote_bo(params_.remote);
    for (;;) {
      std::uint32_t w = word_.load(std::memory_order_relaxed);
      if (w == free_word) {
        if (word_.compare_exchange_weak(w, me, std::memory_order_acquire,
                                        std::memory_order_relaxed))
          return true;
        continue;  // lost the race; re-read before backing off
      }
      if (expired(d)) return false;
      if (w == me) {
        local_bo.pause(detail::backoff_rng());
        remote_bo.reset();
      } else {
        remote_bo.pause(detail::backoff_rng());
        local_bo.reset();
      }
    }
  }

  alignas(cache_line_size) std::atomic<std::uint32_t> word_{free_word};
  params params_{};
};

// Tunings used by the benchmarks, mirroring the paper's two HBO columns:
// "HBO" (microbenchmark tuning) and "HBO (tuned)" (memcached tuning).
inline hbo_lock::params hbo_microbench_tuning() {
  return {.local = {.min_spins = 8, .max_spins = 256, .multiplier = 2},
          .remote = {.min_spins = 256, .max_spins = 64 * 1024,
                     .multiplier = 2}};
}

inline hbo_lock::params hbo_memcached_tuning() {
  return {.local = {.min_spins = 4, .max_spins = 64, .multiplier = 2},
          .remote = {.min_spins = 32, .max_spins = 1024, .multiplier = 2}};
}

}  // namespace cohort
