// The type-erased lock handle and the construction-parameter structs --
// split out of locks/registry.hpp so wrapper locks that *build their inner
// lock through the registry* (locks/adaptive.hpp) can consume the handle
// without including the full compile-time entry table they appear in.
//
// Everything here is re-exported by registry.hpp; consumers that also need
// name lookup (with_lock_type, all_locks, find_lock) keep including that.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "cohort/cohort_lock.hpp"
#include "cohort/core.hpp"

namespace cohort::reg {

// ---- construction parameters ------------------------------------------------

// Cohort-transformation knobs (cohort_lock and the CNA starvation bound).
struct cohort_knobs {
  std::uint64_t pass_limit = 64;  // may-pass-local bound (paper §3.7)
};

// Fast-path hysteresis for the -fp locks (cohort/fastpath.hpp).  0 means
// "default": the COHORT_FISSION_LIMIT / COHORT_REENGAGE_DRAINS environment
// variables when set (so long-lived consumers like the server tune without
// new flags), else the compiled 8/4.  A literal 0 is not reachable --
// disengaging after zero failures is the same machine as limit 1.
struct fastpath_knobs {
  std::uint32_t fission_limit = 0;
  std::uint32_t reengage_drains = 0;
};

// Admission knobs for the gcr- locks (cohort/gcr.hpp).  0 means "default":
// the COHORT_GCR_MIN_ACTIVE / COHORT_GCR_MAX_ACTIVE / COHORT_GCR_ROTATION /
// COHORT_GCR_TUNE_WINDOW environment variables when set, else the compiled
// gcr_policy defaults (max_active additionally resolving 0 to the online
// CPU count inside the combinator).
struct gcr_knobs {
  std::uint32_t min_active = 0;
  std::uint32_t max_active = 0;
  std::uint32_t rotation_interval = 0;
  std::uint32_t tune_window = 0;
};

// Policy-ladder knobs for the adaptive lock (locks/adaptive.hpp).  0 means
// "default": the COHORT_ADAPTIVE_WINDOW / COHORT_ADAPTIVE_ESCALATE /
// COHORT_ADAPTIVE_DEESCALATE / COHORT_ADAPTIVE_HYSTERESIS /
// COHORT_ADAPTIVE_MAX_LEVEL / COHORT_ADAPTIVE_GCR_WAITERS environment
// variables when set, else the compiled adaptive_policy defaults
// (gcr_waiters additionally resolving 0 to the online CPU count inside the
// lock).
struct adaptive_knobs {
  std::uint32_t window = 0;          // acquisitions per decision window
  std::uint32_t escalate_pct = 0;    // contended % at/above which a window is hot
  std::uint32_t deescalate_pct = 0;  // contended % at/below which it is cold
  std::uint32_t hysteresis = 0;      // consecutive hot/cold windows per swap
  std::uint32_t max_level = 0;       // highest ladder rung (3 enables gcr)
  std::uint32_t gcr_waiters = 0;     // pinned-waiter gate for the gcr rung
};

// Per-family sub-structs: a lock only reads the knobs its family honours
// (lock_descriptor::uses_pass_limit / uses_fp_knobs / uses_gcr_knobs /
// uses_adaptive_knobs say which), and JSON records only report honoured
// knobs.
struct lock_params {
  unsigned clusters = 0;  // 0 = ask numa::system_topology()
  cohort_knobs cohort{};
  fastpath_knobs fp{};
  gcr_knobs gcr{};
  adaptive_knobs adaptive{};
};

// ---- type-erased handle -----------------------------------------------------

// Batching/handoff counters in a lock-agnostic shape.  Abortable locks'
// extra timeout counters are sliced off; the harness counts timeouts itself.
using erased_stats = cohort_stats;

class any_lock {
 public:
  virtual ~any_lock() = default;

  // Movable per-thread acquisition context; destroys itself through the
  // owning lock.  Must not outlive the lock.
  class context {
   public:
    context() = default;
    context(context&& o) noexcept : owner_(o.owner_), p_(o.p_) {
      o.owner_ = nullptr;
      o.p_ = nullptr;
    }
    context& operator=(context&& o) noexcept {
      if (this != &o) {
        reset();
        owner_ = o.owner_;
        p_ = o.p_;
        o.owner_ = nullptr;
        o.p_ = nullptr;
      }
      return *this;
    }
    context(const context&) = delete;
    context& operator=(const context&) = delete;
    ~context() { reset(); }

    void reset() {
      if (owner_ != nullptr) owner_->destroy_context(p_);
      owner_ = nullptr;
      p_ = nullptr;
    }

   private:
    friend class any_lock;
    context(any_lock* owner, void* p) : owner_(owner), p_(p) {}
    any_lock* owner_ = nullptr;
    void* p_ = nullptr;
  };

  context make_context() { return context(this, create_context()); }

  void lock(context& c) { do_lock(c.p_); }
  // The unified unlock contract: every registry lock reports how it
  // released (core.hpp).  Plain and queue locks report release_kind::none.
  release_kind unlock(context& c) { return do_unlock(c.p_); }

  // Bounded-patience acquisition; non-abortable locks block and return true.
  bool try_lock_for(context& c, std::chrono::nanoseconds patience) {
    return do_try_lock(c.p_, deadline_after(patience));
  }

  virtual const std::string& name() const = 0;
  virtual bool abortable() const = 0;
  // Present only for stats-reporting locks; reads are only meaningful while
  // the lock is quiescent.
  virtual std::optional<erased_stats> stats() const = 0;

 protected:
  virtual void* create_context() = 0;
  virtual void destroy_context(void* p) = 0;
  virtual void do_lock(void* p) = 0;
  virtual release_kind do_unlock(void* p) = 0;
  virtual bool do_try_lock(void* p, deadline d) = 0;
};

// Constructs the named lock behind a type-erased handle; nullptr for unknown
// names.  (Defined with the registry table in registry.cpp.)
std::unique_ptr<any_lock> make_lock(const std::string& name,
                                    const lock_params& lp = {});

}  // namespace cohort::reg
