// CNA: Compact NUMA-Aware locks (Dice & Kogan, EuroSys'19;
// arXiv:1810.05600) -- the post-cohort answer to the same problem the
// paper's C-*-* compositions solve.  Where lock cohorting instantiates one
// local lock per cluster plus a global lock, CNA keeps the *single-word*
// MCS footprint and gets NUMA-awareness by reordering the one queue: the
// releasing thread scans the main queue for a waiter on its own socket,
// moves the remote waiters it skipped onto a secondary list, and hands the
// lock over locally.  When no same-socket waiter exists -- or the
// pass_policy starvation bound trips -- the secondary list is spliced back
// in front of the main queue and the lock moves to another socket.
//
// Shape of the state:
//   * tail_            the one lock word (MCS tail), the only CAS target.
//   * sec_head_/sec_tail_, batch_   holder-protected plain fields: only the
//     current holder reads or writes them, and the grant-word release ->
//     acquire edge (or the freeing CAS -> tail exchange edge for a fresh
//     acquirer) carries them between consecutive holders -- the same idiom
//     as oblivious_mcs_lock::current_.
//   * counters_        relaxed stat cells, holder-incremented, sampled
//     concurrently by benchmark coordinators (util/stat_cell.hpp).
//
// Grant protocol: each waiter spins on its own node's grant word.  The
// value carries the batch classification (started a new batch vs inherited
// a same-socket batch) so acquirer-side stats stay single-writer.
//
// The deferral scan only walks the *linked* portion of the queue: an
// arrival that has swapped the tail but not yet linked its predecessor ends
// the scan early (treated as "no same-socket waiter"), which costs at most
// one unnecessary batch boundary -- never a lost node.
//
// unlock() reports release_kind like the cohort compositions do, so
// fissile_lock<cna_lock> composes: `local` for any in-queue handoff (the
// lock stayed populated), `global` only when the lock was actually freed --
// exactly the drained-traffic signal the fast path's re-engagement
// hysteresis wants.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "cohort/cohort_lock.hpp"
#include "cohort/core.hpp"
#include "numa/topology.hpp"
#include "util/align.hpp"
#include "util/spin.hpp"

namespace cohort {

class cna_lock {
 public:
  struct qnode {
    std::atomic<qnode*> next{nullptr};
    std::atomic<std::uint32_t> grant{grant_wait};
    unsigned cluster = 0;
  };
  struct context {
    qnode node;
  };

  cna_lock() = default;
  // The cohort pass_policy doubles as CNA's starvation bound: the number of
  // consecutive same-socket handoffs before deferred remote waiters are
  // force-admitted.  limit 0 degenerates to plain MCS order (no
  // preference); unbounded_pass reproduces the unbounded variant.
  explicit cna_lock(pass_policy policy) : policy_(policy) {}

  cna_lock(const cna_lock&) = delete;
  cna_lock& operator=(const cna_lock&) = delete;

  void lock(context& ctx) {
    qnode* me = &ctx.node;
    me->next.store(nullptr, std::memory_order_relaxed);
    me->grant.store(grant_wait, std::memory_order_relaxed);
    me->cluster = numa::thread_cluster();
    qnode* pred = tail_.exchange(me, std::memory_order_acq_rel);
    if (pred == nullptr) {
      // Fresh acquire: the freeing CAS released with an empty secondary
      // list, so only batch_ needs resetting.
      batch_ = 0;
      ++counters_.acquisitions;
      ++counters_.global_acquires;
      return;
    }
    pred->next.store(me, std::memory_order_release);
    std::uint32_t g;
    spin_until([&] {
      g = me->grant.load(std::memory_order_acquire);
      return g != grant_wait;
    });
    ++counters_.acquisitions;
    if (g == grant_batch) {
      ++counters_.local_handoffs;  // same-socket batch continues
    } else {
      ++counters_.global_acquires;  // new batch: fresh socket or bound hit
    }
  }

  release_kind unlock(context& ctx) {
    qnode* me = &ctx.node;
    qnode* succ = me->next.load(std::memory_order_acquire);
    if (succ == nullptr) {
      if (sec_head_ == nullptr) {
        qnode* expected = me;
        if (tail_.compare_exchange_strong(expected, nullptr,
                                          std::memory_order_release,
                                          std::memory_order_relaxed))
          return release_kind::global;  // queue empty: actually freed
        // A successor swapped the tail but has not linked yet.
        spin_until([&] {
          return (succ = me->next.load(std::memory_order_acquire)) != nullptr;
        });
      } else {
        // Main queue drained but remote waiters sit deferred: promote the
        // secondary list to be the main queue and admit its head.
        qnode* expected = me;
        qnode* head = sec_head_;
        if (tail_.compare_exchange_strong(expected, sec_tail_,
                                          std::memory_order_release,
                                          std::memory_order_relaxed)) {
          sec_head_ = nullptr;
          sec_tail_ = nullptr;
          batch_ = 0;
          head->grant.store(grant_new_batch, std::memory_order_release);
          return release_kind::local;
        }
        spin_until([&] {
          return (succ = me->next.load(std::memory_order_acquire)) != nullptr;
        });
      }
    }
    // Main queue non-empty.  Prefer a same-socket successor while the
    // starvation bound allows, deferring the remote prefix we skip.
    if (batch_ < policy_.limit) {
      qnode* prev = nullptr;
      qnode* cur = succ;
      std::uint64_t skipped = 0;
      while (cur->cluster != me->cluster) {
        qnode* nxt = cur->next.load(std::memory_order_acquire);
        if (nxt == nullptr) {
          // End of the linked chain (or an arrival mid-link): no
          // same-socket waiter reachable.
          cur = nullptr;
          break;
        }
        prev = cur;
        cur = nxt;
        ++skipped;
      }
      if (cur != nullptr) {
        if (prev != nullptr) {
          // Move the skipped remote prefix [succ..prev] to the secondary
          // list.  The deferred nodes keep spinning on their own grant
          // words; only future holders walk these links.
          prev->next.store(nullptr, std::memory_order_relaxed);
          if (sec_head_ == nullptr)
            sec_head_ = succ;
          else
            sec_tail_->next.store(succ, std::memory_order_relaxed);
          sec_tail_ = prev;
          counters_.deferrals.add(skipped);
        }
        ++batch_;
        cur->grant.store(grant_batch, std::memory_order_release);
        return release_kind::local;
      }
    }
    // Starvation bound hit or no same-socket waiter: end the batch.  Splice
    // the deferred remote waiters back in *front* of the main queue (they
    // have waited longest) and admit the combined head.
    qnode* head = succ;
    if (sec_head_ != nullptr) {
      sec_tail_->next.store(succ, std::memory_order_relaxed);
      head = sec_head_;
      sec_head_ = nullptr;
      sec_tail_ = nullptr;
    }
    batch_ = 0;
    head->grant.store(grant_new_batch, std::memory_order_release);
    return release_kind::local;
  }

  const pass_policy& policy() const noexcept { return policy_; }

  // Holder-only test/diagnostic hook: waiters currently *linked* into the
  // main queue behind the holder (excludes mid-link arrivals and the
  // deferred list).  Only the holder may call it -- the walk relies on the
  // queue not being granted away underneath it.
  std::size_t queued_waiters(const context& holder_ctx) const {
    std::size_t n = 0;
    for (const qnode* cur =
             holder_ctx.node.next.load(std::memory_order_acquire);
         cur != nullptr; cur = cur->next.load(std::memory_order_acquire))
      ++n;
    return n;
  }

  // Batching statistics in the cohort vocabulary: a "batch" is a run of
  // same-socket handoffs, global_acquires counts batch starts (socket
  // migrations plus fresh acquires), deferrals counts waiters parked on the
  // secondary list.  Exact at quiescence, sampleable mid-run.
  cohort_stats stats() const {
    cohort_stats s;
    counters_.add_into(s);
    return s;
  }

  void reset_stats() { counters_.reset(); }

  bool is_locked() const {
    return tail_.load(std::memory_order_acquire) != nullptr;
  }

 private:
  // Grant-word values: the waiter's spin target starts at grant_wait; the
  // releaser stores the batch classification.
  static constexpr std::uint32_t grant_wait = 0;
  static constexpr std::uint32_t grant_new_batch = 1;  // you start a batch
  static constexpr std::uint32_t grant_batch = 2;      // same-socket handoff

  // Line 0: the lock word every arrival CASes.
  alignas(destructive_interference_size) std::atomic<qnode*> tail_{nullptr};

  // Line 1: holder-protected queue-surgery state.  Plain fields: the grant
  // release->acquire edge hands them from holder to holder.
  alignas(destructive_interference_size) qnode* sec_head_ = nullptr;
  qnode* sec_tail_ = nullptr;
  std::uint64_t batch_ = 0;
  pass_policy policy_{};

  // Own line: sampled concurrently by coordinators (cohort_counters is
  // interference-aligned itself).
  cohort_counters counters_{};
};

}  // namespace cohort
