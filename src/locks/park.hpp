// A futex-based spin-then-park lock, and with it the blocking cohort locks
// the paper's §2.1 promises ("lock cohorting ... could be as easily applied
// to blocking-locks").
//
// The futex protocol (word: 0 free / 1 locked / 2 locked-contended) is
// thread-oblivious -- any thread may store 0 and wake a sleeper -- so
// park_lock can serve as a cohort *global* lock: waiters from other clusters
// sleep in the kernel while a cohort works through its batch, and whichever
// cohort member ends the batch performs the wake.  Combined with a spinning
// local lock this gives a spin-locally/block-globally hybrid.
#pragma once

#include <atomic>
#include <cstdint>

#include "cohort/core.hpp"
#include "util/align.hpp"
#include "util/futex.hpp"
#include "util/spin.hpp"

namespace cohort {

class park_lock {
 public:
  static constexpr bool is_thread_oblivious = true;
  using context = empty_context;

  void lock() {
    std::uint32_t w = 0;
    if (word_.compare_exchange_strong(w, 1, std::memory_order_acquire,
                                      std::memory_order_relaxed))
      return;
    // Adaptive phase: poll briefly before paying the syscall.
    for (int i = 0; i < adaptive_spins; ++i) {
      cpu_relax();
      w = word_.load(std::memory_order_relaxed);
      if (w == 0 &&
          word_.compare_exchange_weak(w, 1, std::memory_order_acquire,
                                      std::memory_order_relaxed))
        return;
    }
    // Park until the word can be claimed; always leave it marked contended
    // so the releaser knows to wake someone.
    while (word_.exchange(2, std::memory_order_acquire) != 0)
      futex::wait(word_, 2);
  }

  bool try_lock() {
    std::uint32_t w = 0;
    return word_.compare_exchange_strong(w, 1, std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  release_kind unlock() {
    if (word_.exchange(0, std::memory_order_release) == 2)
      futex::wake_one(word_);
    return release_kind::none;
  }

  void lock(context&) { lock(); }
  release_kind unlock(context&) { return unlock(); }

  bool is_locked() const {
    return word_.load(std::memory_order_acquire) != 0;
  }

 private:
  static constexpr int adaptive_spins = 256;

  alignas(cache_line_size) std::atomic<std::uint32_t> word_{0};
};

}  // namespace cohort
