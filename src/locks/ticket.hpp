// Ticket locks (Mellor-Crummey & Scott) and the cohort-detecting local
// variant with the top-granted flag used by C-TKT-TKT / C-TKT-MCS (§3.2).
#pragma once

#include <atomic>
#include <cstdint>

#include "cohort/core.hpp"
#include "util/align.hpp"
#include "util/spin.hpp"

namespace cohort {

// ---- plain ticket lock ------------------------------------------------------
//
// Thread-oblivious: one thread may increment request, another grant.  FIFO
// fair, which is why cohort locks built on a global ticket lock measure as
// fair in Figure 5.
class ticket_lock {
 public:
  static constexpr bool is_thread_oblivious = true;
  using context = empty_context;

  void lock() {
    const std::uint32_t me =
        request_.fetch_add(1, std::memory_order_relaxed);
    spin_wait w;
    while (grant_.load(std::memory_order_acquire) != me) w.spin();
  }

  bool try_lock() {
    std::uint32_t g = grant_.load(std::memory_order_acquire);
    std::uint32_t r = g;
    return request_.compare_exchange_strong(r, g + 1,
                                            std::memory_order_acquire,
                                            std::memory_order_relaxed);
  }

  release_kind unlock() {
    grant_.store(grant_.load(std::memory_order_relaxed) + 1,
                 std::memory_order_release);
    return release_kind::none;
  }

  void lock(context&) { lock(); }
  release_kind unlock(context&) { return unlock(); }

  bool is_locked() const {
    return request_.load(std::memory_order_acquire) !=
           grant_.load(std::memory_order_acquire);
  }

 private:
  // Separate lines: arriving threads hammer request_, waiters spin on
  // grant_.
  alignas(cache_line_size) std::atomic<std::uint32_t> request_{0};
  alignas(cache_line_size) std::atomic<std::uint32_t> grant_{0};
};

// ---- cohort-detecting local ticket lock (§3.2) ------------------------------
//
// alone(): more requests than grants+1 means waiters exist (exact, no false
// negatives: a waiter increments request before it can possibly abort -- and
// this lock is non-abortable).
// Local handoff: the releaser sets top-granted, then increments grant; the
// next owner consumes top-granted and thereby inherits the global lock.
class cohort_ticket_lock {
 public:
  struct context {
    std::uint32_t ticket = 0;
  };

  release_kind lock(context& ctx) {
    ctx.ticket = request_.fetch_add(1, std::memory_order_relaxed);
    spin_wait w;
    while (grant_.load(std::memory_order_acquire) != ctx.ticket) w.spin();
    if (top_granted_.load(std::memory_order_acquire)) {
      // Consume the grant of the global lock (footnote 3 of the paper).
      top_granted_.store(false, std::memory_order_relaxed);
      return release_kind::local;
    }
    return release_kind::global;
  }

  bool alone(context& ctx) const {
    return request_.load(std::memory_order_acquire) == ctx.ticket + 1;
  }

  bool release_local(context& ctx) {
    top_granted_.store(true, std::memory_order_relaxed);
    grant_.store(ctx.ticket + 1, std::memory_order_release);
    return true;
  }

  void release_global(context& ctx) {
    grant_.store(ctx.ticket + 1, std::memory_order_release);
  }

  bool is_locked() const {
    return request_.load(std::memory_order_acquire) !=
           grant_.load(std::memory_order_acquire);
  }

 private:
  alignas(cache_line_size) std::atomic<std::uint32_t> request_{0};
  alignas(cache_line_size) std::atomic<std::uint32_t> grant_{0};
  // Read/written only by lock owners (serialised by the ticket protocol);
  // shares the grant_ line so the handoff is a single-line transfer.
  std::atomic<bool> top_granted_{false};
};

}  // namespace cohort
