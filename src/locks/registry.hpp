// Name-based dispatch over the *real* lock types, mirroring the simulator's
// sim/locks/registry.hpp.  Lock names follow the paper's figures and tables,
// so harnesses, examples and future workloads can say "C-BO-MCS" instead of
// spelling out a template instantiation.
//
// The registry is descriptor-based: every lock is one `detail::entry` in the
// compile-time table below -- name, family, capability flags, which tuning
// knobs it honours, a one-line summary, and a factory over the resolved
// parameters.  Everything else is derived from that single row:
//
//  * with_lock_type(name, params, fn)  -- compile-time dispatch.  fn is a
//    generic callable invoked with a factory `() -> std::unique_ptr<LockType>`;
//    use this when the hot loop should be monomorphised (the benchmark
//    harness does).
//  * make_lock(name, params)           -- a type-erased any_lock with virtual
//    lock/unlock and heap-allocated per-thread contexts; use this when a
//    uniform runtime handle matters more than the last nanosecond.
//  * all_locks()                       -- runtime lock_descriptor metadata:
//    what `cohort_bench --list-locks` prints, what scripts and the
//    registry-completeness tests cross-check against.
//
// Capability flags that a mismatched declaration could silently break
// (abortable, reports_batch_stats) are *computed* from the lock type with
// the same requires-expressions the any_lock adapter uses, so the metadata
// cannot drift from the behaviour.  Flags the type system cannot see
// (cluster_aware) are declared per entry.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <type_traits>
#include <vector>

#include "cohort/locks.hpp"
#include "locks/adaptive.hpp"
#include "locks/any_lock.hpp"
#include "locks/fcmcs.hpp"
#include "locks/hbo.hpp"
#include "locks/hclh.hpp"
#include "locks/pthread_lock.hpp"

namespace cohort::reg {

// ---- construction parameters ------------------------------------------------
// The knob structs, lock_params, and the type-erased any_lock handle live in
// locks/any_lock.hpp (so wrapper locks built *through* the registry, like
// locks/adaptive.hpp, can consume them without the entry table); this header
// re-exports them.

// The fastpath_policy the -fp registry entries will be constructed with,
// after the default chain above resolves.  Exposed so records (JSON) can
// report the effective values rather than the request.
fastpath_policy effective_fastpath(const lock_params& lp);

// Likewise the gcr_policy the gcr- entries will be constructed with (before
// the combinator's own max_active==0 -> online-CPUs resolution, which is
// per-construction).
gcr_policy effective_gcr(const lock_params& lp);

// And the adaptive_policy the adaptive entry will be constructed with; the
// monitor additionally sanitises (window/hysteresis floors, disjoint
// escalate/de-escalate bands) and resolves gcr_waiters==0 to the online CPU
// count per construction.
adaptive_policy effective_adaptive(const lock_params& lp);

// ---- descriptor metadata ----------------------------------------------------

enum class lock_family : std::uint8_t {
  plain,         // centralised spin/system locks (TATAS, BO, TKT, pthread...)
  queue,         // FIFO queue locks (MCS, CLH, HCLH, FC-MCS)
  cohort,        // the paper's C-*-* / A-C-*-* compositions
  compact,       // single-word NUMA locks (CNA, Reciprocating)
  fp_composite,  // fissile_lock<Inner> fast-path wrappers ("-fp")
  gcr,           // gcr<Inner> admission wrappers ("gcr-")
  adaptive,      // contention-driven policy ladder (locks/adaptive.hpp)
};

const char* to_string(lock_family f);

struct lock_caps {
  bool abortable = false;           // bounded-patience try_lock
  bool fp_composable = false;       // valid Inner for fissile_lock
  bool cluster_aware = false;       // consults the NUMA topology
  bool reports_batch_stats = false; // exposes cohort_stats counters
};

struct lock_descriptor {
  std::string name;
  lock_family family{};
  lock_caps caps{};
  bool uses_pass_limit = false;     // honours lock_params::cohort
  bool uses_fp_knobs = false;       // honours lock_params::fp
  bool uses_gcr_knobs = false;      // honours lock_params::gcr
  bool uses_adaptive_knobs = false; // honours lock_params::adaptive
  std::string summary;              // one line for --list-locks
  std::function<std::unique_ptr<any_lock>(const lock_params&)> make;
};

namespace detail {

// Cluster count the constructed lock will actually use.
inline unsigned effective_clusters(const lock_params& lp) {
  return lp.clusters != 0 ? lp.clusters : numa::system_topology().clusters();
}

// lock_params with every default chain resolved; what entry makers consume.
// `base` keeps the unresolved params for wrapper locks (adaptive) that build
// their inner locks back through make_lock -- each inner construction then
// re-resolves the same chain, so effective values cannot diverge.
struct resolved_params {
  unsigned clusters;
  pass_policy pp;
  fastpath_policy fpp;
  gcr_policy gp;
  adaptive_policy ap;
  lock_params base;
};

resolved_params resolve(const lock_params& lp);

// Capability detection shared by the descriptor builder and the any_lock
// adapter -- one definition, so the two can never disagree.
template <typename Lock>
constexpr bool lock_is_abortable() {
  return requires(Lock& l, typename Lock::context& c, deadline d) {
           l.try_lock(c, d);
         } || requires(Lock& l, deadline d) { l.try_lock(d); };
}

template <typename Lock>
constexpr bool lock_reports_stats() {
  return requires(const Lock& l) { l.stats(); };
}

// One registry row.  Maker is a captureless lambda
// `(const resolved_params&) -> std::unique_ptr<Lock>`; the lock type is
// recovered from its return type wherever it is needed.
template <typename Maker>
struct entry {
  const char* name;
  lock_family family;
  bool fp_composable;
  bool cluster_aware;
  bool uses_pass_limit;
  bool uses_fp_knobs;
  const char* summary;
  Maker make;

  using lock_type =
      typename std::invoke_result_t<Maker, const resolved_params&>::
          element_type;
};

// The single source of truth: every lock appears exactly once, in the order
// the paper's evaluation introduces them, followed by the post-cohort
// compact locks and the -fp composites.  with_lock_type, all_locks(), the
// name lists and make_lock all walk this tuple.
inline const auto& entries() {
  static const auto table = std::tuple{
      // -- plain -------------------------------------------------------------
      entry{"pthread", lock_family::plain, false, false, false, false,
            "pthread_mutex_t baseline",
            [](const resolved_params&) {
              return std::make_unique<pthread_lock>();
            }},
      entry{"TATAS", lock_family::plain, false, false, false, false,
            "test-and-test-and-set spin lock",
            [](const resolved_params&) {
              return std::make_unique<tas_spin_lock>();
            }},
      entry{"BO", lock_family::plain, false, false, false, false,
            "TATAS with exponential backoff",
            [](const resolved_params&) { return std::make_unique<bo_lock>(); }},
      entry{"Fib-BO", lock_family::plain, false, false, false, false,
            "TATAS with Fibonacci backoff",
            [](const resolved_params&) {
              return std::make_unique<fib_bo_lock>();
            }},
      entry{"TKT", lock_family::plain, false, false, false, false,
            "FIFO ticket lock",
            [](const resolved_params&) {
              return std::make_unique<ticket_lock>();
            }},
      // -- queue -------------------------------------------------------------
      entry{"MCS", lock_family::queue, false, false, false, false,
            "MCS queue lock, explicit qnode",
            [](const resolved_params&) { return std::make_unique<mcs_lock>(); }},
      entry{"CLH", lock_family::queue, false, false, false, false,
            "CLH implicit-queue lock",
            [](const resolved_params&) { return std::make_unique<clh_lock>(); }},
      entry{"A-CLH", lock_family::queue, false, false, false, false,
            "abortable CLH (timeout by marking the node)",
            [](const resolved_params&) {
              return std::make_unique<aclh_lock>();
            }},
      entry{"HBO", lock_family::plain, false, true, false, false,
            "hierarchical backoff (microbenchmark tuning)",
            [](const resolved_params&) {
              return std::make_unique<hbo_lock>(hbo_microbench_tuning());
            }},
      entry{"HBO-tuned", lock_family::plain, false, true, false, false,
            "hierarchical backoff (memcached tuning)",
            [](const resolved_params&) {
              return std::make_unique<hbo_lock>(hbo_memcached_tuning());
            }},
      entry{"HCLH", lock_family::queue, false, true, false, false,
            "hierarchical CLH, per-cluster splicing",
            [](const resolved_params& rp) {
              return std::make_unique<hclh_lock>(rp.clusters);
            }},
      entry{"FC-MCS", lock_family::queue, false, true, false, false,
            "flat-combining MCS",
            [](const resolved_params& rp) {
              return std::make_unique<fc_mcs_lock>(rp.clusters);
            }},
      // -- cohort (paper §3) -------------------------------------------------
      entry{"C-BO-BO", lock_family::cohort, true, true, true, false,
            "cohort: global BO, local BO (§3.1)",
            [](const resolved_params& rp) {
              return std::make_unique<c_bo_bo_lock>(rp.pp, rp.clusters);
            }},
      entry{"C-TKT-TKT", lock_family::cohort, true, true, true, false,
            "cohort: global ticket, local ticket (§3.2)",
            [](const resolved_params& rp) {
              return std::make_unique<c_tkt_tkt_lock>(rp.pp, rp.clusters);
            }},
      entry{"C-BO-MCS", lock_family::cohort, true, true, true, false,
            "cohort: global BO, local MCS (§3.3)",
            [](const resolved_params& rp) {
              return std::make_unique<c_bo_mcs_lock>(rp.pp, rp.clusters);
            }},
      entry{"C-TKT-MCS", lock_family::cohort, true, true, true, false,
            "cohort: global ticket, local MCS (§3.5)",
            [](const resolved_params& rp) {
              return std::make_unique<c_tkt_mcs_lock>(rp.pp, rp.clusters);
            }},
      entry{"C-MCS-MCS", lock_family::cohort, true, true, true, false,
            "cohort: global MCS, local MCS (§3.4)",
            [](const resolved_params& rp) {
              return std::make_unique<c_mcs_mcs_lock>(rp.pp, rp.clusters);
            }},
      entry{"C-PARK-MCS", lock_family::cohort, true, true, true, false,
            "cohort: global futex-park, local MCS (blocking hybrid)",
            [](const resolved_params& rp) {
              return std::make_unique<c_park_mcs_lock>(rp.pp, rp.clusters);
            }},
      entry{"A-C-BO-BO", lock_family::cohort, true, true, true, false,
            "abortable cohort: global BO, local BO (§3.6.1)",
            [](const resolved_params& rp) {
              return std::make_unique<a_c_bo_bo_lock>(rp.pp, rp.clusters);
            }},
      entry{"A-C-BO-CLH", lock_family::cohort, true, true, true, false,
            "abortable cohort: global BO, local A-CLH (§3.6.2)",
            [](const resolved_params& rp) {
              return std::make_unique<a_c_bo_clh_lock>(rp.pp, rp.clusters);
            }},
      // -- compact (post-cohort single-word NUMA locks) ----------------------
      entry{"cna", lock_family::compact, true, true, true, false,
            "Compact NUMA-Aware lock: one-word MCS, same-socket handoff,"
            " deferred remote list (arXiv:1810.05600)",
            [](const resolved_params& rp) {
              return std::make_unique<cna_lock>(rp.pp);
            }},
      entry{"reciprocating", lock_family::compact, true, false, false, false,
            "Reciprocating lock: LIFO entry segment, alternating admission"
            " waves, constant space (arXiv:2501.02380)",
            [](const resolved_params&) {
              return std::make_unique<reciprocating_lock>();
            }},
      // -- fp composites (cohort/fastpath.hpp) -------------------------------
      entry{"C-BO-BO-fp", lock_family::fp_composite, false, true, true, true,
            "C-BO-BO behind a fissile fast path",
            [](const resolved_params& rp) {
              return std::make_unique<c_bo_bo_fp_lock>(rp.fpp, rp.pp,
                                                       rp.clusters);
            }},
      entry{"C-TKT-TKT-fp", lock_family::fp_composite, false, true, true, true,
            "C-TKT-TKT behind a fissile fast path",
            [](const resolved_params& rp) {
              return std::make_unique<c_tkt_tkt_fp_lock>(rp.fpp, rp.pp,
                                                         rp.clusters);
            }},
      entry{"C-BO-MCS-fp", lock_family::fp_composite, false, true, true, true,
            "C-BO-MCS behind a fissile fast path",
            [](const resolved_params& rp) {
              return std::make_unique<c_bo_mcs_fp_lock>(rp.fpp, rp.pp,
                                                        rp.clusters);
            }},
      entry{"C-TKT-MCS-fp", lock_family::fp_composite, false, true, true, true,
            "C-TKT-MCS behind a fissile fast path",
            [](const resolved_params& rp) {
              return std::make_unique<c_tkt_mcs_fp_lock>(rp.fpp, rp.pp,
                                                         rp.clusters);
            }},
      entry{"C-MCS-MCS-fp", lock_family::fp_composite, false, true, true, true,
            "C-MCS-MCS behind a fissile fast path",
            [](const resolved_params& rp) {
              return std::make_unique<c_mcs_mcs_fp_lock>(rp.fpp, rp.pp,
                                                         rp.clusters);
            }},
      entry{"C-PARK-MCS-fp", lock_family::fp_composite, false, true, true,
            true, "C-PARK-MCS behind a fissile fast path",
            [](const resolved_params& rp) {
              return std::make_unique<c_park_mcs_fp_lock>(rp.fpp, rp.pp,
                                                          rp.clusters);
            }},
      entry{"A-C-BO-BO-fp", lock_family::fp_composite, false, true, true,
            true, "A-C-BO-BO behind a fissile fast path",
            [](const resolved_params& rp) {
              return std::make_unique<a_c_bo_bo_fp_lock>(rp.fpp, rp.pp,
                                                         rp.clusters);
            }},
      entry{"A-C-BO-CLH-fp", lock_family::fp_composite, false, true, true,
            true, "A-C-BO-CLH behind a fissile fast path",
            [](const resolved_params& rp) {
              return std::make_unique<a_c_bo_clh_fp_lock>(rp.fpp, rp.pp,
                                                          rp.clusters);
            }},
      entry{"cna-fp", lock_family::fp_composite, false, true, true, true,
            "CNA behind a fissile fast path",
            [](const resolved_params& rp) {
              return std::make_unique<cna_fp_lock>(rp.fpp, rp.pp);
            }},
      entry{"reciprocating-fp", lock_family::fp_composite, false, false,
            false, true, "Reciprocating behind a fissile fast path",
            [](const resolved_params& rp) {
              return std::make_unique<reciprocating_fp_lock>(rp.fpp);
            }},
      // -- gcr admission wrappers (cohort/gcr.hpp) ---------------------------
      // Not fp_composable: the admission gate parks surplus threads, so a
      // fissile gate *outside* it would let fast acquirers bypass admission;
      // compose the other way around (gcr-*-fp wraps the -fp lock inside).
      entry{"gcr-TATAS", lock_family::gcr, false, false, false, false,
            "TATAS behind a GCR admission gate (arXiv:1905.10818)",
            [](const resolved_params& rp) {
              return std::make_unique<gcr_tatas_lock>(rp.gp);
            }},
      entry{"gcr-C-BO-MCS", lock_family::gcr, false, true, true, false,
            "C-BO-MCS behind a GCR admission gate",
            [](const resolved_params& rp) {
              return std::make_unique<gcr_c_bo_mcs_lock>(rp.gp, rp.pp,
                                                         rp.clusters);
            }},
      entry{"gcr-C-MCS-MCS", lock_family::gcr, false, true, true, false,
            "C-MCS-MCS behind a GCR admission gate",
            [](const resolved_params& rp) {
              return std::make_unique<gcr_c_mcs_mcs_lock>(rp.gp, rp.pp,
                                                          rp.clusters);
            }},
      entry{"gcr-cna", lock_family::gcr, false, true, true, false,
            "CNA behind a GCR admission gate",
            [](const resolved_params& rp) {
              return std::make_unique<gcr_cna_lock>(rp.gp, rp.pp);
            }},
      entry{"gcr-reciprocating", lock_family::gcr, false, false, false, false,
            "Reciprocating behind a GCR admission gate",
            [](const resolved_params& rp) {
              return std::make_unique<gcr_reciprocating_lock>(rp.gp);
            }},
      entry{"gcr-C-BO-MCS-fp", lock_family::gcr, false, true, true, true,
            "C-BO-MCS-fp behind a GCR admission gate",
            [](const resolved_params& rp) {
              return std::make_unique<gcr_c_bo_mcs_fp_lock>(rp.gp, rp.fpp,
                                                            rp.pp,
                                                            rp.clusters);
            }},
      entry{"gcr-C-MCS-MCS-fp", lock_family::gcr, false, true, true, true,
            "C-MCS-MCS-fp behind a GCR admission gate",
            [](const resolved_params& rp) {
              return std::make_unique<gcr_c_mcs_mcs_fp_lock>(rp.gp, rp.fpp,
                                                             rp.pp,
                                                             rp.clusters);
            }},
      entry{"gcr-cna-fp", lock_family::gcr, false, true, true, true,
            "cna-fp behind a GCR admission gate",
            [](const resolved_params& rp) {
              return std::make_unique<gcr_cna_fp_lock>(rp.gp, rp.fpp, rp.pp);
            }},
      entry{"gcr-reciprocating-fp", lock_family::gcr, false, false, false,
            true, "reciprocating-fp behind a GCR admission gate",
            [](const resolved_params& rp) {
              return std::make_unique<gcr_reciprocating_fp_lock>(rp.gp,
                                                                 rp.fpp);
            }},
      // -- adaptive policy ladder (locks/adaptive.hpp) -----------------------
      // Honours the knobs of every rung it can build (pass_limit, fp, gcr)
      // plus its own monitor knobs.  Not fp_composable: the ladder already
      // contains the -fp rung, and a fissile gate *outside* the swap
      // protocol would bypass the version pins.
      entry{"adaptive", lock_family::adaptive, false, true, true, true,
            "contention-driven ladder TATAS -> C-BO-MCS-fp -> C-BO-MCS"
            " (-> gcr-) with quiescent hot-swap",
            [](const resolved_params& rp) {
              return std::make_unique<adaptive_lock>(rp.ap, rp.base);
            }},
  };
  return table;
}

}  // namespace detail

// Invokes fn with a zero-argument factory for the named lock type.  Returns
// false for unknown names.  fn must be a generic callable (it is
// instantiated once per lock type).
template <typename Fn>
bool with_lock_type(const std::string& name, const lock_params& lp, Fn&& fn) {
  const detail::resolved_params rp = detail::resolve(lp);
  bool found = false;
  auto try_one = [&](const auto& e) {
    if (found || name != e.name) return;
    found = true;
    fn([&] { return e.make(rp); });
  };
  std::apply([&](const auto&... e) { (try_one(e), ...); }, detail::entries());
  return found;
}

// Descriptor list, one per registered lock, in registry order.
const std::vector<lock_descriptor>& all_locks();
// nullptr for unknown names.
const lock_descriptor* find_lock(const std::string& name);

// Near-miss candidates for a name find_lock rejected: case-insensitive
// prefix matches first, then small edit distances, registry order breaking
// ties.  Empty when nothing is plausibly close.
std::vector<std::string> suggest_lock_names(const std::string& name,
                                            std::size_t max_out = 3);
// The one diagnostic every consumer (bench CLI, workloads, server) prints
// for a failed lookup: "unknown lock 'X'; did you mean ...?".
std::string unknown_lock_message(const std::string& name);

// Canonical name list, in the order the paper's evaluation introduces them.
const std::vector<std::string>& all_lock_names();
// The subset exposing batching statistics (caps.reports_batch_stats): the
// cohort compositions, their -fp composites, and the compact locks.
const std::vector<std::string>& cohort_lock_names();
// The subset supporting bounded-patience acquisition (caps.abortable).
const std::vector<std::string>& abortable_lock_names();
// The application-benchmark comparison set (the real-machine analogue of the
// sim registry's table1_lock_names()).
const std::vector<std::string>& table_lock_names();

bool is_lock_name(const std::string& name);

}  // namespace cohort::reg
