// Name-based dispatch over the *real* lock types, mirroring the simulator's
// sim/locks/registry.hpp.  Lock names follow the paper's figures and tables,
// so harnesses, examples and future workloads can say "C-BO-MCS" instead of
// spelling out a template instantiation.
//
// Two layers:
//  * with_lock_type(name, params, fn)  -- compile-time dispatch.  fn is a
//    generic callable invoked with a factory `() -> std::unique_ptr<LockType>`;
//    use this when the hot loop should be monomorphised (the benchmark
//    harness does).
//  * make_lock(name, params)           -- a type-erased any_lock with virtual
//    lock/unlock and heap-allocated per-thread contexts; use this when a
//    uniform runtime handle matters more than the last nanosecond.
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cohort/locks.hpp"
#include "locks/fcmcs.hpp"
#include "locks/hbo.hpp"
#include "locks/hclh.hpp"
#include "locks/pthread_lock.hpp"

namespace cohort::reg {

struct lock_params {
  unsigned clusters = 0;           // 0 = ask numa::system_topology()
  std::uint64_t pass_limit = 64;   // cohort may-pass-local bound (§3.7)
  // Fast-path hysteresis for the -fp locks (cohort/fastpath.hpp).  0 means
  // "default": the COHORT_FISSION_LIMIT / COHORT_REENGAGE_DRAINS
  // environment variables when set (so long-lived consumers like the
  // server tune without new flags), else the compiled 8/4.  A literal 0 is
  // not reachable -- disengaging after zero failures is the same machine
  // as limit 1.
  std::uint32_t fission_limit = 0;
  std::uint32_t reengage_drains = 0;
};

// The fastpath_policy the -fp registry entries will be constructed with,
// after the default chain above resolves.  Exposed so records (JSON) can
// report the effective values rather than the request.
fastpath_policy effective_fastpath(const lock_params& lp);

namespace detail {

// Cluster count the constructed lock will actually use.
inline unsigned effective_clusters(const lock_params& lp) {
  return lp.clusters != 0 ? lp.clusters : numa::system_topology().clusters();
}

}  // namespace detail

// The single source of truth for the registry: every lock appears exactly
// once as X(name, type, ctor-args).  Both the with_lock_type dispatch chain
// and all_lock_names() in registry.cpp expand this table, so a lock added
// here shows up everywhere (CLI, harness, tests) at once.  Constructor
// arguments may use `k` (effective cluster count) and `pp` (pass policy).
#define COHORT_REGISTRY_FOR_EACH_LOCK(X)           \
  X("pthread", pthread_lock, ())                   \
  X("TATAS", tas_spin_lock, ())                    \
  X("BO", bo_lock, ())                             \
  X("Fib-BO", fib_bo_lock, ())                     \
  X("TKT", ticket_lock, ())                        \
  X("MCS", mcs_lock, ())                           \
  X("CLH", clh_lock, ())                           \
  X("A-CLH", aclh_lock, ())                        \
  X("HBO", hbo_lock, (hbo_microbench_tuning()))    \
  X("HBO-tuned", hbo_lock, (hbo_memcached_tuning())) \
  X("HCLH", hclh_lock, (k))                        \
  X("FC-MCS", fc_mcs_lock, (k))                    \
  X("C-BO-BO", c_bo_bo_lock, (pp, k))              \
  X("C-TKT-TKT", c_tkt_tkt_lock, (pp, k))          \
  X("C-BO-MCS", c_bo_mcs_lock, (pp, k))            \
  X("C-TKT-MCS", c_tkt_mcs_lock, (pp, k))          \
  X("C-MCS-MCS", c_mcs_mcs_lock, (pp, k))          \
  X("C-PARK-MCS", c_park_mcs_lock, (pp, k))        \
  X("A-C-BO-BO", a_c_bo_bo_lock, (pp, k))          \
  X("A-C-BO-CLH", a_c_bo_clh_lock, (pp, k))        \
  X("C-BO-BO-fp", c_bo_bo_fp_lock, (pp, k, fpp))        \
  X("C-TKT-TKT-fp", c_tkt_tkt_fp_lock, (pp, k, fpp))    \
  X("C-BO-MCS-fp", c_bo_mcs_fp_lock, (pp, k, fpp))      \
  X("C-TKT-MCS-fp", c_tkt_mcs_fp_lock, (pp, k, fpp))    \
  X("C-MCS-MCS-fp", c_mcs_mcs_fp_lock, (pp, k, fpp))    \
  X("C-PARK-MCS-fp", c_park_mcs_fp_lock, (pp, k, fpp))  \
  X("A-C-BO-BO-fp", a_c_bo_bo_fp_lock, (pp, k, fpp))    \
  X("A-C-BO-CLH-fp", a_c_bo_clh_fp_lock, (pp, k, fpp))

// Invokes fn with a zero-argument factory for the named lock type.  Returns
// false for unknown names.  fn must be a generic callable (it is
// instantiated once per lock type).
template <typename Fn>
bool with_lock_type(const std::string& name, const lock_params& lp, Fn&& fn) {
  const unsigned k = detail::effective_clusters(lp);
  const pass_policy pp{lp.pass_limit};
  const fastpath_policy fpp = effective_fastpath(lp);
  (void)k;
  (void)pp;
  (void)fpp;
#define COHORT_REGISTRY_DISPATCH(NAME, TYPE, ARGS) \
  if (name == NAME) {                              \
    fn([=] { return std::make_unique<TYPE> ARGS; }); \
    return true;                                   \
  }
  COHORT_REGISTRY_FOR_EACH_LOCK(COHORT_REGISTRY_DISPATCH)
#undef COHORT_REGISTRY_DISPATCH
  return false;
}

// Canonical name list, in the order the paper's evaluation introduces them.
const std::vector<std::string>& all_lock_names();
// The subset that are cohort compositions (expose batching statistics).
const std::vector<std::string>& cohort_lock_names();
// The subset supporting bounded-patience acquisition (Figure 6's locks).
const std::vector<std::string>& abortable_lock_names();
// The application-benchmark comparison set (the real-machine analogue of the
// sim registry's table1_lock_names()).
const std::vector<std::string>& table_lock_names();

bool is_lock_name(const std::string& name);

// ---- type-erased handle -----------------------------------------------------

// Batching/handoff counters in a lock-agnostic shape.  Abortable locks'
// extra timeout counters are sliced off; the harness counts timeouts itself.
using erased_stats = cohort_stats;

class any_lock {
 public:
  virtual ~any_lock() = default;

  // Movable per-thread acquisition context; destroys itself through the
  // owning lock.  Must not outlive the lock.
  class context {
   public:
    context() = default;
    context(context&& o) noexcept : owner_(o.owner_), p_(o.p_) {
      o.owner_ = nullptr;
      o.p_ = nullptr;
    }
    context& operator=(context&& o) noexcept {
      if (this != &o) {
        reset();
        owner_ = o.owner_;
        p_ = o.p_;
        o.owner_ = nullptr;
        o.p_ = nullptr;
      }
      return *this;
    }
    context(const context&) = delete;
    context& operator=(const context&) = delete;
    ~context() { reset(); }

    void reset() {
      if (owner_ != nullptr) owner_->destroy_context(p_);
      owner_ = nullptr;
      p_ = nullptr;
    }

   private:
    friend class any_lock;
    context(any_lock* owner, void* p) : owner_(owner), p_(p) {}
    any_lock* owner_ = nullptr;
    void* p_ = nullptr;
  };

  context make_context() { return context(this, create_context()); }

  void lock(context& c) { do_lock(c.p_); }
  void unlock(context& c) { do_unlock(c.p_); }

  // Bounded-patience acquisition; non-abortable locks block and return true.
  bool try_lock_for(context& c, std::chrono::nanoseconds patience) {
    return do_try_lock(c.p_, deadline_after(patience));
  }

  virtual const std::string& name() const = 0;
  virtual bool abortable() const = 0;
  // Present only for cohort compositions; reads are only meaningful while
  // the lock is quiescent.
  virtual std::optional<erased_stats> stats() const = 0;

 protected:
  virtual void* create_context() = 0;
  virtual void destroy_context(void* p) = 0;
  virtual void do_lock(void* p) = 0;
  virtual void do_unlock(void* p) = 0;
  virtual bool do_try_lock(void* p, deadline d) = 0;
};

// Constructs the named lock behind a type-erased handle; nullptr for unknown
// names.
std::unique_ptr<any_lock> make_lock(const std::string& name,
                                    const lock_params& lp = {});

}  // namespace cohort::reg
