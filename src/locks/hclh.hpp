// HCLH: the hierarchical CLH lock of Luchangco, Nussbaum & Shavit
// (Euro-Par'06), as described in Herlihy & Shavit, The Art of Multiprocessor
// Programming §7.8.  One CLH-style queue per cluster plus one global queue;
// the thread at the head of a local queue (the "cluster master") splices the
// entire local queue into the global queue with a single swap.
//
// Node word layout (one atomic word so waiters have a single spin target):
//   bit 31  successor-must-wait (SMW)  set while enqueued, cleared on unlock
//   bit 30  tail-when-spliced (TWS)    set on the last node of a spliced
//                                      segment; tells its local successor it
//                                      has become the next cluster master
//   bits 0..29  cluster id (or the no-cluster marker on the global dummy)
//
// Memory management.  The original algorithm assumes GC; in C++ a spliced
// segment tail is referenced both by its *local* successor (spinning until it
// sees TWS) and by its *global* successor (spinning until SMW clears), so
// nodes carry a reference count:
//   * every node starts with one reference, owned by whoever follows it in
//     the local queue (or by the local tail slot while nothing follows);
//   * the master adds one reference to the segment tail before setting TWS,
//     owned by the global queue (its global successor, or the global tail
//     slot).
// A local successor drops its reference when it exits to become master; an
// acquirer drops the reference on the node it acquired through at unlock.
// A node returns to its owner's pool exactly when both claims are gone.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "cohort/core.hpp"
#include "numa/topology.hpp"
#include "util/align.hpp"
#include "util/pool.hpp"
#include "util/spin.hpp"

namespace cohort {

class hclh_lock {
  struct qnode : pool_node {
    std::atomic<std::uint32_t> word{0};
    std::atomic<int> refs{0};
    node_pool<qnode>* owner = nullptr;
  };

  static constexpr std::uint32_t smw_bit = 1u << 31;
  static constexpr std::uint32_t tws_bit = 1u << 30;
  static constexpr std::uint32_t cluster_mask = tws_bit - 1;
  static constexpr std::uint32_t no_cluster = cluster_mask;

 public:
  struct context {
    qnode* mine = nullptr;  // node we enqueued this acquisition
    qnode* pred = nullptr;  // node we acquired through (unref at unlock)
  };

  explicit hclh_lock(unsigned clusters = 0)
      : clusters_(clusters != 0 ? clusters
                                : numa::system_topology().clusters()),
        local_tails_(clusters_) {
    global_tail_.store(fresh(no_cluster),  // SMW clear: lock starts free
                       std::memory_order_relaxed);
    for (auto& t : local_tails_) t->store(nullptr, std::memory_order_relaxed);
  }

  void lock(context& ctx) {
    const std::uint32_t my_cluster = numa::thread_cluster() % clusters_;
    qnode* me = fresh(smw_bit | my_cluster);
    ctx.mine = me;

    std::atomic<qnode*>& local_tail = local_tails_[my_cluster].get();
    qnode* pred = local_tail.exchange(me, std::memory_order_acq_rel);
    if (pred != nullptr) {
      if (wait_for_grant_or_cluster_master(pred)) {
        ctx.pred = pred;  // local grant: predecessor handed us the lock
        return;
      }
      // Predecessor was a spliced tail: we head the next batch.  Drop the
      // local-successor claim on it (its global successor still holds one).
      unref(pred);
    }
    // Cluster master: wait briefly so the local batch can grow, then splice
    // everything currently in the local queue into the global queue.
    for (int i = 0; i < combining_wait; ++i) cpu_relax();
    qnode* local_last = local_tail.load(std::memory_order_acquire);
    // The global queue takes a reference on the segment tail *before* TWS
    // becomes visible, so the local successor's unref cannot free it early.
    local_last->refs.fetch_add(1, std::memory_order_relaxed);
    qnode* gpred =
        global_tail_.exchange(local_last, std::memory_order_acq_rel);
    local_last->word.fetch_or(tws_bit, std::memory_order_acq_rel);
    // Wait our turn in the global queue.
    spin_until([&] {
      return (gpred->word.load(std::memory_order_acquire) & smw_bit) == 0;
    });
    ctx.pred = gpred;
  }

  release_kind unlock(context& ctx) {
    ctx.mine->word.fetch_and(~smw_bit, std::memory_order_release);
    unref(ctx.pred);
    ctx.mine = nullptr;
    ctx.pred = nullptr;
    return release_kind::none;
  }

 private:
  static qnode* fresh(std::uint32_t word_value) {
    auto& pool = thread_local_pool<qnode>();
    qnode* n = pool.acquire();
    n->owner = &pool;
    n->word.store(word_value, std::memory_order_relaxed);
    n->refs.store(1, std::memory_order_relaxed);
    return n;
  }

  static void unref(qnode* n) {
    if (n->refs.fetch_sub(1, std::memory_order_acq_rel) == 1)
      n->owner->release(n);
  }

  // Spin on pred until it either grants us the lock (true) or turns out to
  // be the tail of a spliced batch, making us the next master (false).
  static bool wait_for_grant_or_cluster_master(qnode* pred) {
    spin_wait w;
    for (;;) {
      const std::uint32_t pw = pred->word.load(std::memory_order_acquire);
      if ((pw & tws_bit) != 0) return false;
      if ((pw & smw_bit) == 0) return true;
      w.spin();
    }
  }

  static constexpr int combining_wait = 256;

  unsigned clusters_;
  // Each local tail on its own line (they are cluster-private hot spots).
  std::vector<padded<std::atomic<qnode*>>> local_tails_;
  alignas(cache_line_size) std::atomic<qnode*> global_tail_;
};

}  // namespace cohort
