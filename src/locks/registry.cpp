#include "locks/registry.hpp"

#include <algorithm>
#include <cstdlib>

namespace cohort::reg {

namespace {

std::uint32_t env_u32(const char* name) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return 0;
  char* end = nullptr;
  const unsigned long v = std::strtoul(s, &end, 10);
  if (end == s || *end != '\0') return 0;
  return static_cast<std::uint32_t>(v);
}

}  // namespace

fastpath_policy effective_fastpath(const lock_params& lp) {
  fastpath_policy fp;  // compiled defaults
  if (const std::uint32_t v = env_u32("COHORT_FISSION_LIMIT"); v != 0)
    fp.fission_limit = v;
  if (const std::uint32_t v = env_u32("COHORT_REENGAGE_DRAINS"); v != 0)
    fp.reengage_drains = v;
  if (lp.fp.fission_limit != 0) fp.fission_limit = lp.fp.fission_limit;
  if (lp.fp.reengage_drains != 0) fp.reengage_drains = lp.fp.reengage_drains;
  return fp;
}

gcr_policy effective_gcr(const lock_params& lp) {
  gcr_policy gp;  // compiled defaults (max_active 0 = online CPUs)
  if (const std::uint32_t v = env_u32("COHORT_GCR_MIN_ACTIVE"); v != 0)
    gp.min_active = v;
  if (const std::uint32_t v = env_u32("COHORT_GCR_MAX_ACTIVE"); v != 0)
    gp.max_active = v;
  if (const std::uint32_t v = env_u32("COHORT_GCR_ROTATION"); v != 0)
    gp.rotation_interval = v;
  if (const std::uint32_t v = env_u32("COHORT_GCR_TUNE_WINDOW"); v != 0)
    gp.tune_window = v;
  if (lp.gcr.min_active != 0) gp.min_active = lp.gcr.min_active;
  if (lp.gcr.max_active != 0) gp.max_active = lp.gcr.max_active;
  if (lp.gcr.rotation_interval != 0)
    gp.rotation_interval = lp.gcr.rotation_interval;
  if (lp.gcr.tune_window != 0) gp.tune_window = lp.gcr.tune_window;
  return gp;
}

adaptive_policy effective_adaptive(const lock_params& lp) {
  adaptive_policy ap;  // compiled defaults (gcr_waiters 0 = online CPUs)
  if (const std::uint32_t v = env_u32("COHORT_ADAPTIVE_WINDOW"); v != 0)
    ap.window = v;
  if (const std::uint32_t v = env_u32("COHORT_ADAPTIVE_ESCALATE"); v != 0)
    ap.escalate_pct = v;
  if (const std::uint32_t v = env_u32("COHORT_ADAPTIVE_DEESCALATE"); v != 0)
    ap.deescalate_pct = v;
  if (const std::uint32_t v = env_u32("COHORT_ADAPTIVE_HYSTERESIS"); v != 0)
    ap.hysteresis = v;
  if (const std::uint32_t v = env_u32("COHORT_ADAPTIVE_MAX_LEVEL"); v != 0)
    ap.max_level = v;
  if (const std::uint32_t v = env_u32("COHORT_ADAPTIVE_GCR_WAITERS"); v != 0)
    ap.gcr_waiters = v;
  if (lp.adaptive.window != 0) ap.window = lp.adaptive.window;
  if (lp.adaptive.escalate_pct != 0) ap.escalate_pct = lp.adaptive.escalate_pct;
  if (lp.adaptive.deescalate_pct != 0)
    ap.deescalate_pct = lp.adaptive.deescalate_pct;
  if (lp.adaptive.hysteresis != 0) ap.hysteresis = lp.adaptive.hysteresis;
  if (lp.adaptive.max_level != 0) ap.max_level = lp.adaptive.max_level;
  if (lp.adaptive.gcr_waiters != 0) ap.gcr_waiters = lp.adaptive.gcr_waiters;
  return ap;
}

namespace detail {

resolved_params resolve(const lock_params& lp) {
  return {effective_clusters(lp), pass_policy{lp.cohort.pass_limit},
          effective_fastpath(lp), effective_gcr(lp), effective_adaptive(lp),
          lp};
}

}  // namespace detail

const char* to_string(lock_family f) {
  switch (f) {
    case lock_family::plain:
      return "plain";
    case lock_family::queue:
      return "queue";
    case lock_family::cohort:
      return "cohort";
    case lock_family::compact:
      return "compact";
    case lock_family::fp_composite:
      return "fp-composite";
    case lock_family::gcr:
      return "gcr";
    case lock_family::adaptive:
      return "adaptive";
  }
  return "?";
}

namespace {

// The any_lock adapter over a concrete lock type.  Capability answers come
// from the shared detail:: traits so they match the descriptors exactly.
template <typename Lock>
class lock_adapter final : public any_lock {
 public:
  lock_adapter(std::string name, std::unique_ptr<Lock> lock)
      : name_(std::move(name)), lock_(std::move(lock)) {}

  const std::string& name() const override { return name_; }

  bool abortable() const override {
    return detail::lock_is_abortable<Lock>();
  }

  std::optional<erased_stats> stats() const override {
    if constexpr (detail::lock_reports_stats<Lock>()) {
      // abortable_stats slices down to its cohort_stats base.
      return erased_stats(lock_->stats());
    } else {
      return std::nullopt;
    }
  }

 protected:
  using ctx_t = typename Lock::context;

  void* create_context() override { return new ctx_t(); }
  void destroy_context(void* p) override { delete static_cast<ctx_t*>(p); }

  void do_lock(void* p) override { lock_->lock(*static_cast<ctx_t*>(p)); }
  release_kind do_unlock(void* p) override {
    return lock_->unlock(*static_cast<ctx_t*>(p));
  }

  bool do_try_lock(void* p, deadline d) override {
    ctx_t& c = *static_cast<ctx_t*>(p);
    if constexpr (requires(Lock& l, ctx_t& ctx, deadline dl) {
                    l.try_lock(ctx, dl);
                  }) {
      // Context-carrying timeout (A-CLH and the abortable cohort locks).
      // cohort_aclh-style locks report the acquisition state in an optional;
      // plain abortable locks report bool.
      auto r = lock_->try_lock(c, d);
      if constexpr (std::is_same_v<decltype(r), bool>)
        return r;
      else
        return r.has_value();
    } else if constexpr (requires(Lock& l, deadline dl) { l.try_lock(dl); }) {
      return lock_->try_lock(d);  // HBO: context-free timeout
    } else {
      lock_->lock(c);
      return true;
    }
  }

 private:
  std::string name_;
  std::unique_ptr<Lock> lock_;
};

// Builds one runtime descriptor from one compile-time registry row.
template <typename Maker>
lock_descriptor describe(const detail::entry<Maker>& e) {
  using lock_t = typename detail::entry<Maker>::lock_type;
  lock_descriptor d;
  d.name = e.name;
  d.family = e.family;
  d.caps.abortable = detail::lock_is_abortable<lock_t>();
  d.caps.fp_composable = e.fp_composable;
  d.caps.cluster_aware = e.cluster_aware;
  d.caps.reports_batch_stats = detail::lock_reports_stats<lock_t>();
  d.uses_pass_limit = e.uses_pass_limit;
  d.uses_fp_knobs = e.uses_fp_knobs;
  // Derived, not declared, so the flags cannot drift from the family: the
  // gcr knobs are honoured by the gcr wrappers and by the adaptive ladder
  // (whose top rung is a gcr- lock); the adaptive monitor knobs only by the
  // adaptive family itself.
  d.uses_gcr_knobs =
      e.family == lock_family::gcr || e.family == lock_family::adaptive;
  d.uses_adaptive_knobs = e.family == lock_family::adaptive;
  d.summary = e.summary;
  d.make = [name = d.name, maker = e.make](
               const lock_params& lp) -> std::unique_ptr<any_lock> {
    return std::make_unique<lock_adapter<lock_t>>(name,
                                                  maker(detail::resolve(lp)));
  };
  return d;
}

}  // namespace

const std::vector<lock_descriptor>& all_locks() {
  static const std::vector<lock_descriptor> descs = [] {
    std::vector<lock_descriptor> v;
    std::apply([&](const auto&... e) { (v.push_back(describe(e)), ...); },
               detail::entries());
    return v;
  }();
  return descs;
}

const lock_descriptor* find_lock(const std::string& name) {
  for (const auto& d : all_locks())
    if (d.name == name) return &d;
  return nullptr;
}

namespace {

char fold(char c) {
  return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
}

bool iprefix(const std::string& pat, const std::string& s) {
  if (pat.size() > s.size()) return false;
  for (std::size_t i = 0; i < pat.size(); ++i)
    if (fold(pat[i]) != fold(s[i])) return false;
  return true;
}

// Case-insensitive Levenshtein distance, two-row rolling table.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub =
          prev[j - 1] + (fold(a[i - 1]) == fold(b[j - 1]) ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace

std::vector<std::string> suggest_lock_names(const std::string& name,
                                            std::size_t max_out) {
  // Typo tolerance scales with what was typed: a third of the name, never
  // under 2, so "C-BO-MSC" finds C-BO-MCS and "tata" finds TATAS without
  // short garbage matching everything.
  const std::size_t cutoff = std::max<std::size_t>(2, name.size() / 3);
  struct scored {
    bool prefix;
    std::size_t dist;
    const std::string* n;
  };
  std::vector<scored> cand;
  for (const auto& d : all_locks()) {
    const bool pre = !name.empty() && iprefix(name, d.name);
    const std::size_t dist = edit_distance(name, d.name);
    if (pre || dist <= cutoff) cand.push_back({pre, dist, &d.name});
  }
  std::stable_sort(cand.begin(), cand.end(),
                   [](const scored& a, const scored& b) {
                     if (a.prefix != b.prefix) return a.prefix;
                     return a.dist < b.dist;
                   });
  std::vector<std::string> out;
  for (const scored& s : cand) {
    if (out.size() >= max_out) break;
    out.push_back(*s.n);
  }
  return out;
}

std::string unknown_lock_message(const std::string& name) {
  std::string msg = "unknown lock '" + name + "'";
  const std::vector<std::string> sug = suggest_lock_names(name);
  if (!sug.empty()) {
    msg += "; did you mean ";
    for (std::size_t i = 0; i < sug.size(); ++i) {
      if (i != 0) msg += i + 1 == sug.size() ? " or " : ", ";
      msg += "'" + sug[i] + "'";
    }
    msg += "?";
  }
  msg += " (--list-locks prints the registry)";
  return msg;
}

const std::vector<std::string>& all_lock_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const auto& d : all_locks()) v.push_back(d.name);
    return v;
  }();
  return names;
}

const std::vector<std::string>& cohort_lock_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const auto& d : all_locks())
      if (d.caps.reports_batch_stats) v.push_back(d.name);
    return v;
  }();
  return names;
}

const std::vector<std::string>& abortable_lock_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const auto& d : all_locks())
      if (d.caps.abortable) v.push_back(d.name);
    return v;
  }();
  return names;
}

const std::vector<std::string>& table_lock_names() {
  static const std::vector<std::string> names = {
      "pthread",   "Fib-BO",    "MCS",      "HBO",       "HBO-tuned",
      "FC-MCS",    "C-BO-BO",   "C-TKT-TKT", "C-BO-MCS", "C-TKT-MCS",
      "C-MCS-MCS"};
  return names;
}

bool is_lock_name(const std::string& name) {
  return find_lock(name) != nullptr;
}

std::unique_ptr<any_lock> make_lock(const std::string& name,
                                    const lock_params& lp) {
  const lock_descriptor* d = find_lock(name);
  return d != nullptr ? d->make(lp) : nullptr;
}

}  // namespace cohort::reg
