#include "locks/registry.hpp"

#include <cstdlib>

namespace cohort::reg {

namespace {

std::uint32_t env_u32(const char* name) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return 0;
  char* end = nullptr;
  const unsigned long v = std::strtoul(s, &end, 10);
  if (end == s || *end != '\0') return 0;
  return static_cast<std::uint32_t>(v);
}

}  // namespace

fastpath_policy effective_fastpath(const lock_params& lp) {
  fastpath_policy fp;  // compiled defaults
  if (const std::uint32_t v = env_u32("COHORT_FISSION_LIMIT"); v != 0)
    fp.fission_limit = v;
  if (const std::uint32_t v = env_u32("COHORT_REENGAGE_DRAINS"); v != 0)
    fp.reengage_drains = v;
  if (lp.fp.fission_limit != 0) fp.fission_limit = lp.fp.fission_limit;
  if (lp.fp.reengage_drains != 0) fp.reengage_drains = lp.fp.reengage_drains;
  return fp;
}

gcr_policy effective_gcr(const lock_params& lp) {
  gcr_policy gp;  // compiled defaults (max_active 0 = online CPUs)
  if (const std::uint32_t v = env_u32("COHORT_GCR_MIN_ACTIVE"); v != 0)
    gp.min_active = v;
  if (const std::uint32_t v = env_u32("COHORT_GCR_MAX_ACTIVE"); v != 0)
    gp.max_active = v;
  if (const std::uint32_t v = env_u32("COHORT_GCR_ROTATION"); v != 0)
    gp.rotation_interval = v;
  if (const std::uint32_t v = env_u32("COHORT_GCR_TUNE_WINDOW"); v != 0)
    gp.tune_window = v;
  if (lp.gcr.min_active != 0) gp.min_active = lp.gcr.min_active;
  if (lp.gcr.max_active != 0) gp.max_active = lp.gcr.max_active;
  if (lp.gcr.rotation_interval != 0)
    gp.rotation_interval = lp.gcr.rotation_interval;
  if (lp.gcr.tune_window != 0) gp.tune_window = lp.gcr.tune_window;
  return gp;
}

namespace detail {

resolved_params resolve(const lock_params& lp) {
  return {effective_clusters(lp), pass_policy{lp.cohort.pass_limit},
          effective_fastpath(lp), effective_gcr(lp)};
}

}  // namespace detail

const char* to_string(lock_family f) {
  switch (f) {
    case lock_family::plain:
      return "plain";
    case lock_family::queue:
      return "queue";
    case lock_family::cohort:
      return "cohort";
    case lock_family::compact:
      return "compact";
    case lock_family::fp_composite:
      return "fp-composite";
    case lock_family::gcr:
      return "gcr";
  }
  return "?";
}

namespace {

// The any_lock adapter over a concrete lock type.  Capability answers come
// from the shared detail:: traits so they match the descriptors exactly.
template <typename Lock>
class lock_adapter final : public any_lock {
 public:
  lock_adapter(std::string name, std::unique_ptr<Lock> lock)
      : name_(std::move(name)), lock_(std::move(lock)) {}

  const std::string& name() const override { return name_; }

  bool abortable() const override {
    return detail::lock_is_abortable<Lock>();
  }

  std::optional<erased_stats> stats() const override {
    if constexpr (detail::lock_reports_stats<Lock>()) {
      // abortable_stats slices down to its cohort_stats base.
      return erased_stats(lock_->stats());
    } else {
      return std::nullopt;
    }
  }

 protected:
  using ctx_t = typename Lock::context;

  void* create_context() override { return new ctx_t(); }
  void destroy_context(void* p) override { delete static_cast<ctx_t*>(p); }

  void do_lock(void* p) override { lock_->lock(*static_cast<ctx_t*>(p)); }
  release_kind do_unlock(void* p) override {
    return lock_->unlock(*static_cast<ctx_t*>(p));
  }

  bool do_try_lock(void* p, deadline d) override {
    ctx_t& c = *static_cast<ctx_t*>(p);
    if constexpr (requires(Lock& l, ctx_t& ctx, deadline dl) {
                    l.try_lock(ctx, dl);
                  }) {
      // Context-carrying timeout (A-CLH and the abortable cohort locks).
      // cohort_aclh-style locks report the acquisition state in an optional;
      // plain abortable locks report bool.
      auto r = lock_->try_lock(c, d);
      if constexpr (std::is_same_v<decltype(r), bool>)
        return r;
      else
        return r.has_value();
    } else if constexpr (requires(Lock& l, deadline dl) { l.try_lock(dl); }) {
      return lock_->try_lock(d);  // HBO: context-free timeout
    } else {
      lock_->lock(c);
      return true;
    }
  }

 private:
  std::string name_;
  std::unique_ptr<Lock> lock_;
};

// Builds one runtime descriptor from one compile-time registry row.
template <typename Maker>
lock_descriptor describe(const detail::entry<Maker>& e) {
  using lock_t = typename detail::entry<Maker>::lock_type;
  lock_descriptor d;
  d.name = e.name;
  d.family = e.family;
  d.caps.abortable = detail::lock_is_abortable<lock_t>();
  d.caps.fp_composable = e.fp_composable;
  d.caps.cluster_aware = e.cluster_aware;
  d.caps.reports_batch_stats = detail::lock_reports_stats<lock_t>();
  d.uses_pass_limit = e.uses_pass_limit;
  d.uses_fp_knobs = e.uses_fp_knobs;
  // Derived, not declared: every gcr-family lock honours the gcr knobs and
  // nothing else does, so the flag cannot drift from the family.
  d.uses_gcr_knobs = e.family == lock_family::gcr;
  d.summary = e.summary;
  d.make = [name = d.name, maker = e.make](
               const lock_params& lp) -> std::unique_ptr<any_lock> {
    return std::make_unique<lock_adapter<lock_t>>(name,
                                                  maker(detail::resolve(lp)));
  };
  return d;
}

}  // namespace

const std::vector<lock_descriptor>& all_locks() {
  static const std::vector<lock_descriptor> descs = [] {
    std::vector<lock_descriptor> v;
    std::apply([&](const auto&... e) { (v.push_back(describe(e)), ...); },
               detail::entries());
    return v;
  }();
  return descs;
}

const lock_descriptor* find_lock(const std::string& name) {
  for (const auto& d : all_locks())
    if (d.name == name) return &d;
  return nullptr;
}

const std::vector<std::string>& all_lock_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const auto& d : all_locks()) v.push_back(d.name);
    return v;
  }();
  return names;
}

const std::vector<std::string>& cohort_lock_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const auto& d : all_locks())
      if (d.caps.reports_batch_stats) v.push_back(d.name);
    return v;
  }();
  return names;
}

const std::vector<std::string>& abortable_lock_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const auto& d : all_locks())
      if (d.caps.abortable) v.push_back(d.name);
    return v;
  }();
  return names;
}

const std::vector<std::string>& table_lock_names() {
  static const std::vector<std::string> names = {
      "pthread",   "Fib-BO",    "MCS",      "HBO",       "HBO-tuned",
      "FC-MCS",    "C-BO-BO",   "C-TKT-TKT", "C-BO-MCS", "C-TKT-MCS",
      "C-MCS-MCS"};
  return names;
}

bool is_lock_name(const std::string& name) {
  return find_lock(name) != nullptr;
}

std::unique_ptr<any_lock> make_lock(const std::string& name,
                                    const lock_params& lp) {
  const lock_descriptor* d = find_lock(name);
  return d != nullptr ? d->make(lp) : nullptr;
}

}  // namespace cohort::reg
