#include "locks/registry.hpp"

#include <cstdlib>

namespace cohort::reg {

namespace {

std::uint32_t env_u32(const char* name) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return 0;
  char* end = nullptr;
  const unsigned long v = std::strtoul(s, &end, 10);
  if (end == s || *end != '\0') return 0;
  return static_cast<std::uint32_t>(v);
}

}  // namespace

fastpath_policy effective_fastpath(const lock_params& lp) {
  fastpath_policy fp;  // compiled defaults
  if (const std::uint32_t v = env_u32("COHORT_FISSION_LIMIT"); v != 0)
    fp.fission_limit = v;
  if (const std::uint32_t v = env_u32("COHORT_REENGAGE_DRAINS"); v != 0)
    fp.reengage_drains = v;
  if (lp.fission_limit != 0) fp.fission_limit = lp.fission_limit;
  if (lp.reengage_drains != 0) fp.reengage_drains = lp.reengage_drains;
  return fp;
}

const std::vector<std::string>& all_lock_names() {
  static const std::vector<std::string> names = {
#define COHORT_REGISTRY_NAME(NAME, TYPE, ARGS) NAME,
      COHORT_REGISTRY_FOR_EACH_LOCK(COHORT_REGISTRY_NAME)
#undef COHORT_REGISTRY_NAME
  };
  return names;
}

const std::vector<std::string>& cohort_lock_names() {
  static const std::vector<std::string> names = {
      "C-BO-BO",      "C-TKT-TKT",    "C-BO-MCS",     "C-TKT-MCS",
      "C-MCS-MCS",    "C-PARK-MCS",   "A-C-BO-BO",    "A-C-BO-CLH",
      "C-BO-BO-fp",   "C-TKT-TKT-fp", "C-BO-MCS-fp",  "C-TKT-MCS-fp",
      "C-MCS-MCS-fp", "C-PARK-MCS-fp", "A-C-BO-BO-fp", "A-C-BO-CLH-fp"};
  return names;
}

const std::vector<std::string>& abortable_lock_names() {
  // Everything with a bounded-patience acquisition path: the paper's Figure 6
  // locks plus the TATAS family, whose try_lock(deadline) is abortable by
  // construction, and the fast-path variants of the abortable cohort locks.
  static const std::vector<std::string> names = {
      "TATAS",     "BO",        "Fib-BO",      "A-CLH",        "HBO",
      "HBO-tuned", "A-C-BO-BO", "A-C-BO-CLH",  "A-C-BO-BO-fp",
      "A-C-BO-CLH-fp"};
  return names;
}

const std::vector<std::string>& table_lock_names() {
  static const std::vector<std::string> names = {
      "pthread",   "Fib-BO",    "MCS",      "HBO",       "HBO-tuned",
      "FC-MCS",    "C-BO-BO",   "C-TKT-TKT", "C-BO-MCS", "C-TKT-MCS",
      "C-MCS-MCS"};
  return names;
}

bool is_lock_name(const std::string& name) {
  for (const auto& n : all_lock_names())
    if (n == name) return true;
  return false;
}

namespace {

template <typename Lock>
class lock_adapter final : public any_lock {
 public:
  lock_adapter(std::string name, std::unique_ptr<Lock> lock)
      : name_(std::move(name)), lock_(std::move(lock)) {}

  const std::string& name() const override { return name_; }

  bool abortable() const override {
    return requires(Lock& l, ctx_t& c, deadline d) { l.try_lock(c, d); } ||
           requires(Lock& l, deadline d) { l.try_lock(d); };
  }

  std::optional<erased_stats> stats() const override {
    if constexpr (requires(const Lock& l) { l.stats(); }) {
      // abortable_stats slices down to its cohort_stats base.
      return erased_stats(lock_->stats());
    } else {
      return std::nullopt;
    }
  }

 protected:
  using ctx_t = typename Lock::context;

  void* create_context() override { return new ctx_t(); }
  void destroy_context(void* p) override { delete static_cast<ctx_t*>(p); }

  void do_lock(void* p) override { lock_->lock(*static_cast<ctx_t*>(p)); }
  void do_unlock(void* p) override { lock_->unlock(*static_cast<ctx_t*>(p)); }

  bool do_try_lock(void* p, deadline d) override {
    ctx_t& c = *static_cast<ctx_t*>(p);
    if constexpr (requires(Lock& l, ctx_t& ctx, deadline dl) {
                    l.try_lock(ctx, dl);
                  }) {
      // Context-carrying timeout (A-CLH and the abortable cohort locks).
      // cohort_aclh-style locks report the acquisition state in an optional;
      // plain abortable locks report bool.
      auto r = lock_->try_lock(c, d);
      if constexpr (std::is_same_v<decltype(r), bool>)
        return r;
      else
        return r.has_value();
    } else if constexpr (requires(Lock& l, deadline dl) { l.try_lock(dl); }) {
      return lock_->try_lock(d);  // HBO: context-free timeout
    } else {
      lock_->lock(c);
      return true;
    }
  }

 private:
  std::string name_;
  std::unique_ptr<Lock> lock_;
};

}  // namespace

std::unique_ptr<any_lock> make_lock(const std::string& name,
                                    const lock_params& lp) {
  std::unique_ptr<any_lock> result;
  with_lock_type(name, lp, [&](auto factory) {
    using lock_t = typename decltype(factory())::element_type;
    result = std::make_unique<lock_adapter<lock_t>>(name, factory());
  });
  return result;
}

}  // namespace cohort::reg
