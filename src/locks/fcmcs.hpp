// FC-MCS: the flat-combining NUMA lock of Dice, Marathe & Shavit (SPAA'11),
// the strongest prior NUMA-aware baseline in the paper's evaluation.
//
// Idea: per cluster, arriving threads *publish* requests on a cluster-local
// publication stack instead of swapping a shared queue tail.  One thread per
// cluster -- the combiner, elected with a cluster-local try-lock -- pops the
// whole stack, threads an MCS chain through fresh queue nodes, and splices
// the chain into the single global MCS queue with one swap.  Grants then
// flow through the global queue exactly as in MCS.
//
// This implementation keeps the essential structure (publication lists,
// combiner election, chain splicing, node pools) and omits only the
// adaptive sizing heuristics of the original.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "cohort/core.hpp"
#include "locks/tatas.hpp"
#include "numa/topology.hpp"
#include "util/align.hpp"
#include "util/pool.hpp"
#include "util/spin.hpp"

namespace cohort {

class fc_mcs_lock {
  struct qnode : pool_node {
    std::atomic<qnode*> next{nullptr};
    std::atomic<bool> granted{false};
    node_pool<qnode>* owner = nullptr;
  };

  struct request {
    std::atomic<request*> stack_next{nullptr};
    std::atomic<qnode*> assigned{nullptr};
  };

  struct cluster_state {
    std::atomic<request*> pub_head{nullptr};
    tas_spin_lock combiner;
  };

 public:
  struct context {
    request req;
  };

  explicit fc_mcs_lock(unsigned clusters = 0)
      : clusters_(clusters != 0 ? clusters
                                : numa::system_topology().clusters()),
        state_(clusters_) {}

  void lock(context& ctx) {
    cluster_state& cs = state_[numa::thread_cluster() % clusters_].get();
    request* req = &ctx.req;
    req->assigned.store(nullptr, std::memory_order_relaxed);

    // Publish.
    request* head = cs.pub_head.load(std::memory_order_relaxed);
    do {
      req->stack_next.store(head, std::memory_order_relaxed);
    } while (!cs.pub_head.compare_exchange_weak(head, req,
                                                std::memory_order_release,
                                                std::memory_order_relaxed));

    // Wait to be threaded into the global queue, combining if we can.
    spin_wait w;
    while (req->assigned.load(std::memory_order_acquire) == nullptr) {
      if (cs.combiner.try_lock()) {
        combine(cs);
        cs.combiner.unlock();
        continue;  // our request is normally assigned now; re-check
      }
      w.spin();
    }

    // Standard MCS wait on our assigned node (the combiner pre-grants the
    // chain head when the queue was empty).
    qnode* me = req->assigned.load(std::memory_order_acquire);
    spin_until([&] { return me->granted.load(std::memory_order_acquire); });
  }

  release_kind unlock(context& ctx) {
    qnode* me = ctx.req.assigned.load(std::memory_order_relaxed);
    qnode* succ = me->next.load(std::memory_order_acquire);
    if (succ == nullptr) {
      qnode* expected = me;
      if (tail_.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_release,
                                        std::memory_order_relaxed)) {
        me->owner->release(me);
        return release_kind::none;
      }
      spin_until([&] {
        return (succ = me->next.load(std::memory_order_acquire)) != nullptr;
      });
    }
    succ->granted.store(true, std::memory_order_release);
    me->owner->release(me);
    return release_kind::none;
  }

 private:
  void combine(cluster_state& cs) {
    // Pop the whole publication stack; reverse so the chain is in arrival
    // order (the stack is LIFO).
    request* lifo = cs.pub_head.exchange(nullptr, std::memory_order_acquire);
    if (lifo == nullptr) return;
    request* fifo = nullptr;
    while (lifo != nullptr) {
      request* next = lifo->stack_next.load(std::memory_order_relaxed);
      lifo->stack_next.store(fifo, std::memory_order_relaxed);
      fifo = lifo;
      lifo = next;
    }

    // Thread an MCS chain through fresh nodes.  Assignments are NOT yet
    // published: a requester must only observe its node after the node's
    // reset and the splice are complete (release pairing below).
    auto& pool = thread_local_pool<qnode>();
    qnode* chain_head = nullptr;
    qnode* chain_tail = nullptr;
    for (request* r = fifo; r != nullptr;
         r = r->stack_next.load(std::memory_order_relaxed)) {
      qnode* n = pool.acquire();
      n->owner = &pool;
      n->next.store(nullptr, std::memory_order_relaxed);
      n->granted.store(false, std::memory_order_relaxed);
      if (chain_tail != nullptr)
        chain_tail->next.store(n, std::memory_order_relaxed);
      else
        chain_head = n;
      chain_tail = n;
    }

    // Splice the chain into the global queue with one swap.
    qnode* pred = tail_.exchange(chain_tail, std::memory_order_acq_rel);
    if (pred != nullptr)
      pred->next.store(chain_head, std::memory_order_release);
    else
      chain_head->granted.store(true, std::memory_order_release);

    // Publish assignments, pairing the i-th request with the i-th chain
    // node.  Walking next pointers is safe here even though a later splice
    // may overwrite chain_tail->next: we stop at chain_tail.
    request* r = fifo;
    qnode* n = chain_head;
    while (r != nullptr) {
      request* next = r->stack_next.load(std::memory_order_relaxed);
      qnode* n_next =
          n == chain_tail ? nullptr : n->next.load(std::memory_order_relaxed);
      r->assigned.store(n, std::memory_order_release);
      r = next;
      n = n_next;
    }
  }

  unsigned clusters_;
  std::vector<padded<cluster_state>> state_;
  alignas(cache_line_size) std::atomic<qnode*> tail_{nullptr};
};

}  // namespace cohort
