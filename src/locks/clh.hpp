// CLH queue locks:
//   * clh_lock         -- the classic implicit-predecessor queue lock [Craig],
//   * aclh_lock        -- Scott's abortable CLH (PODC'02), the A-CLH baseline
//                         of Figure 6,
//   * cohort_aclh_lock -- the abortable cohort-detecting local lock of
//                         A-C-BO-CLH (paper §3.6.2), with the
//                         successor-aborted flag colocated in the node word
//                         so release and abort linearise on one CAS.
//
// All CLH variants recycle nodes the standard way: after acquiring through a
// predecessor's node, that node becomes the thread's spare for its next
// acquisition.  Aborted nodes are reclaimed by the successor that bypasses
// them and returned to the *owning thread's* pool (paper §3.6.2).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "cohort/core.hpp"
#include "util/align.hpp"
#include "util/pool.hpp"
#include "util/spin.hpp"

namespace cohort {

namespace clh_detail {

struct node : pool_node {
  // Interpretation (cohort_aclh_lock uses all of it, the simpler locks a
  // subset):
  //   tag_busy / tag_busy|flag_sa  : holder or waiter in front
  //   tag_local_release            : released, successor inherits G
  //   tag_global_release           : released, successor must acquire G
  //   aligned pointer (low bits 0) : node aborted; value is its predecessor
  std::atomic<std::uintptr_t> word{0};
  node_pool<node>* owner = nullptr;
};

inline constexpr std::uintptr_t tag_busy = 1;
inline constexpr std::uintptr_t tag_local_release = 2;
inline constexpr std::uintptr_t tag_global_release = 3;
inline constexpr std::uintptr_t flag_sa = 4;  // successor aborted
inline constexpr std::uintptr_t tag_mask = 7;

inline bool is_pointer(std::uintptr_t w) { return (w & tag_mask) == 0; }
inline node* as_pointer(std::uintptr_t w) {
  return reinterpret_cast<node*>(w);
}

inline node* fresh_node() {
  auto& pool = thread_local_pool<node>();
  node* n = pool.acquire();
  n->owner = &pool;
  return n;
}

inline void reclaim(node* n) { n->owner->release(n); }

// Per-acquisition state shared by the CLH variants.  `mine` is the node this
// context will enqueue next (lazily allocated); after a successful
// acquisition it is the node currently *in* the queue and `taken_pred` is
// the predecessor node we reclaimed, which becomes `mine` again at release.
struct context {
  node* mine = nullptr;
  node* taken_pred = nullptr;

  context() = default;
  context(const context&) = delete;
  context& operator=(const context&) = delete;
  ~context() {
    // Only spare nodes are owned here; enqueued nodes belong to the queue.
    if (mine != nullptr && taken_pred == nullptr) reclaim(mine);
  }
};

}  // namespace clh_detail

// ---- classic CLH lock -------------------------------------------------------

class clh_lock {
 public:
  using context = clh_detail::context;

  clh_lock() {
    clh_detail::node* dummy = clh_detail::fresh_node();
    dummy->word.store(clh_detail::tag_global_release,
                      std::memory_order_relaxed);
    tail_.store(dummy, std::memory_order_relaxed);
  }

  void lock(context& ctx) {
    using namespace clh_detail;
    if (ctx.mine == nullptr) ctx.mine = fresh_node();
    node* me = ctx.mine;
    me->word.store(tag_busy, std::memory_order_relaxed);
    node* pred = tail_.exchange(me, std::memory_order_acq_rel);
    spin_until([&] {
      return pred->word.load(std::memory_order_acquire) != tag_busy;
    });
    ctx.taken_pred = pred;
  }

  release_kind unlock(context& ctx) {
    using namespace clh_detail;
    ctx.mine->word.store(tag_global_release, std::memory_order_release);
    ctx.mine = ctx.taken_pred;  // standard CLH node recycling
    ctx.taken_pred = nullptr;
    return release_kind::none;
  }

  bool is_locked() const {
    clh_detail::node* t = tail_.load(std::memory_order_acquire);
    return t->word.load(std::memory_order_acquire) == clh_detail::tag_busy;
  }

 private:
  alignas(cache_line_size) std::atomic<clh_detail::node*> tail_;
};

// ---- abortable CLH lock (Scott PODC'02) --------------------------------------
//
// A waiter spins on its predecessor's word.  To abort it simply publishes its
// own predecessor in its node word; the successor notices, re-targets its
// spin at that predecessor and reclaims the aborted node.  Because the grant
// lives on the *predecessor's* word (not the aborter's), an abort can never
// lose a concurrent grant: the bypassing successor finds it.
class aclh_lock {
 public:
  using context = clh_detail::context;

  aclh_lock() {
    clh_detail::node* dummy = clh_detail::fresh_node();
    dummy->word.store(clh_detail::tag_global_release,
                      std::memory_order_relaxed);
    tail_.store(dummy, std::memory_order_relaxed);
  }

  // Returns false when patience expired before the lock was granted.
  bool try_lock(context& ctx, deadline d) {
    using namespace clh_detail;
    if (ctx.mine == nullptr) ctx.mine = fresh_node();
    node* me = ctx.mine;
    me->word.store(tag_busy, std::memory_order_relaxed);
    node* pred = tail_.exchange(me, std::memory_order_acq_rel);
    spin_wait w;
    for (;;) {
      const std::uintptr_t pw = pred->word.load(std::memory_order_acquire);
      if (pw == tag_global_release || pw == tag_local_release) {
        ctx.taken_pred = pred;
        return true;
      }
      if (is_pointer(pw)) {
        // Predecessor aborted: bypass it and return its node to its owner.
        node* next_pred = as_pointer(pw);
        reclaim(pred);
        pred = next_pred;
        continue;
      }
      if (expired(d)) {
        // Leave our node in the queue with our predecessor made explicit;
        // whoever spins on us will bypass to pred.
        me->word.store(reinterpret_cast<std::uintptr_t>(pred),
                       std::memory_order_release);
        ctx.mine = nullptr;  // node now belongs to the queue
        return false;
      }
      w.spin();
    }
  }

  void lock(context& ctx) { (void)try_lock(ctx, deadline_never()); }

  release_kind unlock(context& ctx) {
    using namespace clh_detail;
    ctx.mine->word.store(tag_global_release, std::memory_order_release);
    ctx.mine = ctx.taken_pred;
    ctx.taken_pred = nullptr;
    return release_kind::none;
  }

 private:
  alignas(cache_line_size) std::atomic<clh_detail::node*> tail_;
};

// ---- abortable cohort-detecting local CLH lock (§3.6.2) ----------------------
//
// Differences from aclh_lock:
//   * releases carry a state (LOCAL-RELEASE / GLOBAL-RELEASE);
//   * each node carries a successor-aborted (SA) flag *in the same word* as
//     the state/pointer, so "my successor aborts" and "I hand off locally"
//     are CASes on one word and cannot interleave badly:
//       - abort protocol: CAS spin-target's word BUSY -> BUSY|SA, then
//         publish the explicit predecessor in your own word;
//       - local handoff:  CAS own word BUSY -> LOCAL-RELEASE; failure means
//         SA got set, i.e. no viable successor can be guaranteed.
//   * a waiter whose grant arrives as it tries to abort simply acquires the
//     lock (the release CAS won); §3.6's requirement that a thread granted a
//     local release is already "in the critical section".
class cohort_aclh_lock {
 public:
  using context = clh_detail::context;

  cohort_aclh_lock() {
    clh_detail::node* dummy = clh_detail::fresh_node();
    dummy->word.store(clh_detail::tag_global_release,
                      std::memory_order_relaxed);
    tail_.store(dummy, std::memory_order_relaxed);
  }

  std::optional<release_kind> try_lock(context& ctx, deadline d) {
    using namespace clh_detail;
    if (ctx.mine == nullptr) ctx.mine = fresh_node();
    node* me = ctx.mine;
    me->word.store(tag_busy, std::memory_order_relaxed);
    node* pred = tail_.exchange(me, std::memory_order_acq_rel);
    spin_wait w;
    for (;;) {
      std::uintptr_t pw = pred->word.load(std::memory_order_acquire);
      if (pw == tag_local_release || pw == tag_global_release) {
        ctx.taken_pred = pred;
        return pw == tag_local_release ? release_kind::local
                                       : release_kind::global;
      }
      if (is_pointer(pw)) {
        node* next_pred = as_pointer(pw);
        reclaim(pred);
        pred = next_pred;
        continue;
      }
      if (expired(d)) {
        // Step 1 (§3.6.2): mark our spin target's successor-aborted flag.
        // The CAS races with the target's release CAS; if we lose, the word
        // changed -- re-examine it, we may have been granted the lock.
        if (pred->word.compare_exchange_weak(pw, pw | flag_sa,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
          // Step 2: make our predecessor explicit; our node now belongs to
          // whichever successor bypasses it.
          me->word.store(reinterpret_cast<std::uintptr_t>(pred),
                         std::memory_order_release);
          ctx.mine = nullptr;
          return std::nullopt;
        }
        continue;
      }
      w.spin();
    }
  }

  release_kind lock(context& ctx) {
    return *try_lock(ctx, deadline_never());
  }

  bool alone(context& ctx) const {
    return tail_.load(std::memory_order_acquire) == ctx.mine;
  }

  bool release_local(context& ctx) {
    using namespace clh_detail;
    std::uintptr_t expect = tag_busy;
    if (ctx.mine->word.compare_exchange_strong(expect, tag_local_release,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire)) {
      recycle(ctx);
      return true;
    }
    // SA was set: some successor aborted, so a viable successor cannot be
    // guaranteed.  Release in GLOBAL-RELEASE state; any waiter that arrives
    // (or re-targets onto us) will acquire the global lock itself, spinning
    // on it until our caller releases it.  (The paper releases G first and
    // then flips the state; either order is deadlock-free, and doing the
    // state flip here keeps release_local's "on false the local lock is
    // fully released" contract uniform across lock types.)
    ctx.mine->word.store(tag_global_release, std::memory_order_release);
    recycle(ctx);
    return false;
  }

  void release_global(context& ctx) {
    ctx.mine->word.store(clh_detail::tag_global_release,
                         std::memory_order_release);
    recycle(ctx);
  }

 private:
  static void recycle(context& ctx) {
    ctx.mine = ctx.taken_pred;
    ctx.taken_pred = nullptr;
  }

  alignas(cache_line_size) std::atomic<clh_detail::node*> tail_;
};

}  // namespace cohort
