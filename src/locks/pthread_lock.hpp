// Thin wrapper over pthread_mutex_t: the paper's "pthread locks" baseline
// (what memcached and libc malloc use out of the box).
#pragma once

#include <pthread.h>

#include "cohort/core.hpp"

namespace cohort {

class pthread_lock {
 public:
  // Not thread-oblivious: POSIX requires the owning thread to unlock.
  static constexpr bool is_thread_oblivious = false;
  using context = empty_context;

  pthread_lock() { pthread_mutex_init(&mutex_, nullptr); }
  ~pthread_lock() { pthread_mutex_destroy(&mutex_); }
  pthread_lock(const pthread_lock&) = delete;
  pthread_lock& operator=(const pthread_lock&) = delete;

  void lock() { pthread_mutex_lock(&mutex_); }
  bool try_lock() { return pthread_mutex_trylock(&mutex_) == 0; }
  release_kind unlock() {
    pthread_mutex_unlock(&mutex_);
    return release_kind::none;
  }

  void lock(context&) { lock(); }
  release_kind unlock(context&) { return unlock(); }

 private:
  pthread_mutex_t mutex_;
};

}  // namespace cohort
