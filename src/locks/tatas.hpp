// Test-and-test-and-set locks with pluggable backoff (the paper's "BO" lock,
// after Agarwal & Cherian), plus the cohort-detecting local variant used by
// C-BO-BO / A-C-BO-BO (paper §3.1, §3.6.1).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "cohort/core.hpp"
#include "util/align.hpp"
#include "util/backoff.hpp"
#include "util/rng.hpp"
#include "util/spin.hpp"

namespace cohort {

namespace detail {
// Per-thread RNG for backoff jitter; streams are decorrelated by address.
inline xorshift& backoff_rng() {
  thread_local xorshift rng{
      0x9e3779b97f4a7c15ULL ^
      reinterpret_cast<std::uintptr_t>(&rng)};
  return rng;
}
}  // namespace detail

// No-op backoff: the "bare bones" test-and-test-and-set spin the paper uses
// for the *global* BO lock of a cohort lock (global contention is low by
// construction, so waiting threads just spin).
struct null_backoff {
  struct params {};
  null_backoff() = default;
  explicit null_backoff(params) {}
  void pause(xorshift&) { cpu_relax(); }
  void reset() {}
};

// ---- plain TATAS / BO lock -------------------------------------------------

// Thread-oblivious by construction: unlock is a plain store, any thread may
// perform it.
template <typename Backoff = exp_backoff>
class tatas_lock {
 public:
  static constexpr bool is_thread_oblivious = true;
  using backoff_params = typename Backoff::params;
  using context = empty_context;

  tatas_lock() = default;
  explicit tatas_lock(backoff_params p) : params_(p) {}

  void lock() {
    Backoff bo(params_);
    spin_wait w;
    for (;;) {
      if (!locked_.load(std::memory_order_relaxed) &&
          !locked_.exchange(true, std::memory_order_acquire))
        return;
      // Wait until the lock looks free, backing off between attempts.
      while (locked_.load(std::memory_order_relaxed)) w.spin();
      bo.pause(detail::backoff_rng());
    }
  }

  bool try_lock() {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  // Bounded-patience acquisition (HBO-style abortable usage and the
  // abortable cohort global lock).
  bool try_lock(deadline d) {
    Backoff bo(params_);
    spin_wait w;
    for (;;) {
      if (!locked_.load(std::memory_order_relaxed) &&
          !locked_.exchange(true, std::memory_order_acquire))
        return true;
      while (locked_.load(std::memory_order_relaxed)) {
        if (expired(d)) return false;
        w.spin();
      }
      bo.pause(detail::backoff_rng());
    }
  }

  release_kind unlock() {
    locked_.store(false, std::memory_order_release);
    return release_kind::none;
  }

  // Context-taking aliases so every lock shares one calling shape.
  void lock(context&) { lock(); }
  release_kind unlock(context&) { return unlock(); }

  bool is_locked() const {
    return locked_.load(std::memory_order_acquire);
  }

 private:
  alignas(cache_line_size) std::atomic<bool> locked_{false};
  backoff_params params_{};
};

using bo_lock = tatas_lock<exp_backoff>;       // the paper's BO
using fib_bo_lock = tatas_lock<fib_backoff>;   // Table 1/2's Fib-BO
using tas_spin_lock = tatas_lock<null_backoff>;  // bare-bones global spin

// ---- cohort-detecting local BO lock (C-BO-BO / A-C-BO-BO) ------------------

// The BO lock augmented per paper §3.1:
//  * the lock word has three states (GLOBAL-RELEASE / BUSY / LOCAL-RELEASE),
//  * a successor-exists flag implements alone(): waiters set it immediately
//    before each acquisition attempt and keep re-setting it while spinning;
//    the winner resets it.  False "no successor" readings merely force an
//    unnecessary global release (allowed by the alone() spec).
// The Abortable template parameter adds §3.6.1's behaviour: aborting waiters
// clear successor-exists, and release_local() double-checks the flag after
// publishing LOCAL-RELEASE, reverting to GLOBAL-RELEASE when it cannot
// guarantee a viable successor.
template <typename Backoff = exp_backoff, bool Abortable = false>
class cohort_bo_lock {
 public:
  using backoff_params = typename Backoff::params;
  using context = empty_context;

  cohort_bo_lock() = default;
  explicit cohort_bo_lock(backoff_params p) : params_(p) {}

  release_kind lock(context&) {
    auto r = try_lock_impl(deadline_never());
    return *r;  // never nullopt with infinite patience
  }

  std::optional<release_kind> try_lock(context&, deadline d)
    requires Abortable
  {
    return try_lock_impl(d);
  }

  bool alone(context&) const {
    return !successor_exists_.load(std::memory_order_acquire);
  }

  bool release_local(context&) {
    state_.store(state_local_release, std::memory_order_release);
    if constexpr (Abortable) {
      // §3.6.1: if an aborting waiter cleared successor-exists while we
      // released, we cannot be sure a viable successor remains.  Try to take
      // the release back; if the CAS fails somebody already acquired the
      // lock, so the handoff worked after all.
      if (!successor_exists_.load(std::memory_order_acquire)) {
        std::uint8_t expect = state_local_release;
        if (state_.compare_exchange_strong(expect, state_global_release,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed))
          return false;  // caller must now release the global lock
      }
    }
    return true;
  }

  void release_global(context&) {
    state_.store(state_global_release, std::memory_order_release);
  }

  bool is_locked() const {
    return state_.load(std::memory_order_acquire) == state_busy;
  }

 private:
  static constexpr std::uint8_t state_global_release = 0;  // initial
  static constexpr std::uint8_t state_busy = 1;
  static constexpr std::uint8_t state_local_release = 2;

  std::optional<release_kind> try_lock_impl(deadline d) {
    Backoff bo(params_);
    spin_wait w;
    for (;;) {
      // Announce ourselves before every acquisition attempt (paper §3.1).
      successor_exists_.store(true, std::memory_order_release);
      std::uint8_t s = state_.load(std::memory_order_acquire);
      if (s != state_busy) {
        if (state_.compare_exchange_weak(s, state_busy,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
          // Winner resets the flag; still-spinning waiters will re-set it.
          successor_exists_.store(false, std::memory_order_release);
          return s == state_local_release ? release_kind::local
                                          : release_kind::global;
        }
      }
      while (state_.load(std::memory_order_relaxed) == state_busy) {
        if constexpr (Abortable) {
          if (expired(d)) {
            // §3.6.1: tell the releaser a waiter has gone away.
            successor_exists_.store(false, std::memory_order_release);
            return std::nullopt;
          }
        }
        // Keep the successor flag visible while we wait.
        if (!successor_exists_.load(std::memory_order_relaxed))
          successor_exists_.store(true, std::memory_order_release);
        w.spin();
      }
      bo.pause(detail::backoff_rng());
    }
  }

  // Both words share one line deliberately: they are only ever touched by
  // threads of one cluster, where write-sharing is cheap (paper §3.1).
  alignas(cache_line_size) std::atomic<std::uint8_t> state_{
      state_global_release};
  std::atomic<bool> successor_exists_{false};
  backoff_params params_{};
};

}  // namespace cohort
