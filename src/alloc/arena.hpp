// Single-lock splay-tree arena allocator: the Solaris-libc-malloc substitute
// used for the Table 2 reproduction and the allocator example.
//
// Design (mirroring the allocator the paper evaluates):
//   * one lock serialises all allocation metadata (the template parameter is
//     exactly where the paper injects cohort locks via LD_PRELOAD);
//   * free chunks live in a splay tree keyed by size; freed chunks splay to
//     the root (LIFO recycling of equal sizes);
//   * boundary tags enable immediate coalescing with physical neighbours.
//
// Not thread-caching by design: the whole point of the paper's §4.3 is that
// a simple single-lock allocator plus a cohort lock recovers most of the
// scalability without switching allocators.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>

#include "alloc/splay.hpp"
#include "cohort/cohort_lock.hpp"
#include "cohort/locks.hpp"

namespace cohortalloc {

struct arena_stats {
  std::size_t allocated_bytes = 0;  // currently handed out (payload)
  std::size_t free_chunks = 0;
  std::size_t alloc_calls = 0;
  std::size_t free_calls = 0;
  std::size_t splits = 0;
  std::size_t coalesces = 0;
  std::size_t failures = 0;  // out-of-memory returns
};

namespace detail {

// Chunk header preceding every block, used or free.  Free chunks overlay a
// splay_node on their payload (minimum payload size enforces room for it).
struct chunk {
  std::size_t size;       // total chunk size incl. header
  std::size_t prev_size;  // size of the physically preceding chunk (0: first)
  bool free;

  static constexpr std::size_t header_size = 32;  // keep payload 16-aligned
  static constexpr std::size_t min_payload = sizeof(splay_node);
  static constexpr std::size_t min_chunk = header_size + 64;

  char* payload() { return reinterpret_cast<char*>(this) + header_size; }
  splay_node* node() { return reinterpret_cast<splay_node*>(payload()); }
  chunk* next_phys() {
    return reinterpret_cast<chunk*>(reinterpret_cast<char*>(this) + size);
  }
  chunk* prev_phys() {
    return reinterpret_cast<chunk*>(reinterpret_cast<char*>(this) -
                                    prev_size);
  }
  static chunk* from_payload(void* p) {
    return reinterpret_cast<chunk*>(static_cast<char*>(p) - header_size);
  }
};
static_assert(sizeof(chunk) <= chunk::header_size);

}  // namespace detail

// Lock-agnostic allocator core.  NOT thread-safe by itself; arena<Lock>
// below adds the lock.  Exposed separately so tests can exercise the
// allocation logic deterministically.
class arena_core {
 public:
  explicit arena_core(std::size_t capacity_bytes);

  void* allocate(std::size_t n);
  void deallocate(void* p);

  const arena_stats& stats() const noexcept { return stats_; }
  std::size_t capacity() const noexcept { return capacity_; }

  // Touches one byte per page so the arena's backing memory is faulted in --
  // and therefore NUMA-placed -- by the calling thread, mirroring
  // kv_shard::prefault().  Call before handing the arena to other threads.
  void prefault();

  // Walks the heap validating boundary tags and tree membership (tests).
  bool check_heap() const;

 private:
  detail::chunk* first_chunk() const;
  void tree_insert(detail::chunk* c);
  void tree_remove(detail::chunk* c);

  std::unique_ptr<char[]> memory_;
  std::size_t capacity_;
  splay_tree free_tree_;
  arena_stats stats_;
};

// The thread-safe allocator: arena_core guarded by any lock with a context
// (the paper's cohort locks, the classic locks, or pthread_lock).  The lock
// is either default-constructed or supplied by a factory, which is how the
// registry's name-dispatched, parameterised locks (pass limit, cluster
// count) get injected by the alloc benchmark workload.
template <typename Lock = cohort::c_tkt_tkt_lock>
class arena {
 public:
  explicit arena(std::size_t capacity_bytes)
      : core_(capacity_bytes), lock_(std::make_unique<Lock>()) {}

  // make_lock: () -> std::unique_ptr<Lock> (a reg::with_lock_type factory).
  template <typename Factory>
    requires requires(Factory f) {
      { f() } -> std::convertible_to<std::unique_ptr<Lock>>;
    }
  arena(std::size_t capacity_bytes, Factory&& make_lock)
      : core_(capacity_bytes), lock_(make_lock()) {}

  void* allocate(std::size_t n) {
    cohort::scoped<Lock> g(*lock_);
    return core_.allocate(n);
  }

  void deallocate(void* p) {
    cohort::scoped<Lock> g(*lock_);
    core_.deallocate(p);
  }

  arena_stats stats() {
    cohort::scoped<Lock> g(*lock_);
    return core_.stats();
  }

  // Quiescent reads (after all users joined): the allocator counters are
  // mutated under the lock, so lock-free reads need an idle arena.
  const arena_stats& quiescent_stats() const noexcept { return core_.stats(); }
  bool check_heap() const { return core_.check_heap(); }
  std::size_t capacity() const noexcept { return core_.capacity(); }
  void prefault() { core_.prefault(); }

  // The lock's cohort batching counters when it keeps them; relaxed-atomic
  // cells, so -- unlike the allocator counters -- safe to sample mid-run
  // (the benchmark's windows[] telemetry does).
  std::optional<cohort::cohort_stats> lock_stats() const {
    if constexpr (requires(const Lock& l) { l.stats(); })
      return cohort::cohort_stats(lock_->stats());
    else
      return std::nullopt;
  }

  Lock& lock() noexcept { return *lock_; }

 private:
  arena_core core_;
  std::unique_ptr<Lock> lock_;
};

}  // namespace cohortalloc
