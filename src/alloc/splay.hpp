// Bottom-up splay tree of free chunks, keyed by chunk size, used by the
// single-lock arena allocator (alloc/arena.hpp).
//
// Matches the behaviour the paper attributes to the Solaris libc allocator
// (§4.3): a freed block's node is splayed to the root on insert, and
// allocation returns the first fitting block found from the root -- so among
// equal-sized blocks the most recently freed is reallocated first.  That
// LIFO recycling is what lets cohort locks keep blocks circulating inside
// one cluster.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cohortalloc {

struct splay_node {
  splay_node* left = nullptr;
  splay_node* right = nullptr;
  splay_node* parent = nullptr;
  std::size_t key = 0;  // chunk size in bytes
};

class splay_tree {
 public:
  // Inserts n (key already set) and splays it to the root.  Equal keys go
  // towards the left subtree, so the newest equal-sized node is found first.
  void insert(splay_node* n);

  // Removes n (must be in the tree).
  void remove(splay_node* n);

  // Smallest node with key >= k, splayed to the root; nullptr if none.
  splay_node* find_best_fit(std::size_t k);

  splay_node* root() const noexcept { return root_; }
  bool empty() const noexcept { return root_ == nullptr; }
  std::size_t size() const noexcept { return count_; }

  // Validates BST ordering and parent links; returns false on corruption
  // (test support).
  bool check_invariants() const;

 private:
  void rotate_up(splay_node* x);
  void splay(splay_node* x);
  void replace(splay_node* u, splay_node* v);
  static splay_node* subtree_min(splay_node* n);

  splay_node* root_ = nullptr;
  std::size_t count_ = 0;
};

}  // namespace cohortalloc
