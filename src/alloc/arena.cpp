#include "alloc/arena.hpp"

#include <cassert>
#include <cstring>

namespace cohortalloc {

// ---- splay tree -------------------------------------------------------------

void splay_tree::rotate_up(splay_node* x) {
  splay_node* p = x->parent;
  splay_node* g = p->parent;
  if (p->left == x) {
    p->left = x->right;
    if (x->right != nullptr) x->right->parent = p;
    x->right = p;
  } else {
    p->right = x->left;
    if (x->left != nullptr) x->left->parent = p;
    x->left = p;
  }
  p->parent = x;
  x->parent = g;
  if (g == nullptr) {
    root_ = x;
  } else if (g->left == p) {
    g->left = x;
  } else {
    g->right = x;
  }
}

void splay_tree::splay(splay_node* x) {
  while (x->parent != nullptr) {
    splay_node* p = x->parent;
    splay_node* g = p->parent;
    if (g == nullptr) {
      rotate_up(x);  // zig
    } else if ((g->left == p) == (p->left == x)) {
      rotate_up(p);  // zig-zig
      rotate_up(x);
    } else {
      rotate_up(x);  // zig-zag
      rotate_up(x);
    }
  }
}

void splay_tree::insert(splay_node* n) {
  n->left = n->right = n->parent = nullptr;
  if (root_ == nullptr) {
    root_ = n;
    ++count_;
    return;
  }
  splay_node* cur = root_;
  for (;;) {
    // Equal keys go left so the most recently inserted equal-sized chunk is
    // found first by find_best_fit (LIFO recycling).
    if (n->key <= cur->key) {
      if (cur->left == nullptr) {
        cur->left = n;
        n->parent = cur;
        break;
      }
      cur = cur->left;
    } else {
      if (cur->right == nullptr) {
        cur->right = n;
        n->parent = cur;
        break;
      }
      cur = cur->right;
    }
  }
  ++count_;
  splay(n);
}

void splay_tree::replace(splay_node* u, splay_node* v) {
  if (u->parent == nullptr) {
    root_ = v;
  } else if (u->parent->left == u) {
    u->parent->left = v;
  } else {
    u->parent->right = v;
  }
  if (v != nullptr) v->parent = u->parent;
}

splay_node* splay_tree::subtree_min(splay_node* n) {
  while (n->left != nullptr) n = n->left;
  return n;
}

void splay_tree::remove(splay_node* n) {
  splay(n);
  if (n->left == nullptr) {
    replace(n, n->right);
  } else if (n->right == nullptr) {
    replace(n, n->left);
  } else {
    splay_node* successor = subtree_min(n->right);
    if (successor->parent != n) {
      replace(successor, successor->right);
      successor->right = n->right;
      successor->right->parent = successor;
    }
    replace(n, successor);
    successor->left = n->left;
    successor->left->parent = successor;
  }
  n->left = n->right = n->parent = nullptr;
  --count_;
}

splay_node* splay_tree::find_best_fit(std::size_t k) {
  splay_node* cur = root_;
  splay_node* best = nullptr;
  while (cur != nullptr) {
    if (cur->key >= k) {
      best = cur;
      cur = cur->left;
    } else {
      cur = cur->right;
    }
  }
  if (best != nullptr) splay(best);
  return best;
}

namespace {
bool check_subtree(const splay_node* n, const splay_node* parent,
                   std::size_t& count) {
  if (n == nullptr) return true;
  if (n->parent != parent) return false;
  ++count;
  if (n->left != nullptr && n->left->key > n->key) return false;
  if (n->right != nullptr && n->right->key < n->key) return false;
  return check_subtree(n->left, n, count) && check_subtree(n->right, n, count);
}
}  // namespace

bool splay_tree::check_invariants() const {
  std::size_t count = 0;
  if (!check_subtree(root_, nullptr, count)) return false;
  return count == count_;
}

// ---- arena core -------------------------------------------------------------

using detail::chunk;

namespace {
constexpr std::size_t align_up(std::size_t n, std::size_t a) {
  return (n + a - 1) & ~(a - 1);
}
}  // namespace

arena_core::arena_core(std::size_t capacity_bytes)
    : memory_(new char[align_up(capacity_bytes, 16)]),
      capacity_(align_up(capacity_bytes, 16)) {
  assert(capacity_ >= chunk::min_chunk);
  chunk* c = first_chunk();
  c->size = capacity_;
  c->prev_size = 0;
  c->free = true;
  tree_insert(c);
}

chunk* arena_core::first_chunk() const {
  return reinterpret_cast<chunk*>(memory_.get());
}

void arena_core::prefault() {
  // One volatile read-write per page: faults every page in from the calling
  // thread without disturbing the heap structure (reads then rewrites the
  // byte that is already there).
  constexpr std::size_t page = 4096;
  for (std::size_t off = 0; off < capacity_; off += page) {
    volatile char* p = memory_.get() + off;
    *p = *p;
  }
}

void arena_core::tree_insert(chunk* c) {
  splay_node* n = c->node();
  n->key = c->size;
  free_tree_.insert(n);
  ++stats_.free_chunks;
}

void arena_core::tree_remove(chunk* c) {
  free_tree_.remove(c->node());
  --stats_.free_chunks;
}

void* arena_core::allocate(std::size_t n) {
  ++stats_.alloc_calls;
  if (n < chunk::min_payload) n = chunk::min_payload;
  const std::size_t need = align_up(n, 16) + chunk::header_size;

  splay_node* best = free_tree_.find_best_fit(need);
  if (best == nullptr) {
    ++stats_.failures;
    return nullptr;
  }
  chunk* c = chunk::from_payload(best);
  tree_remove(c);

  // Split when the remainder can hold a viable chunk.
  if (c->size - need >= chunk::min_chunk) {
    chunk* rest = reinterpret_cast<chunk*>(reinterpret_cast<char*>(c) + need);
    rest->size = c->size - need;
    rest->prev_size = need;
    rest->free = true;
    c->size = need;
    // Fix the following chunk's back-pointer.
    char* end = reinterpret_cast<char*>(rest) + rest->size;
    if (end < memory_.get() + capacity_)
      reinterpret_cast<chunk*>(end)->prev_size = rest->size;
    tree_insert(rest);
    ++stats_.splits;
  }
  c->free = false;
  stats_.allocated_bytes += c->size - chunk::header_size;
  return c->payload();
}

void arena_core::deallocate(void* p) {
  if (p == nullptr) return;
  ++stats_.free_calls;
  chunk* c = chunk::from_payload(p);
  assert(!c->free && "double free");
  stats_.allocated_bytes -= c->size - chunk::header_size;
  c->free = true;

  // Coalesce with the physically following chunk.
  char* heap_end = memory_.get() + capacity_;
  chunk* next = c->next_phys();
  if (reinterpret_cast<char*>(next) < heap_end && next->free) {
    tree_remove(next);
    c->size += next->size;
    ++stats_.coalesces;
  }
  // Coalesce with the physically preceding chunk.
  if (c->prev_size != 0) {
    chunk* prev = c->prev_phys();
    if (prev->free) {
      tree_remove(prev);
      prev->size += c->size;
      c = prev;
      ++stats_.coalesces;
    }
  }
  // Fix the following chunk's back-pointer.
  chunk* after = c->next_phys();
  if (reinterpret_cast<char*>(after) < heap_end) after->prev_size = c->size;

  tree_insert(c);
}

bool arena_core::check_heap() const {
  const char* heap_end = memory_.get() + capacity_;
  const chunk* c = first_chunk();
  std::size_t prev_size = 0;
  std::size_t free_count = 0;
  while (reinterpret_cast<const char*>(c) < heap_end) {
    if (c->size < chunk::min_chunk && c->size != 0) {
      // allocated chunks may be smaller than min_chunk only via min_payload
      if (c->size < chunk::header_size + chunk::min_payload) return false;
    }
    if (c->prev_size != prev_size) return false;
    if (c->free) ++free_count;
    prev_size = c->size;
    c = reinterpret_cast<const chunk*>(reinterpret_cast<const char*>(c) +
                                       c->size);
  }
  if (reinterpret_cast<const char*>(c) != heap_end) return false;
  if (free_count != free_tree_.size()) return false;
  return free_tree_.check_invariants();
}

}  // namespace cohortalloc
