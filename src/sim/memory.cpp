#include "sim/memory.hpp"

namespace sim {

tick line_access(engine& eng, line_state& line, unsigned cluster, bool write) {
  const config& cfg = eng.cfg();
  auto& ms = eng.memstats;
  ++ms.accesses;

  // Serialise at the line (directory).  How long this access occupies the
  // line depends on whether it is served locally: intra-cluster refetches
  // overlap almost fully on the T5440 (cores share the cluster's L2), which
  // is why the paper can afford write-sharing the successor-exists flag
  // inside a cluster; remote transfers hold the line for the directory
  // transaction.
  const tick now = eng.now();
  const tick start = now > line.busy_until ? now : line.busy_until;

  const std::uint32_t me = 1u << cluster;
  tick done;
  bool served_remotely = false;

  if (write) {
    const bool m_hit = line.modified && line.owner == cluster;
    const bool remote_copy =
        (line.modified && line.owner != cluster) ||
        (!line.modified && (line.sharers & ~me) != 0);
    if (m_hit) {
      done = start + cfg.local_hit;
    } else if (remote_copy) {
      // Fetch-exclusive: one interconnect transaction per remote cluster
      // that holds a copy (invalidations fan out).  This is what makes
      // polling loads from many clusters (HBO under heavy load) expensive
      // for the writer.
      ++ms.coherence_misses;
      served_remotely = true;
      const std::uint32_t remote_clusters =
          line.modified ? 1u
                        : static_cast<std::uint32_t>(
                              __builtin_popcount(line.sharers & ~me));
      done = eng.interconnect_transfer_n(start, remote_clusters);
    } else if (!line.ever_touched) {
      ++ms.cold_misses;
      done = start + cfg.cold_miss;
    } else {
      // Shared only by us (or by nobody): silent upgrade.
      done = start + cfg.local_hit;
    }
    line.owner = cluster;
    line.modified = true;
    line.sharers = me;
  } else {
    const bool hit = (line.modified && line.owner == cluster) ||
                     (!line.modified && (line.sharers & me) != 0);
    if (hit) {
      done = start + cfg.local_hit;
    } else if (line.modified || line.sharers != 0) {
      // Served by a remote cluster's cache: the coherence miss of Figure 3.
      ++ms.coherence_misses;
      served_remotely = true;
      done = eng.interconnect_transfer(start);
      if (line.modified) {
        // Downgrade the owner to a sharer.
        line.sharers = (1u << line.owner) | me;
        line.owner = line_state::no_owner;
        line.modified = false;
      } else {
        line.sharers |= me;
      }
    } else {
      if (!line.ever_touched) ++ms.cold_misses;
      done = start + cfg.cold_miss;
      line.sharers |= me;
      line.modified = false;
    }
  }
  line.ever_touched = true;
  line.busy_until = start + (served_remotely ? cfg.line_occupancy : 1);
  return done - now;
}

void atom::wait_awaiter::await_suspend(std::coroutine_handle<> h) {
  handle = h;
  t->current_wait = this;
  a->waiters_.push_back(t);
  if (deadline_at != tick_max) {
    a->eng_->schedule_thread_event(deadline_at, t, t->wait_epoch,
                                   engine::thread_event_kind::timeout);
  }
}

void atom::schedule_wakes(tick at) {
  // Pop everyone; woken threads re-read (and re-register if still waiting),
  // which charges the refetch through the line and the interconnect --
  // the invalidation-storm cost.
  for (thread_ctx* t : waiters_) {
    eng_->schedule_thread_event(at, t, t->wait_epoch,
                                engine::thread_event_kind::wake);
  }
  waiters_.clear();
}

task<std::uint64_t> atom::wait_until(thread_ctx& t, wait_pred pred,
                                     std::uint64_t arg) {
  for (;;) {
    const std::uint64_t v = co_await load(t);
    if (pred(v, arg)) co_return v;
    co_await suspend_wait(t, tick_max);
  }
}

task<std::optional<std::uint64_t>> atom::wait_until_for(thread_ctx& t,
                                                        wait_pred pred,
                                                        std::uint64_t arg,
                                                        tick deadline_at) {
  for (;;) {
    const std::uint64_t v = co_await load(t);
    if (pred(v, arg)) co_return v;
    if (eng_->now() >= deadline_at) co_return std::nullopt;
    if (!co_await suspend_wait(t, deadline_at)) co_return std::nullopt;
  }
}

}  // namespace sim
