// Simulated CLH family: classic CLH, Scott's abortable A-CLH (the Figure 6
// baseline) and the cohort-detecting abortable local lock of A-C-BO-CLH.
// Mirrors src/locks/clh.hpp; see there for the protocol discussion.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "sim/locks/locks.hpp"

namespace sim {

namespace clh_sim_detail {
inline constexpr std::uint64_t tag_busy = 1, tag_local = 2, tag_global = 3;
inline constexpr std::uint64_t flag_sa = 4;  // successor aborted
inline constexpr std::uint64_t tag_mask = 7;
inline bool is_pointer(std::uint64_t w) { return (w & tag_mask) == 0; }
}  // namespace clh_sim_detail

struct s_clh_node {
  atom word;
  explicit s_clh_node(engine& eng) : word(eng, 0) {}
};

// Shared node plumbing for the CLH variants.  Node pool manipulation is
// thread-local and cheap in the real locks, so only node-line traffic is
// modelled.
class s_clh_base {
 public:
  struct context {
    explicit context(engine&) {}
    s_clh_node* mine = nullptr;
    s_clh_node* taken_pred = nullptr;
  };

 protected:
  explicit s_clh_base(engine& eng, std::uint64_t dummy_word)
      : eng_(&eng), tail_(eng, 0) {
    s_clh_node* dummy = alloc();
    dummy->word.poke(dummy_word);
    tail_.poke(reinterpret_cast<std::uintptr_t>(dummy));
  }

  s_clh_node* alloc() {
    if (!free_.empty()) {
      s_clh_node* n = free_.back();
      free_.pop_back();
      return n;
    }
    owned_.push_back(std::make_unique<s_clh_node>(*eng_));
    return owned_.back().get();
  }
  void reclaim(s_clh_node* n) { free_.push_back(n); }

  static void recycle(context& ctx) {
    ctx.mine = ctx.taken_pred;
    ctx.taken_pred = nullptr;
  }

  engine* eng_;
  atom tail_;

 private:
  std::vector<std::unique_ptr<s_clh_node>> owned_;
  std::vector<s_clh_node*> free_;
};

// Scott's abortable CLH lock (PODC'02): the A-CLH baseline of Figure 6.
class s_aclh_lock : public s_clh_base {
 public:
  explicit s_aclh_lock(engine& eng)
      : s_clh_base(eng, clh_sim_detail::tag_global) {}

  // Returns false on timeout.
  task<bool> try_lock(thread_ctx& t, context& ctx, tick deadline_at) {
    using namespace clh_sim_detail;
    if (ctx.mine == nullptr) ctx.mine = alloc();
    s_clh_node* me = ctx.mine;
    co_await me->word.store(t, tag_busy);
    std::uint64_t predw =
        co_await tail_.exchange(t, reinterpret_cast<std::uintptr_t>(me));
    auto* pred = reinterpret_cast<s_clh_node*>(predw);
    for (;;) {
      const std::uint64_t pw = co_await pred->word.load(t);
      if (pw == tag_global || pw == tag_local) {
        ctx.taken_pred = pred;
        co_return true;
      }
      if (is_pointer(pw)) {
        auto* next_pred = reinterpret_cast<s_clh_node*>(pw);
        reclaim(pred);
        pred = next_pred;
        continue;
      }
      if (t.eng->now() >= deadline_at) {
        co_await me->word.store(t, reinterpret_cast<std::uintptr_t>(pred));
        ctx.mine = nullptr;  // node stays in the queue for the successor
        co_return false;
      }
      co_await pred->word.wait_until_for(
          t, [](std::uint64_t v, std::uint64_t old) { return v != old; }, pw,
          deadline_at);
    }
  }

  task<void> lock(thread_ctx& t, context& ctx) {
    co_await try_lock(t, ctx, tick_max);
  }

  task<void> unlock(thread_ctx& t, context& ctx) {
    co_await ctx.mine->word.store(t, clh_sim_detail::tag_global);
    recycle(ctx);
  }
};

// Abortable cohort-detecting local CLH lock (§3.6.2).
class s_cohort_aclh_lock : public s_clh_base {
 public:
  explicit s_cohort_aclh_lock(engine& eng)
      : s_clh_base(eng, clh_sim_detail::tag_global) {}

  task<std::optional<release_kind>> try_lock(thread_ctx& t, context& ctx,
                                             tick deadline_at) {
    using namespace clh_sim_detail;
    if (ctx.mine == nullptr) ctx.mine = alloc();
    s_clh_node* me = ctx.mine;
    co_await me->word.store(t, tag_busy);
    std::uint64_t predw =
        co_await tail_.exchange(t, reinterpret_cast<std::uintptr_t>(me));
    auto* pred = reinterpret_cast<s_clh_node*>(predw);
    for (;;) {
      std::uint64_t pw = co_await pred->word.load(t);
      if (pw == tag_local || pw == tag_global) {
        ctx.taken_pred = pred;
        co_return pw == tag_local ? release_kind::local
                                  : release_kind::global;
      }
      if (is_pointer(pw)) {
        auto* next_pred = reinterpret_cast<s_clh_node*>(pw);
        reclaim(pred);
        pred = next_pred;
        continue;
      }
      if (t.eng->now() >= deadline_at) {
        // Abort step 1: set the spin target's successor-aborted flag; the
        // CAS linearises against the target's release CAS.
        auto r = co_await pred->word.cas(t, pw, pw | flag_sa);
        if (r.ok) {
          co_await me->word.store(t, reinterpret_cast<std::uintptr_t>(pred));
          ctx.mine = nullptr;
          co_return std::nullopt;
        }
        continue;  // word changed: we may have been granted the lock
      }
      co_await pred->word.wait_until_for(
          t, [](std::uint64_t v, std::uint64_t old) { return v != old; }, pw,
          deadline_at);
    }
  }

  task<release_kind> lock(thread_ctx& t, context& ctx) {
    auto r = co_await try_lock(t, ctx, tick_max);
    co_return *r;
  }

  task<bool> alone(thread_ctx& t, context& ctx) {
    const std::uint64_t tl = co_await tail_.load(t);
    co_return tl == reinterpret_cast<std::uintptr_t>(ctx.mine);
  }

  task<bool> release_local(thread_ctx& t, context& ctx) {
    using namespace clh_sim_detail;
    auto r = co_await ctx.mine->word.cas(t, tag_busy, tag_local);
    if (r.ok) {
      recycle(ctx);
      co_return true;
    }
    // Successor-aborted was set: release in GLOBAL-RELEASE state instead;
    // caller must release the global lock.
    co_await ctx.mine->word.store(t, tag_global);
    recycle(ctx);
    co_return false;
  }

  task<void> release_global(thread_ctx& t, context& ctx) {
    co_await ctx.mine->word.store(t, clh_sim_detail::tag_global);
    recycle(ctx);
  }
};

}  // namespace sim
