#include "sim/locks/registry.hpp"

namespace sim {

const std::vector<std::string>& fig2_lock_names() {
  static const std::vector<std::string> names = {
      "MCS",     "HBO",       "HCLH",      "FC-MCS",   "C-BO-BO",
      "C-TKT-TKT", "C-BO-MCS", "C-TKT-MCS", "C-MCS-MCS"};
  return names;
}

const std::vector<std::string>& fig6_lock_names() {
  static const std::vector<std::string> names = {"A-CLH", "A-HBO",
                                                 "A-C-BO-BO", "A-C-BO-CLH"};
  return names;
}

const std::vector<std::string>& table1_lock_names() {
  static const std::vector<std::string> names = {
      "pthread", "Fib-BO",  "MCS",       "HBO",      "HBO-tuned", "FC-MCS",
      "C-BO-BO", "C-TKT-TKT", "C-BO-MCS", "C-TKT-MCS", "C-MCS-MCS"};
  return names;
}

const std::vector<std::string>& table2_lock_names() {
  return table1_lock_names();
}

}  // namespace sim
