// Simulated lock algorithms.
//
// These mirror the real implementations in src/locks and src/cohort, but run
// against the simulated coherence model (sim/memory.hpp), which is what lets
// the benchmark harness reproduce the paper's NUMA effects on a non-NUMA
// host (DESIGN.md §2).  Structure and naming track the real locks closely;
// where the real code relies on C++ memory orderings, the simulator is
// sequentially consistent by construction (events apply in virtual-time
// order), so only the algorithmic steps are mirrored.
//
// Common interface (mirrors cohort/core.hpp):
//   global locks:  task<void> lock(thread_ctx&), task<void> unlock(...),
//                  abortable adds task<bool> try_lock(thread_ctx&, tick).
//   local locks:   task<release_kind> lock(t, ctx), task<bool> alone(t, ctx),
//                  task<bool> release_local(t, ctx),
//                  task<void> release_global(t, ctx); abortable adds
//                  task<std::optional<release_kind>> try_lock(t, ctx, tick).
// Deadlines are absolute virtual times (sim::tick).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "cohort/core.hpp"
#include "sim/engine.hpp"
#include "sim/memory.hpp"
#include "sim/task.hpp"

namespace sim {

using cohort::release_kind;

// ---- backoff policies (virtual-time) ----------------------------------------

struct no_backoff_policy {
  static constexpr bool enabled = false;
  void grow() {}
  void reset() {}
  tick window() const { return 0; }
};

struct exp_backoff_policy {
  static constexpr bool enabled = true;
  tick min_ns = 32, max_ns = 65536;
  tick cur = 32;
  void grow() { cur = cur * 2 > max_ns ? max_ns : cur * 2; }
  void reset() { cur = min_ns; }
  tick window() const { return cur; }
};

struct fib_backoff_policy {
  static constexpr bool enabled = true;
  tick min_ns = 32, max_ns = 65536;
  tick prev = 0, cur = 32;
  void grow() {
    const tick next = prev + cur;
    prev = cur;
    cur = next > max_ns ? max_ns : next;
  }
  void reset() {
    prev = 0;
    cur = min_ns;
  }
  tick window() const { return cur; }
};

// ---- TATAS / BO --------------------------------------------------------------

// Plain test-and-test-and-set lock.  Backoff == no_backoff_policy gives the
// bare-bones spin used as the cohort global BO lock; exp/fib give the BO and
// Fib-BO baselines.
template <typename Backoff = no_backoff_policy>
class s_bo_lock {
 public:
  struct context {
    explicit context(engine&) {}
  };

  explicit s_bo_lock(engine& eng) : word_(eng, 0) {}

  task<void> lock(thread_ctx& t) {
    Backoff bo;
    for (;;) {
      auto r = co_await word_.cas(t, 0, 1);
      if (r.ok) co_return;
      if constexpr (Backoff::enabled) {
        co_await t.eng->delay(t.rng.next_range(bo.window()) + 1);
        bo.grow();
        // Test-and-test-and-set: only attempt the CAS when it looks free.
        const std::uint64_t v = co_await word_.load(t);
        if (v != 0) continue;
      } else {
        co_await word_.wait_until(
            t, [](std::uint64_t v, std::uint64_t) { return v == 0; }, 0);
      }
    }
  }

  task<bool> try_lock(thread_ctx& t, tick deadline_at) {
    Backoff bo;
    for (;;) {
      auto r = co_await word_.cas(t, 0, 1);
      if (r.ok) co_return true;
      if (t.eng->now() >= deadline_at) co_return false;
      if constexpr (Backoff::enabled) {
        co_await t.eng->delay(t.rng.next_range(bo.window()) + 1);
        bo.grow();
      } else {
        auto v = co_await word_.wait_until_for(
            t, [](std::uint64_t v2, std::uint64_t) { return v2 == 0; }, 0,
            deadline_at);
        if (!v.has_value()) co_return false;
      }
    }
  }

  task<void> unlock(thread_ctx& t) { co_await word_.store(t, 0); }

 private:
  atom word_;
};

// ---- ticket lock -------------------------------------------------------------

class s_ticket_lock {
 public:
  struct context {
    explicit context(engine&) {}
  };

  explicit s_ticket_lock(engine& eng) : request_(eng, 0), grant_(eng, 0) {}

  task<void> lock(thread_ctx& t) {
    const std::uint64_t me = co_await request_.fetch_add(t, 1);
    co_await grant_.wait_until(
        t, [](std::uint64_t v, std::uint64_t want) { return v == want; }, me);
  }

  task<void> unlock(thread_ctx& t) { co_await grant_.fetch_add(t, 1); }

 private:
  atom request_;
  atom grant_;
};

// ---- cohort-detecting local BO lock (C-BO-BO / A-C-BO-BO) --------------------
//
// The three-state word and the successor-exists flag are packed into one
// simulated word, mirroring the real lock's single-cache-line layout:
//   bits 0..1 state (0 global-release, 1 busy, 2 local-release)
//   bit  2    successor-exists
template <bool Abortable = false>
class s_cohort_bo_lock {
  static constexpr std::uint64_t st_global = 0, st_busy = 1, st_local = 2;
  static constexpr std::uint64_t st_mask = 3, succ_bit = 4;

 public:
  struct context {
    explicit context(engine&) {}
  };

  explicit s_cohort_bo_lock(engine& eng) : word_(eng, st_global) {}

  task<release_kind> lock(thread_ctx& t, context& ctx) {
    auto r = co_await try_lock_impl(t, ctx, tick_max);
    co_return *r;
  }

  task<std::optional<release_kind>> try_lock(thread_ctx& t, context& ctx,
                                             tick deadline_at) {
    return try_lock_impl(t, ctx, deadline_at);
  }

  task<bool> alone(thread_ctx& t, context&) {
    const std::uint64_t w = co_await word_.load(t);
    co_return (w & succ_bit) == 0;
  }

  task<bool> release_local(thread_ctx& t, context&) {
    // Publish LOCAL-RELEASE, preserving the successor flag.
    std::uint64_t w = co_await word_.load(t);
    for (;;) {
      auto r = co_await word_.cas(t, w, st_local | (w & succ_bit));
      if (r.ok) break;
      w = r.old_value;
    }
    if constexpr (Abortable) {
      // §3.6.1 double-check: an aborting waiter may have cleared the flag.
      const std::uint64_t v = co_await word_.load(t);
      if ((v & succ_bit) == 0) {
        auto r = co_await word_.cas(t, st_local, st_global);
        if (r.ok) co_return false;  // took the release back; caller frees G
      }
    }
    co_return true;
  }

  task<void> release_global(thread_ctx& t, context&) {
    // Successor flag deliberately cleared: the next acquirer re-announces.
    co_await word_.store(t, st_global);
  }

 private:
  // Like the real lock, waiters poll with exponential backoff rather than
  // spin-waiting on a shared copy: with up to 64 threads per cluster, a
  // wake-every-waiter-per-write regime would thrash the word line (and it is
  // precisely this polling that makes C-BO-BO "sensitive to backoff
  // parameters", §4.1.1).
  task<std::optional<release_kind>> try_lock_impl(thread_ctx& t, context&,
                                                  tick deadline_at) {
    exp_backoff_policy bo{.min_ns = 32, .max_ns = 1024, .cur = 32};
    for (;;) {
      std::uint64_t w = co_await word_.load(t);
      if ((w & st_mask) != st_busy) {
        // Acquire; the CAS also performs the winner's successor-flag reset
        // (spinning waiters will re-set it).
        auto r = co_await word_.cas(t, w, st_busy);
        if (r.ok)
          co_return (w & st_mask) == st_local ? release_kind::local
                                              : release_kind::global;
        continue;  // re-examine without growing the window
      }
      if ((w & succ_bit) == 0) {
        // Announce ourselves (paper §3.1: set immediately before attempting
        // the CAS, re-set whenever the winner's reset is observed).  Failure
        // just means the word changed; re-examine.
        co_await word_.cas(t, w, w | succ_bit);
        continue;
      }
      if constexpr (Abortable) {
        if (t.eng->now() >= deadline_at) {
          // §3.6.1: an aborting waiter resets successor-exists to tell the
          // releaser a waiter has gone.
          co_await word_.cas(t, w, w & ~succ_bit);
          co_return std::nullopt;
        }
      }
      co_await t.eng->delay(t.rng.next_range(bo.window()) + 1);
      bo.grow();
    }
  }

  atom word_;
};

// ---- cohort-detecting local ticket lock (C-TKT-TKT / C-TKT-MCS) --------------

class s_cohort_ticket_lock {
 public:
  struct context {
    explicit context(engine&) {}
    std::uint64_t ticket = 0;
  };

  explicit s_cohort_ticket_lock(engine& eng)
      : request_(eng, 0), grant_(eng, 0), top_granted_(eng, 0) {}

  task<release_kind> lock(thread_ctx& t, context& ctx) {
    ctx.ticket = co_await request_.fetch_add(t, 1);
    co_await grant_.wait_until(
        t, [](std::uint64_t v, std::uint64_t want) { return v == want; },
        ctx.ticket);
    const std::uint64_t tg = co_await top_granted_.load(t);
    if (tg != 0) {
      co_await top_granted_.store(t, 0);
      co_return release_kind::local;
    }
    co_return release_kind::global;
  }

  task<bool> alone(thread_ctx& t, context& ctx) {
    const std::uint64_t req = co_await request_.load(t);
    co_return req == ctx.ticket + 1;
  }

  task<bool> release_local(thread_ctx& t, context& ctx) {
    co_await top_granted_.store(t, 1);
    co_await grant_.store(t, ctx.ticket + 1);
    co_return true;
  }

  task<void> release_global(thread_ctx& t, context& ctx) {
    co_await grant_.store(t, ctx.ticket + 1);
  }

 private:
  atom request_;
  atom grant_;
  atom top_granted_;
};

// ---- MCS family ---------------------------------------------------------------

namespace mcs_detail {
inline constexpr std::uint64_t st_busy = 0, st_local = 1, st_global = 2,
                               st_plain_granted = 3;
}

// Queue node: `next` and `state` are separate simulated words (the real lock
// keeps them on one line; modelling them separately slightly overstates the
// handoff cost uniformly across all MCS-based locks).
struct s_mcs_node {
  atom next;
  atom state;
  explicit s_mcs_node(engine& eng) : next(eng, 0), state(eng, 0) {}
};

// Classic MCS lock (the paper's NUMA-oblivious baseline).
class s_mcs_lock {
 public:
  struct context {
    s_mcs_node node;
    explicit context(engine& eng) : node(eng) {}
  };

  explicit s_mcs_lock(engine& eng) : tail_(eng, 0) {}

  task<void> lock(thread_ctx& t, context& ctx) {
    s_mcs_node* me = &ctx.node;
    co_await me->next.store(t, 0);
    co_await me->state.store(t, mcs_detail::st_busy);
    const std::uint64_t pred =
        co_await tail_.exchange(t, reinterpret_cast<std::uintptr_t>(me));
    if (pred == 0) co_return;
    auto* p = reinterpret_cast<s_mcs_node*>(pred);
    co_await p->next.store(t, reinterpret_cast<std::uintptr_t>(me));
    co_await me->state.wait_until(
        t,
        [](std::uint64_t v, std::uint64_t) {
          return v == mcs_detail::st_plain_granted;
        },
        0);
  }

  task<void> unlock(thread_ctx& t, context& ctx) {
    s_mcs_node* me = &ctx.node;
    std::uint64_t succ = co_await me->next.load(t);
    if (succ == 0) {
      auto r =
          co_await tail_.cas(t, reinterpret_cast<std::uintptr_t>(me), 0);
      if (r.ok) co_return;
      succ = co_await me->next.wait_until(
          t, [](std::uint64_t v, std::uint64_t) { return v != 0; }, 0);
    }
    co_await reinterpret_cast<s_mcs_node*>(succ)->state.store(
        t, mcs_detail::st_plain_granted);
  }

 private:
  atom tail_;
};

// Cohort-detecting local MCS lock (§3.3).
class s_cohort_mcs_lock {
 public:
  struct context {
    s_mcs_node node;
    explicit context(engine& eng) : node(eng) {}
  };

  explicit s_cohort_mcs_lock(engine& eng) : tail_(eng, 0) {}

  task<release_kind> lock(thread_ctx& t, context& ctx) {
    s_mcs_node* me = &ctx.node;
    co_await me->next.store(t, 0);
    co_await me->state.store(t, mcs_detail::st_busy);
    const std::uint64_t pred =
        co_await tail_.exchange(t, reinterpret_cast<std::uintptr_t>(me));
    if (pred == 0) co_return release_kind::global;
    auto* p = reinterpret_cast<s_mcs_node*>(pred);
    co_await p->next.store(t, reinterpret_cast<std::uintptr_t>(me));
    const std::uint64_t s = co_await me->state.wait_until(
        t,
        [](std::uint64_t v, std::uint64_t) {
          return v != mcs_detail::st_busy;
        },
        0);
    co_return s == mcs_detail::st_local ? release_kind::local
                                        : release_kind::global;
  }

  task<bool> alone(thread_ctx& t, context& ctx) {
    const std::uint64_t succ = co_await ctx.node.next.load(t);
    co_return succ == 0;
  }

  task<bool> release_local(thread_ctx& t, context& ctx) {
    const std::uint64_t succ = co_await ctx.node.next.load(t);
    co_await reinterpret_cast<s_mcs_node*>(succ)->state.store(
        t, mcs_detail::st_local);
    co_return true;
  }

  task<void> release_global(thread_ctx& t, context& ctx) {
    s_mcs_node* me = &ctx.node;
    std::uint64_t succ = co_await me->next.load(t);
    if (succ == 0) {
      auto r =
          co_await tail_.cas(t, reinterpret_cast<std::uintptr_t>(me), 0);
      if (r.ok) co_return;
      succ = co_await me->next.wait_until(
          t, [](std::uint64_t v, std::uint64_t) { return v != 0; }, 0);
    }
    co_await reinterpret_cast<s_mcs_node*>(succ)->state.store(
        t, mcs_detail::st_global);
  }

 private:
  atom tail_;
};

// Thread-oblivious global MCS lock with circulating nodes (§3.4).
class s_oblivious_mcs_lock {
 public:
  explicit s_oblivious_mcs_lock(engine& eng) : eng_(&eng), tail_(eng, 0) {}

  task<void> lock(thread_ctx& t) {
    s_mcs_node* me = acquire_node();
    co_await me->next.store(t, 0);
    co_await me->state.store(t, mcs_detail::st_busy);
    const std::uint64_t pred =
        co_await tail_.exchange(t, reinterpret_cast<std::uintptr_t>(me));
    if (pred != 0) {
      auto* p = reinterpret_cast<s_mcs_node*>(pred);
      co_await p->next.store(t, reinterpret_cast<std::uintptr_t>(me));
      co_await me->state.wait_until(
          t,
          [](std::uint64_t v, std::uint64_t) {
            return v == mcs_detail::st_plain_granted;
          },
          0);
    }
    current_ = me;
  }

  task<void> unlock(thread_ctx& t) {
    s_mcs_node* me = current_;
    current_ = nullptr;
    std::uint64_t succ = co_await me->next.load(t);
    if (succ == 0) {
      auto r =
          co_await tail_.cas(t, reinterpret_cast<std::uintptr_t>(me), 0);
      if (r.ok) {
        release_node(me);
        co_return;
      }
      succ = co_await me->next.wait_until(
          t, [](std::uint64_t v, std::uint64_t) { return v != 0; }, 0);
    }
    co_await reinterpret_cast<s_mcs_node*>(succ)->state.store(
        t, mcs_detail::st_plain_granted);
    release_node(me);
  }

 private:
  // Node pool management is thread-local in the real lock and essentially
  // free; the simulator models only the node *line* traffic.
  s_mcs_node* acquire_node() {
    if (!free_.empty()) {
      s_mcs_node* n = free_.back();
      free_.pop_back();
      return n;
    }
    owned_.push_back(std::make_unique<s_mcs_node>(*eng_));
    return owned_.back().get();
  }
  void release_node(s_mcs_node* n) { free_.push_back(n); }

  engine* eng_;
  atom tail_;
  s_mcs_node* current_ = nullptr;
  std::vector<std::unique_ptr<s_mcs_node>> owned_;
  std::vector<s_mcs_node*> free_;
};

}  // namespace sim
