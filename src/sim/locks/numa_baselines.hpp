// Simulated prior NUMA-aware locks: HBO, HCLH and FC-MCS.
// Mirrors src/locks/{hbo,hclh,fcmcs}.hpp.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "sim/locks/locks.hpp"

namespace sim {

// ---- HBO (Radovic & Hagersten) ------------------------------------------------
//
// TATAS whose word holds the owner's cluster; waiters back off briefly when
// the holder is local and for much longer when it is remote.  Backing off
// means *not* holding a shared copy, so HBO avoids the invalidation storm --
// at the cost of the two hand-tuned backoff ranges the paper criticises.
class s_hbo_lock {
 public:
  struct params {
    tick local_min = 16, local_max = 512;
    tick remote_min = 512, remote_max = 32768;
  };

  struct context {
    explicit context(engine&) {}
  };

  static constexpr std::uint64_t free_word = ~std::uint64_t{0};

  explicit s_hbo_lock(engine& eng) : word_(eng, free_word) {}
  s_hbo_lock(engine& eng, params p) : word_(eng, free_word), p_(p) {}

  task<void> lock(thread_ctx& t) { co_await try_lock(t, tick_max); }

  task<bool> try_lock(thread_ctx& t, tick deadline_at) {
    tick local_w = p_.local_min, remote_w = p_.remote_min;
    for (;;) {
      std::uint64_t w = co_await word_.load(t);
      if (w == free_word) {
        auto r = co_await word_.cas(t, free_word, t.cluster);
        if (r.ok) co_return true;
        continue;
      }
      if (t.eng->now() >= deadline_at) co_return false;
      if (w == t.cluster) {
        co_await t.eng->delay(t.rng.next_range(local_w) + 1);
        local_w = local_w * 2 > p_.local_max ? p_.local_max : local_w * 2;
        remote_w = p_.remote_min;
      } else {
        co_await t.eng->delay(t.rng.next_range(remote_w) + 1);
        remote_w =
            remote_w * 2 > p_.remote_max ? p_.remote_max : remote_w * 2;
        local_w = p_.local_min;
      }
    }
  }

  task<void> unlock(thread_ctx& t) { co_await word_.store(t, free_word); }

 private:
  atom word_;
  params p_;
};

// The two tunings the paper's tables report ("HBO" was tuned for the
// microbenchmark; "HBO (tuned)" for memcached).
inline s_hbo_lock::params s_hbo_microbench_tuning() {
  return {.local_min = 16, .local_max = 512,
          .remote_min = 512, .remote_max = 32768};
}
inline s_hbo_lock::params s_hbo_memcached_tuning() {
  return {.local_min = 8, .local_max = 128,
          .remote_min = 64, .remote_max = 2048};
}

// ---- HCLH (Luchangco, Nussbaum & Shavit) ---------------------------------------
//
// See src/locks/hclh.hpp for the word layout and the reference-count scheme
// that guards node recycling (the same stale-read hazard exists in virtual
// time).
class s_hclh_lock {
  struct qnode {
    atom word;
    int refs = 0;  // bookkeeping only; not a modelled memory access
    explicit qnode(engine& eng) : word(eng, 0) {}
  };

  static constexpr std::uint64_t smw_bit = 1ull << 31;
  static constexpr std::uint64_t tws_bit = 1ull << 30;
  static constexpr std::uint64_t no_cluster = tws_bit - 1;

 public:
  struct context {
    explicit context(engine&) {}
    qnode* mine = nullptr;
    qnode* pred = nullptr;
  };

  explicit s_hclh_lock(engine& eng, unsigned clusters)
      : eng_(&eng), global_tail_(eng, 0) {
    for (unsigned c = 0; c < clusters; ++c)
      local_tails_.push_back(std::make_unique<atom>(eng, 0));
    qnode* dummy = alloc(no_cluster);
    global_tail_.poke(reinterpret_cast<std::uintptr_t>(dummy));
  }

  task<void> lock(thread_ctx& t, context& ctx) {
    qnode* me = alloc(smw_bit | t.cluster);
    ctx.mine = me;
    atom& local_tail = *local_tails_[t.cluster % local_tails_.size()];
    const std::uint64_t predw =
        co_await local_tail.exchange(t, reinterpret_cast<std::uintptr_t>(me));
    if (predw != 0) {
      auto* pred = reinterpret_cast<qnode*>(predw);
      bool granted = false;
      for (;;) {
        const std::uint64_t pw = co_await pred->word.load(t);
        if ((pw & tws_bit) != 0) break;  // we are the next cluster master
        if ((pw & smw_bit) == 0) {
          granted = true;
          break;
        }
        co_await pred->word.wait_until(
            t, [](std::uint64_t v, std::uint64_t old) { return v != old; },
            pw);
      }
      if (granted) {
        ctx.pred = pred;
        co_return;
      }
      unref(pred);
    }
    // Cluster master: brief combining delay, then splice the local queue
    // into the global queue.
    co_await t.eng->delay(combining_wait_ns);
    const std::uint64_t lastw = co_await local_tail.load(t);
    auto* local_last = reinterpret_cast<qnode*>(lastw);
    local_last->refs += 1;  // global queue's claim, before TWS is visible
    const std::uint64_t gpredw = co_await global_tail_.exchange(
        t, reinterpret_cast<std::uintptr_t>(local_last));
    // Mark the spliced tail.
    std::uint64_t w = co_await local_last->word.load(t);
    for (;;) {
      auto r = co_await local_last->word.cas(t, w, w | tws_bit);
      if (r.ok) break;
      w = r.old_value;
    }
    auto* gpred = reinterpret_cast<qnode*>(gpredw);
    co_await gpred->word.wait_until(
        t, [](std::uint64_t v, std::uint64_t) { return (v & smw_bit) == 0; },
        0);
    ctx.pred = gpred;
  }

  task<void> unlock(thread_ctx& t, context& ctx) {
    std::uint64_t w = co_await ctx.mine->word.load(t);
    for (;;) {
      auto r = co_await ctx.mine->word.cas(t, w, w & ~smw_bit);
      if (r.ok) break;
      w = r.old_value;
    }
    unref(ctx.pred);
    ctx.mine = nullptr;
    ctx.pred = nullptr;
  }

 private:
  qnode* alloc(std::uint64_t word_value) {
    qnode* n;
    if (!free_.empty()) {
      n = free_.back();
      free_.pop_back();
    } else {
      owned_.push_back(std::make_unique<qnode>(*eng_));
      n = owned_.back().get();
    }
    n->word.poke(word_value);
    n->refs = 1;
    return n;
  }
  void unref(qnode* n) {
    if (--n->refs == 0) free_.push_back(n);
  }

  static constexpr tick combining_wait_ns = 100;

  engine* eng_;
  std::vector<std::unique_ptr<atom>> local_tails_;
  atom global_tail_;
  std::vector<std::unique_ptr<qnode>> owned_;
  std::vector<qnode*> free_;
};

// ---- FC-MCS (Dice, Marathe & Shavit) -------------------------------------------
//
// Per-cluster publication stacks; an elected combiner threads an MCS chain
// through the posted requests and splices it into the global MCS queue with
// one swap.  Mirrors src/locks/fcmcs.hpp.
class s_fcmcs_lock {
  struct cluster_state {
    atom pub_head;
    atom combiner;
    // Adaptive combining window (plain metadata, only touched while holding
    // the combiner seat): grows while batches come up short of the target,
    // shrinks when they overshoot.  This mirrors the original's adaptive
    // combining epoch -- at saturation the queue wait dwarfs the window, so
    // waiting longer to form long same-cluster batches is free.
    tick window = 0;
    explicit cluster_state(engine& eng) : pub_head(eng, 0), combiner(eng, 0) {}
  };

 public:
  struct context {
    atom stack_next;
    atom assigned;
    explicit context(engine& eng) : stack_next(eng, 0), assigned(eng, 0) {}
  };

  explicit s_fcmcs_lock(engine& eng, unsigned clusters)
      : eng_(&eng), tail_(eng, 0), free_(clusters) {
    for (unsigned c = 0; c < clusters; ++c)
      state_.push_back(std::make_unique<cluster_state>(eng));
  }

  task<void> lock(thread_ctx& t, context& ctx) {
    cluster_state& cs = *state_[t.cluster % state_.size()];
    co_await ctx.assigned.store(t, 0);

    // Publish.
    std::uint64_t head = co_await cs.pub_head.load(t);
    for (;;) {
      co_await ctx.stack_next.store(t, head);
      auto r = co_await cs.pub_head.cas(
          t, head, reinterpret_cast<std::uintptr_t>(&ctx));
      if (r.ok) break;
      head = r.old_value;
    }

    // Wait for a combiner to thread us into the global queue; combine
    // ourselves when the combiner seat is free.
    for (;;) {
      const std::uint64_t assigned = co_await ctx.assigned.load(t);
      if (assigned != 0) break;
      auto c = co_await cs.combiner.cas(t, 0, 1);
      if (c.ok) {
        co_await combine(t, cs);
        co_await cs.combiner.store(t, 0);
        continue;
      }
      co_await ctx.assigned.wait_until_for(
          t, [](std::uint64_t v, std::uint64_t) { return v != 0; }, 0,
          t.eng->now() + recheck_ns);
    }

    auto* me = reinterpret_cast<s_mcs_node*>(
        co_await ctx.assigned.load(t));
    co_await me->state.wait_until(
        t,
        [](std::uint64_t v, std::uint64_t) {
          return v == mcs_detail::st_plain_granted;
        },
        0);
  }

  task<void> unlock(thread_ctx& t, context& ctx) {
    auto* me =
        reinterpret_cast<s_mcs_node*>(co_await ctx.assigned.load(t));
    std::uint64_t succ = co_await me->next.load(t);
    if (succ == 0) {
      auto r =
          co_await tail_.cas(t, reinterpret_cast<std::uintptr_t>(me), 0);
      if (r.ok) {
        free_[t.cluster % free_.size()].push_back(me);
        co_return;
      }
      succ = co_await me->next.wait_until(
          t, [](std::uint64_t v, std::uint64_t) { return v != 0; }, 0);
    }
    co_await reinterpret_cast<s_mcs_node*>(succ)->state.store(
        t, mcs_detail::st_plain_granted);
    free_[t.cluster % free_.size()].push_back(me);
  }

 private:
  task<void> combine(thread_ctx& t, cluster_state& cs) {
    if (cs.window > 0) co_await t.eng->delay(cs.window);
    const std::uint64_t lifo_head = co_await cs.pub_head.exchange(t, 0);
    if (lifo_head == 0) {
      cs.window /= 2;
      co_return;
    }

    // Reverse to arrival order.
    std::vector<context*> reqs;
    for (auto* r = reinterpret_cast<context*>(lifo_head); r != nullptr;) {
      reqs.push_back(r);
      const std::uint64_t nxt = co_await r->stack_next.load(t);
      r = reinterpret_cast<context*>(nxt);
    }
    std::vector<s_mcs_node*> nodes;
    nodes.reserve(reqs.size());

    // Build the chain in arrival order (reqs is currently LIFO).
    s_mcs_node* chain_head = nullptr;
    s_mcs_node* chain_tail = nullptr;
    for (std::size_t i = reqs.size(); i-- > 0;) {
      s_mcs_node* n = alloc_node(t.cluster);
      co_await n->next.store(t, 0);
      co_await n->state.store(t, mcs_detail::st_busy);
      if (chain_tail != nullptr)
        co_await chain_tail->next.store(t, reinterpret_cast<std::uintptr_t>(n));
      else
        chain_head = n;
      chain_tail = n;
      nodes.push_back(n);
    }

    const std::uint64_t predw = co_await tail_.exchange(
        t, reinterpret_cast<std::uintptr_t>(chain_tail));
    if (predw != 0)
      co_await reinterpret_cast<s_mcs_node*>(predw)->next.store(
          t, reinterpret_cast<std::uintptr_t>(chain_head));
    else
      co_await chain_head->state.store(t, mcs_detail::st_plain_granted);

    // Publish assignments: nodes[j] belongs to the j-th arrival, i.e. to
    // reqs[reqs.size()-1-j].
    for (std::size_t j = 0; j < nodes.size(); ++j) {
      context* r = reqs[reqs.size() - 1 - j];
      co_await r->assigned.store(t, reinterpret_cast<std::uintptr_t>(nodes[j]));
    }

    // Adapt the combining window towards the batch-size target.  Only grow
    // on evidence of contention (batches of >= 2): without it an idle lock
    // would ratchet the window up and penalise the uncontended path.
    if (reqs.size() == 1)
      cs.window /= 2;
    else if (reqs.size() < batch_target / 2)
      cs.window = cs.window * 2 + 200 > window_max_ns ? window_max_ns
                                                      : cs.window * 2 + 200;
    else if (reqs.size() > batch_target)
      cs.window = cs.window * 3 / 4;
  }

  // Per-cluster node pools, as in the real lock: nodes recycle within a
  // cluster so the combiner's chain-building stores stay local.
  s_mcs_node* alloc_node(unsigned cluster) {
    auto& free = free_[cluster % free_.size()];
    if (!free.empty()) {
      s_mcs_node* n = free.back();
      free.pop_back();
      return n;
    }
    owned_.push_back(std::make_unique<s_mcs_node>(*eng_));
    return owned_.back().get();
  }

  static constexpr tick recheck_ns = 400;
  static constexpr std::size_t batch_target = 10;
  static constexpr tick window_max_ns = 8'000;

  engine* eng_;
  std::vector<std::unique_ptr<cluster_state>> state_;
  atom tail_;
  std::vector<std::unique_ptr<s_mcs_node>> owned_;
  std::vector<std::vector<s_mcs_node*>> free_;
};

}  // namespace sim
