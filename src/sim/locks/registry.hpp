// Name-based dispatch over the simulated lock types, shared by the three
// simulated workloads (lbench, kvsim, mallocsim).  Lock names follow the
// paper's figures and tables.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/locks/blocking.hpp"
#include "sim/locks/clh.hpp"
#include "sim/locks/cohort.hpp"
#include "sim/locks/locks.hpp"
#include "sim/locks/numa_baselines.hpp"

namespace sim {

struct lock_params {
  unsigned clusters = 4;
  std::uint64_t pass_limit = 64;  // cohort may-pass-local bound (§3.7)
};

// Uniform lock/unlock shims: some simulated locks are context-free.
template <typename Lock, typename Ctx>
task<void> do_lock(Lock& l, thread_ctx& t, Ctx& c) {
  if constexpr (requires { l.lock(t, c); })
    co_await l.lock(t, c);
  else
    co_await l.lock(t);
}

template <typename Lock, typename Ctx>
task<void> do_unlock(Lock& l, thread_ctx& t, Ctx& c) {
  if constexpr (requires { l.unlock(t, c); })
    co_await l.unlock(t, c);
  else
    co_await l.unlock(t);
}

// try-lock shim for the abortable locks (A-CLH, A-HBO, A-C-BO-*).
template <typename Lock, typename Ctx>
task<bool> do_try_lock(Lock& l, thread_ctx& t, Ctx& c, tick deadline_at) {
  if constexpr (requires { l.try_lock(t, c, deadline_at); })
    co_return co_await l.try_lock(t, c, deadline_at);
  else
    co_return co_await l.try_lock(t, deadline_at);
}

// Average cohort batch length when the lock exposes cohort stats; 0 else.
template <typename Lock>
double avg_batch_of(const Lock& l) {
  if constexpr (requires { l.stats(); }) {
    const auto s = l.stats();
    return s.global_acquires == 0
               ? 0.0
               : static_cast<double>(s.acquisitions) /
                     static_cast<double>(s.global_acquires);
  } else {
    return 0.0;
  }
}

// Invokes fn with a factory `engine& -> std::unique_ptr<LockType>` for the
// named lock.  Returns false for unknown names.  fn must be a generic
// callable (it is instantiated once per lock type).
template <typename Fn>
bool with_lock_type(const std::string& name, const lock_params& lp, Fn&& fn) {
  const unsigned k = lp.clusters;
  const std::uint64_t pl = lp.pass_limit;
  if (name == "MCS") {
    fn([](engine& e) { return std::make_unique<s_mcs_lock>(e); });
  } else if (name == "BO") {
    fn([](engine& e) {
      return std::make_unique<s_bo_lock<exp_backoff_policy>>(e);
    });
  } else if (name == "Fib-BO") {
    fn([](engine& e) {
      return std::make_unique<s_bo_lock<fib_backoff_policy>>(e);
    });
  } else if (name == "pthread") {
    fn([](engine& e) { return std::make_unique<s_blocking_lock>(e); });
  } else if (name == "HBO") {
    fn([](engine& e) {
      return std::make_unique<s_hbo_lock>(e, s_hbo_microbench_tuning());
    });
  } else if (name == "HBO-tuned") {
    fn([](engine& e) {
      return std::make_unique<s_hbo_lock>(e, s_hbo_memcached_tuning());
    });
  } else if (name == "HCLH") {
    fn([k](engine& e) { return std::make_unique<s_hclh_lock>(e, k); });
  } else if (name == "FC-MCS") {
    fn([k](engine& e) { return std::make_unique<s_fcmcs_lock>(e, k); });
  } else if (name == "C-BO-BO") {
    fn([k, pl](engine& e) {
      return std::make_unique<s_c_bo_bo_lock>(e, k, pl);
    });
  } else if (name == "C-TKT-TKT") {
    fn([k, pl](engine& e) {
      return std::make_unique<s_c_tkt_tkt_lock>(e, k, pl);
    });
  } else if (name == "C-BO-MCS") {
    fn([k, pl](engine& e) {
      return std::make_unique<s_c_bo_mcs_lock>(e, k, pl);
    });
  } else if (name == "C-TKT-MCS") {
    fn([k, pl](engine& e) {
      return std::make_unique<s_c_tkt_mcs_lock>(e, k, pl);
    });
  } else if (name == "C-MCS-MCS") {
    fn([k, pl](engine& e) {
      return std::make_unique<s_c_mcs_mcs_lock>(e, k, pl);
    });
  } else {
    return false;
  }
  return true;
}

// Abortable locks (Figure 6).
template <typename Fn>
bool with_abortable_lock_type(const std::string& name, const lock_params& lp,
                              Fn&& fn) {
  const unsigned k = lp.clusters;
  const std::uint64_t pl = lp.pass_limit;
  if (name == "A-CLH") {
    fn([](engine& e) { return std::make_unique<s_aclh_lock>(e); });
  } else if (name == "A-HBO") {
    fn([](engine& e) {
      return std::make_unique<s_hbo_lock>(e, s_hbo_microbench_tuning());
    });
  } else if (name == "A-C-BO-BO") {
    fn([k, pl](engine& e) {
      return std::make_unique<s_a_c_bo_bo_lock>(e, k, pl);
    });
  } else if (name == "A-C-BO-CLH") {
    fn([k, pl](engine& e) {
      return std::make_unique<s_a_c_bo_clh_lock>(e, k, pl);
    });
  } else {
    return false;
  }
  return true;
}

// Canonical name lists in the order the paper's figures plot them.
const std::vector<std::string>& fig2_lock_names();
const std::vector<std::string>& fig6_lock_names();
const std::vector<std::string>& table1_lock_names();
const std::vector<std::string>& table2_lock_names();

}  // namespace sim
