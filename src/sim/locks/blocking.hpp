// Simulated blocking (pthread-style) mutex: spin briefly, then park in the
// kernel.  Parking and waking carry the syscall/context-switch costs from
// sim::config, which is what makes pthread locks fall behind spin locks
// under contention in Tables 1 and 2.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>

#include "sim/locks/locks.hpp"

namespace sim {

class s_blocking_lock {
 public:
  struct context {
    explicit context(engine&) {}
  };

  explicit s_blocking_lock(engine& eng) : eng_(&eng), word_(eng, 0) {}

  task<void> lock(thread_ctx& t) {
    // Fast path (uncontended futex).
    auto r = co_await word_.cas(t, 0, 1);
    if (r.ok) co_return;
    // Adaptive phase (Solaris adaptive mutexes, glibc spin-then-park): poll
    // briefly while the holder is presumably running before paying the
    // park/wake syscalls.
    tick spin_budget = adaptive_spin_ns;
    while (spin_budget > 0) {
      const tick step = 200 + t.rng.next_range(200);
      co_await t.eng->delay(step);
      spin_budget = spin_budget > step ? spin_budget - step : 0;
      const std::uint64_t v = co_await word_.load(t);
      if (v == 0) {
        auto r2 = co_await word_.cas(t, 0, 1);
        if (r2.ok) co_return;
      }
    }
    for (;;) {
      // Mark contended and check whether the lock was freed meanwhile.
      const std::uint64_t w = co_await word_.exchange(t, 2);
      if (w == 0) co_return;
      // Park: syscall + sleep until a releaser hands us a wakeup.
      co_await t.eng->delay(t.eng->cfg().park_cost);
      co_await park_awaiter{this};
      co_await t.eng->delay(t.eng->cfg().wakeup_latency);
    }
  }

  task<void> unlock(thread_ctx& t) {
    const std::uint64_t w = co_await word_.exchange(t, 0);
    if (w == 2) {
      // Contended: wake one sleeper (releaser pays the futex-wake cost).
      co_await t.eng->delay(t.eng->cfg().unpark_cost);
      unpark_one();
    }
  }

 private:
  struct park_awaiter {
    s_blocking_lock* lk;
    bool await_ready() const noexcept {
      // A wakeup may have been issued before we got to sleep (the classic
      // lost-wakeup window); consume it instead of parking.
      if (lk->pending_wakeups_ > 0) {
        --lk->pending_wakeups_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) const {
      lk->parked_.push_back(h);
    }
    void await_resume() const noexcept {}
  };

  static constexpr tick adaptive_spin_ns = 4000;

  void unpark_one() {
    if (!parked_.empty()) {
      std::coroutine_handle<> h = parked_.front();
      parked_.pop_front();
      eng_->schedule_resume(eng_->now(), h);
    } else {
      ++pending_wakeups_;
    }
  }

  engine* eng_;
  atom word_;
  std::deque<std::coroutine_handle<>> parked_;
  std::uint64_t pending_wakeups_ = 0;
};

}  // namespace sim
