// Simulated lock-cohorting transformation (mirrors cohort/cohort_lock.hpp
// and cohort/abortable.hpp) plus the named instantiations used by the
// benchmark harness.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "sim/locks/blocking.hpp"
#include "sim/locks/clh.hpp"
#include "sim/locks/locks.hpp"

namespace sim {

struct s_cohort_stats {
  std::uint64_t acquisitions = 0;
  std::uint64_t global_acquires = 0;
  std::uint64_t local_handoffs = 0;
  std::uint64_t handoff_failures = 0;
};

template <typename G, typename L>
class s_cohort_lock {
 public:
  struct context {
    typename L::context local;
    unsigned cluster = 0;
    release_kind acquired{};
    explicit context(engine& eng) : local(eng) {}
  };

  s_cohort_lock(engine& eng, unsigned clusters, std::uint64_t pass_limit = 64)
      : pass_limit_(pass_limit), global_(eng) {
    for (unsigned c = 0; c < clusters; ++c)
      locals_.push_back(std::make_unique<slot>(eng));
  }

  task<void> lock(thread_ctx& t, context& ctx) {
    ctx.cluster = t.cluster % locals_.size();
    slot& s = *locals_[ctx.cluster];
    ctx.acquired = co_await s.lock.lock(t, ctx.local);
    if (ctx.acquired == release_kind::global) {
      co_await global_.lock(t);
      s.batch = 0;
      ++s.stats.global_acquires;
    }
    ++s.stats.acquisitions;
  }

  task<void> unlock(thread_ctx& t, context& ctx) {
    slot& s = *locals_[ctx.cluster];
    if (s.batch < pass_limit_) {
      const bool alone = co_await s.lock.alone(t, ctx.local);
      if (!alone) {
        ++s.batch;
        if (co_await s.lock.release_local(t, ctx.local)) {
          ++s.stats.local_handoffs;
          co_return;
        }
        ++s.stats.handoff_failures;
        co_await global_.unlock(t);
        co_return;
      }
    }
    co_await global_.unlock(t);
    co_await s.lock.release_global(t, ctx.local);
  }

  s_cohort_stats stats() const {
    s_cohort_stats total;
    for (const auto& s : locals_) {
      total.acquisitions += s->stats.acquisitions;
      total.global_acquires += s->stats.global_acquires;
      total.local_handoffs += s->stats.local_handoffs;
      total.handoff_failures += s->stats.handoff_failures;
    }
    return total;
  }

 private:
  struct slot {
    L lock;
    std::uint64_t batch = 0;
    s_cohort_stats stats;
    explicit slot(engine& eng) : lock(eng) {}
  };

  std::uint64_t pass_limit_;
  G global_;
  std::vector<std::unique_ptr<slot>> locals_;
};

template <typename G, typename L>
class s_abortable_cohort_lock {
 public:
  struct context {
    typename L::context local;
    unsigned cluster = 0;
    release_kind acquired{};
    explicit context(engine& eng) : local(eng) {}
  };

  s_abortable_cohort_lock(engine& eng, unsigned clusters,
                          std::uint64_t pass_limit = 64)
      : pass_limit_(pass_limit), global_(eng) {
    for (unsigned c = 0; c < clusters; ++c)
      locals_.push_back(std::make_unique<slot>(eng));
  }

  task<bool> try_lock(thread_ctx& t, context& ctx, tick deadline_at) {
    ctx.cluster = t.cluster % locals_.size();
    slot& s = *locals_[ctx.cluster];
    auto r = co_await s.lock.try_lock(t, ctx.local, deadline_at);
    if (!r.has_value()) co_return false;
    ctx.acquired = *r;
    if (*r == release_kind::global) {
      if (!co_await global_.try_lock(t, deadline_at)) {
        co_await s.lock.release_global(t, ctx.local);
        co_return false;
      }
      s.batch = 0;
      ++s.stats.global_acquires;
    }
    ++s.stats.acquisitions;
    co_return true;
  }

  task<void> lock(thread_ctx& t, context& ctx) {
    co_await try_lock(t, ctx, tick_max);
  }

  task<void> unlock(thread_ctx& t, context& ctx) {
    slot& s = *locals_[ctx.cluster];
    if (s.batch < pass_limit_) {
      const bool alone = co_await s.lock.alone(t, ctx.local);
      if (!alone) {
        ++s.batch;
        if (co_await s.lock.release_local(t, ctx.local)) {
          ++s.stats.local_handoffs;
          co_return;
        }
        ++s.stats.handoff_failures;
        co_await global_.unlock(t);
        co_return;
      }
    }
    co_await global_.unlock(t);
    co_await s.lock.release_global(t, ctx.local);
  }

  s_cohort_stats stats() const {
    s_cohort_stats total;
    for (const auto& s : locals_) {
      total.acquisitions += s->stats.acquisitions;
      total.global_acquires += s->stats.global_acquires;
      total.local_handoffs += s->stats.local_handoffs;
      total.handoff_failures += s->stats.handoff_failures;
    }
    return total;
  }

 private:
  struct slot {
    L lock;
    std::uint64_t batch = 0;
    s_cohort_stats stats;
    explicit slot(engine& eng) : lock(eng) {}
  };

  std::uint64_t pass_limit_;
  G global_;
  std::vector<std::unique_ptr<slot>> locals_;
};

// ---- named instantiations (paper §3) -----------------------------------------

using s_c_bo_bo_lock =
    s_cohort_lock<s_bo_lock<no_backoff_policy>, s_cohort_bo_lock<false>>;
using s_c_tkt_tkt_lock = s_cohort_lock<s_ticket_lock, s_cohort_ticket_lock>;
using s_c_bo_mcs_lock =
    s_cohort_lock<s_bo_lock<no_backoff_policy>, s_cohort_mcs_lock>;
using s_c_tkt_mcs_lock = s_cohort_lock<s_ticket_lock, s_cohort_mcs_lock>;
using s_c_mcs_mcs_lock = s_cohort_lock<s_oblivious_mcs_lock, s_cohort_mcs_lock>;

using s_a_c_bo_bo_lock =
    s_abortable_cohort_lock<s_bo_lock<no_backoff_policy>,
                            s_cohort_bo_lock<true>>;
using s_a_c_bo_clh_lock =
    s_abortable_cohort_lock<s_bo_lock<no_backoff_policy>, s_cohort_aclh_lock>;

}  // namespace sim
