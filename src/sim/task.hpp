// Minimal coroutine task type for simulated threads.
//
// Simulated hardware threads are coroutines: a memory access or delay
// suspends the coroutine and registers a wake-up event in the discrete-event
// engine.  task<T> supports nesting with symmetric transfer, so lock
// algorithms compose exactly like ordinary functions:
//
//   sim::task<release_kind> lock(thread_ctx& t) { co_await word_.cas(...); }
//   ...
//   auto k = co_await local_.lock(t);
//
// Tasks are lazy (started when awaited); top-level tasks are started by the
// engine.  Simulator code never throws across coroutine boundaries, so
// unhandled_exception terminates.
#pragma once

#include <coroutine>
#include <cstdlib>
#include <utility>

namespace sim {

namespace detail {

struct final_awaiter {
  bool await_ready() const noexcept { return false; }
  template <typename Promise>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    // Resume whoever co_awaited us; top-level tasks have no continuation.
    auto cont = h.promise().continuation;
    return cont ? cont : std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

struct promise_common {
  std::coroutine_handle<> continuation = nullptr;
  std::suspend_always initial_suspend() const noexcept { return {}; }
  final_awaiter final_suspend() const noexcept { return {}; }
  void unhandled_exception() noexcept { std::abort(); }
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] task {
 public:
  struct promise_type : detail::promise_common {
    T value{};
    task get_return_object() {
      return task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_value(T v) noexcept { value = std::move(v); }
  };

  task() = default;
  task(task&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  task& operator=(task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  task(const task&) = delete;
  task& operator=(const task&) = delete;
  ~task() { destroy(); }

  // Awaiting a task starts it (symmetric transfer).
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) {
    h_.promise().continuation = awaiting;
    return h_;
  }
  T await_resume() { return std::move(h_.promise().value); }

  std::coroutine_handle<> handle() const noexcept { return h_; }

 private:
  explicit task(std::coroutine_handle<promise_type> h) : h_(h) {}
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> h_ = nullptr;
};

template <>
class [[nodiscard]] task<void> {
 public:
  struct promise_type : detail::promise_common {
    task get_return_object() {
      return task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() const noexcept {}
  };

  task() = default;
  task(task&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  task& operator=(task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  task(const task&) = delete;
  task& operator=(const task&) = delete;
  ~task() { destroy(); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) {
    h_.promise().continuation = awaiting;
    return h_;
  }
  void await_resume() const noexcept {}

  std::coroutine_handle<> handle() const noexcept { return h_; }

 private:
  explicit task(std::coroutine_handle<promise_type> h) : h_(h) {}
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> h_ = nullptr;
};

}  // namespace sim
