#include "sim/engine.hpp"

#include "sim/memory.hpp"

namespace sim {

engine::engine(config cfg) : cfg_(cfg) {}

engine::~engine() {
  // Drop pending events first; destroying tasks tears down coroutine frames
  // (and, transitively, nested frames), so no handle may be touched after.
  while (!queue_.empty()) queue_.pop();
  tasks_.clear();
}

thread_ctx& engine::add_thread(unsigned cluster) {
  thread_ctx& t = threads_.emplace_back();
  t.id = static_cast<unsigned>(threads_.size() - 1);
  t.cluster = cluster % cfg_.clusters;
  t.eng = this;
  // Independent, reproducible stream per thread.
  t.rng = cohort::xorshift{0xc0401e5ULL * (t.id + 1) + 0x9e3779b97f4a7c15ULL};
  return t;
}

void engine::spawn(task<void> t) {
  schedule_resume(now_, t.handle());
  tasks_.push_back(std::move(t));
}

void engine::run(tick hard_stop) {
  while (!queue_.empty()) {
    const event e = queue_.top();
    if (e.at > hard_stop) break;
    queue_.pop();
    now_ = e.at;
    if (e.thread != nullptr) {
      dispatch_thread_event(e);
    } else {
      e.resume.resume();
    }
  }
}

void engine::schedule_resume(tick at, std::coroutine_handle<> h) {
  queue_.push(event{at, seq_++, h, nullptr, 0, thread_event_kind::wake});
}

void engine::schedule_thread_event(tick at, thread_ctx* t, std::uint64_t epoch,
                                   thread_event_kind kind) {
  queue_.push(event{at, seq_++, nullptr, t, epoch, kind});
}

void engine::dispatch_thread_event(const event& e) {
  thread_ctx* t = e.thread;
  // Stale wake or timeout (the wait it targeted already ended).
  if (t->wait_epoch != e.epoch || t->current_wait == nullptr) return;
  auto* w = static_cast<atom::wait_awaiter*>(t->current_wait);
  t->current_wait = nullptr;
  ++t->wait_epoch;
  w->timed_out = (e.kind == thread_event_kind::timeout);
  w->handle.resume();
}

tick engine::interconnect_transfer_n(tick at, unsigned n) {
  if (n == 0) n = 1;
  const tick start = at > ic_busy_until_ ? at : ic_busy_until_;
  const tick occupancy = cfg_.interconnect_service * n;
  ic_busy_until_ = start + occupancy;
  ic_total_busy_ += occupancy;
  // Latency = queueing (start - at) + wire time; the service occupancy
  // models channel capacity, not per-transfer latency, so an uncontended
  // remote access costs just remote_wire.
  return start + cfg_.remote_wire;
}

}  // namespace sim
