// Simulated libc-malloc stress test (Table 2 substitute; see DESIGN.md §2).
//
// The Solaris default allocator serialises malloc/free with one lock over a
// splay tree of free blocks; a freed block is splayed to the root, so the
// most recently freed block is handed out first (LIFO recycling).  The
// benchmark (mmicro) has each thread repeatedly allocate a 64-byte block,
// write its first words, free it, with an artificial delay after each call.
//
// The model keeps exactly the traffic that differentiates locks:
//   * the critical sections write the tree root line, a few splay-path node
//     lines and the block header;
//   * the application writes the block's data line *outside* the lock;
//   * LIFO recycling means that under a cohort lock blocks circulate within
//     the cluster that currently owns the lock, so header/data lines stay
//     local -- the mechanism behind Table 2's ~6x vs ~2x split.
#pragma once

#include <cstdint>
#include <string>

#include "sim/engine.hpp"

namespace sim {

struct malloc_params {
  unsigned threads = 8;
  unsigned clusters = 4;
  tick warmup_ns = 400'000;
  tick duration_ns = 8'000'000;
  tick delay_ns = 2'000;       // after each of malloc and free (~4 us total)
  tick cs_base_ns = 220;       // tree manipulation compute per call
  unsigned path_nodes = 3;     // splay-path lines written per tree operation
  unsigned live_blocks = 256;  // block pool (free stack depth)
  std::uint64_t pass_limit = 64;
  config machine{};
};

struct malloc_result {
  double pairs_per_ms = 0;  // Table 2's metric: malloc-free pairs per ms
  double l2_misses_per_pair = 0;
  std::uint64_t total_pairs = 0;
};

malloc_result run_malloc(const std::string& lock_name,
                         const malloc_params& p);

}  // namespace sim
