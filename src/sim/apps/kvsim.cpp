#include "sim/apps/kvsim.hpp"

#include <memory>

#include "sim/locks/registry.hpp"
#include "sim/memory.hpp"

namespace sim {

namespace {

struct kv_table {
  std::vector<std::unique_ptr<dataline>> hot;      // LRU head, stats, slab
  std::vector<std::unique_ptr<dataline>> buckets;
  std::vector<std::unique_ptr<dataline>> items;
};

template <typename Lock>
task<void> kv_worker(thread_ctx& t, Lock& lock, kv_table& tab,
                     const kv_params& p, tick end_at) {
  typename Lock::context ctx(*t.eng);
  const tick measure_from = p.warmup_ns;
  while (t.eng->now() < end_at) {
    // Request handling outside the lock.
    co_await t.eng->delay(p.noncrit_ns / 2 +
                          t.rng.next_range(p.noncrit_ns) / 2 + 1);
    const bool is_get = t.rng.next_double() < p.get_ratio;
    const std::size_t b = t.rng.next_range(tab.buckets.size());
    const std::size_t it = t.rng.next_range(tab.items.size());

    co_await do_lock(lock, t, ctx);
    co_await t.eng->delay(p.cs_base_ns / 2);
    if (is_get) {
      co_await tab.buckets[b]->read(t);
      co_await tab.items[it]->read(t);
      co_await tab.hot[0]->read(t);  // stats
      if (t.rng.next_double() < p.get_lru_bump_ratio)
        co_await tab.hot[1]->write(t);  // lazy LRU reposition
    } else {
      co_await tab.buckets[b]->read(t);
      co_await tab.items[it]->write(t);
      co_await tab.hot[1]->write(t);  // LRU head
      co_await tab.hot[2]->write(t);  // stats counters
      co_await tab.hot[3]->write(t);  // slab free list
    }
    co_await t.eng->delay(p.cs_base_ns / 2);
    co_await do_unlock(lock, t, ctx);

    const tick now = t.eng->now();
    if (now >= measure_from && now < end_at) ++t.ops;
  }
}

struct snapshot {
  std::uint64_t misses = 0;
};

task<void> kv_monitor(engine& eng, const kv_params& p, snapshot& begin,
                      snapshot& end) {
  co_await eng.delay(p.warmup_ns);
  begin = {eng.memstats.coherence_misses};
  co_await eng.delay(p.duration_ns);
  end = {eng.memstats.coherence_misses};
}

template <typename Lock, typename Factory>
kv_result run_impl(const kv_params& p, Factory&& make) {
  engine eng(p.machine);
  auto lock = make(eng);

  kv_table tab;
  for (int i = 0; i < 4; ++i)
    tab.hot.push_back(std::make_unique<dataline>(eng));
  for (unsigned i = 0; i < p.buckets; ++i)
    tab.buckets.push_back(std::make_unique<dataline>(eng));
  for (unsigned i = 0; i < p.items; ++i)
    tab.items.push_back(std::make_unique<dataline>(eng));

  const tick end_at = p.warmup_ns + p.duration_ns;
  for (unsigned i = 0; i < p.threads; ++i) {
    thread_ctx& t = eng.add_thread(i % p.clusters);
    eng.spawn(kv_worker<Lock>(t, *lock, tab, p, end_at));
  }
  snapshot begin{}, end{};
  eng.spawn(kv_monitor(eng, p, begin, end));
  eng.run(end_at + 100'000'000);

  kv_result r;
  for (std::size_t i = 0; i < eng.threads(); ++i)
    r.total_ops += eng.thread(i).ops;
  r.ops_per_sec =
      static_cast<double>(r.total_ops) / (static_cast<double>(p.duration_ns) * 1e-9);
  if (r.total_ops > 0)
    r.l2_misses_per_op = static_cast<double>(end.misses - begin.misses) /
                         static_cast<double>(r.total_ops);
  return r;
}

}  // namespace

kv_result run_kv(const std::string& lock_name, const kv_params& p) {
  kv_result result;
  result.ops_per_sec = -1;
  lock_params lp{p.clusters, p.pass_limit};
  const bool known = with_lock_type(lock_name, lp, [&](auto factory) {
    using lock_t =
        typename decltype(factory(std::declval<engine&>()))::element_type;
    result = run_impl<lock_t>(p, factory);
  });
  if (!known) result.ops_per_sec = -1;
  return result;
}

}  // namespace sim
