// LBench: the paper's microbenchmark (§4.1), run on the simulated machine.
//
// Each thread loops: acquire the central lock, write 4 counters on each of 2
// distinct cache blocks, release, then spin idly for ~4 us.  The harness
// reports the quantities behind Figures 2-6: aggregate throughput, L2
// coherence misses per critical section, per-thread throughput deviation,
// lock migrations, and (for the abortable runs) the abort rate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace sim {

struct lbench_params {
  unsigned threads = 4;
  unsigned clusters = 4;
  tick warmup_ns = 200'000;
  tick duration_ns = 3'000'000;   // measured window of virtual time
  tick ncs_ns = 4'000;            // non-critical idle spin (paper: ~4 us)
  unsigned cs_lines = 2;          // distinct cache blocks in the CS
  unsigned writes_per_line = 4;   // counter increments per block
  std::uint64_t pass_limit = 64;  // cohort may-pass-local bound
  tick patience_ns = 400'000;     // abortable runs: patience before abort
  config machine{};
};

struct lbench_result {
  double throughput_per_sec = 0;   // critical+non-critical pairs per second
  double l2_misses_per_cs = 0;     // Figure 3's metric
  double stddev_pct = 0;           // Figure 5's metric
  double migrations_per_cs = 0;    // cross-cluster lock handoffs per CS
  double abort_rate = 0;           // aborts / attempts (abortable runs)
  double avg_batch = 0;            // cohort locks: acquisitions per global
  std::uint64_t total_ops = 0;
  std::vector<std::uint64_t> per_thread_ops;
};

// Runs LBench under the named lock (registry.hpp names).  Aborts on unknown
// names are reported by returning total_ops == 0 and throughput == -1.
lbench_result run_lbench(const std::string& lock_name,
                         const lbench_params& p);

// Abortable variant (Figure 6): acquisition uses try_lock with patience;
// timed-out attempts count as aborts and are retried after the non-critical
// work.
lbench_result run_lbench_abortable(const std::string& lock_name,
                                   const lbench_params& p);

}  // namespace sim
