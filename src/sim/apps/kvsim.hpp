// Simulated memcached (Table 1 substitute; see DESIGN.md §2).
//
// memcached 1.4 guards its entire hash table + LRU with one pthread mutex
// (the "cache lock").  The model reproduces the structure that matters for
// lock comparison:
//   * every operation does fixed non-critical work (request parsing etc.),
//   * gets execute a read-mostly critical section (hash bucket + item +
//     stats reads; occasional lazy LRU bump) -- reads leave lines Shared in
//     every cluster, so gets barely care which lock is used;
//   * sets write the item, the LRU head, the stats and the slab free-list
//     lines -- writes invalidate, so under write-heavy mixes the lock's
//     locality decides throughput (Table 1c's >= 20% NUMA-aware win).
// Speedups are reported relative to pthread at 1 thread, as in the paper.
#pragma once

#include <cstdint>
#include <string>

#include "sim/engine.hpp"

namespace sim {

struct kv_params {
  unsigned threads = 8;
  unsigned clusters = 4;
  double get_ratio = 0.9;        // 0.9 / 0.5 / 0.1 for Table 1 a/b/c
  tick warmup_ns = 400'000;
  tick duration_ns = 8'000'000;
  tick noncrit_ns = 8'000;       // request parsing / network handling
  tick cs_base_ns = 2'200;       // hash+LRU compute under the lock
  double get_lru_bump_ratio = 0.1;  // fraction of gets that write the LRU
  unsigned buckets = 64;         // modelled bucket lines
  unsigned items = 64;           // modelled item lines
  std::uint64_t pass_limit = 64;
  config machine{};
};

struct kv_result {
  double ops_per_sec = 0;
  double l2_misses_per_op = 0;
  std::uint64_t total_ops = 0;
};

// Runs the key-value workload under the named lock (registry.hpp names,
// Table 1 set).  Unknown name => ops_per_sec < 0.
kv_result run_kv(const std::string& lock_name, const kv_params& p);

}  // namespace sim
