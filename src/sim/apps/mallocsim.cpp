#include "sim/apps/mallocsim.hpp"

#include <memory>
#include <vector>

#include "sim/locks/registry.hpp"
#include "sim/memory.hpp"

namespace sim {

namespace {

// Shared allocator state; mutated only inside the benchmarked lock's
// critical section.
struct arena_state {
  std::unique_ptr<dataline> root;                       // splay-tree root
  std::vector<std::unique_ptr<dataline>> path;          // hot splay path
  std::vector<std::unique_ptr<dataline>> block_header;  // per-block header
  std::vector<std::unique_ptr<dataline>> block_data;    // per-block payload
  std::vector<std::uint32_t> free_stack;                // LIFO recycling
};

template <typename Lock>
task<void> malloc_worker(thread_ctx& t, Lock& lock, arena_state& st,
                         const malloc_params& p, tick end_at) {
  typename Lock::context ctx(*t.eng);
  const tick measure_from = p.warmup_ns;
  while (t.eng->now() < end_at) {
    // ---- malloc ---------------------------------------------------------
    co_await do_lock(lock, t, ctx);
    co_await t.eng->delay(p.cs_base_ns);
    co_await st.root->write(t);  // delete from the tree root
    for (unsigned i = 0; i < p.path_nodes; ++i)
      co_await st.path[i]->write(t);
    std::uint32_t blk = 0;
    if (!st.free_stack.empty()) {
      blk = st.free_stack.back();
      st.free_stack.pop_back();
    }
    co_await st.block_header[blk]->write(t);
    co_await do_unlock(lock, t, ctx);

    // Application initialises the block (first 4 words) outside the lock.
    co_await st.block_data[blk]->write(t);
    co_await t.eng->delay(p.delay_ns / 2 + t.rng.next_range(p.delay_ns) + 1);

    // ---- free -----------------------------------------------------------
    co_await do_lock(lock, t, ctx);
    co_await t.eng->delay(p.cs_base_ns);
    co_await st.root->write(t);  // freed node splays to the root
    for (unsigned i = 0; i < p.path_nodes; ++i)
      co_await st.path[i]->write(t);
    co_await st.block_header[blk]->write(t);
    st.free_stack.push_back(blk);
    co_await do_unlock(lock, t, ctx);

    co_await t.eng->delay(p.delay_ns / 2 + t.rng.next_range(p.delay_ns) + 1);

    const tick now = t.eng->now();
    if (now >= measure_from && now < end_at) ++t.ops;
  }
}

struct snapshot {
  std::uint64_t misses = 0;
};

task<void> malloc_monitor(engine& eng, const malloc_params& p,
                          snapshot& begin, snapshot& end) {
  co_await eng.delay(p.warmup_ns);
  begin = {eng.memstats.coherence_misses};
  co_await eng.delay(p.duration_ns);
  end = {eng.memstats.coherence_misses};
}

template <typename Lock, typename Factory>
malloc_result run_impl(const malloc_params& p, Factory&& make) {
  engine eng(p.machine);
  auto lock = make(eng);

  arena_state st;
  st.root = std::make_unique<dataline>(eng);
  for (unsigned i = 0; i < p.path_nodes; ++i)
    st.path.push_back(std::make_unique<dataline>(eng));
  for (unsigned i = 0; i < p.live_blocks; ++i) {
    st.block_header.push_back(std::make_unique<dataline>(eng));
    st.block_data.push_back(std::make_unique<dataline>(eng));
    st.free_stack.push_back(p.live_blocks - 1 - i);
  }

  const tick end_at = p.warmup_ns + p.duration_ns;
  for (unsigned i = 0; i < p.threads; ++i) {
    thread_ctx& t = eng.add_thread(i % p.clusters);
    eng.spawn(malloc_worker<Lock>(t, *lock, st, p, end_at));
  }
  snapshot begin{}, end{};
  eng.spawn(malloc_monitor(eng, p, begin, end));
  eng.run(end_at + 100'000'000);

  malloc_result r;
  for (std::size_t i = 0; i < eng.threads(); ++i)
    r.total_pairs += eng.thread(i).ops;
  r.pairs_per_ms =
      static_cast<double>(r.total_pairs) / (static_cast<double>(p.duration_ns) * 1e-6);
  if (r.total_pairs > 0)
    r.l2_misses_per_pair = static_cast<double>(end.misses - begin.misses) /
                           static_cast<double>(r.total_pairs);
  return r;
}

}  // namespace

malloc_result run_malloc(const std::string& lock_name,
                         const malloc_params& p) {
  malloc_result result;
  result.pairs_per_ms = -1;
  lock_params lp{p.clusters, p.pass_limit};
  const bool known = with_lock_type(lock_name, lp, [&](auto factory) {
    using lock_t =
        typename decltype(factory(std::declval<engine&>()))::element_type;
    result = run_impl<lock_t>(p, factory);
  });
  if (!known) result.pairs_per_ms = -1;
  return result;
}

}  // namespace sim
