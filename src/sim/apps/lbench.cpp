#include "sim/apps/lbench.hpp"

#include <memory>

#include "sim/locks/registry.hpp"
#include "sim/memory.hpp"
#include "util/stats.hpp"

namespace sim {

namespace {

// Shared state the workload tracks across threads.  Fields mutated inside
// the critical section are protected by the benchmarked lock itself.
struct shared_state {
  std::vector<std::unique_ptr<dataline>> cs_data;
  unsigned last_cluster = ~0u;
  std::uint64_t migrations = 0;
  std::uint64_t cs_count = 0;  // all CS executions, warmup included
};

struct window_snapshot {
  std::uint64_t misses = 0;
  std::uint64_t migrations = 0;
  std::uint64_t cs = 0;
};

template <typename Lock, bool Abortable>
task<void> worker(thread_ctx& t, Lock& lock, shared_state& st,
                  const lbench_params& p, tick end_at) {
  typename Lock::context ctx(*t.eng);
  const tick measure_from = p.warmup_ns;
  while (t.eng->now() < end_at) {
    bool acquired = true;
    if constexpr (Abortable) {
      acquired = co_await do_try_lock(lock, t, ctx,
                                      t.eng->now() + p.patience_ns);
    } else {
      co_await do_lock(lock, t, ctx);
    }
    if (acquired) {
      // ---- critical section ------------------------------------------
      if (st.last_cluster != t.cluster) {
        st.last_cluster = t.cluster;
        if (t.eng->now() >= measure_from) ++st.migrations;
      }
      for (auto& line : st.cs_data)
        for (unsigned w = 0; w < p.writes_per_line; ++w)
          co_await line->write(t);
      ++st.cs_count;
      // ------------------------------------------------------------------
      co_await do_unlock(lock, t, ctx);
      const tick now = t.eng->now();
      if (now >= measure_from && now < end_at) ++t.ops;
    } else {
      ++t.aborts;
    }
    // Non-critical work: idle spin of up to ~4 us (uniform jitter).
    co_await t.eng->delay(p.ncs_ns / 2 + t.rng.next_range(p.ncs_ns / 2) + 1);
  }
}

task<void> monitor(engine& eng, shared_state& st, const lbench_params& p,
                   window_snapshot& begin, window_snapshot& end) {
  co_await eng.delay(p.warmup_ns);
  begin = {eng.memstats.coherence_misses, st.migrations, st.cs_count};
  co_await eng.delay(p.duration_ns);
  end = {eng.memstats.coherence_misses, st.migrations, st.cs_count};
}

template <typename Lock, bool Abortable, typename Factory>
lbench_result run_impl(const lbench_params& p, Factory&& make) {
  engine eng(p.machine);
  auto lock = make(eng);

  shared_state st;
  for (unsigned i = 0; i < p.cs_lines; ++i)
    st.cs_data.push_back(std::make_unique<dataline>(eng));

  const tick end_at = p.warmup_ns + p.duration_ns;
  for (unsigned i = 0; i < p.threads; ++i) {
    thread_ctx& t = eng.add_thread(i % p.clusters);
    eng.spawn(worker<Lock, Abortable>(t, *lock, st, p, end_at));
  }
  window_snapshot begin{}, end{};
  eng.spawn(monitor(eng, st, p, begin, end));

  // Safety net: starvation-prone locks (HBO) may leave waiters in backoff
  // well past the end of the run.
  eng.run(end_at + 200 * p.ncs_ns + 50'000'000);

  lbench_result r;
  std::vector<double> per_thread;
  std::uint64_t aborts = 0;
  for (std::size_t i = 0; i < eng.threads(); ++i) {
    const auto& t = eng.thread(i);
    r.total_ops += t.ops;
    aborts += t.aborts;
    r.per_thread_ops.push_back(t.ops);
    per_thread.push_back(static_cast<double>(t.ops));
  }
  const double secs = static_cast<double>(p.duration_ns) * 1e-9;
  r.throughput_per_sec = static_cast<double>(r.total_ops) / secs;
  const std::uint64_t window_cs = end.cs - begin.cs;
  if (window_cs > 0) {
    r.l2_misses_per_cs = static_cast<double>(end.misses - begin.misses) /
                         static_cast<double>(window_cs);
    r.migrations_per_cs =
        static_cast<double>(end.migrations - begin.migrations) /
        static_cast<double>(window_cs);
  }
  const auto s = cohort::summarize(per_thread);
  r.stddev_pct = s.stddev_pct();
  const std::uint64_t attempts = r.total_ops + aborts;
  r.abort_rate =
      attempts == 0 ? 0.0
                    : static_cast<double>(aborts) / static_cast<double>(attempts);
  r.avg_batch = avg_batch_of(*lock);
  return r;
}

}  // namespace

lbench_result run_lbench(const std::string& lock_name,
                         const lbench_params& p) {
  lbench_result result;
  result.throughput_per_sec = -1;
  lock_params lp{p.clusters, p.pass_limit};
  const bool known = with_lock_type(lock_name, lp, [&](auto factory) {
    using lock_t =
        typename decltype(factory(std::declval<engine&>()))::element_type;
    result = run_impl<lock_t, false>(p, factory);
  });
  if (!known) result.throughput_per_sec = -1;
  return result;
}

lbench_result run_lbench_abortable(const std::string& lock_name,
                                   const lbench_params& p) {
  lbench_result result;
  result.throughput_per_sec = -1;
  lock_params lp{p.clusters, p.pass_limit};
  const bool known =
      with_abortable_lock_type(lock_name, lp, [&](auto factory) {
        using lock_t =
            typename decltype(factory(std::declval<engine&>()))::element_type;
        result = run_impl<lock_t, true>(p, factory);
      });
  if (!known) result.throughput_per_sec = -1;
  return result;
}

}  // namespace sim
