// Discrete-event engine simulating a CC-NUMA machine.
//
// The simulator substitutes for the paper's Oracle T5440 testbed (see
// DESIGN.md §2): simulated hardware threads are coroutines; time is virtual;
// every cache/coherence interaction is an engine event.  Runs are fully
// deterministic: events at equal timestamps fire in insertion order, and all
// randomness comes from seeded per-thread PRNGs.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <queue>
#include <vector>

#include "sim/task.hpp"
#include "util/rng.hpp"

namespace sim {

using tick = std::uint64_t;  // virtual nanoseconds
inline constexpr tick tick_max = std::numeric_limits<tick>::max();

// Latency/contention parameters of the simulated machine.  Defaults model a
// T5440-like box: 4 clusters, remote L2 transfers roughly 4-5x the cost of a
// local L2 hit plus a shared interconnect that queues under load.
struct config {
  unsigned clusters = 4;

  // Light-load remote/local ratio is ~4x, matching the paper's measurement;
  // interconnect_service is channel *occupancy* (capacity = 1/service), so
  // under heavy cross-chip traffic remote latency degrades via queueing.
  tick local_hit = 15;        // L2 hit / same-cluster transfer (ns)
  tick remote_wire = 120;     // uncontended remote-transfer latency (ns)
  tick interconnect_service = 50;   // channel occupancy per remote transfer
  tick cold_miss = 120;       // first-touch fetch from memory
  tick line_occupancy = 20;   // line serialisation for remotely-served accesses

  // Blocking (pthread-style) lock costs.
  tick park_cost = 1500;      // syscall + context switch to sleep
  tick unpark_cost = 800;     // releaser-side cost of waking a sleeper
  tick wakeup_latency = 2500; // parked thread's sleep-to-running latency
};

class engine;

// One simulated hardware thread.  Owned by the engine (stable address).
struct thread_ctx {
  unsigned id = 0;
  unsigned cluster = 0;
  engine* eng = nullptr;
  cohort::xorshift rng{1};

  // Workload-maintained counters.
  std::uint64_t ops = 0;
  std::uint64_t aborts = 0;

  // Waiter bookkeeping (see memory.hpp).  A thread has at most one
  // outstanding wait; epoch guards stale wake/timeout events.
  std::uint64_t wait_epoch = 0;
  void* current_wait = nullptr;
  bool wake_pending = false;
};

class engine {
 public:
  explicit engine(config cfg);
  ~engine();
  engine(const engine&) = delete;
  engine& operator=(const engine&) = delete;

  const config& cfg() const noexcept { return cfg_; }
  tick now() const noexcept { return now_; }

  thread_ctx& add_thread(unsigned cluster);
  std::size_t threads() const noexcept { return threads_.size(); }
  thread_ctx& thread(std::size_t i) { return threads_[i]; }

  // Registers a top-level coroutine and schedules its start at now().
  void spawn(task<void> t);

  // Runs until the event queue drains or virtual time exceeds hard_stop
  // (safety net for starvation-prone locks such as HBO).
  void run(tick hard_stop = tick_max);

  // ---- scheduling primitives (used by awaitables and memory model) -------

  void schedule_resume(tick at, std::coroutine_handle<> h);

  // Thread-targeted events, guarded by the thread's wait_epoch at creation
  // time; stale events are dropped.  kind is interpreted by the memory
  // system (wake vs timeout).
  enum class thread_event_kind : std::uint8_t { wake, timeout };
  void schedule_thread_event(tick at, thread_ctx* t, std::uint64_t epoch,
                             thread_event_kind kind);

  struct delay_awaiter {
    engine* eng;
    tick d;
    bool await_ready() const noexcept { return d == 0; }
    void await_suspend(std::coroutine_handle<> h) const {
      eng->schedule_resume(eng->now_ + d, h);
    }
    void await_resume() const noexcept {}
  };
  delay_awaiter delay(tick d) { return {this, d}; }

  // Interconnect: a FIFO channel every remote transfer occupies for
  // interconnect_service ns.  Returns the transfer's completion time for a
  // request issued at `at`.
  tick interconnect_transfer(tick at) { return interconnect_transfer_n(at, 1); }

  // n back-to-back channel transactions (e.g. invalidations fanning out to n
  // remote clusters); completion is when the last one lands.
  tick interconnect_transfer_n(tick at, unsigned n);
  tick interconnect_busy_time() const noexcept { return ic_total_busy_; }

  // Memory-system counters (updated by line_access in memory.cpp).
  struct mem_stats {
    std::uint64_t accesses = 0;
    std::uint64_t coherence_misses = 0;  // served from a remote cluster
    std::uint64_t cold_misses = 0;
  };
  mem_stats memstats;

 private:
  friend class memory_system;

  struct event {
    tick at;
    std::uint64_t seq;  // insertion order breaks ties -> determinism
    std::coroutine_handle<> resume;  // null for thread events
    thread_ctx* thread = nullptr;
    std::uint64_t epoch = 0;
    thread_event_kind kind = thread_event_kind::wake;
  };
  struct event_later {
    bool operator()(const event& a, const event& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  void dispatch_thread_event(const event& e);

  config cfg_;
  tick now_ = 0;
  std::uint64_t seq_ = 0;
  std::priority_queue<event, std::vector<event>, event_later> queue_;
  std::deque<thread_ctx> threads_;
  std::vector<task<void>> tasks_;

  tick ic_busy_until_ = 0;
  tick ic_total_busy_ = 0;
};

}  // namespace sim
