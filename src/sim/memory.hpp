// Simulated memory: cache lines with cluster-granularity MESI-style state,
// atoms (simulated atomic words), and spin-on-read waiting.
//
// Model (one "cache" per cluster, matching the T5440's per-chip L2):
//   * a line is either Modified in one cluster or Shared in a set of
//     clusters;
//   * an access that must be served from another cluster's cache is a
//     *coherence miss* (the quantity Figure 3 reports) and crosses the
//     shared interconnect, which queues under load;
//   * a spinning thread holds a Shared copy and pays nothing while the line
//     is quiet; any write pops all waiters, who then re-read (paying the
//     refetch, serialised through the line and the interconnect) -- this is
//     what makes global spinning (TATAS) storm and local spinning (MCS/CLH)
//     cheap, the paper's central mechanism.
//
// Determinism: the engine is single-threaded; accesses to one line serialise
// through line_state::busy_until; value changes apply at an access's
// completion event.
#pragma once

#include <coroutine>
#include <cstdint>
#include <optional>

#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace sim {

struct line_state {
  static constexpr unsigned no_owner = ~0u;
  unsigned owner = no_owner;   // cluster holding the Modified copy
  std::uint32_t sharers = 0;   // bitmask of clusters holding Shared copies
  bool modified = false;
  bool ever_touched = false;   // cold-miss bookkeeping
  tick busy_until = 0;         // per-line serialisation point
};

// Performs the coherence transition for an access by `cluster` and returns
// the delay until completion (relative to eng.now()).  Updates counters.
tick line_access(engine& eng, line_state& line, unsigned cluster, bool write);

// A cache line holding application data (no simulated value, no waiters).
class dataline {
 public:
  explicit dataline(engine& eng) : eng_(&eng) {}
  dataline(const dataline&) = delete;
  dataline& operator=(const dataline&) = delete;

  struct access_awaiter {
    engine* eng;
    line_state* line;
    unsigned cluster;
    bool is_write;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const {
      const tick d = line_access(*eng, *line, cluster, is_write);
      eng->schedule_resume(eng->now() + d, h);
    }
    void await_resume() const noexcept {}
  };

  access_awaiter write(thread_ctx& t) {
    return {eng_, &line_, t.cluster, true};
  }
  access_awaiter read(thread_ctx& t) {
    return {eng_, &line_, t.cluster, false};
  }

 private:
  engine* eng_;
  line_state line_;
};

// Result of a simulated compare-and-swap.
struct cas_result {
  bool ok;
  std::uint64_t old_value;
};

// Predicate for wait_until; captureless lambdas convert implicitly.
using wait_pred = bool (*)(std::uint64_t value, std::uint64_t arg);

// A simulated atomic word residing on its own cache line.
class atom {
 public:
  explicit atom(engine& eng, std::uint64_t init = 0)
      : eng_(&eng), value_(init) {}
  atom(const atom&) = delete;
  atom& operator=(const atom&) = delete;

  // ---- plain accesses (each is one coherence transaction) ---------------

  struct base_awaiter {
    atom* a;
    unsigned cluster;
    bool is_write;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const {
      const tick d = line_access(*a->eng_, a->line_, cluster, is_write);
      a->eng_->schedule_resume(a->eng_->now() + d, h);
    }
    // Value mutation and waiter wake-up happen at the access's *completion*
    // event (await_resume).  Waking at completion (not issue) is what makes
    // the model lost-wakeup-free: a waiter that loads a stale value and
    // registers while a write is in flight is still on the list when the
    // write completes.
    void wake() const { a->schedule_wakes(a->eng_->now()); }
  };

  struct load_awaiter : base_awaiter {
    std::uint64_t await_resume() const noexcept { return this->a->value_; }
  };
  struct store_awaiter : base_awaiter {
    std::uint64_t v;
    void await_resume() const {
      this->a->value_ = v;
      this->wake();
    }
  };
  struct exchange_awaiter : base_awaiter {
    std::uint64_t v;
    std::uint64_t await_resume() const {
      const std::uint64_t old = this->a->value_;
      this->a->value_ = v;
      this->wake();
      return old;
    }
  };
  struct fetch_add_awaiter : base_awaiter {
    std::uint64_t d;
    std::uint64_t await_resume() const {
      const std::uint64_t old = this->a->value_;
      this->a->value_ = old + d;
      this->wake();
      return old;
    }
  };
  struct cas_awaiter : base_awaiter {
    std::uint64_t expect;
    std::uint64_t desired;
    cas_result await_resume() const {
      const std::uint64_t old = this->a->value_;
      if (old == expect) this->a->value_ = desired;
      // A failed CAS still acquired the line exclusively: it invalidated
      // shared copies, so waiters re-read either way.
      this->wake();
      return {old == expect, old};
    }
  };

  load_awaiter load(thread_ctx& t) { return {{this, t.cluster, false}}; }
  store_awaiter store(thread_ctx& t, std::uint64_t v) {
    return {{this, t.cluster, true}, v};
  }
  exchange_awaiter exchange(thread_ctx& t, std::uint64_t v) {
    return {{this, t.cluster, true}, v};
  }
  fetch_add_awaiter fetch_add(thread_ctx& t, std::uint64_t d) {
    return {{this, t.cluster, true}, d};
  }
  // Note: a failed CAS still acquires the line exclusively (as on real
  // hardware), so it is charged and invalidates like a write.
  cas_awaiter cas(thread_ctx& t, std::uint64_t expect, std::uint64_t desired) {
    return {{this, t.cluster, true}, expect, desired};
  }

  // ---- spin-on-read waiting ----------------------------------------------

  // Spins (in simulated time) until pred(value, arg) is true; returns the
  // observed value.  While suspended the thread holds a Shared copy and
  // costs nothing; every write wakes it for a charged re-read.
  task<std::uint64_t> wait_until(thread_ctx& t, wait_pred pred,
                                 std::uint64_t arg);

  // As wait_until but gives up at absolute virtual time deadline_at.
  task<std::optional<std::uint64_t>> wait_until_for(thread_ctx& t,
                                                    wait_pred pred,
                                                    std::uint64_t arg,
                                                    tick deadline_at);

  // Uninstrumented accessors for initialisation and test assertions.
  std::uint64_t peek() const noexcept { return value_; }
  void poke(std::uint64_t v) noexcept { value_ = v; }

 private:
  friend class engine;

  struct wait_awaiter {
    atom* a;
    thread_ctx* t;
    tick deadline_at;  // tick_max when none
    std::coroutine_handle<> handle;
    bool timed_out = false;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    // Returns false when the wait ended by timeout.
    bool await_resume() const noexcept { return !timed_out; }
  };

  wait_awaiter suspend_wait(thread_ctx& t, tick deadline_at) {
    return {this, &t, deadline_at, nullptr, false};
  }

  // Pops all waiters and schedules their wake events at `at`.
  void schedule_wakes(tick at);

  engine* eng_;
  std::uint64_t value_;
  line_state line_;
  std::vector<thread_ctx*> waiters_;
};

}  // namespace sim
