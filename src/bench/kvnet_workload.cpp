// The "kvnet" workload: the same memaslap-style mix as "kv", but served --
// every operation travels client -> loopback socket -> epoll front-end ->
// command layer -> sharded store and back (DESIGN.md §6).  The server runs
// in-process (its store's counter cells feed the same windows[] telemetry
// as the in-process workload), the clients are the benchmark's worker
// threads, one blocking connection each, so `threads` is the offered
// connection concurrency and `--io-threads` the server-side event-loop
// parallelism.  This is the repo's end-to-end reproduction of the paper's
// §4.2 memcached experiment: real arrival patterns, lock chosen by registry
// name.
//
// run_kvnet_smoke() is the scripted protocol exchange behind
// `cohort_bench --workload kvnet --smoke`: it drives an *externally*
// started server binary (CI's loopback smoke job) through
// get/set/delete/stats plus the error paths, and reports pass/fail.
// run_kvnet_drive() (--drive) is the chaos-script counterpart: sustained
// retrying load against an external server that is expected to misbehave.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <thread>

#include "bench/driver.hpp"
#include "bench/kv_common.hpp"
#include "bench/workload.hpp"
#include "kvstore/command.hpp"
#include "net/client.hpp"
#include "net/fault.hpp"
#include "net/server.hpp"
#include "util/rng.hpp"

namespace cohort::bench {

namespace {

// Install the run's fault plan (CLI spec wins over the environment) for
// the lifetime of the benchmark; restore the real io_ops table on every
// exit path so a thrown config error cannot leak faults into later runs.
struct scoped_fault_plan {
  net::fault_plan plan{};
  explicit scoped_fault_plan(const std::string& spec) {
    if (!spec.empty()) {
      std::string err;
      if (!net::parse_fault_spec(spec, &plan, &err))
        throw std::invalid_argument("bench: bad --net-fault spec: " + err);
    } else {
      plan = net::fault_plan_from_env();
    }
    if (plan.active()) net::install_fault_plan(plan);
  }
  ~scoped_fault_plan() {
    if (plan.active()) net::clear_fault_plan();
  }
};

}  // namespace

bench_result run_kvnet_bench(const bench_config& cfg) {
  detail::validate_kv_config(cfg);

  bench_result res;
  res.config = cfg;
  res.clusters_used = numa::system_topology().clusters();

  const kvstore::kv_config kcfg{.shards = cfg.shards,
                                .buckets = cfg.kv_buckets,
                                .max_items = cfg.kv_max_items,
                                .numa_place = cfg.numa_place};
  auto store = kvstore::make_any_sharded_store(cfg.lock_name, kcfg,
                                               detail::lock_params_of(cfg));
  if (store == nullptr)
    throw std::invalid_argument("bench: " +
                                reg::unknown_lock_message(cfg.lock_name));

  const auto keys =
      kvstore::make_keyspace(cfg.keyspace != 0 ? cfg.keyspace : 1);
  const std::string value(cfg.value_bytes, 'v');
  kvstore::prefill_keyspace(*store, keys, value, cfg.numa_place);
  const std::uint64_t prefill_sets = store->stats().sets;

  const scoped_fault_plan faults(cfg.net_fault_spec);

  net::server_config scfg;
  scfg.host = "127.0.0.1";
  scfg.port = 0;  // ephemeral
  scfg.io_threads = cfg.net_io_threads;
  scfg.pin_io_threads = cfg.net_pin_io;
  scfg.max_conns_per_worker = cfg.net_max_conns;
  scfg.idle_timeout_ms = cfg.net_idle_timeout_ms;
  scfg.max_conn_lifetime_ms = cfg.net_conn_lifetime_ms;
  scfg.max_requests_per_conn = cfg.net_max_requests;
  scfg.drain_deadline_ms = cfg.net_drain_deadline_ms;
  net::kv_server server(*store, scfg);
  std::string err;
  if (!server.start(&err))
    throw std::runtime_error("bench: kvnet server failed to start: " + err);

  const kvstore::mix_workload mix(keys, cfg.get_ratio, cfg.zipf_theta, value);

  // Clients live in the workload (not the bodies) so their retry counters
  // survive the worker joins and can be summed into the record.
  const net::client_config ccfg{.op_timeout_ms = cfg.net_op_timeout_ms,
                                .max_retries = cfg.net_retries};
  std::vector<std::unique_ptr<net::memcache_client>> clients(cfg.threads);
  for (auto& cl : clients)
    cl = std::make_unique<net::memcache_client>(ccfg);

  auto make_body = [&](unsigned tid) {
    // One blocking connection per worker, opened on the worker's own
    // thread.  With retries configured a dropped connection re-dials
    // inside the client; without them a connect failure yields a body
    // that only reports failed ops, so the run completes and the audit
    // flags it.
    net::memcache_client* cl = clients[tid].get();
    (void)cl->connect("127.0.0.1", server.port());
    return [&mix, cl, retry = cfg.net_retries > 0,
            rng = xorshift(0x6e37517eadULL + tid)]() mutable {
      if (!cl->connected() && !retry) return false;
      return mix.step(*cl, rng) != kvstore::cmd_status::error;
    };
  };
  // The served path samples the same store cells as the in-process one,
  // plus the server's per-worker robustness cells (single-writer, safe to
  // sum live) so windows[] carries accepts/sheds/timeouts/faults over time.
  auto sample = [&] {
    detail::probe p = detail::sample_kv_probe(*store);
    const net::server_counters live = server.counters();
    p.net.present = true;
    p.net.connections = live.connections;
    p.net.commands = live.commands;
    p.net.protocol_errors = live.protocol_errors;
    p.net.shed = live.shed;
    p.net.timeouts = live.timeouts;
    p.net.resets = live.resets;
    p.net.drained = live.drained;
    p.net.injected_faults = live.injected_faults;
    return p;
  };
  const auto totals = detail::run_window(cfg, make_body, sample);

  // Workers are joined.  Drain rather than stop: buffered requests finish,
  // replies flush, and every connection lands in exactly one close-reason
  // bucket -- that is what makes the accounting identity below assertable.
  const bool drain_clean = server.drain();
  const net::server_counters sc = server.counters();

  std::uint64_t client_retries = 0;
  for (const auto& cl : clients) client_retries += cl->retries();

  detail::fill_window_result(res, totals);
  detail::fill_kv_result(*store, res, prefill_sets);
  res.net_connections = sc.connections;
  res.net_commands = sc.commands;
  res.net_protocol_errors = sc.protocol_errors;
  res.net_closed = sc.closed;
  res.net_shed = sc.shed;
  res.net_timeouts = sc.timeouts;
  res.net_resets = sc.resets;
  res.net_drained = sc.drained;
  res.net_injected_faults = sc.injected_faults;
  res.net_client_retries = client_retries;
  res.net_drain_clean = drain_clean;

  // Audit.  Always: every accepted connection must land in exactly one
  // close-reason bucket.
  bool net_ok = sc.connections ==
                sc.shed + sc.closed + sc.timeouts + sc.resets + sc.drained;
  const bool perturbed = faults.plan.active() || cfg.net_retries > 0 ||
                         cfg.net_max_conns != 0 ||
                         cfg.net_idle_timeout_ms != 0 ||
                         cfg.net_conn_lifetime_ms != 0 ||
                         cfg.net_max_requests != 0 ||
                         cfg.net_op_timeout_ms != 0;
  if (!perturbed) {
    // Clean run: exactly one answered command per client op, no error
    // replies -- the strict pre-hardening contract.
    net_ok = net_ok && sc.protocol_errors == 0 &&
             sc.commands == res.whole_run_ops + res.whole_run_timeouts;
  } else {
    // Faults or hardening in play: a retried op can execute server-side
    // more than once, so the client-side count is bounded instead of
    // exact.  Every successful client op completed one full exchange
    // (>=), and every client attempt -- ops + failures + retries -- sent
    // at most one request (<=).  Error replies can only come from
    // attempts that died mid-exchange or were shed.
    const std::uint64_t attempts =
        res.whole_run_ops + res.whole_run_timeouts + client_retries;
    net_ok = net_ok && sc.commands >= res.whole_run_ops &&
             sc.commands <= attempts &&
             sc.protocol_errors <= res.whole_run_timeouts + client_retries;
    // The store-counter identity stays *exact* on the served side: the mix
    // issues one get/set/delete per request, so every answered command
    // bumped exactly one kv counter -- fill_kv_result compared against
    // client ops, which undercounts retried work; recompute against the
    // server's answered-command count instead.
    const std::uint64_t kv_ops = res.kv.gets + res.kv.sets + res.kv.deletes;
    res.mutual_exclusion_ok = kv_ops == prefill_sets + sc.commands &&
                              res.kv.get_hits <= res.kv.gets;
  }
  res.mutual_exclusion_ok = res.mutual_exclusion_ok && net_ok;
  return res;
}

namespace {

bool check(bool ok, const char* what, const std::string& info = "") {
  std::printf("%s %s%s%s\n", ok ? "ok  " : "FAIL", what,
              info.empty() ? "" : ": ", info.c_str());
  return ok;
}

}  // namespace

int run_kvnet_smoke(const std::string& host, std::uint16_t port) {
  using kvstore::cmd_status;
  net::memcache_client cl;
  bool ok = true;

  if (!check(cl.connect(host, port), "connect", cl.last_error())) return 1;

  std::string ver;
  ok &= check(cl.version(&ver), "version", ver);

  ok &= check(cl.set("smoke:a", "alpha") == cmd_status::stored, "set smoke:a");
  std::string got;
  ok &= check(cl.get("smoke:a", &got) == cmd_status::hit && got == "alpha",
              "get smoke:a", got);
  ok &= check(cl.get("smoke:absent", nullptr) == cmd_status::miss,
              "get smoke:absent (miss)");
  ok &= check(cl.del("smoke:a") == cmd_status::deleted, "delete smoke:a");
  ok &= check(cl.del("smoke:a") == cmd_status::not_found,
              "delete smoke:a again (not_found)");

  // Pipelined burst: three requests in one write, replies in order.
  ok &= check(cl.send_raw("set smoke:p 0 0 2\r\nhi\r\n"
                          "get smoke:p\r\n"
                          "delete smoke:p\r\n"),
              "pipelined send");
  std::string line;
  ok &= check(cl.read_line(&line) && line == "STORED", "pipelined STORED",
              line);
  ok &= check(cl.read_line(&line) && line == "VALUE smoke:p 0 2",
              "pipelined VALUE", line);
  std::string data;
  ok &= check(cl.read_exact(4, &data) && data == "hi\r\n", "pipelined data");
  ok &= check(cl.read_line(&line) && line == "END", "pipelined END", line);
  ok &= check(cl.read_line(&line) && line == "DELETED", "pipelined DELETED",
              line);

  // Error paths: unknown command, malformed set, oversized value.
  ok &= check(cl.send_raw("bogus\r\n") && cl.read_line(&line) &&
                  line == "ERROR",
              "unknown command -> ERROR", line);
  ok &= check(cl.send_raw("set nokey 0 0 notanumber\r\n") &&
                  cl.read_line(&line) && line.rfind("CLIENT_ERROR", 0) == 0,
              "malformed set -> CLIENT_ERROR", line);
  const std::string big(8 << 20, 'x');  // over any sane --max-value-bytes
  ok &= check(cl.set("smoke:big", big) == cmd_status::too_large,
              "oversized set -> SERVER_ERROR");
  ok &= check(cl.get("smoke:big", nullptr) == cmd_status::miss,
              "oversized value not stored");

  std::vector<std::pair<std::string, std::string>> st;
  const bool stats_ok = cl.stats(&st) && !st.empty();
  ok &= check(stats_ok, "stats", std::to_string(st.size()) + " fields");
  bool saw_items = false;
  for (const auto& [k, v] : st)
    if (k == "curr_items") saw_items = true;
  ok &= check(saw_items, "stats carries curr_items");

  cl.quit();
  std::printf("%s\n", ok ? "kvnet smoke PASSED" : "kvnet smoke FAILED");
  return ok ? 0 : 1;
}

int run_kvnet_drive(const std::string& host, std::uint16_t port,
                    const bench_config& cfg) {
  // Sustained best-effort load for the chaos script: the server on the
  // other end is expected to shed, stall, inject faults, and eventually
  // drain away mid-run, so per-op failures are data, not errors.  Success
  // means the drive made real progress (some ops completed round trips),
  // not that every op did.
  const auto keys =
      kvstore::make_keyspace(cfg.keyspace != 0 ? cfg.keyspace : 1);
  const std::string value(cfg.value_bytes, 'v');
  const kvstore::mix_workload mix(keys, cfg.get_ratio, cfg.zipf_theta, value);
  const net::client_config ccfg{.op_timeout_ms = cfg.net_op_timeout_ms != 0
                                    ? cfg.net_op_timeout_ms
                                    : 1000,
                                .max_retries = cfg.net_retries};

  std::atomic<std::uint64_t> ops{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> retries{0};
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(cfg.duration_s));

  auto drive = [&](unsigned tid) {
    net::memcache_client cl(ccfg);
    xorshift rng(0xd21fe5eedULL + tid);
    std::uint64_t my_ops = 0;
    std::uint64_t my_errors = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      if (!cl.connected() && !cl.connect(host, port)) {
        // Server mid-restart or gone (the script kills it under us): back
        // off briefly and keep trying until the deadline.
        ++my_errors;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      if (mix.step(cl, rng) != kvstore::cmd_status::error)
        ++my_ops;
      else
        ++my_errors;
    }
    ops.fetch_add(my_ops, std::memory_order_relaxed);
    errors.fetch_add(my_errors, std::memory_order_relaxed);
    retries.fetch_add(cl.retries(), std::memory_order_relaxed);
  };

  std::vector<std::thread> threads;
  const unsigned n = cfg.threads != 0 ? cfg.threads : 1;
  threads.reserve(n);
  for (unsigned t = 0; t < n; ++t) threads.emplace_back(drive, t);
  for (auto& th : threads) th.join();

  const std::uint64_t done = ops.load();
  std::printf("kvnet drive: ops=%llu errors=%llu retries=%llu\n",
              static_cast<unsigned long long>(done),
              static_cast<unsigned long long>(errors.load()),
              static_cast<unsigned long long>(retries.load()));
  std::printf("kvnet drive %s\n", done > 0 ? "PASSED" : "FAILED");
  return done > 0 ? 0 : 1;
}

}  // namespace cohort::bench
