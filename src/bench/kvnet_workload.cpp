// The "kvnet" workload: the same memaslap-style mix as "kv", but served --
// every operation travels client -> loopback socket -> epoll front-end ->
// command layer -> sharded store and back (DESIGN.md §6).  The server runs
// in-process (its store's counter cells feed the same windows[] telemetry
// as the in-process workload), the clients are the benchmark's worker
// threads, one blocking connection each, so `threads` is the offered
// connection concurrency and `--io-threads` the server-side event-loop
// parallelism.  This is the repo's end-to-end reproduction of the paper's
// §4.2 memcached experiment: real arrival patterns, lock chosen by registry
// name.
//
// run_kvnet_smoke() is the scripted protocol exchange behind
// `cohort_bench --workload kvnet --smoke`: it drives an *externally*
// started server binary (CI's loopback smoke job) through
// get/set/delete/stats plus the error paths, and reports pass/fail.
#include <cstdio>
#include <memory>
#include <stdexcept>

#include "bench/driver.hpp"
#include "bench/kv_common.hpp"
#include "bench/workload.hpp"
#include "kvstore/command.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "util/rng.hpp"

namespace cohort::bench {

bench_result run_kvnet_bench(const bench_config& cfg) {
  detail::validate_kv_config(cfg);

  bench_result res;
  res.config = cfg;
  res.clusters_used = numa::system_topology().clusters();

  const kvstore::kv_config kcfg{.shards = cfg.shards,
                                .buckets = cfg.kv_buckets,
                                .max_items = cfg.kv_max_items,
                                .numa_place = cfg.numa_place};
  auto store = kvstore::make_any_sharded_store(cfg.lock_name, kcfg,
                                               detail::lock_params_of(cfg));
  if (store == nullptr)
    throw std::invalid_argument("bench: " +
                                reg::unknown_lock_message(cfg.lock_name));

  const auto keys =
      kvstore::make_keyspace(cfg.keyspace != 0 ? cfg.keyspace : 1);
  const std::string value(cfg.value_bytes, 'v');
  kvstore::prefill_keyspace(*store, keys, value, cfg.numa_place);
  const std::uint64_t prefill_sets = store->stats().sets;

  net::server_config scfg;
  scfg.host = "127.0.0.1";
  scfg.port = 0;  // ephemeral
  scfg.io_threads = cfg.net_io_threads;
  scfg.pin_io_threads = cfg.net_pin_io;
  net::kv_server server(*store, scfg);
  std::string err;
  if (!server.start(&err))
    throw std::runtime_error("bench: kvnet server failed to start: " + err);

  const kvstore::mix_workload mix(keys, cfg.get_ratio, cfg.zipf_theta, value);

  auto make_body = [&](unsigned tid) {
    // One blocking connection per worker, opened on the worker's own
    // thread.  A connect failure yields a body that only reports failed
    // ops, so the run completes and the audit flags it.
    auto client = std::make_unique<net::memcache_client>();
    (void)client->connect("127.0.0.1", server.port());
    return [&mix, cl = std::move(client),
            rng = xorshift(0x6e37517eadULL + tid)]() mutable {
      if (!cl->connected()) return false;
      return mix.step(*cl, rng) != kvstore::cmd_status::error;
    };
  };
  // The served path samples the same store cells as the in-process one.
  auto sample = [&] { return detail::sample_kv_probe(*store); };
  const auto totals = detail::run_window(cfg, make_body, sample);

  // Workers are joined, every round trip completed: the server is idle.
  server.stop();
  const net::server_counters sc = server.counters();

  detail::fill_window_result(res, totals);
  detail::fill_kv_result(*store, res, prefill_sets);
  res.net_connections = sc.connections;
  res.net_commands = sc.commands;
  res.net_protocol_errors = sc.protocol_errors;
  // A clean run answers exactly one command per client op, with no
  // protocol errors; fold that into the audit.
  res.mutual_exclusion_ok =
      res.mutual_exclusion_ok && sc.protocol_errors == 0 &&
      sc.commands == res.whole_run_ops + res.whole_run_timeouts;
  return res;
}

namespace {

bool check(bool ok, const char* what, const std::string& info = "") {
  std::printf("%s %s%s%s\n", ok ? "ok  " : "FAIL", what,
              info.empty() ? "" : ": ", info.c_str());
  return ok;
}

}  // namespace

int run_kvnet_smoke(const std::string& host, std::uint16_t port) {
  using kvstore::cmd_status;
  net::memcache_client cl;
  bool ok = true;

  if (!check(cl.connect(host, port), "connect", cl.last_error())) return 1;

  std::string ver;
  ok &= check(cl.version(&ver), "version", ver);

  ok &= check(cl.set("smoke:a", "alpha") == cmd_status::stored, "set smoke:a");
  std::string got;
  ok &= check(cl.get("smoke:a", &got) == cmd_status::hit && got == "alpha",
              "get smoke:a", got);
  ok &= check(cl.get("smoke:absent", nullptr) == cmd_status::miss,
              "get smoke:absent (miss)");
  ok &= check(cl.del("smoke:a") == cmd_status::deleted, "delete smoke:a");
  ok &= check(cl.del("smoke:a") == cmd_status::not_found,
              "delete smoke:a again (not_found)");

  // Pipelined burst: three requests in one write, replies in order.
  ok &= check(cl.send_raw("set smoke:p 0 0 2\r\nhi\r\n"
                          "get smoke:p\r\n"
                          "delete smoke:p\r\n"),
              "pipelined send");
  std::string line;
  ok &= check(cl.read_line(&line) && line == "STORED", "pipelined STORED",
              line);
  ok &= check(cl.read_line(&line) && line == "VALUE smoke:p 0 2",
              "pipelined VALUE", line);
  std::string data;
  ok &= check(cl.read_exact(4, &data) && data == "hi\r\n", "pipelined data");
  ok &= check(cl.read_line(&line) && line == "END", "pipelined END", line);
  ok &= check(cl.read_line(&line) && line == "DELETED", "pipelined DELETED",
              line);

  // Error paths: unknown command, malformed set, oversized value.
  ok &= check(cl.send_raw("bogus\r\n") && cl.read_line(&line) &&
                  line == "ERROR",
              "unknown command -> ERROR", line);
  ok &= check(cl.send_raw("set nokey 0 0 notanumber\r\n") &&
                  cl.read_line(&line) && line.rfind("CLIENT_ERROR", 0) == 0,
              "malformed set -> CLIENT_ERROR", line);
  const std::string big(8 << 20, 'x');  // over any sane --max-value-bytes
  ok &= check(cl.set("smoke:big", big) == cmd_status::too_large,
              "oversized set -> SERVER_ERROR");
  ok &= check(cl.get("smoke:big", nullptr) == cmd_status::miss,
              "oversized value not stored");

  std::vector<std::pair<std::string, std::string>> st;
  const bool stats_ok = cl.stats(&st) && !st.empty();
  ok &= check(stats_ok, "stats", std::to_string(st.size()) + " fields");
  bool saw_items = false;
  for (const auto& [k, v] : st)
    if (k == "curr_items") saw_items = true;
  ok &= check(saw_items, "stats carries curr_items");

  cl.quit();
  std::printf("%s\n", ok ? "kvnet smoke PASSED" : "kvnet smoke FAILED");
  return ok ? 0 : 1;
}

}  // namespace cohort::bench
