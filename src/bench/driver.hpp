// Windowed-measurement skeleton shared by the cohort_bench workloads
// (DESIGN.md §4): thread creation, pinning, start barrier, warmup, the
// measured window bracketed by counter snapshots, a mid-run sampling loop
// feeding the windows[] telemetry, and the fairness/throughput reduction.
// A workload plugs in as a per-thread body plus a counter sampler; the
// registered workloads live in workload.hpp ("cs", "kv", "alloc").
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "bench/harness.hpp"
#include "numa/topology.hpp"
#include "util/align.hpp"
#include "util/stats.hpp"

namespace cohort::bench {
namespace detail {

using bench_clock = std::chrono::steady_clock;

// The lock_params a bench_config requests (shared by every workload's
// with_lock_type / make_any_sharded_store call).
inline reg::lock_params lock_params_of(const bench_config& cfg) {
  return {.clusters = cfg.clusters,
          .cohort = {.pass_limit = cfg.pass_limit},
          .fp = {.fission_limit = cfg.fission_limit,
                 .reengage_drains = cfg.reengage_drains},
          .gcr = {.min_active = cfg.gcr_min_active,
                  .max_active = cfg.gcr_max_active,
                  .rotation_interval = cfg.gcr_rotation,
                  .tune_window = cfg.gcr_tune_window},
          .adaptive = {.window = cfg.adaptive_window,
                       .escalate_pct = cfg.adaptive_escalate,
                       .deescalate_pct = cfg.adaptive_deescalate,
                       .hysteresis = cfg.adaptive_hysteresis,
                       .max_level = cfg.adaptive_max_level,
                       .gcr_waiters = cfg.adaptive_gcr_waiters}};
}

struct alignas(cache_line_size) thread_slot {
  std::atomic<std::uint64_t> ops{0};
  std::atomic<std::uint64_t> timeouts{0};
  std::atomic<bool> pinned{false};
};

// What a workload's mid-run sampler returns: the summed cohort batching
// counters of its locks (when they keep any), plus -- for the kv workloads
// -- each shard's operation cells, so windows[] can carry per-shard
// hit-rate over time.  Everything here must come from race-free cells
// (cohort_counters, kv_counters); unsynchronised counters stay
// quiescent-only.
struct shard_probe {
  std::uint64_t gets = 0;
  std::uint64_t get_hits = 0;
  // Per-shard adaptive-ladder state (0 when the shard lock is not
  // adaptive): the 1-based rung gauge and the cumulative swap count, read
  // from the lock's stats() -- race-free there by construction.
  std::uint64_t current_policy = 0;
  std::uint64_t policy_switches = 0;
};

// Server-side counter sample for the served workload (kvnet): the
// kv_server's per-worker cells are single-writer and safe to sum live, so
// windows[] can carry accepts/sheds/timeouts/faults over time.  Kept as a
// plain struct here (not net::server_counters) so the driver skeleton has
// no dependency on the net layer.
struct net_probe {
  bool present = false;
  std::uint64_t connections = 0;
  std::uint64_t commands = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t shed = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t resets = 0;
  std::uint64_t drained = 0;
  std::uint64_t injected_faults = 0;
};

struct probe {
  bool has_stats = false;           // cohort batching counters available
  reg::erased_stats stats{};        // summed over the workload's locks
  std::vector<shard_probe> shards;  // empty for non-sharded workloads
  net_probe net{};                  // present only for served workloads
};

// One mid-run counter sample, taken by the coordinator while the workers
// run.  Thread op counters are atomics and the probe reads relaxed
// single-writer cells, so sampling is race-free.
struct window_sample {
  double t_s = 0.0;            // seconds since the start barrier opened
  std::uint64_t ops = 0;       // completed ops, summed over threads
  std::uint64_t timeouts = 0;
  probe counters{};
};

struct window_totals {
  unsigned pinned_threads = 0;
  double elapsed_s = 0.0;                     // actual measured-window length
  std::vector<std::uint64_t> window_ops;      // per thread, window only
  std::uint64_t window_timeouts = 0;
  std::uint64_t whole_run_ops = 0;            // warmup + window + tail
  std::uint64_t whole_run_timeouts = 0;
  std::vector<window_sample> samples;         // start, warmup end, ..., close
  std::size_t warmup_boundary = 0;  // samples index where the window opened
};

// Runs cfg.threads workers against a workload body.  make_body(tid) is
// invoked on the worker's own thread (after pinning / cluster assignment)
// and must return a callable `bool ()` performing exactly one operation:
// true counts as a completed op, false as a timeout (or failed allocation).
// Bodies run in a do-while, so every worker attempts at least one operation
// even if the window elapses while it is descheduled.
//
// sample_counters() is called by the coordinator at every snapshot point --
// concurrently with the workers -- and must return a `probe`: the summed
// cohort batching counters of the workload's locks (has_stats == false when
// the lock type keeps none) and, for sharded workloads, the per-shard
// operation cells.  Implementations must only touch race-free state: the
// cohort_counters and kv_counters cells qualify, unsynchronised workload
// counters do not.
template <typename MakeBody, typename SampleCounters>
window_totals run_window(const bench_config& cfg, MakeBody&& make_body,
                         SampleCounters&& sample_counters) {
  const auto& topo = numa::system_topology();
  const unsigned clusters = topo.clusters();

  std::vector<thread_slot> slots(cfg.threads);
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<unsigned> ready{0};

  auto worker = [&](unsigned tid) {
    // One CPU per thread, round-robin within the cluster (slot = how many
    // cluster-mates precede this thread): an oversubscribed run stacks
    // threads on CPUs deterministically instead of letting the scheduler
    // migrate the surplus, which is what makes collapse curves repeatable.
    if (cfg.pin)
      slots[tid].pinned.store(
          numa::pin_thread_to_cpu_slot(topo, tid % clusters, tid / clusters),
          std::memory_order_relaxed);
    else
      numa::set_thread_cluster(tid % clusters);

    auto body = make_body(tid);

    ready.fetch_add(1, std::memory_order_release);
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();

    std::uint64_t ops = 0;
    std::uint64_t timeouts = 0;
    do {
      if (body())
        ++ops;
      else
        ++timeouts;
      // Publish progress so the coordinator can snapshot mid-run.
      slots[tid].ops.store(ops, std::memory_order_relaxed);
      slots[tid].timeouts.store(timeouts, std::memory_order_relaxed);
    } while (!stop.load(std::memory_order_relaxed));
  };

  std::vector<std::thread> threads;
  threads.reserve(cfg.threads);
  for (unsigned t = 0; t < cfg.threads; ++t) threads.emplace_back(worker, t);
  while (ready.load(std::memory_order_acquire) != cfg.threads)
    std::this_thread::yield();

  // Snapshot schedule, as offsets from the start barrier: the warmup end
  // and the window close are mandatory (they bracket the measured window
  // exactly); snap_windows > 0 adds interior samples every
  // duration / snap_windows seconds, during warmup and the window alike.
  const double period =
      cfg.snap_windows > 0 ? cfg.duration_s / cfg.snap_windows : 0.0;
  std::vector<double> marks;
  std::size_t warmup_boundary = 0;  // index into samples, where samples[0]=t0
  if (cfg.warmup_s > 0.0) {
    if (period > 0.0)
      for (double t = period; t < cfg.warmup_s - 0.5 * period; t += period)
        marks.push_back(t);
    marks.push_back(cfg.warmup_s);
    warmup_boundary = marks.size();  // samples index = marks index + 1
  }
  if (period > 0.0)
    for (unsigned k = 1; k < cfg.snap_windows; ++k)
      marks.push_back(cfg.warmup_s + k * period);
  marks.push_back(cfg.warmup_s + cfg.duration_s);

  window_totals w;
  w.warmup_boundary = warmup_boundary;
  std::vector<std::uint64_t> warm_ops(cfg.threads);
  std::vector<std::uint64_t> warm_timeouts(cfg.threads);
  std::vector<std::uint64_t> end_ops(cfg.threads);
  std::vector<std::uint64_t> end_timeouts(cfg.threads);

  const auto start = bench_clock::now();
  auto take_sample = [&](std::vector<std::uint64_t>* ops_out,
                         std::vector<std::uint64_t>* timeouts_out) {
    window_sample s;
    s.t_s = std::chrono::duration<double>(bench_clock::now() - start).count();
    for (unsigned t = 0; t < cfg.threads; ++t) {
      const std::uint64_t o = slots[t].ops.load(std::memory_order_relaxed);
      const std::uint64_t to =
          slots[t].timeouts.load(std::memory_order_relaxed);
      s.ops += o;
      s.timeouts += to;
      if (ops_out != nullptr) (*ops_out)[t] = o;
      if (timeouts_out != nullptr) (*timeouts_out)[t] = to;
    }
    s.counters = sample_counters();
    w.samples.push_back(std::move(s));
  };

  go.store(true, std::memory_order_release);
  take_sample(warmup_boundary == 0 ? &warm_ops : nullptr,
              warmup_boundary == 0 ? &warm_timeouts : nullptr);
  for (std::size_t m = 0; m < marks.size(); ++m) {
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<bench_clock::duration>(
                    std::chrono::duration<double>(marks[m])));
    const bool opens_window = m + 1 == warmup_boundary;
    const bool closes_window = m + 1 == marks.size();
    take_sample(opens_window ? &warm_ops : closes_window ? &end_ops : nullptr,
                opens_window      ? &warm_timeouts
                : closes_window ? &end_timeouts
                                  : nullptr);
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();

  w.elapsed_s = w.samples.back().t_s - w.samples[warmup_boundary].t_s;
  w.window_ops.resize(cfg.threads);
  for (unsigned t = 0; t < cfg.threads; ++t) {
    w.window_ops[t] = end_ops[t] - warm_ops[t];
    w.window_timeouts += end_timeouts[t] - warm_timeouts[t];
    if (slots[t].pinned.load(std::memory_order_relaxed)) ++w.pinned_threads;
    // Post-join counters cover warmup and the tail after the window closed.
    w.whole_run_ops += slots[t].ops.load(std::memory_order_relaxed);
    w.whole_run_timeouts += slots[t].timeouts.load(std::memory_order_relaxed);
  }
  return w;
}

// Fills the window-derived fields of a bench_result (throughput, fairness,
// per-thread ops, timeouts, pinning, whole-run totals, windows[]).
inline void fill_window_result(bench_result& res, const window_totals& w) {
  res.pinned_threads = w.pinned_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  res.online_cpus = hw == 0 ? 1 : hw;
  res.elapsed_s = w.elapsed_s;
  res.per_thread_ops = w.window_ops;
  res.timeouts = w.window_timeouts;
  res.whole_run_ops = w.whole_run_ops;
  res.whole_run_timeouts = w.whole_run_timeouts;
  res.total_ops = 0;
  std::vector<double> per_thread(w.window_ops.size());
  for (std::size_t t = 0; t < w.window_ops.size(); ++t) {
    res.total_ops += w.window_ops[t];
    per_thread[t] = static_cast<double>(w.window_ops[t]);
  }
  res.throughput_ops_s =
      res.elapsed_s > 0.0 ? static_cast<double>(res.total_ops) / res.elapsed_s
                          : 0.0;
  const summary fair = summarize(per_thread);
  res.fairness_cv = fair.mean > 0.0 ? fair.stddev / fair.mean : 0.0;

  // Consecutive samples become telemetry windows.  Counter cells move
  // independently, so a window's acquisitions can momentarily run ahead of
  // its ops; the deltas are still exact over any quiescent boundary.
  res.windows.clear();
  for (std::size_t i = 1; i < w.samples.size(); ++i) {
    const window_sample& a = w.samples[i - 1];
    const window_sample& b = w.samples[i];
    bench_window win;
    win.t0_s = a.t_s;
    win.t1_s = b.t_s;
    win.warmup = i <= w.warmup_boundary;
    win.ops = b.ops - a.ops;
    win.timeouts = b.timeouts - a.timeouts;
    const double dt = win.t1_s - win.t0_s;
    win.throughput_ops_s =
        dt > 0.0 ? static_cast<double>(win.ops) / dt : 0.0;
    if (a.counters.has_stats && b.counters.has_stats) {
      win.has_cohort = true;
      win.acquisitions =
          b.counters.stats.acquisitions - a.counters.stats.acquisitions;
      win.global_acquires = b.counters.stats.global_acquires -
                            a.counters.stats.global_acquires;
      win.fast_acquires =
          b.counters.stats.fast_acquires - a.counters.stats.fast_acquires;
      win.fissions = b.counters.stats.fissions - a.counters.stats.fissions;
      win.deferrals =
          b.counters.stats.deferrals - a.counters.stats.deferrals;
      // Admission telemetry: the set size and tuned target are gauges
      // (their value *at* the closing sample), park/rotation events are
      // deltas like every other counter.
      win.active_set = b.counters.stats.active_set;
      win.active_target = b.counters.stats.active_target;
      win.parked = b.counters.stats.parked - a.counters.stats.parked;
      win.rotations =
          b.counters.stats.rotations - a.counters.stats.rotations;
      // Adaptive telemetry: swaps are events (delta), the rung is a gauge.
      win.policy_switches = b.counters.stats.policy_switches -
                            a.counters.stats.policy_switches;
      win.current_policy = b.counters.stats.current_policy;
      // Batch length counts only the slow (cohort) acquisitions a global
      // acquire amortises; fast acquires bypass the global lock entirely.
      const std::uint64_t slow = win.acquisitions - win.fast_acquires;
      win.mean_batch = win.global_acquires > 0
                           ? static_cast<double>(slow) /
                                 static_cast<double>(win.global_acquires)
                           : static_cast<double>(slow);
    }
    if (a.counters.net.present && b.counters.net.present) {
      win.has_net = true;
      win.net_connections =
          b.counters.net.connections - a.counters.net.connections;
      win.net_commands = b.counters.net.commands - a.counters.net.commands;
      win.net_protocol_errors =
          b.counters.net.protocol_errors - a.counters.net.protocol_errors;
      win.net_shed = b.counters.net.shed - a.counters.net.shed;
      win.net_timeouts = b.counters.net.timeouts - a.counters.net.timeouts;
      win.net_resets = b.counters.net.resets - a.counters.net.resets;
      win.net_drained = b.counters.net.drained - a.counters.net.drained;
      win.net_injected_faults =
          b.counters.net.injected_faults - a.counters.net.injected_faults;
    }
    // Per-shard hit-rate deltas (kv workloads): both samples must have seen
    // the same shard set.
    if (!b.counters.shards.empty() &&
        a.counters.shards.size() == b.counters.shards.size()) {
      win.shards.resize(b.counters.shards.size());
      for (std::size_t s = 0; s < b.counters.shards.size(); ++s) {
        shard_window& sw = win.shards[s];
        sw.gets = b.counters.shards[s].gets - a.counters.shards[s].gets;
        sw.get_hits =
            b.counters.shards[s].get_hits - a.counters.shards[s].get_hits;
        // Cells move independently; clamp transient hits > gets.
        if (sw.get_hits > sw.gets) sw.get_hits = sw.gets;
        sw.hit_rate = sw.gets > 0 ? static_cast<double>(sw.get_hits) /
                                        static_cast<double>(sw.gets)
                                  : 0.0;
        sw.current_policy = b.counters.shards[s].current_policy;  // gauge
        sw.policy_switches = b.counters.shards[s].policy_switches -
                             a.counters.shards[s].policy_switches;
      }
    }
    res.windows.push_back(std::move(win));
  }
}

}  // namespace detail
}  // namespace cohort::bench
