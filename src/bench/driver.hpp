// Windowed-measurement skeleton shared by the cohort_bench workloads
// (DESIGN.md §4): thread creation, pinning, start barrier, warmup, the
// measured window with counter snapshots, and the fairness/throughput
// reduction.  A workload plugs in as a per-thread body -- "cs" (harness.cpp)
// and "kv" (kv_workload.cpp) today; an allocator workload or a storage
// backend can reuse the same skeleton without touching the timing logic.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "bench/harness.hpp"
#include "numa/topology.hpp"
#include "util/align.hpp"
#include "util/stats.hpp"

namespace cohort::bench {

// The two built-in workloads, dispatched by run_bench() on
// bench_config::workload.
bench_result run_cs_bench(const bench_config& cfg);
bench_result run_kv_bench(const bench_config& cfg);

namespace detail {

using bench_clock = std::chrono::steady_clock;

struct alignas(cache_line_size) thread_slot {
  std::atomic<std::uint64_t> ops{0};
  std::atomic<std::uint64_t> timeouts{0};
  std::atomic<bool> pinned{false};
};

struct window_totals {
  unsigned pinned_threads = 0;
  double elapsed_s = 0.0;                     // actual measured-window length
  std::vector<std::uint64_t> window_ops;      // per thread, window only
  std::uint64_t window_timeouts = 0;
  std::uint64_t whole_run_ops = 0;            // warmup + window + tail
};

// Runs cfg.threads workers against a workload body.  make_body(tid) is
// invoked on the worker's own thread (after pinning / cluster assignment)
// and must return a callable `bool ()` performing exactly one operation:
// true counts as a completed op, false as a timeout.  Bodies run in a
// do-while, so every worker attempts at least one operation even if the
// window elapses while it is descheduled.
template <typename MakeBody>
window_totals run_window(const bench_config& cfg, MakeBody&& make_body) {
  const auto& topo = numa::system_topology();
  const unsigned clusters = topo.clusters();

  std::vector<thread_slot> slots(cfg.threads);
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<unsigned> ready{0};

  auto worker = [&](unsigned tid) {
    if (cfg.pin)
      slots[tid].pinned.store(numa::pin_thread_to_cluster(topo, tid % clusters),
                              std::memory_order_relaxed);
    else
      numa::set_thread_cluster(tid % clusters);

    auto body = make_body(tid);

    ready.fetch_add(1, std::memory_order_release);
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();

    std::uint64_t ops = 0;
    std::uint64_t timeouts = 0;
    do {
      if (body())
        ++ops;
      else
        ++timeouts;
      // Publish progress so the coordinator can snapshot mid-run.
      slots[tid].ops.store(ops, std::memory_order_relaxed);
      slots[tid].timeouts.store(timeouts, std::memory_order_relaxed);
    } while (!stop.load(std::memory_order_relaxed));
  };

  std::vector<std::thread> threads;
  threads.reserve(cfg.threads);
  for (unsigned t = 0; t < cfg.threads; ++t) threads.emplace_back(worker, t);
  while (ready.load(std::memory_order_acquire) != cfg.threads)
    std::this_thread::yield();

  const auto start = bench_clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_until(
      start + std::chrono::duration_cast<bench_clock::duration>(
                  std::chrono::duration<double>(cfg.warmup_s)));

  // Open the measured window: snapshot the counters, run, snapshot again.
  std::vector<std::uint64_t> warm_ops(cfg.threads);
  std::vector<std::uint64_t> warm_timeouts(cfg.threads);
  for (unsigned t = 0; t < cfg.threads; ++t) {
    warm_ops[t] = slots[t].ops.load(std::memory_order_relaxed);
    warm_timeouts[t] = slots[t].timeouts.load(std::memory_order_relaxed);
  }
  const auto window_open = bench_clock::now();
  std::this_thread::sleep_until(
      window_open + std::chrono::duration_cast<bench_clock::duration>(
                        std::chrono::duration<double>(cfg.duration_s)));
  std::vector<std::uint64_t> end_ops(cfg.threads);
  std::vector<std::uint64_t> end_timeouts(cfg.threads);
  for (unsigned t = 0; t < cfg.threads; ++t) {
    end_ops[t] = slots[t].ops.load(std::memory_order_relaxed);
    end_timeouts[t] = slots[t].timeouts.load(std::memory_order_relaxed);
  }
  const auto window_close = bench_clock::now();
  stop.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();

  window_totals w;
  w.elapsed_s =
      std::chrono::duration<double>(window_close - window_open).count();
  w.window_ops.resize(cfg.threads);
  for (unsigned t = 0; t < cfg.threads; ++t) {
    w.window_ops[t] = end_ops[t] - warm_ops[t];
    w.window_timeouts += end_timeouts[t] - warm_timeouts[t];
    if (slots[t].pinned.load(std::memory_order_relaxed)) ++w.pinned_threads;
    // Post-join counters cover warmup and the tail after the window closed.
    w.whole_run_ops += slots[t].ops.load(std::memory_order_relaxed);
  }
  return w;
}

// Fills the window-derived fields of a bench_result (throughput, fairness,
// per-thread ops, timeouts, pinning, whole-run total).
inline void fill_window_result(bench_result& res, const window_totals& w) {
  res.pinned_threads = w.pinned_threads;
  res.elapsed_s = w.elapsed_s;
  res.per_thread_ops = w.window_ops;
  res.timeouts = w.window_timeouts;
  res.whole_run_ops = w.whole_run_ops;
  res.total_ops = 0;
  std::vector<double> per_thread(w.window_ops.size());
  for (std::size_t t = 0; t < w.window_ops.size(); ++t) {
    res.total_ops += w.window_ops[t];
    per_thread[t] = static_cast<double>(w.window_ops[t]);
  }
  res.throughput_ops_s =
      res.elapsed_s > 0.0 ? static_cast<double>(res.total_ops) / res.elapsed_s
                          : 0.0;
  const summary fair = summarize(per_thread);
  res.fairness_cv = fair.mean > 0.0 ? fair.stddev / fair.mean : 0.0;
}

}  // namespace detail
}  // namespace cohort::bench
