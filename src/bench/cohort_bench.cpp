// cohort_bench: real-thread benchmark CLI over the registry locks and the
// registry workloads.
//
//   cohort_bench --lock C-BO-MCS --threads 8 --duration 1 --json
//   cohort_bench --all --threads 4 --duration 0.2 --json   # full registry
//   cohort_bench --workload kv --shards 4 --get-ratio 0.9 --json
//   cohort_bench --workload alloc --numa-place --json
//   cohort_bench --list                                    # lock names
//   cohort_bench --list-workloads                          # workload names
//
// Workloads come from the bench/workload.hpp registry (the paper's three
// evaluation applications: cs, kv, alloc); the usage text, the
// --list-workloads listing and the name validation all enumerate the
// descriptors, so those stay in sync automatically -- only the per-flag
// option parsing below needs a hand-written branch per new flag.  Emits one
// JSON record per
// (lock, repetition) -- a single object for one run, a JSON array otherwise
// -- shaped for the BENCH_*.json trajectory files (see
// scripts/run_bench_matrix.sh).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "bench/workload.hpp"
#include "locks/registry.hpp"
#include "numa/topology.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --workload W      %s (default cs)\n"
      "  --lock NAME       lock to drive (default C-BO-MCS); repeatable\n"
      "  --all             run every registry lock\n"
      "  --list            print the registry lock names and exit\n"
      "  --list-locks [FAMILY]\n"
      "                    print the full lock descriptors (family, caps,\n"
      "                    honoured knobs), optionally one family only,\n"
      "                    and exit\n"
      "  --list-workloads  print the registered workloads and their flags\n"
      "  --threads N       worker threads (default 4)\n"
      "  --duration S      measured seconds per run (default 1.0)\n"
      "  --warmup S        warmup seconds before measuring (default 0.1)\n"
      "  --windows N       telemetry windows over the measured run\n"
      "                    (default 8; 0 = boundary samples only)\n"
      "  --reps N          repetitions per lock (default 1)\n"
      "  --clusters N      override cluster count (default: discovered)\n"
      "  --pass-limit N    cohort may-pass-local bound (default 64)\n"
      "  --fission-limit N   -fp fast-path disengage threshold (default:\n"
      "                      COHORT_FISSION_LIMIT env, else 8)\n"
      "  --reengage-drains N -fp re-engage threshold (default:\n"
      "                      COHORT_REENGAGE_DRAINS env, else 4)\n"
      "  --gcr-min-active N  gcr- tuner floor (default:\n"
      "                      COHORT_GCR_MIN_ACTIVE env, else 1)\n"
      "  --gcr-max-active N  gcr- tuner ceiling (default:\n"
      "                      COHORT_GCR_MAX_ACTIVE env, else online CPUs)\n"
      "  --gcr-rotation N    gcr- releases between fairness rotations\n"
      "                      (default: COHORT_GCR_ROTATION env, else 1024)\n"
      "  --gcr-tune-window N gcr- releases per hysteresis tuning window\n"
      "                      (default: COHORT_GCR_TUNE_WINDOW env, else 8192)\n"
      "  --adaptive-window N     adaptive acquisitions per decision window\n"
      "                          (default: COHORT_ADAPTIVE_WINDOW, else 2048)\n"
      "  --adaptive-escalate P   contended %% marking a window hot (default:\n"
      "                          COHORT_ADAPTIVE_ESCALATE env, else 50)\n"
      "  --adaptive-deescalate P contended %% marking a window cold (default:\n"
      "                          COHORT_ADAPTIVE_DEESCALATE env, else 10)\n"
      "  --adaptive-hysteresis N consecutive hot/cold windows before a swap\n"
      "                          (default: COHORT_ADAPTIVE_HYSTERESIS, else 2)\n"
      "  --adaptive-max-level N  highest ladder rung, 3 enables the gcr rung\n"
      "                          (default: COHORT_ADAPTIVE_MAX_LEVEL, else 2)\n"
      "  --adaptive-gcr-waiters N  pinned waiters required for the gcr rung\n"
      "                          (default: COHORT_ADAPTIVE_GCR_WAITERS env,\n"
      "                          else online CPUs)\n"
      "  --net-host H      server address for --smoke/--drive (default\n"
      "                    127.0.0.1)\n"
      "  --net-port P      server port for --smoke/--drive (required)\n"
      "  --no-pin          skip CPU pinning\n"
      "  --json            emit JSON instead of a text summary\n",
      argv0, cohort::bench::workload_names_joined().c_str());
  for (const auto& w : cohort::bench::all_workloads()) {
    std::fprintf(stderr, "workload %s -- %s\n", w.name, w.summary);
    for (const auto& f : w.flags)
      std::fprintf(stderr, "  %-17s [%s] %s\n", f.flag, w.name, f.help);
  }
}

// One descriptor per line, machine-greppable:
//   name<TAB>family<TAB>cap,cap,...<TAB>knob,knob<TAB>summary
// scripts/run_bench_matrix.sh awks this to cross-check sweep coverage.
// A non-empty family filter prints only that family; unknown families fail
// listing the valid ones (mirroring the unknown-lock diagnostic).
int list_locks(const std::string& family) {
  if (!family.empty()) {
    bool known = false;
    std::string families;
    for (const auto& d : cohort::reg::all_locks()) {
      const std::string f = cohort::reg::to_string(d.family);
      if (f == family) known = true;
      if (families.find(f) == std::string::npos) {
        if (!families.empty()) families += ", ";
        families += f;
      }
    }
    if (!known) {
      std::fprintf(stderr, "unknown lock family '%s' (families: %s)\n",
                   family.c_str(), families.c_str());
      return 2;
    }
  }
  for (const auto& d : cohort::reg::all_locks()) {
    if (!family.empty() && family != cohort::reg::to_string(d.family))
      continue;
    std::string caps;
    auto cap = [&](bool on, const char* name) {
      if (!on) return;
      if (!caps.empty()) caps += ",";
      caps += name;
    };
    cap(d.caps.abortable, "abortable");
    cap(d.caps.fp_composable, "fp_composable");
    cap(d.caps.cluster_aware, "cluster_aware");
    cap(d.caps.reports_batch_stats, "reports_batch_stats");
    if (caps.empty()) caps = "-";
    std::string knobs;
    if (d.uses_pass_limit) knobs += "pass_limit";
    if (d.uses_fp_knobs) {
      if (!knobs.empty()) knobs += ",";
      knobs += "fp";
    }
    if (d.uses_gcr_knobs) {
      if (!knobs.empty()) knobs += ",";
      knobs += "gcr";
    }
    if (d.uses_adaptive_knobs) {
      if (!knobs.empty()) knobs += ",";
      knobs += "adaptive";
    }
    if (knobs.empty()) knobs = "-";
    std::printf("%s\t%s\t%s\t%s\t%s\n", d.name.c_str(),
                cohort::reg::to_string(d.family), caps.c_str(), knobs.c_str(),
                d.summary.c_str());
  }
  return 0;
}

void list_workloads() {
  for (const auto& w : cohort::bench::all_workloads()) {
    std::printf("%s -- %s\n", w.name, w.summary);
    std::printf("  audit: %s\n", w.audit);
    for (const auto& f : w.flags)
      std::printf("  %-17s %s\n", f.flag, f.help);
  }
}

bool parse_unsigned(const char* s, unsigned long long& out) {
  char* end = nullptr;
  out = std::strtoull(s, &end, 10);
  return end != s && *end == '\0';
}

bool parse_double(const char* s, double& out) {
  char* end = nullptr;
  out = std::strtod(s, &end);
  return end != s && *end == '\0' && out >= 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  cohort::bench::bench_config cfg;
  std::vector<std::string> locks;
  unsigned reps = 1;
  bool run_all = false;
  bool emit_json = false;
  bool smoke = false;
  bool drive = false;
  std::string net_host = "127.0.0.1";
  unsigned long long net_port = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    unsigned long long n = 0;
    double d = 0.0;
    if (arg == "--lock") {
      locks.emplace_back(next());
    } else if (arg == "--workload") {
      cfg.workload = next();
      // Fail fast, listing the registered names -- never default silently.
      if (!cohort::bench::is_workload_name(cfg.workload)) {
        std::fprintf(stderr,
                     "%s: unknown workload '%s' (registered: %s; see "
                     "--list-workloads)\n",
                     argv[0], cfg.workload.c_str(),
                     cohort::bench::workload_names_joined().c_str());
        return 2;
      }
    } else if (arg == "--all") {
      run_all = true;
    } else if (arg == "--list") {
      for (const auto& name : cohort::reg::all_lock_names())
        std::printf("%s\n", name.c_str());
      return 0;
    } else if (arg == "--list-locks") {
      // Optional family filter: consume the next argv unless it is a flag.
      std::string family;
      if (i + 1 < argc && argv[i + 1][0] != '-') family = argv[++i];
      return list_locks(family);
    } else if (arg == "--list-workloads") {
      list_workloads();
      return 0;
    } else if (arg == "--threads" && parse_unsigned(next(), n) && n > 0) {
      cfg.threads = static_cast<unsigned>(n);
    } else if (arg == "--duration" && parse_double(next(), d)) {
      cfg.duration_s = d;
    } else if (arg == "--warmup" && parse_double(next(), d)) {
      cfg.warmup_s = d;
    } else if (arg == "--cs-work" && parse_unsigned(next(), n)) {
      cfg.cs_work = static_cast<unsigned>(n);
    } else if (arg == "--non-cs-work" && parse_unsigned(next(), n)) {
      cfg.non_cs_work = static_cast<unsigned>(n);
    } else if (arg == "--shards" && parse_unsigned(next(), n) && n > 0) {
      cfg.shards = static_cast<std::size_t>(n);
    } else if (arg == "--get-ratio" && parse_double(next(), d) && d <= 1.0) {
      cfg.get_ratio = d;
    } else if (arg == "--zipf" && parse_double(next(), d)) {
      cfg.zipf_theta = d;
    } else if (arg == "--keyspace" && parse_unsigned(next(), n) && n > 0) {
      cfg.keyspace = static_cast<std::size_t>(n);
    } else if (arg == "--value-bytes" && parse_unsigned(next(), n)) {
      cfg.value_bytes = static_cast<std::size_t>(n);
    } else if (arg == "--buckets" && parse_unsigned(next(), n) && n > 0) {
      cfg.kv_buckets = static_cast<std::size_t>(n);
    } else if (arg == "--max-items" && parse_unsigned(next(), n)) {
      cfg.kv_max_items = static_cast<std::size_t>(n);
    } else if (arg == "--numa-place") {
      cfg.numa_place = true;
    } else if (arg == "--io-threads" && parse_unsigned(next(), n) && n > 0) {
      cfg.net_io_threads = static_cast<unsigned>(n);
    } else if (arg == "--net-pin") {
      cfg.net_pin_io = true;
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--drive") {
      drive = true;
    } else if (arg == "--net-fault") {
      cfg.net_fault_spec = next();
    } else if (arg == "--net-idle-ms" && parse_unsigned(next(), n)) {
      cfg.net_idle_timeout_ms = static_cast<std::uint32_t>(n);
    } else if (arg == "--net-lifetime-ms" && parse_unsigned(next(), n)) {
      cfg.net_conn_lifetime_ms = static_cast<std::uint32_t>(n);
    } else if (arg == "--net-max-requests" && parse_unsigned(next(), n)) {
      cfg.net_max_requests = n;
    } else if (arg == "--net-max-conns" && parse_unsigned(next(), n)) {
      cfg.net_max_conns = static_cast<unsigned>(n);
    } else if (arg == "--net-op-timeout-ms" && parse_unsigned(next(), n)) {
      cfg.net_op_timeout_ms = static_cast<std::uint32_t>(n);
    } else if (arg == "--net-retries" && parse_unsigned(next(), n)) {
      cfg.net_retries = static_cast<unsigned>(n);
    } else if (arg == "--net-drain-ms" && parse_unsigned(next(), n) && n > 0) {
      cfg.net_drain_deadline_ms = static_cast<std::uint32_t>(n);
    } else if (arg == "--net-host") {
      net_host = next();
    } else if (arg == "--net-port" && parse_unsigned(next(), n) &&
               n <= 65535) {
      net_port = n;
    } else if (arg == "--fission-limit" && parse_unsigned(next(), n) &&
               n > 0) {
      cfg.fission_limit = static_cast<std::uint32_t>(n);
    } else if (arg == "--reengage-drains" && parse_unsigned(next(), n) &&
               n > 0) {
      cfg.reengage_drains = static_cast<std::uint32_t>(n);
    } else if (arg == "--gcr-min-active" && parse_unsigned(next(), n) &&
               n > 0) {
      cfg.gcr_min_active = static_cast<std::uint32_t>(n);
    } else if (arg == "--gcr-max-active" && parse_unsigned(next(), n) &&
               n > 0) {
      cfg.gcr_max_active = static_cast<std::uint32_t>(n);
    } else if (arg == "--gcr-rotation" && parse_unsigned(next(), n) && n > 0) {
      cfg.gcr_rotation = static_cast<std::uint32_t>(n);
    } else if (arg == "--gcr-tune-window" && parse_unsigned(next(), n) &&
               n > 0) {
      cfg.gcr_tune_window = static_cast<std::uint32_t>(n);
    } else if (arg == "--adaptive-window" && parse_unsigned(next(), n) &&
               n > 0) {
      cfg.adaptive_window = static_cast<std::uint32_t>(n);
    } else if (arg == "--adaptive-escalate" && parse_unsigned(next(), n) &&
               n > 0 && n <= 100) {
      cfg.adaptive_escalate = static_cast<std::uint32_t>(n);
    } else if (arg == "--adaptive-deescalate" && parse_unsigned(next(), n) &&
               n > 0 && n <= 100) {
      cfg.adaptive_deescalate = static_cast<std::uint32_t>(n);
    } else if (arg == "--adaptive-hysteresis" && parse_unsigned(next(), n) &&
               n > 0) {
      cfg.adaptive_hysteresis = static_cast<std::uint32_t>(n);
    } else if (arg == "--adaptive-max-level" && parse_unsigned(next(), n) &&
               n > 0 && n <= 3) {
      cfg.adaptive_max_level = static_cast<std::uint32_t>(n);
    } else if (arg == "--adaptive-gcr-waiters" && parse_unsigned(next(), n) &&
               n > 0) {
      cfg.adaptive_gcr_waiters = static_cast<std::uint32_t>(n);
    } else if (arg == "--size-zipf" && parse_double(next(), d)) {
      cfg.alloc_size_zipf = d;
    } else if (arg == "--alloc-min" && parse_unsigned(next(), n) && n > 0) {
      cfg.alloc_min = static_cast<std::size_t>(n);
    } else if (arg == "--alloc-max" && parse_unsigned(next(), n) && n > 0) {
      cfg.alloc_max = static_cast<std::size_t>(n);
    } else if (arg == "--working-set" && parse_unsigned(next(), n) && n > 0) {
      cfg.working_set = static_cast<std::size_t>(n);
    } else if (arg == "--arena-mb" && parse_unsigned(next(), n) && n > 0) {
      cfg.arena_mb = static_cast<std::size_t>(n);
    } else if (arg == "--windows" && parse_unsigned(next(), n)) {
      cfg.snap_windows = static_cast<unsigned>(n);
    } else if (arg == "--reps" && parse_unsigned(next(), n) && n > 0) {
      reps = static_cast<unsigned>(n);
    } else if (arg == "--clusters" && parse_unsigned(next(), n)) {
      cfg.clusters = static_cast<unsigned>(n);
    } else if (arg == "--pass-limit" && parse_unsigned(next(), n)) {
      cfg.pass_limit = n;
    } else if (arg == "--patience-us" && parse_unsigned(next(), n)) {
      cfg.patience_us = n;
    } else if (arg == "--no-pin") {
      cfg.pin = false;
    } else if (arg == "--json") {
      emit_json = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "%s: bad argument '%s'\n", argv[0], arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  if (smoke) {
    // Scripted protocol exchange against an externally started server --
    // the CI loopback smoke job's client half.
    if (cfg.workload != "kvnet") {
      std::fprintf(stderr, "%s: --smoke requires --workload kvnet\n",
                   argv[0]);
      return 2;
    }
    if (net_port == 0) {
      std::fprintf(stderr, "%s: --smoke requires --net-port\n", argv[0]);
      return 2;
    }
    return cohort::bench::run_kvnet_smoke(
        net_host, static_cast<std::uint16_t>(net_port));
  }

  if (drive) {
    // Sustained best-effort load against an externally started server that
    // may shed, stall, or die mid-run -- the chaos script's client half.
    if (cfg.workload != "kvnet") {
      std::fprintf(stderr, "%s: --drive requires --workload kvnet\n",
                   argv[0]);
      return 2;
    }
    if (net_port == 0) {
      std::fprintf(stderr, "%s: --drive requires --net-port\n", argv[0]);
      return 2;
    }
    return cohort::bench::run_kvnet_drive(
        net_host, static_cast<std::uint16_t>(net_port), cfg);
  }

  if (run_all)
    locks = cohort::reg::all_lock_names();
  else if (locks.empty())
    locks.push_back(cfg.lock_name);

  for (const auto& name : locks) {
    if (!cohort::reg::is_lock_name(name)) {
      std::fprintf(stderr, "%s: %s\n", argv[0],
                   cohort::reg::unknown_lock_message(name).c_str());
      return 2;
    }
  }

  std::vector<cohort::bench::json> records;
  bool all_ok = true;
  for (const auto& name : locks) {
    cfg.lock_name = name;
    for (unsigned r = 0; r < reps; ++r) {
      cohort::bench::bench_result res;
      try {
        res = cohort::bench::run_bench(cfg);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 2;
      }
      if (!res.mutual_exclusion_ok) all_ok = false;
      if (emit_json)
        records.push_back(cohort::bench::to_json(res));
      else
        std::printf("%s\n", cohort::bench::to_text(res).c_str());
    }
  }

  if (emit_json) {
    if (records.size() == 1) {
      std::printf("%s\n", records.front().dump(2).c_str());
    } else {
      cohort::bench::json arr = cohort::bench::json::array();
      for (auto& r : records) arr.push(std::move(r));
      std::printf("%s\n", arr.dump(2).c_str());
    }
  }
  if (!all_ok) {
    std::fprintf(stderr, "%s: mutual-exclusion audit FAILED\n", argv[0]);
    return 1;
  }
  return 0;
}
