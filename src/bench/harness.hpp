// Real-thread benchmark harness for the registry locks.
//
// This is the repository's real-hardware counterpart of the simulated LBench
// (sim/apps/lbench.*): N OS threads, pinned round-robin across the NUMA
// clusters of the discovered topology, drive a workload against one lock
// configuration.  Workloads are registered by name in bench/workload.hpp --
// the paper's three evaluation applications ("cs", "kv", "alloc", DESIGN.md
// §4) -- and share the windowed-measurement skeleton (bench/driver.hpp).
//
// Measured outputs follow the paper's evaluation: throughput, fairness as
// the per-thread op-count CV (Figure 5), timeouts for abortable locks
// (Figure 6), and the cohort batch lengths that explain the speedups (§3.7)
// -- per shard for the kv workload, per arena for the allocator, and as
// windowed snapshots (windows[]) over time for every workload.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "alloc/arena.hpp"
#include "bench/json.hpp"
#include "kvstore/kv_shard.hpp"
#include "locks/registry.hpp"

namespace cohort::bench {

struct bench_config {
  std::string workload = "cs";  // a bench/workload.hpp registry name
  std::string lock_name = "C-BO-MCS";
  unsigned threads = 4;
  double duration_s = 1.0;   // measured window
  double warmup_s = 0.1;     // settle time before the window opens
  unsigned clusters = 0;     // 0 = discovered topology
  std::uint64_t pass_limit = 64;  // cohort may-pass-local bound
  // Fast-path hysteresis knobs for the -fp locks (cohort/fastpath.hpp);
  // 0 = resolve through the registry default chain (COHORT_FISSION_LIMIT /
  // COHORT_REENGAGE_DRAINS env, then the compiled 8/4).
  std::uint32_t fission_limit = 0;
  std::uint32_t reengage_drains = 0;
  // Admission knobs for the gcr- locks (cohort/gcr.hpp); 0 = resolve through
  // the registry default chain (COHORT_GCR_* env, then the compiled policy;
  // max_active additionally defaults to the online CPU count).
  std::uint32_t gcr_min_active = 0;
  std::uint32_t gcr_max_active = 0;
  std::uint32_t gcr_rotation = 0;
  std::uint32_t gcr_tune_window = 0;
  // Monitor knobs for the adaptive lock (locks/adaptive.hpp); 0 = resolve
  // through the registry default chain (COHORT_ADAPTIVE_* env, then the
  // compiled adaptive_policy; gcr_waiters additionally defaults to the
  // online CPU count).
  std::uint32_t adaptive_window = 0;
  std::uint32_t adaptive_escalate = 0;
  std::uint32_t adaptive_deescalate = 0;
  std::uint32_t adaptive_hysteresis = 0;
  std::uint32_t adaptive_max_level = 0;
  std::uint32_t adaptive_gcr_waiters = 0;
  // Pin threads to CPUs of their cluster, one CPU each round-robin, so an
  // oversubscribed run (threads > online CPUs) stacks threads on CPUs
  // deterministically instead of leaving placement to the scheduler.
  bool pin = true;
  // Telemetry windows over the measured interval: the coordinator samples
  // the op and cohort-batch counters snap_windows times per measured run
  // (and at the same cadence during warmup), emitting windows[] in every
  // record.  0 = boundary samples only (one warmup + one measured window).
  unsigned snap_windows = 8;
  // > 0: abortable locks acquire with bounded patience and count timeouts;
  // non-abortable locks ignore it.  ("cs" workload only.)
  std::uint64_t patience_us = 0;

  // "cs" workload parameters.
  unsigned cs_work = 4;      // shared cache lines written per critical section
  unsigned non_cs_work = 64; // private RNG steps between critical sections

  // "kv" workload parameters.
  std::size_t shards = 1;          // independent shards (1 = single cache lock)
  std::size_t kv_buckets = 1024;   // hash buckets per shard
  std::size_t kv_max_items = 0;    // total eviction budget (0 = no eviction)
  double get_ratio = 0.9;          // fraction of ops that are gets
  std::size_t keyspace = 10'000;   // distinct keys (prefilled before the run)
  std::size_t value_bytes = 64;    // payload size per value
  // Key-skew exponent: keys are drawn Zipf(theta) over the keyspace (hot
  // keys first).  0 = uniform.  Hot keys concentrate contention on one
  // shard, which is exactly what stresses fast-path disengagement.
  double zipf_theta = 0.0;
  // Shared by kv and alloc: first-touch each shard (kv) or arena (alloc) on
  // its home cluster, and give the allocator one arena per cluster.
  bool numa_place = false;

  // "kvnet" workload parameters (kv parameters above apply too): the same
  // mix, but served over loopback sockets by the in-process net front-end.
  unsigned net_io_threads = 2;  // server event-loop threads
  bool net_pin_io = false;      // pin server workers to clusters
  // Fault plan for the io_ops seam ("seed=42,short_read=0.1,..."; see
  // net/fault.hpp).  Empty = COHORT_NET_FAULT_* env, which defaults to no
  // faults.
  std::string net_fault_spec;
  // Server hardening knobs (net/server.hpp; 0 = feature off / unlimited).
  std::uint32_t net_idle_timeout_ms = 0;
  std::uint32_t net_conn_lifetime_ms = 0;
  std::uint64_t net_max_requests = 0;
  unsigned net_max_conns = 0;          // per worker; excess is shed
  std::uint32_t net_drain_deadline_ms = 2000;
  // Client resilience: per-op deadline and transient-failure retry budget
  // (net/client.hpp).
  std::uint32_t net_op_timeout_ms = 0;
  unsigned net_retries = 0;

  // "alloc" workload parameters (mmicro's allocate/write/free loop).
  std::size_t alloc_min = 64;     // smallest request size, bytes
  std::size_t alloc_max = 256;    // largest request size, bytes
  std::size_t working_set = 64;   // live blocks each thread cycles through
  std::size_t arena_mb = 64;      // capacity per arena, MiB
  // Size-class skew: > 0 draws sizes from a geometric ladder of classes
  // over [alloc_min, alloc_max] with Zipf(theta) weights, smallest class
  // hottest (real allocator traces are small-heavy).  0 keeps the uniform
  // byte draw.
  double alloc_size_zipf = 0.0;
};

// Post-run snapshot of one shard ("kv" workload): its kv counters plus its
// lock's cohort batching counters when the lock keeps them.
struct shard_report {
  unsigned home_cluster = 0;
  std::size_t items = 0;       // resident items at quiescence
  kvstore::kv_stats kv{};
  bool has_cohort = false;
  reg::erased_stats cohort{};
};

// Post-run snapshot of one arena ("alloc" workload): its allocator counters
// (read after the drain, so allocated_bytes != 0 is a leak) plus its lock's
// cohort batching counters when the lock keeps them.
struct arena_report {
  unsigned home_cluster = 0;
  cohortalloc::arena_stats alloc{};
  bool heap_ok = false;        // boundary tags + free-tree invariants held
  bool has_cohort = false;
  reg::erased_stats cohort{};
};

// Per-shard slice of one telemetry window ("kv"/"kvnet" workloads): the
// shard's get/hit deltas over the interval, sampled live from the shard's
// kv_counters cells.
struct shard_window {
  std::uint64_t gets = 0;
  std::uint64_t get_hits = 0;
  double hit_rate = 0.0;
  // Adaptive-ladder state of this shard's lock (locks/adaptive.hpp; 0 for
  // every other lock): the 1-based rung at the window close (gauge) and the
  // hot-swaps completed inside the window (delta).  This pair is how the
  // windows[] trace shows heterogeneity -- hot shards escalated, cold
  // shards still on the base rung -- which no whole-store aggregate can.
  std::uint64_t current_policy = 0;
  std::uint64_t policy_switches = 0;
};

// One telemetry window: the interval between two mid-run counter samples
// (bench/driver.hpp).  Windows tile the run from the start barrier to the
// close of the measured interval; `warmup` windows precede the measured
// one, so warmup-vs-steady-state batching dynamics are visible per record.
struct bench_window {
  double t0_s = 0.0;           // window bounds, seconds since the run start
  double t1_s = 0.0;
  bool warmup = false;         // entirely inside the warmup phase
  std::uint64_t ops = 0;       // completed operations inside the window
  std::uint64_t timeouts = 0;
  double throughput_ops_s = 0.0;
  // Cohort batching deltas across all of the workload's locks; absent
  // (has_cohort == false) for plain locks.
  bool has_cohort = false;
  std::uint64_t acquisitions = 0;
  std::uint64_t global_acquires = 0;
  // Fast-path deltas (always 0 for non-fp cohort locks): acquisitions that
  // took only the top-level CAS, and fast attempts that fissioned into the
  // cohort slow path.  Together with global_acquires these show the
  // engage/disengage dynamics over time.
  std::uint64_t fast_acquires = 0;
  std::uint64_t fissions = 0;
  // Compact-lock deltas (locks/cna.hpp; always 0 for per-cluster cohort
  // compositions): waiters parked on the deferred remote list this window.
  std::uint64_t deferrals = 0;
  // Admission telemetry (cohort/gcr.hpp; always 0 outside gcr- locks).
  // active_set / active_target are *gauges* sampled at the window close;
  // parked / rotations are event deltas over the window -- together they
  // are the live trace of the admission state machine the tuner drives.
  std::uint64_t active_set = 0;
  std::uint64_t active_target = 0;
  std::uint64_t parked = 0;
  std::uint64_t rotations = 0;
  // Adaptive-ladder telemetry (locks/adaptive.hpp; always 0 otherwise):
  // policy_switches is the hot-swap delta over the window, current_policy
  // the summed 1-based rung gauge at the window close (for one lock, the
  // rung itself; for a sharded store, per_shard[] carries the signal).
  std::uint64_t policy_switches = 0;
  std::uint64_t current_policy = 0;
  // Mean batch length inside this window: slow acquisitions per global
  // acquire (fast acquires never touch the global lock and are excluded).
  // When the window saw acquisitions but no migration, the batch outlasted
  // the window and the count is a lower bound.
  double mean_batch = 0.0;
  // Server-side deltas over this window (kvnet only; has_net == false
  // otherwise): accepts, answered commands, and the robustness events --
  // sheds, timeout evictions, resets, drain closes, injected faults.
  bool has_net = false;
  std::uint64_t net_connections = 0;
  std::uint64_t net_commands = 0;
  std::uint64_t net_protocol_errors = 0;
  std::uint64_t net_shed = 0;
  std::uint64_t net_timeouts = 0;
  std::uint64_t net_resets = 0;
  std::uint64_t net_drained = 0;
  std::uint64_t net_injected_faults = 0;
  // Per-shard hit-rate over this window (kv workloads; empty otherwise).
  std::vector<shard_window> shards;
};

struct bench_result {
  bench_config config;

  unsigned clusters_used = 0;
  unsigned pinned_threads = 0;  // threads whose CPU affinity call succeeded
  // Online CPU count at run time; threads / online_cpus > 1 is an
  // oversubscribed run (the JSON record carries the ratio).
  unsigned online_cpus = 0;
  double elapsed_s = 0.0;       // actual measured-window length

  std::uint64_t total_ops = 0;  // completed operations in the window
  // Completed operations over the whole run (warmup + window + tail).
  // Every worker performs at least one attempt, so with infinite patience
  // this is >= threads -- the liveness signal even when a heavily loaded
  // host deschedules the workers for the entire measured window.  (With
  // patience_us > 0 an attempt may time out and count in timeouts instead,
  // so check whole_run_ops + timeouts in that mode.)
  std::uint64_t whole_run_ops = 0;
  double throughput_ops_s = 0.0;
  std::vector<std::uint64_t> per_thread_ops;
  // Population stddev of per-thread ops divided by the mean (0 = perfectly
  // fair); Figure 5 reports this as a percentage.
  double fairness_cv = 0.0;
  std::uint64_t timeouts = 0;   // failed acquisitions/allocs in the window
  std::uint64_t whole_run_timeouts = 0;  // same, over the whole run

  // Windowed counter snapshots (warmup + measured), every workload.
  std::vector<bench_window> windows;

  // Whole-run (warmup included) cohort statistics; absent for plain locks.
  // For the kv workload this is the sum over all shard locks.
  bool has_cohort_stats = false;
  reg::erased_stats cohort{};

  // Lock-coherence audit; what it checks is per workload (the registry
  // descriptor's `audit` string names it).  "cs": every critical section
  // increments each shared line once, and after the run all lines must
  // equal the whole-run acquisition count.  "kv": every operation bumps
  // exactly one unsynchronised kv counter under its shard lock, so at
  // quiescence gets + sets must equal whole-run ops plus the prefill sets
  // (a broken lock loses counter updates).  "alloc": after the post-join
  // drain every arena must be back to one fully coalesced free chunk with
  // zero bytes outstanding, alloc/free counter identities must hold against
  // whole-run ops, and no block may ever have been handed to two threads at
  // once (owner tags).
  bool mutual_exclusion_ok = false;

  // "kv" workload outputs (whole run, read at quiescence after join).
  kvstore::kv_stats kv{};
  std::size_t kv_final_size = 0;
  double hit_rate = 0.0;
  std::vector<shard_report> shard_reports;

  // "alloc" workload outputs (whole run, read after the post-join drain).
  cohortalloc::arena_stats alloc{};     // summed over all arenas
  std::uint64_t tag_mismatches = 0;     // double-handout detections
  std::vector<arena_report> arena_reports;

  // "kvnet" workload outputs: server-side counters after the drain.  With
  // no fault plan the audit requires protocol_errors == 0 and one answered
  // command per client op; with faults active, retried ops may execute
  // more than once, so the audit relaxes to bounded inequalities (see
  // run_kvnet_bench).  In both cases the close-reason identity
  //   connections == shed + closed + timeouts + resets + drained
  // must hold exactly.
  std::uint64_t net_connections = 0;
  std::uint64_t net_commands = 0;
  std::uint64_t net_protocol_errors = 0;
  std::uint64_t net_closed = 0;
  std::uint64_t net_shed = 0;
  std::uint64_t net_timeouts = 0;
  std::uint64_t net_resets = 0;
  std::uint64_t net_drained = 0;
  std::uint64_t net_injected_faults = 0;
  std::uint64_t net_client_retries = 0;  // summed over all client conns
  bool net_drain_clean = false;  // drain() finished before its deadline
};

// Installs a topology honouring cfg.clusters: the discovered topology
// as-is (clusters == 0), its first `clusters` nodes, or a synthetic
// topology when the host has fewer nodes than requested.  Returns the
// cluster count in effect.
unsigned install_topology(unsigned clusters);

// Runs one measured repetition of cfg against the named registry lock,
// dispatching cfg.workload through the workload registry (workload.hpp).
// Throws std::invalid_argument for unknown lock names, unknown workloads,
// or out-of-range parameters; the what() string lists the registered names.
bench_result run_bench(const bench_config& cfg);

// One machine-readable trajectory record.
json to_json(const bench_result& r);

// Human-readable one-line summary.
std::string to_text(const bench_result& r);

}  // namespace cohort::bench
