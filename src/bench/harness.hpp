// Real-thread benchmark harness for the registry locks.
//
// This is the repository's real-hardware counterpart of the simulated LBench
// (sim/apps/lbench.*): N OS threads, pinned round-robin across the NUMA
// clusters of the discovered topology, hammer one lock around a critical
// section that touches shared cache lines, with configurable private work
// between acquisitions.  Measured outputs follow the paper's evaluation:
// throughput (Figures 2/4), fairness as the per-thread op-count CV
// (Figure 5), timeouts for abortable locks (Figure 6), and the average
// cohort batch length that explains the speedups (§3.7).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bench/json.hpp"
#include "locks/registry.hpp"

namespace cohort::bench {

struct bench_config {
  std::string lock_name = "C-BO-MCS";
  unsigned threads = 4;
  double duration_s = 1.0;   // measured window
  double warmup_s = 0.1;     // settle time before the window opens
  unsigned cs_work = 4;      // shared cache lines written per critical section
  unsigned non_cs_work = 64; // private RNG steps between critical sections
  unsigned clusters = 0;     // 0 = discovered topology
  std::uint64_t pass_limit = 64;  // cohort may-pass-local bound
  bool pin = true;           // pin threads to their cluster's CPUs
  // > 0: abortable locks acquire with bounded patience and count timeouts;
  // non-abortable locks ignore it.
  std::uint64_t patience_us = 0;
};

struct bench_result {
  bench_config config;

  unsigned clusters_used = 0;
  unsigned pinned_threads = 0;  // threads whose CPU affinity call succeeded
  double elapsed_s = 0.0;       // actual measured-window length

  std::uint64_t total_ops = 0;  // completed critical sections in the window
  // Completed critical sections over the whole run (warmup + window + tail).
  // Every worker performs at least one acquisition attempt, so with infinite
  // patience this is >= threads -- the liveness signal even when a heavily
  // loaded host deschedules the workers for the entire measured window.
  // (With patience_us > 0 an attempt may time out and count in timeouts
  // instead, so check whole_run_ops + timeouts in that mode.)
  std::uint64_t whole_run_ops = 0;
  double throughput_ops_s = 0.0;
  std::vector<std::uint64_t> per_thread_ops;
  // Population stddev of per-thread ops divided by the mean (0 = perfectly
  // fair); Figure 5 reports this as a percentage.
  double fairness_cv = 0.0;
  std::uint64_t timeouts = 0;   // failed bounded-patience acquisitions

  // Whole-run (warmup included) cohort statistics; absent for plain locks.
  bool has_cohort_stats = false;
  reg::erased_stats cohort{};

  // Every critical section increments each shared line once; after the run
  // all lines must agree with the total acquisition count.
  bool mutual_exclusion_ok = false;
};

// Installs a topology honouring cfg.clusters: the discovered topology
// as-is (clusters == 0), its first `clusters` nodes, or a synthetic
// topology when the host has fewer nodes than requested.  Returns the
// cluster count in effect.
unsigned install_topology(unsigned clusters);

// Runs one measured repetition of cfg against the named registry lock.
// Throws std::invalid_argument for unknown lock names.
bench_result run_bench(const bench_config& cfg);

// One machine-readable trajectory record.
json to_json(const bench_result& r);

// Human-readable one-line summary.
std::string to_text(const bench_result& r);

}  // namespace cohort::bench
