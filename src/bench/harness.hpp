// Real-thread benchmark harness for the registry locks.
//
// This is the repository's real-hardware counterpart of the simulated LBench
// (sim/apps/lbench.*): N OS threads, pinned round-robin across the NUMA
// clusters of the discovered topology, drive a workload against one lock
// configuration.  Two workloads share the windowed-measurement skeleton
// (bench/driver.hpp):
//
//   "cs"  -- the paper's microbenchmark: one lock around a critical section
//            that writes shared cache lines, private work between
//            acquisitions (Figures 2/4/5/6).
//   "kv"  -- an application workload: a memaslap-style get/set mix against
//            the sharded kv engine (kvstore/sharded_store.hpp), with shard
//            count, get ratio, keyspace and NUMA placement as runtime axes
//            (the Table 1 experiment grown into a lock x shards matrix).
//
// Measured outputs follow the paper's evaluation: throughput, fairness as
// the per-thread op-count CV (Figure 5), timeouts for abortable locks
// (Figure 6), and the cohort batch lengths that explain the speedups (§3.7)
// -- per shard for the kv workload.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bench/json.hpp"
#include "kvstore/kv_shard.hpp"
#include "locks/registry.hpp"

namespace cohort::bench {

struct bench_config {
  std::string workload = "cs";  // "cs" or "kv"
  std::string lock_name = "C-BO-MCS";
  unsigned threads = 4;
  double duration_s = 1.0;   // measured window
  double warmup_s = 0.1;     // settle time before the window opens
  unsigned clusters = 0;     // 0 = discovered topology
  std::uint64_t pass_limit = 64;  // cohort may-pass-local bound
  bool pin = true;           // pin threads to their cluster's CPUs
  // > 0: abortable locks acquire with bounded patience and count timeouts;
  // non-abortable locks ignore it.  ("cs" workload only.)
  std::uint64_t patience_us = 0;

  // "cs" workload parameters.
  unsigned cs_work = 4;      // shared cache lines written per critical section
  unsigned non_cs_work = 64; // private RNG steps between critical sections

  // "kv" workload parameters.
  std::size_t shards = 1;          // independent shards (1 = single cache lock)
  std::size_t kv_buckets = 1024;   // hash buckets per shard
  std::size_t kv_max_items = 0;    // total eviction budget (0 = no eviction)
  double get_ratio = 0.9;          // fraction of ops that are gets
  std::size_t keyspace = 10'000;   // distinct keys (prefilled before the run)
  std::size_t value_bytes = 64;    // payload size per value
  bool numa_place = false;         // first-touch shards on their home cluster
};

// Post-run snapshot of one shard ("kv" workload): its kv counters plus its
// lock's cohort batching counters when the lock keeps them.
struct shard_report {
  unsigned home_cluster = 0;
  std::size_t items = 0;       // resident items at quiescence
  kvstore::kv_stats kv{};
  bool has_cohort = false;
  reg::erased_stats cohort{};
};

struct bench_result {
  bench_config config;

  unsigned clusters_used = 0;
  unsigned pinned_threads = 0;  // threads whose CPU affinity call succeeded
  double elapsed_s = 0.0;       // actual measured-window length

  std::uint64_t total_ops = 0;  // completed operations in the window
  // Completed operations over the whole run (warmup + window + tail).
  // Every worker performs at least one attempt, so with infinite patience
  // this is >= threads -- the liveness signal even when a heavily loaded
  // host deschedules the workers for the entire measured window.  (With
  // patience_us > 0 an attempt may time out and count in timeouts instead,
  // so check whole_run_ops + timeouts in that mode.)
  std::uint64_t whole_run_ops = 0;
  double throughput_ops_s = 0.0;
  std::vector<std::uint64_t> per_thread_ops;
  // Population stddev of per-thread ops divided by the mean (0 = perfectly
  // fair); Figure 5 reports this as a percentage.
  double fairness_cv = 0.0;
  std::uint64_t timeouts = 0;   // failed bounded-patience acquisitions

  // Whole-run (warmup included) cohort statistics; absent for plain locks.
  // For the kv workload this is the sum over all shard locks.
  bool has_cohort_stats = false;
  reg::erased_stats cohort{};

  // Lock-coherence audit.  "cs": every critical section increments each
  // shared line once, and after the run all lines must equal the whole-run
  // acquisition count.  "kv": every operation bumps exactly one
  // unsynchronised kv counter under its shard lock, so at quiescence
  // gets + sets must equal whole-run ops plus the prefill sets (a broken
  // lock loses counter updates).
  bool mutual_exclusion_ok = false;

  // "kv" workload outputs (whole run, read at quiescence after join).
  kvstore::kv_stats kv{};
  std::size_t kv_final_size = 0;
  double hit_rate = 0.0;
  std::vector<shard_report> shard_reports;
};

// Installs a topology honouring cfg.clusters: the discovered topology
// as-is (clusters == 0), its first `clusters` nodes, or a synthetic
// topology when the host has fewer nodes than requested.  Returns the
// cluster count in effect.
unsigned install_topology(unsigned clusters);

// Runs one measured repetition of cfg against the named registry lock,
// dispatching on cfg.workload.  Throws std::invalid_argument for unknown
// lock names, unknown workloads, or out-of-range parameters.
bench_result run_bench(const bench_config& cfg);

// One machine-readable trajectory record.
json to_json(const bench_result& r);

// Human-readable one-line summary.
std::string to_text(const bench_result& r);

}  // namespace cohort::bench
