// Shared pieces of the "alloc" benchmark workload (DESIGN.md §4): the
// arena placement policy and mmicro's per-thread allocate/write/free loop.
// Header-only templates so both consumers monomorphise the hot path:
//
//   * run_alloc_bench (alloc_workload.cpp) -- the windowed cohort_bench
//     workload, lock dispatched by registry name;
//   * bench/real_allocator.cpp -- the google-benchmark wrapper around the
//     identical loop, so there is exactly one allocator implementation.
//
// This is the real-machine analogue of the paper's mmicro (Table 2): each
// thread cycles a fixed working set of live blocks, every step frees the
// slot's previous block and allocates a fresh one of a size drawn from
// [alloc_min, alloc_max], then writes its first words.
#pragma once

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "alloc/arena.hpp"
#include "numa/topology.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace cohort::bench::alloc {

// The arenas one benchmark run allocates from.  Default: a single arena
// shared by every thread -- the paper's single-lock allocator, the lock
// being the entire point.  With per_cluster (mirroring --numa-place), one
// arena per cluster, each constructed and prefaulted -- first-touched --
// from a thread pinned to its home cluster, the allocator analogue of the
// kv store's shard placement.
template <typename Lock>
class arena_set {
 public:
  // make_lock: () -> std::unique_ptr<Lock>, called once per arena.
  template <typename Factory>
  arena_set(std::size_t bytes_per_arena, bool per_cluster,
            Factory&& make_lock) {
    const auto& topo = numa::system_topology();
    const unsigned clusters = topo.clusters() != 0 ? topo.clusters() : 1;
    const unsigned n = per_cluster ? clusters : 1;
    arenas_.resize(n);
    homes_.resize(n);
    for (unsigned a = 0; a < n; ++a) {
      homes_[a] = per_cluster ? a : 0;
      auto build = [&, a] {
        if (per_cluster) numa::pin_thread_to_cluster(topo, homes_[a]);
        arenas_[a] = std::make_unique<cohortalloc::arena<Lock>>(
            bytes_per_arena, make_lock);
        arenas_[a]->prefault();
      };
      if (per_cluster)
        std::thread(build).join();  // sequential one-shot placement threads
      else
        build();
    }
  }

  // The arena a thread on `cluster` allocates from.
  cohortalloc::arena<Lock>& for_cluster(unsigned cluster) {
    return *arenas_[arenas_.size() == 1 ? 0 : cluster % arenas_.size()];
  }

  std::size_t count() const noexcept { return arenas_.size(); }
  cohortalloc::arena<Lock>& at(std::size_t a) { return *arenas_[a]; }
  unsigned home_cluster(std::size_t a) const { return homes_[a]; }

 private:
  std::vector<std::unique_ptr<cohortalloc::arena<Lock>>> arenas_;
  std::vector<unsigned> homes_;
};

struct mmicro_params {
  std::size_t alloc_min = 64;
  std::size_t alloc_max = 256;
  std::size_t working_set = 64;
  // Size-class skew (ROADMAP "Zipfian alloc size classes"): with
  // size_zipf > 0, request sizes come from a geometric ladder of classes
  // (alloc_min, 2*alloc_min, ... up to alloc_max) weighted Zipf(size_zipf)
  // with the *smallest* class hottest -- real allocator traces are
  // small-heavy, and the mixture of rare large blocks among hot small ones
  // is what stresses arena fragmentation and batching fairness.  0 keeps
  // the historical uniform byte draw over [alloc_min, alloc_max].
  double size_zipf = 0.0;
};

// The geometric size-class ladder the Zipf draw indexes: alloc_min
// doubling up to (and always including) alloc_max.
inline std::vector<std::size_t> size_class_ladder(std::size_t alloc_min,
                                                  std::size_t alloc_max) {
  std::vector<std::size_t> classes;
  for (std::size_t s = alloc_min; s < alloc_max; s *= 2)
    classes.push_back(s);
  classes.push_back(alloc_max);
  return classes;
}

// One thread's mmicro loop state: a ring of `working_set` live blocks.
// Every block is stamped with an owner tag (derived from the thread id and
// an allocation sequence number) in its first word when allocated, and the
// tag is re-verified at free time.  If a broken lock hands the same block
// to two threads at once, they scribble each other's tags and
// tag_mismatches() goes non-zero -- the allocator's double-handout audit,
// the analogue of the cs workload's shared-line check.
//
// mmicro writes the first four words of every block; words 1..3 carry the
// tag's complement so the writes stay part of the checked pattern.
template <typename Arena>
class mmicro_worker {
 public:
  mmicro_worker(unsigned tid, const mmicro_params& p)
      : params_(p),
        slots_(p.working_set != 0 ? p.working_set : 1),
        rng_(0xa110c0000ULL + tid),
        tid_(tid) {
    if (p.size_zipf > 0.0) {
      classes_ = size_class_ladder(p.alloc_min, p.alloc_max);
      pick_class_ = cohort::zipf_sampler(classes_.size(), p.size_zipf);
    }
  }

  // One benchmark operation: recycle the next ring slot, then allocate and
  // stamp a fresh block.  Returns false when the arena is out of memory
  // (counted as a failed op by the driver).
  bool step(Arena& a) {
    slot& s = slots_[seq_ % slots_.size()];
    if (s.p != nullptr) release(a, s);
    std::size_t size;
    if (!classes_.empty()) {
      size = classes_[pick_class_(rng_)];
    } else {
      const std::size_t span = params_.alloc_max - params_.alloc_min + 1;
      size = params_.alloc_min + rng_.next_range(span);
    }
    void* p = a.allocate(size);
    ++seq_;
    if (p == nullptr) return false;
    s.p = p;
    s.size = size;
    s.tag = make_tag();
    stamp(p, size, s.tag);
    return true;
  }

  // Frees every live block; call at quiescence (after the run joins) so the
  // arena occupancy audit can require an empty heap.
  void drain(Arena& a) {
    for (slot& s : slots_)
      if (s.p != nullptr) release(a, s);
  }

  std::uint64_t tag_mismatches() const noexcept { return tag_mismatches_; }

 private:
  struct slot {
    void* p = nullptr;
    std::size_t size = 0;  // requested size; bounds the checked words
    std::uint64_t tag = 0;
  };

  std::uint64_t make_tag() const {
    return (static_cast<std::uint64_t>(tid_) << 48) ^ (seq_ * 0x9e3779b97f4a7c15ULL) ^ 1u;
  }

  static void stamp(void* p, std::size_t size, std::uint64_t tag) {
    auto* words = static_cast<std::uint64_t*>(p);
    words[0] = tag;
    const std::size_t n = size / sizeof(std::uint64_t);
    for (std::size_t i = 1; i < 4 && i < n; ++i) words[i] = ~tag;
  }

  void release(Arena& a, slot& s) {
    const auto* words = static_cast<const std::uint64_t*>(s.p);
    if (words[0] != s.tag) ++tag_mismatches_;
    const std::size_t n = s.size / sizeof(std::uint64_t);
    for (std::size_t i = 1; i < 4 && i < n; ++i)
      if (words[i] != ~s.tag) ++tag_mismatches_;
    a.deallocate(s.p);
    s.p = nullptr;
  }

  mmicro_params params_;
  std::vector<slot> slots_;
  std::vector<std::size_t> classes_;       // empty = uniform byte draw
  cohort::zipf_sampler pick_class_{1, 0};  // rebuilt when classes_ is set
  xorshift rng_;
  std::uint64_t seq_ = 0;
  std::uint64_t tag_mismatches_ = 0;
  unsigned tid_;
};

}  // namespace cohort::bench::alloc
