// Shared plumbing of the two kv benchmark workloads ("kv" in-process,
// "kvnet" over loopback sockets): the mid-run counter probe and the
// post-run result fill.  Both drive the same store engine and route ops
// through the same command layer (kvstore/command.hpp); this header keeps
// their measurement and audit logic identical too.
#pragma once

#include <stdexcept>

#include "bench/driver.hpp"
#include "bench/harness.hpp"
#include "kvstore/sharded_store.hpp"

namespace cohort::bench::detail {

// Mid-run sampler: per-shard kv operation cells plus the summed shard-lock
// batching counters.  Race-free while workers (or server io threads) run --
// every constituent is a relaxed single-writer cell.
template <typename Store>
probe sample_kv_probe(const Store& store) {
  probe p;
  p.shards.resize(store.shard_count());
  for (std::size_t s = 0; s < store.shard_count(); ++s) {
    const kvstore::kv_counters& c = store.shard(s).counters();
    p.shards[s].gets = c.gets.get();
    p.shards[s].get_hits = c.get_hits.get();
    if (auto ls = store.lock_stats(s)) {
      p.shards[s].current_policy = ls->current_policy;
      p.shards[s].policy_switches = ls->policy_switches;
      p.stats += *ls;
      p.has_stats = true;
    }
  }
  return p;
}

// Post-run (quiescent) result fill: whole-run kv totals, hit rate, the
// counter-coherence audit, and the per-shard reports.  `extra_ops` covers
// operations the measured loop did not perform itself (the prefill sets,
// plus any server-side protocol error replies for kvnet -- every completed
// op must bump exactly one kv counter under its shard lock for the audit
// to hold).
template <typename Store>
void fill_kv_result(Store& store, bench_result& res,
                    std::uint64_t extra_ops) {
  const kvstore::kv_stats agg = store.stats();
  res.kv = agg;
  res.kv_final_size = store.size();
  res.hit_rate = agg.gets != 0 ? static_cast<double>(agg.get_hits) /
                                     static_cast<double>(agg.gets)
                               : 0.0;

  // Counter-coherence audit, the kv analogue of the cs shared-line audit:
  // each completed operation bumps exactly one kv counter under its shard
  // lock, so a lock that admits two threads at once loses updates here.
  res.mutual_exclusion_ok =
      agg.gets + agg.sets + agg.deletes == res.whole_run_ops + extra_ops &&
      agg.get_hits <= agg.gets;

  res.shard_reports.resize(store.shard_count());
  reg::erased_stats sum{};
  bool any_cohort = false;
  for (std::size_t s = 0; s < store.shard_count(); ++s) {
    shard_report& sr = res.shard_reports[s];
    sr.home_cluster = store.home_cluster(s);
    sr.items = store.shard(s).size();
    sr.kv = store.shard(s).stats();
    if (auto ls = store.lock_stats(s)) {
      sr.has_cohort = true;
      sr.cohort = *ls;
      sum += *ls;
      any_cohort = true;
    }
  }
  res.has_cohort_stats = any_cohort;
  res.cohort = sum;
}

// The common parameter validation of both kv workloads.
inline void validate_kv_config(const bench_config& cfg) {
  if (cfg.get_ratio < 0.0 || cfg.get_ratio > 1.0)
    throw std::invalid_argument("bench: get ratio must be in [0, 1]");
  if (cfg.shards == 0)
    throw std::invalid_argument("bench: shard count must be positive");
  if (cfg.zipf_theta < 0.0)
    throw std::invalid_argument("bench: zipf theta must be >= 0");
}

}  // namespace cohort::bench::detail
