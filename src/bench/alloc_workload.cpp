// The "alloc" workload: mmicro's allocate/write/free loop (paper §4.3,
// Table 2) against the real single-lock splay-tree arena, measured under
// the shared windowed skeleton.  Size class, working-set size, arena
// capacity, lock name and per-cluster arena placement are all runtime axes;
// the same loop backs bench/real_allocator.cpp via alloc_workload.hpp.
#include <memory>
#include <stdexcept>

#include "bench/alloc_workload.hpp"
#include "bench/driver.hpp"
#include "bench/workload.hpp"
#include "locks/registry.hpp"

namespace cohort::bench {

namespace {

template <typename Lock>
void run_alloc_typed(alloc::arena_set<Lock>& arenas, const bench_config& cfg,
                     bench_result& res) {
  using arena_t = cohortalloc::arena<Lock>;
  const alloc::mmicro_params params{.alloc_min = cfg.alloc_min,
                                    .alloc_max = cfg.alloc_max,
                                    .working_set = cfg.working_set,
                                    .size_zipf = cfg.alloc_size_zipf};
  const unsigned clusters = res.clusters_used != 0 ? res.clusters_used : 1;

  // Worker state outlives the worker threads: the ring of live blocks is
  // drained -- and the owner tags verified -- by the coordinator after the
  // join, so blocks still held when the run stops are not leaks.
  std::vector<std::unique_ptr<alloc::mmicro_worker<arena_t>>> workers(
      cfg.threads);

  auto make_body = [&](unsigned tid) {
    // Constructed on the worker's own thread so the ring is first-touched
    // locally; each thread allocates from its cluster's arena (one shared
    // arena unless numa_place).
    workers[tid] =
        std::make_unique<alloc::mmicro_worker<arena_t>>(tid, params);
    alloc::mmicro_worker<arena_t>* w = workers[tid].get();
    arena_t* arena = &arenas.for_cluster(tid % clusters);
    return [w, arena] { return w->step(*arena); };
  };
  // Mid-run sampler for windows[]: sums the arena locks' batching counters
  // (relaxed-atomic cells; the allocator counters stay quiescent-only).
  auto sample = [&]() -> detail::probe {
    detail::probe p;
    for (std::size_t a = 0; a < arenas.count(); ++a) {
      if (auto ls = arenas.at(a).lock_stats()) {
        p.stats += *ls;
        p.has_stats = true;
      }
    }
    return p;
  };
  const auto totals = detail::run_window(cfg, make_body, sample);

  detail::fill_window_result(res, totals);

  // Quiescence: drain every worker's live blocks, verifying owner tags.
  for (unsigned t = 0; t < cfg.threads; ++t) {
    if (workers[t] == nullptr) continue;
    workers[t]->drain(arenas.for_cluster(t % clusters));
    res.tag_mismatches += workers[t]->tag_mismatches();
  }

  // Arena occupancy/leak audit.  Everything was freed, and deallocate
  // coalesces with both physical neighbours immediately, so each arena must
  // be back to exactly one free chunk spanning its capacity with zero bytes
  // handed out; the boundary tags and the free tree must validate.  The
  // counter identities are the lock-coherence half: alloc_calls and friends
  // are plain counters bumped under the arena lock, so -- like the kv
  // counter audit -- a lock that admits two threads at once loses updates.
  res.arena_reports.resize(arenas.count());
  cohortalloc::arena_stats agg{};
  reg::erased_stats cohort_sum{};
  bool any_cohort = false;
  bool arenas_ok = true;
  for (std::size_t a = 0; a < arenas.count(); ++a) {
    arena_report& ar = res.arena_reports[a];
    ar.home_cluster = arenas.home_cluster(a);
    ar.alloc = arenas.at(a).quiescent_stats();
    ar.heap_ok = arenas.at(a).check_heap();
    if (auto ls = arenas.at(a).lock_stats()) {
      ar.has_cohort = true;
      ar.cohort = *ls;
      cohort_sum += *ls;
      any_cohort = true;
    }
    arenas_ok = arenas_ok && ar.heap_ok && ar.alloc.allocated_bytes == 0 &&
                ar.alloc.free_chunks == 1;
    agg.allocated_bytes += ar.alloc.allocated_bytes;
    agg.free_chunks += ar.alloc.free_chunks;
    agg.alloc_calls += ar.alloc.alloc_calls;
    agg.free_calls += ar.alloc.free_calls;
    agg.splits += ar.alloc.splits;
    agg.coalesces += ar.alloc.coalesces;
    agg.failures += ar.alloc.failures;
  }
  res.alloc = agg;
  res.has_cohort_stats = any_cohort;
  res.cohort = cohort_sum;

  // Every body call makes exactly one allocate() attempt: successes count
  // as ops, out-of-memory returns as timeouts, and the drain pairs every
  // success with a free.
  res.mutual_exclusion_ok =
      arenas_ok && res.tag_mismatches == 0 &&
      agg.alloc_calls == res.whole_run_ops + res.whole_run_timeouts &&
      agg.failures == res.whole_run_timeouts &&
      agg.free_calls == res.whole_run_ops;
}

}  // namespace

bench_result run_alloc_bench(const bench_config& cfg) {
  if (cfg.alloc_min < sizeof(std::uint64_t))
    throw std::invalid_argument("bench: --alloc-min must be at least 8");
  if (cfg.alloc_max < cfg.alloc_min)
    throw std::invalid_argument("bench: --alloc-max must be >= --alloc-min");
  if (cfg.working_set == 0)
    throw std::invalid_argument("bench: --working-set must be positive");
  if (cfg.alloc_size_zipf < 0.0)
    throw std::invalid_argument("bench: --size-zipf must be >= 0");
  if (cfg.arena_mb == 0)
    throw std::invalid_argument("bench: --arena-mb must be positive");
  const std::size_t bytes = cfg.arena_mb << 20;
  // Worst case every thread parks its whole working set in one arena; leave
  // 2x headroom for fragmentation and headers so OOM means a real bug, not
  // a mis-sized run.
  const std::size_t worst_live =
      2 * cfg.threads * cfg.working_set * (cfg.alloc_max + 64);
  if (bytes < worst_live)
    throw std::invalid_argument(
        "bench: arena too small for threads x working-set x alloc-max "
        "(need ~" +
        std::to_string((worst_live >> 20) + 1) + " MiB per arena)");

  bench_result res;
  res.config = cfg;
  res.clusters_used = numa::system_topology().clusters();

  const bool known = reg::with_lock_type(
      cfg.lock_name, detail::lock_params_of(cfg), [&](auto factory) {
        using lock_t = typename decltype(factory())::element_type;
        alloc::arena_set<lock_t> arenas(bytes, cfg.numa_place, factory);
        run_alloc_typed(arenas, cfg, res);
      });
  if (!known)
    throw std::invalid_argument("bench: " +
                                reg::unknown_lock_message(cfg.lock_name));
  return res;
}

}  // namespace cohort::bench
