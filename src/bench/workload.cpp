#include "bench/workload.hpp"

namespace cohort::bench {

// The single source of truth for the workload registry: a workload added
// here shows up everywhere at once (run_bench dispatch, cohort_bench usage
// and --list-workloads, the matrix script's enumeration, the tests).
const std::vector<workload_info>& all_workloads() {
  static const std::vector<workload_info> table = {
      {"cs",
       "critical-section microbenchmark (Figures 2/4/5/6)",
       "every CS increments each shared line once; at quiescence all lines "
       "equal the whole-run acquisition count",
       {{"--cs-work N", "shared cache lines written per CS (default 4)"},
        {"--non-cs-work N", "private work units between CSs (default 64)"},
        {"--patience-us N",
         "bounded patience for abortable locks (default 0 = infinite)"}},
       &run_cs_bench},
      {"kv",
       "get/set mix against the sharded kv engine (Table 1)",
       "each op bumps exactly one kv counter under its shard lock; at "
       "quiescence gets + sets + deletes equal whole-run ops plus prefill "
       "sets",
       {{"--shards N", "independent shards (default 1)"},
        {"--get-ratio G", "fraction of gets, 0..1 (default 0.9)"},
        {"--zipf T", "key-skew Zipf exponent, hot keys first (default 0 = "
                     "uniform; 0.99 = YCSB-style skew)"},
        {"--keyspace K", "distinct keys, prefilled (default 10000)"},
        {"--value-bytes N", "value payload size (default 64)"},
        {"--buckets N", "hash buckets per shard (default 1024)"},
        {"--max-items N", "total eviction budget (default 0 = off)"},
        {"--numa-place", "first-touch shards on their home cluster"}},
       &run_kv_bench},
      {"kvnet",
       "the kv mix served over loopback sockets by the epoll front-end "
       "(§4.2 end to end)",
       "the kv counter identity, plus accounting: accepted connections "
       "equal shed + closed + timed-out + reset + drained, and answered "
       "commands match client ops exactly (clean run) or within the "
       "retry/timeout bounds (faulted run)",
       {{"--shards N", "independent shards (default 1)"},
        {"--get-ratio G", "fraction of gets, 0..1 (default 0.9)"},
        {"--zipf T", "key-skew Zipf exponent (default 0 = uniform)"},
        {"--keyspace K", "distinct keys, prefilled (default 10000)"},
        {"--value-bytes N", "value payload size (default 64)"},
        {"--buckets N", "hash buckets per shard (default 1024)"},
        {"--max-items N", "total eviction budget (default 0 = off)"},
        {"--numa-place", "first-touch shards on their home cluster"},
        {"--io-threads N", "server event-loop threads (default 2)"},
        {"--net-pin", "pin server io threads to clusters"},
        {"--net-fault SPEC", "install a fault plan, e.g. "
                             "seed=42,short_read=0.1,reset=0.02 (default "
                             "COHORT_NET_FAULT_* env, else none)"},
        {"--net-idle-ms N", "evict connections idle this long (default 0 "
                            "= off)"},
        {"--net-lifetime-ms N",
         "evict connections older than this (default 0 = off)"},
        {"--net-max-requests N",
         "close a connection after N requests (default 0 = off)"},
        {"--net-max-conns N", "shed new sockets past N live connections "
                              "per worker (default 0 = off)"},
        {"--net-op-timeout-ms N",
         "client-side per-op deadline (default 0 = block forever)"},
        {"--net-retries N", "client retries per op on transient failure "
                            "(default 0)"},
        {"--net-drain-ms N",
         "graceful-drain deadline at shutdown (default 2000)"},
        {"--smoke", "scripted protocol exchange against --net-host/"
                    "--net-port instead of a benchmark run"},
        {"--drive", "sustained best-effort load against --net-host/"
                    "--net-port (chaos-script client)"}},
       &run_kvnet_bench},
      {"alloc",
       "mmicro allocate/write/free loop on the splay-tree arena (Table 2)",
       "after the drain every arena is one coalesced free chunk with zero "
       "bytes out, alloc/free counts match whole-run ops, and owner tags "
       "prove no block was handed out twice",
       {{"--alloc-min N", "smallest request size in bytes (default 64)"},
        {"--alloc-max N", "largest request size in bytes (default 256)"},
        {"--size-zipf T", "size-class skew: Zipf(T) over a geometric size "
                          "ladder, smallest class hottest (default 0 = "
                          "uniform byte draw)"},
        {"--working-set N",
         "live blocks each thread cycles through (default 64)"},
        {"--arena-mb N", "arena capacity in MiB (default 64)"},
        {"--numa-place", "one arena per cluster, first-touched on it"}},
       &run_alloc_bench},
  };
  return table;
}

const std::vector<std::string>& all_workload_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const auto& w : all_workloads()) v.emplace_back(w.name);
    return v;
  }();
  return names;
}

const workload_info* find_workload(const std::string& name) {
  for (const auto& w : all_workloads())
    if (name == w.name) return &w;
  return nullptr;
}

bool is_workload_name(const std::string& name) {
  return find_workload(name) != nullptr;
}

std::string workload_names_joined() {
  std::string out;
  for (const auto& w : all_workloads()) {
    if (!out.empty()) out += ", ";
    out += w.name;
  }
  return out;
}

}  // namespace cohort::bench
