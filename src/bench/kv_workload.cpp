// The "kv" workload: the memaslap-style get/set mix against the sharded kv
// engine (DESIGN.md §3-4), measured under the shared windowed skeleton.
// The mix itself and every operation live in the shared command layer
// (kvstore/command.hpp) -- the same implementation behind
// bench/real_kvstore.cpp and the network server -- so this file only binds
// it to the driver.  Shard count, lock name, get ratio, keyspace and NUMA
// placement are all runtime axes.
#include <stdexcept>

#include "bench/driver.hpp"
#include "bench/kv_common.hpp"
#include "bench/workload.hpp"
#include "kvstore/command.hpp"
#include "util/rng.hpp"

namespace cohort::bench {

namespace {

template <typename Lock>
void run_kv_typed(kvstore::sharded_store<Lock>& store, const bench_config& cfg,
                  bench_result& res) {
  const auto keys =
      kvstore::make_keyspace(cfg.keyspace != 0 ? cfg.keyspace : 1);
  const std::string value(cfg.value_bytes, 'v');

  kvstore::prefill_keyspace(store, keys, value, cfg.numa_place);
  const std::uint64_t prefill_sets = store.stats().sets;

  // Key skew: Zipf(theta) over the keyspace, hottest key first; theta 0 is
  // uniform.  The mix_workload holds the one shared read-only CDF table;
  // each worker draws through its own RNG.  Skew concentrates traffic on
  // the hot keys' shard, which is the realistic stress for fast-path
  // disengagement on that shard's lock.
  const kvstore::mix_workload mix(keys, cfg.get_ratio, cfg.zipf_theta, value);

  auto make_body = [&](unsigned tid) {
    return [&mix, ex = kvstore::command_executor(store),
            rng = xorshift(0x517ead0000ULL + tid)]() mutable {
      return mix.step(ex, rng) != kvstore::cmd_status::error;
    };
  };
  auto sample = [&] { return detail::sample_kv_probe(store); };
  const auto totals = detail::run_window(cfg, make_body, sample);

  detail::fill_window_result(res, totals);
  detail::fill_kv_result(store, res, prefill_sets);
}

}  // namespace

bench_result run_kv_bench(const bench_config& cfg) {
  detail::validate_kv_config(cfg);

  bench_result res;
  res.config = cfg;
  res.clusters_used = numa::system_topology().clusters();

  const kvstore::kv_config kcfg{.shards = cfg.shards,
                                .buckets = cfg.kv_buckets,
                                .max_items = cfg.kv_max_items,
                                .numa_place = cfg.numa_place};
  const bool known = kvstore::with_store(
      cfg.lock_name, kcfg, detail::lock_params_of(cfg),
      [&](auto& store) { run_kv_typed(store, cfg, res); });
  if (!known)
    throw std::invalid_argument("bench: " +
                                reg::unknown_lock_message(cfg.lock_name));
  return res;
}

}  // namespace cohort::bench
