// The "kv" workload: a memaslap-style get/set mix against the sharded kv
// engine (DESIGN.md §3-4), measured under the shared windowed skeleton.
// Shard count, lock name, get ratio, keyspace and NUMA placement are all
// runtime axes, so one binary sweeps the full lock x shards matrix that the
// Table 1 experiment only sampled at shards == 1.
#include <stdexcept>
#include <thread>

#include "bench/driver.hpp"
#include "bench/workload.hpp"
#include "kvstore/sharded_store.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace cohort::bench {

namespace {

// Prefill every key so gets can hit.  With numa_place each shard's items
// (the LRU nodes and value payloads) are inserted -- first-touched -- from a
// thread pinned to the shard's home cluster, completing the placement the
// store constructor started with the bucket tables.
template <typename Lock>
void prefill(kvstore::sharded_store<Lock>& store,
             const std::vector<std::string>& keys, const std::string& value,
             bool numa_place) {
  if (!numa_place) {
    auto h = store.make_handle();
    for (const auto& k : keys) store.set(h, k, value);
    return;
  }
  // One partition pass, then one pinned insertion thread per shard.
  std::vector<std::vector<const std::string*>> by_shard(store.shard_count());
  for (const auto& k : keys) by_shard[store.shard_of(k)].push_back(&k);
  const auto& topo = numa::system_topology();
  for (std::size_t s = 0; s < store.shard_count(); ++s) {
    std::thread([&, s] {
      numa::pin_thread_to_cluster(topo, store.home_cluster(s));
      auto h = store.make_handle();
      for (const std::string* k : by_shard[s]) store.set(h, *k, value);
    }).join();
  }
}

template <typename Lock>
void run_kv_typed(kvstore::sharded_store<Lock>& store, const bench_config& cfg,
                  bench_result& res) {
  const auto keys =
      kvstore::make_keyspace(cfg.keyspace != 0 ? cfg.keyspace : 1);
  const std::string value(cfg.value_bytes, 'v');

  prefill(store, keys, value, cfg.numa_place);
  const std::uint64_t prefill_sets = store.stats().sets;

  // Key skew: Zipf(theta) over the keyspace, hottest key first; theta 0 is
  // uniform.  One shared read-only CDF table; each worker draws through its
  // own RNG.  Skew concentrates traffic on the hot keys' shard, which is
  // the realistic stress for fast-path disengagement on that shard's lock.
  const zipf_sampler pick_key(keys.size(), cfg.zipf_theta);

  auto make_body = [&](unsigned tid) {
    return [&store, &keys, &value, &cfg, &pick_key, h = store.make_handle(),
            rng = xorshift(0x517ead0000ULL + tid)]() mutable {
      const auto& key = keys[pick_key(rng)];
      if (rng.next_double() < cfg.get_ratio)
        (void)store.get(h, key);
      else
        store.set(h, key, value);
      return true;
    };
  };
  // Mid-run sampler for windows[]: sums the shard locks' batching counters.
  // Safe while the workers run -- the counters are relaxed-atomic cells --
  // unlike the unsynchronised kv counters, which stay quiescent-only.
  auto sample_stats = [&]() -> std::optional<reg::erased_stats> {
    reg::erased_stats sum{};
    bool any = false;
    for (std::size_t s = 0; s < store.shard_count(); ++s) {
      if (auto ls = store.lock_stats(s)) {
        sum += *ls;
        any = true;
      }
    }
    if (!any) return std::nullopt;
    return sum;
  };
  const auto totals = detail::run_window(cfg, make_body, sample_stats);

  detail::fill_window_result(res, totals);

  // Quiescent aggregation: the workers are joined, so the unsynchronised
  // per-shard counters are safe to read and sum.
  const kvstore::kv_stats agg = store.stats();
  res.kv = agg;
  res.kv_final_size = store.size();
  res.hit_rate = agg.gets != 0 ? static_cast<double>(agg.get_hits) /
                                     static_cast<double>(agg.gets)
                               : 0.0;

  // Counter-coherence audit, the kv analogue of the cs shared-line audit:
  // each completed operation bumps exactly one kv counter under its shard
  // lock, so a lock that admits two threads at once loses updates here.
  res.mutual_exclusion_ok =
      agg.gets + agg.sets == res.whole_run_ops + prefill_sets &&
      agg.get_hits <= agg.gets;

  res.shard_reports.resize(store.shard_count());
  reg::erased_stats sum{};
  bool any_cohort = false;
  for (std::size_t s = 0; s < store.shard_count(); ++s) {
    shard_report& sr = res.shard_reports[s];
    sr.home_cluster = store.home_cluster(s);
    sr.items = store.shard(s).size();
    sr.kv = store.shard(s).stats();
    if (auto ls = store.lock_stats(s)) {
      sr.has_cohort = true;
      sr.cohort = *ls;
      sum += *ls;
      any_cohort = true;
    }
  }
  res.has_cohort_stats = any_cohort;
  res.cohort = sum;
}

}  // namespace

bench_result run_kv_bench(const bench_config& cfg) {
  if (cfg.get_ratio < 0.0 || cfg.get_ratio > 1.0)
    throw std::invalid_argument("bench: get ratio must be in [0, 1]");
  if (cfg.shards == 0)
    throw std::invalid_argument("bench: shard count must be positive");
  if (cfg.zipf_theta < 0.0)
    throw std::invalid_argument("bench: zipf theta must be >= 0");

  bench_result res;
  res.config = cfg;
  res.clusters_used = numa::system_topology().clusters();

  const kvstore::kv_config kcfg{.shards = cfg.shards,
                                .buckets = cfg.kv_buckets,
                                .max_items = cfg.kv_max_items,
                                .numa_place = cfg.numa_place};
  const bool known = kvstore::with_store(
      cfg.lock_name, kcfg,
      {.clusters = cfg.clusters, .pass_limit = cfg.pass_limit},
      [&](auto& store) { run_kv_typed(store, cfg, res); });
  if (!known)
    throw std::invalid_argument("bench: unknown lock name '" + cfg.lock_name +
                                "'");
  return res;
}

}  // namespace cohort::bench
