// Minimal ordered JSON value for benchmark records.
//
// The harness only ever *writes* JSON (trajectory files like BENCH_real.json
// are consumed by external tooling), so this is a builder, not a parser:
// insertion-ordered objects, arrays, strings, bools, integers and doubles,
// serialised with round-trippable number formatting.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace cohort::bench {

class json {
 public:
  json() : kind_(kind::null) {}
  json(bool b) : kind_(kind::boolean), bool_(b) {}
  json(std::uint64_t v) : kind_(kind::uinteger), uint_(v) {}
  json(std::int64_t v) : kind_(kind::integer), int_(v) {}
  json(int v) : json(static_cast<std::int64_t>(v)) {}
  json(unsigned v) : json(static_cast<std::uint64_t>(v)) {}
  json(double v) : kind_(kind::number), num_(v) {}
  json(std::string s) : kind_(kind::string), str_(std::move(s)) {}
  json(const char* s) : json(std::string(s)) {}

  static json object() {
    json j;
    j.kind_ = kind::object;
    return j;
  }
  static json array() {
    json j;
    j.kind_ = kind::array;
    return j;
  }

  // Object field (insertion order preserved); *this must be an object.
  json& set(std::string key, json value);
  // Array append; *this must be an array.
  json& push(json value);

  std::size_t size() const noexcept {
    return kind_ == kind::array ? items_.size() : fields_.size();
  }

  // Serialise; indent < 0 means compact single-line output.
  std::string dump(int indent = -1) const;

 private:
  enum class kind { null, boolean, integer, uinteger, number, string, object,
                    array };

  void dump_to(std::string& out, int indent, int depth) const;

  kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double num_ = 0.0;
  std::string str_;
  std::vector<std::pair<std::string, json>> fields_;
  std::vector<json> items_;
};

}  // namespace cohort::bench
