// Name-based dispatch over the real-thread benchmark workloads, mirroring
// the lock registry (locks/registry.hpp): every workload the harness can
// drive appears exactly once in the table in workload.cpp, as a descriptor
// carrying its name, one-line summary, audit description, CLI flag schema,
// and run() entry point.  run_bench(), the cohort_bench CLI (usage text,
// --list-workloads, fail-fast name validation) and run_bench_matrix.sh all
// enumerate this registry instead of hard-coding workload strings.
//
// The registered workloads are the paper's three evaluation applications
// (DESIGN.md §4) plus the served variant of the memcached one (§6):
//
//   "cs"    -- the critical-section microbenchmark (Figures 2/4/5/6)
//   "kv"    -- get/set mix against the sharded kv engine (Table 1)
//   "kvnet" -- the same mix served over loopback sockets by the epoll
//              front-end (the paper's §4.2 experiment end to end)
//   "alloc" -- mmicro's allocate/write/free loop on the splay-tree arena
//              (Table 2)
#pragma once

#include <cstdint>

#include <string>
#include <vector>

#include "bench/harness.hpp"

namespace cohort::bench {

// One CLI flag a workload understands, for registry-generated usage text.
struct workload_flag {
  const char* flag;  // e.g. "--shards N"
  const char* help;  // one-line description including the default
};

struct workload_info {
  const char* name;     // registry key, e.g. "kv"
  const char* summary;  // one-liner for --list-workloads
  // What this workload's mutual_exclusion_ok audit asserts at quiescence.
  const char* audit;
  std::vector<workload_flag> flags;
  bench_result (*run)(const bench_config&);
};

// The registered workloads, in the order the paper's evaluation introduces
// them.
const std::vector<workload_info>& all_workloads();
const std::vector<std::string>& all_workload_names();
// nullptr for unknown names.
const workload_info* find_workload(const std::string& name);
bool is_workload_name(const std::string& name);
// "cs, kv, alloc" -- for fail-fast diagnostics.
std::string workload_names_joined();

// The entry points behind the descriptors, one translation unit each
// (harness.cpp, kv_workload.cpp, kvnet_workload.cpp, alloc_workload.cpp).
// Call run_bench() rather than these directly: it validates the names and
// installs the topology first.
bench_result run_cs_bench(const bench_config& cfg);
bench_result run_kv_bench(const bench_config& cfg);
bench_result run_kvnet_bench(const bench_config& cfg);
bench_result run_alloc_bench(const bench_config& cfg);

// Scripted protocol exchange against an externally started server
// (`cohort_bench --workload kvnet --smoke`): get/set/delete/stats plus the
// pipelining and error paths, pass/fail per check.  Returns a process exit
// code (0 = all passed).
int run_kvnet_smoke(const std::string& host, std::uint16_t port);

// Sustained best-effort load against an externally started server that is
// expected to misbehave (`cohort_bench --workload kvnet --drive`): cfg
// supplies threads, duration, mix shape, and the client resilience knobs.
// Per-op failures are tolerated; returns 0 when the drive completed some
// round trips.
int run_kvnet_drive(const std::string& host, std::uint16_t port,
                    const bench_config& cfg);

}  // namespace cohort::bench
