#include "bench/harness.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <thread>

#include "numa/topology.hpp"
#include "util/align.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace cohort::bench {

namespace {

using clock_t_ = std::chrono::steady_clock;

struct alignas(cache_line_size) thread_slot {
  std::atomic<std::uint64_t> ops{0};
  std::atomic<std::uint64_t> timeouts{0};
  std::atomic<bool> pinned{false};
};

// Shared state the critical section mutates.  Non-atomic on purpose: the
// lock under test is the only thing ordering these writes, so a broken lock
// shows up as a mutual-exclusion failure (and as a TSan report in the
// sanitizer CI job).
struct cs_data {
  std::vector<padded<std::uint64_t>> lines;
};

void spin_sleep_until(clock_t_::time_point t) {
  std::this_thread::sleep_until(t);
}

template <typename Lock>
bench_result run_typed(Lock& lock, const bench_config& cfg) {
  const auto& topo = numa::system_topology();
  const unsigned clusters = topo.clusters();

  bench_result res;
  res.config = cfg;
  res.clusters_used = clusters;

  cs_data shared;
  shared.lines.resize(std::max(1u, cfg.cs_work));
  std::vector<thread_slot> slots(cfg.threads);

  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<unsigned> ready{0};

  const bool use_patience = [&] {
    if (cfg.patience_us == 0) return false;
    return requires(Lock& l, typename Lock::context& c, deadline d) {
      l.try_lock(c, d);
    } || requires(Lock& l, deadline d) { l.try_lock(d); };
  }();

  auto worker = [&](unsigned tid) {
    if (cfg.pin)
      slots[tid].pinned.store(numa::pin_thread_to_cluster(topo, tid % clusters),
                              std::memory_order_relaxed);
    else
      numa::set_thread_cluster(tid % clusters);

    typename Lock::context ctx{};
    xorshift rng(0x9e3779b9u + tid);
    const std::chrono::microseconds patience(cfg.patience_us);

    ready.fetch_add(1, std::memory_order_release);
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();

    std::uint64_t ops = 0;
    std::uint64_t timeouts = 0;
    // do-while: even if the measured window elapsed while this thread was
    // descheduled, every worker makes at least one acquisition attempt.
    do {
      bool acquired = true;
      if (use_patience) {
        if constexpr (requires(Lock& l, typename Lock::context& c,
                               deadline d) { l.try_lock(c, d); })
          acquired = lock.try_lock(ctx, deadline_after(patience));
        else if constexpr (requires(Lock& l, deadline d) { l.try_lock(d); })
          acquired = lock.try_lock(deadline_after(patience));
        else
          lock.lock(ctx);
      } else {
        lock.lock(ctx);
      }
      if (acquired) {
        for (auto& line : shared.lines) ++line.get();
        lock.unlock(ctx);
        ++ops;
      } else {
        ++timeouts;
      }
      // Publish progress so the coordinator can snapshot mid-run.
      slots[tid].ops.store(ops, std::memory_order_relaxed);
      slots[tid].timeouts.store(timeouts, std::memory_order_relaxed);
      // Private think time between critical sections.
      for (unsigned i = 0; i < cfg.non_cs_work; ++i) rng.next();
    } while (!stop.load(std::memory_order_relaxed));
  };

  std::vector<std::thread> threads;
  threads.reserve(cfg.threads);
  for (unsigned t = 0; t < cfg.threads; ++t) threads.emplace_back(worker, t);
  while (ready.load(std::memory_order_acquire) != cfg.threads)
    std::this_thread::yield();

  const auto start = clock_t_::now();
  go.store(true, std::memory_order_release);
  spin_sleep_until(start + std::chrono::duration_cast<clock_t_::duration>(
                               std::chrono::duration<double>(cfg.warmup_s)));

  // Open the measured window: snapshot the counters, run, snapshot again.
  std::vector<std::uint64_t> warm_ops(cfg.threads);
  std::vector<std::uint64_t> warm_timeouts(cfg.threads);
  for (unsigned t = 0; t < cfg.threads; ++t) {
    warm_ops[t] = slots[t].ops.load(std::memory_order_relaxed);
    warm_timeouts[t] = slots[t].timeouts.load(std::memory_order_relaxed);
  }
  const auto window_open = clock_t_::now();
  spin_sleep_until(window_open +
                   std::chrono::duration_cast<clock_t_::duration>(
                       std::chrono::duration<double>(cfg.duration_s)));
  std::vector<std::uint64_t> end_ops(cfg.threads);
  std::vector<std::uint64_t> end_timeouts(cfg.threads);
  for (unsigned t = 0; t < cfg.threads; ++t) {
    end_ops[t] = slots[t].ops.load(std::memory_order_relaxed);
    end_timeouts[t] = slots[t].timeouts.load(std::memory_order_relaxed);
  }
  const auto window_close = clock_t_::now();
  stop.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();

  res.elapsed_s =
      std::chrono::duration<double>(window_close - window_open).count();
  res.per_thread_ops.resize(cfg.threads);
  std::vector<double> per_thread(cfg.threads);
  for (unsigned t = 0; t < cfg.threads; ++t) {
    res.per_thread_ops[t] = end_ops[t] - warm_ops[t];
    res.total_ops += res.per_thread_ops[t];
    res.timeouts += end_timeouts[t] - warm_timeouts[t];
    per_thread[t] = static_cast<double>(res.per_thread_ops[t]);
    if (slots[t].pinned.load(std::memory_order_relaxed)) ++res.pinned_threads;
  }
  res.throughput_ops_s =
      res.elapsed_s > 0.0 ? static_cast<double>(res.total_ops) / res.elapsed_s
                          : 0.0;
  const summary fair = summarize(per_thread);
  res.fairness_cv = fair.mean > 0.0 ? fair.stddev / fair.mean : 0.0;

  // Whole-run totals for the mutual-exclusion audit: the measured window is
  // a slice of the run, so the lines are checked against the final (post-join)
  // counters, which cover warmup and the tail after the window closed.
  std::uint64_t whole_run_ops = 0;
  for (unsigned t = 0; t < cfg.threads; ++t)
    whole_run_ops += slots[t].ops.load(std::memory_order_relaxed);
  res.whole_run_ops = whole_run_ops;
  res.mutual_exclusion_ok = true;
  for (const auto& line : shared.lines)
    if (line.get() != whole_run_ops) res.mutual_exclusion_ok = false;

  if constexpr (requires(const Lock& l) { l.stats(); }) {
    res.has_cohort_stats = true;
    res.cohort = lock.stats();  // abortable_stats slices to the base
  }
  return res;
}

}  // namespace

unsigned install_topology(unsigned clusters) {
  if (clusters == 0) return numa::system_topology().clusters();
  numa::topology t = numa::topology::discover();
  if (t.clusters() >= clusters)
    t.cpus.resize(clusters);
  else
    t = numa::topology::synthetic(clusters);
  numa::set_system_topology(t);
  return clusters;
}

bench_result run_bench(const bench_config& cfg) {
  if (cfg.threads == 0)
    throw std::invalid_argument("bench: thread count must be positive");
  install_topology(cfg.clusters);
  bench_result res;
  const bool known = reg::with_lock_type(
      cfg.lock_name, {.clusters = cfg.clusters, .pass_limit = cfg.pass_limit},
      [&](auto factory) {
        auto lock = factory();
        res = run_typed(*lock, cfg);
      });
  if (!known)
    throw std::invalid_argument("bench: unknown lock name '" + cfg.lock_name +
                                "'");
  return res;
}

json to_json(const bench_result& r) {
  json rec = json::object();
  rec.set("lock", r.config.lock_name);
  rec.set("threads", r.config.threads);
  rec.set("clusters", r.clusters_used);
  rec.set("pinned_threads", r.pinned_threads);
  rec.set("duration_s", r.config.duration_s);
  rec.set("warmup_s", r.config.warmup_s);
  rec.set("elapsed_s", r.elapsed_s);
  rec.set("cs_work", r.config.cs_work);
  rec.set("non_cs_work", r.config.non_cs_work);
  rec.set("pass_limit", r.config.pass_limit);
  rec.set("patience_us", r.config.patience_us);
  rec.set("total_ops", r.total_ops);
  rec.set("whole_run_ops", r.whole_run_ops);
  rec.set("throughput_ops_s", r.throughput_ops_s);
  rec.set("fairness_cv", r.fairness_cv);
  rec.set("timeouts", r.timeouts);
  rec.set("mutual_exclusion_ok", r.mutual_exclusion_ok);
  json ops = json::array();
  for (std::uint64_t v : r.per_thread_ops) ops.push(v);
  rec.set("per_thread_ops", std::move(ops));
  if (r.has_cohort_stats) {
    json cs = json::object();
    cs.set("acquisitions", r.cohort.acquisitions);
    cs.set("global_acquires", r.cohort.global_acquires);
    cs.set("local_handoffs", r.cohort.local_handoffs);
    cs.set("handoff_failures", r.cohort.handoff_failures);
    cs.set("avg_batch", r.cohort.avg_batch());
    rec.set("cohort", std::move(cs));
  }
  rec.set("avg_batch", r.has_cohort_stats ? r.cohort.avg_batch() : 0.0);
  return rec;
}

std::string to_text(const bench_result& r) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-12s threads=%-3u  %12.0f ops/s  cv=%5.1f%%  batch=%6.2f%s%s",
                r.config.lock_name.c_str(), r.config.threads,
                r.throughput_ops_s, 100.0 * r.fairness_cv,
                r.has_cohort_stats ? r.cohort.avg_batch() : 0.0,
                r.timeouts > 0 ? "  (timeouts)" : "",
                r.mutual_exclusion_ok ? "" : "  [MUTEX VIOLATION]");
  return buf;
}

}  // namespace cohort::bench
