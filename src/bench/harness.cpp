#include "bench/harness.hpp"

#include <cstdio>
#include <memory>
#include <stdexcept>

#include "bench/driver.hpp"
#include "bench/workload.hpp"
#include "numa/topology.hpp"
#include "util/align.hpp"
#include "util/rng.hpp"

namespace cohort::bench {

namespace {

// Shared state the "cs" critical section mutates.  Non-atomic on purpose: the
// lock under test is the only thing ordering these writes, so a broken lock
// shows up as a mutual-exclusion failure (and as a TSan report in the
// sanitizer CI job).
struct cs_data {
  std::vector<padded<std::uint64_t>> lines;
};

// Compiler sink for the private think-time loop.  The RNG state is dead
// after the body returns, so without an observable use gcc deletes the
// whole non_cs_work loop -- but only for the lock types it can fully
// inline, silently zeroing the think time for some locks and not others
// and invalidating every cross-lock comparison at a given non_cs_work.
inline void consume(std::uint64_t v) { asm volatile("" : : "r"(v)); }

template <typename Lock>
bench_result run_cs_typed(Lock& lock, const bench_config& cfg) {
  bench_result res;
  res.config = cfg;
  res.clusters_used = numa::system_topology().clusters();

  cs_data shared;
  shared.lines.resize(std::max(1u, cfg.cs_work));

  const bool use_patience = [&] {
    if (cfg.patience_us == 0) return false;
    return requires(Lock& l, typename Lock::context& c, deadline d) {
      l.try_lock(c, d);
    } || requires(Lock& l, deadline d) { l.try_lock(d); };
  }();
  const std::chrono::microseconds patience(cfg.patience_us);

  auto make_body = [&](unsigned tid) {
    // Queue-lock contexts are identity-sensitive, so the body keeps its
    // context at a stable heap address instead of inside the closure.
    return [&lock, &shared, &cfg, use_patience, patience,
            ctx = std::make_unique<typename Lock::context>(),
            rng = xorshift(0x9e3779b9u + tid)]() mutable {
      bool acquired = true;
      if (use_patience) {
        if constexpr (requires(Lock& l, typename Lock::context& c,
                               deadline d) { l.try_lock(c, d); })
          acquired = lock.try_lock(*ctx, deadline_after(patience));
        else if constexpr (requires(Lock& l, deadline d) { l.try_lock(d); })
          acquired = lock.try_lock(deadline_after(patience));
        else
          lock.lock(*ctx);
      } else {
        lock.lock(*ctx);
      }
      if (acquired) {
        for (auto& line : shared.lines) ++line.get();
        lock.unlock(*ctx);
      }
      // Private think time between critical sections; folded into a sink
      // the compiler must materialise so every step actually runs.
      std::uint64_t sink = 0;
      for (unsigned i = 0; i < cfg.non_cs_work; ++i) sink ^= rng.next();
      consume(sink);
      return acquired;
    };
  };
  // Mid-run sampler for windows[]: cohort batch counters are relaxed-atomic
  // cells, so this is safe to call while the workers run.
  auto sample = [&]() -> detail::probe {
    detail::probe p;
    if constexpr (requires(const Lock& l) { l.stats(); }) {
      p.has_stats = true;
      p.stats = reg::erased_stats(lock.stats());
    }
    return p;
  };
  const auto totals = detail::run_window(cfg, make_body, sample);

  detail::fill_window_result(res, totals);

  // Whole-run totals for the mutual-exclusion audit: the measured window is
  // a slice of the run, so the lines are checked against the final
  // (post-join) counters, which cover warmup and the tail after the window
  // closed.
  res.mutual_exclusion_ok = true;
  for (const auto& line : shared.lines)
    if (line.get() != res.whole_run_ops) res.mutual_exclusion_ok = false;

  if constexpr (requires(const Lock& l) { l.stats(); }) {
    res.has_cohort_stats = true;
    res.cohort = lock.stats();  // abortable_stats slices to the base
  }
  return res;
}

}  // namespace

unsigned install_topology(unsigned clusters) {
  if (clusters == 0) return numa::system_topology().clusters();
  numa::topology t = numa::topology::discover();
  if (t.clusters() >= clusters)
    t.cpus.resize(clusters);
  else
    t = numa::topology::synthetic(clusters);
  numa::set_system_topology(t);
  return clusters;
}

bench_result run_cs_bench(const bench_config& cfg) {
  bench_result res;
  const bool known = reg::with_lock_type(
      cfg.lock_name,
      detail::lock_params_of(cfg),
      [&](auto factory) {
        auto lock = factory();
        res = run_cs_typed(*lock, cfg);
      });
  if (!known)
    throw std::invalid_argument("bench: " +
                                reg::unknown_lock_message(cfg.lock_name));
  return res;
}

bench_result run_bench(const bench_config& cfg) {
  if (cfg.threads == 0)
    throw std::invalid_argument("bench: thread count must be positive");
  const workload_info* w = find_workload(cfg.workload);
  if (w == nullptr)
    throw std::invalid_argument("bench: unknown workload '" + cfg.workload +
                                "' (registered: " + workload_names_joined() +
                                ")");
  install_topology(cfg.clusters);
  return w->run(cfg);
}

namespace {

json cohort_to_json(const reg::erased_stats& s) {
  json cs = json::object();
  cs.set("acquisitions", s.acquisitions);
  cs.set("global_acquires", s.global_acquires);
  cs.set("local_handoffs", s.local_handoffs);
  cs.set("handoff_failures", s.handoff_failures);
  cs.set("fast_acquires", s.fast_acquires);
  cs.set("fissions", s.fissions);
  cs.set("deferrals", s.deferrals);
  cs.set("active_set", s.active_set);
  cs.set("active_target", s.active_target);
  cs.set("parked", s.parked);
  cs.set("rotations", s.rotations);
  cs.set("policy_switches", s.policy_switches);
  cs.set("current_policy", s.current_policy);
  cs.set("avg_batch", s.avg_batch());
  return cs;
}

}  // namespace

json to_json(const bench_result& r) {
  const bool kv =
      r.config.workload == "kv" || r.config.workload == "kvnet";
  const bool kvnet = r.config.workload == "kvnet";
  const bool alloc = r.config.workload == "alloc";
  json rec = json::object();
  // Record-shape version for downstream plotting: 1 = pre-adaptive records,
  // 2 = adaptive telemetry keys (cohort.policy_switches /
  // cohort.current_policy in the whole-run block and every windows[] entry,
  // per_shard[].current_policy, adaptive_* knobs), 3 = net robustness keys
  // (net.{closed,shed,timeouts,resets,drained,injected_faults,
  // client_retries,drain_clean} and a "net" delta object in kvnet
  // windows[]).  Bump on any key change.
  rec.set("schema_version", static_cast<std::uint64_t>(3));
  rec.set("workload", r.config.workload);
  rec.set("lock", r.config.lock_name);
  rec.set("threads", r.config.threads);
  rec.set("clusters", r.clusters_used);
  rec.set("pinned_threads", r.pinned_threads);
  rec.set("online_cpus", r.online_cpus);
  // threads / online CPUs: > 1 means the run was oversubscribed (the
  // regime the gcr- admission layer exists for).
  rec.set("oversubscription",
          r.online_cpus > 0 ? static_cast<double>(r.config.threads) /
                                  static_cast<double>(r.online_cpus)
                            : 0.0);
  rec.set("duration_s", r.config.duration_s);
  rec.set("warmup_s", r.config.warmup_s);
  rec.set("elapsed_s", r.elapsed_s);
  if (kv) {
    rec.set("shards", static_cast<std::uint64_t>(r.config.shards));
    rec.set("buckets", static_cast<std::uint64_t>(r.config.kv_buckets));
    rec.set("max_items", static_cast<std::uint64_t>(r.config.kv_max_items));
    rec.set("get_ratio", r.config.get_ratio);
    rec.set("keyspace", static_cast<std::uint64_t>(r.config.keyspace));
    rec.set("value_bytes", static_cast<std::uint64_t>(r.config.value_bytes));
    rec.set("zipf_theta", r.config.zipf_theta);
    rec.set("numa_place", r.config.numa_place);
    if (kvnet) {
      rec.set("io_threads", r.config.net_io_threads);
      rec.set("net_pin_io", r.config.net_pin_io);
      if (!r.config.net_fault_spec.empty())
        rec.set("net_fault", r.config.net_fault_spec);
      rec.set("net_idle_timeout_ms", r.config.net_idle_timeout_ms);
      rec.set("net_max_conns", r.config.net_max_conns);
      rec.set("net_op_timeout_ms", r.config.net_op_timeout_ms);
      rec.set("net_retries", r.config.net_retries);
      rec.set("net_drain_deadline_ms", r.config.net_drain_deadline_ms);
    }
  } else if (alloc) {
    rec.set("alloc_min", static_cast<std::uint64_t>(r.config.alloc_min));
    rec.set("alloc_max", static_cast<std::uint64_t>(r.config.alloc_max));
    rec.set("size_zipf", r.config.alloc_size_zipf);
    rec.set("working_set", static_cast<std::uint64_t>(r.config.working_set));
    rec.set("arena_mb", static_cast<std::uint64_t>(r.config.arena_mb));
    rec.set("arenas", static_cast<std::uint64_t>(r.arena_reports.size()));
    rec.set("numa_place", r.config.numa_place);
  } else {
    rec.set("cs_work", r.config.cs_work);
    rec.set("non_cs_work", r.config.non_cs_work);
    // Bounded patience only exists on the cs path; kv/alloc records omit it
    // so a configured-but-unused value cannot read as "ran with zero
    // timeouts".
    rec.set("patience_us", r.config.patience_us);
  }
  // Tuning knobs are recorded only when the lock's registry descriptor says
  // it honours them, so a record can never claim a pass_limit for a lock
  // that has no such bound (and vice versa for the -fp hysteresis).
  {
    const reg::lock_descriptor* desc = reg::find_lock(r.config.lock_name);
    if (desc == nullptr || desc->uses_pass_limit)
      rec.set("pass_limit", r.config.pass_limit);
    if (desc == nullptr || desc->uses_fp_knobs) {
      // The values in effect, resolved through flag -> env -> compiled
      // default.
      const fastpath_policy fpp = reg::effective_fastpath(
          {.fp = {.fission_limit = r.config.fission_limit,
                  .reengage_drains = r.config.reengage_drains}});
      rec.set("fission_limit", fpp.fission_limit);
      rec.set("reengage_drains", fpp.reengage_drains);
    }
    if (desc != nullptr && desc->uses_gcr_knobs) {
      const gcr_policy gp = reg::effective_gcr(
          {.gcr = {.min_active = r.config.gcr_min_active,
                   .max_active = r.config.gcr_max_active,
                   .rotation_interval = r.config.gcr_rotation,
                   .tune_window = r.config.gcr_tune_window}});
      rec.set("gcr_min_active", gp.min_active);
      // 0 = resolved to the online CPU count inside the combinator.
      rec.set("gcr_max_active", gp.max_active);
      rec.set("gcr_rotation", gp.rotation_interval);
      rec.set("gcr_tune_window", gp.tune_window);
    }
    if (desc != nullptr && desc->uses_adaptive_knobs) {
      const adaptive_policy ap = reg::effective_adaptive(
          {.adaptive = {.window = r.config.adaptive_window,
                        .escalate_pct = r.config.adaptive_escalate,
                        .deescalate_pct = r.config.adaptive_deescalate,
                        .hysteresis = r.config.adaptive_hysteresis,
                        .max_level = r.config.adaptive_max_level,
                        .gcr_waiters = r.config.adaptive_gcr_waiters}});
      rec.set("adaptive_window", ap.window);
      rec.set("adaptive_escalate_pct", ap.escalate_pct);
      rec.set("adaptive_deescalate_pct", ap.deescalate_pct);
      rec.set("adaptive_hysteresis", ap.hysteresis);
      rec.set("adaptive_max_level", ap.max_level);
      // 0 = resolved to the online CPU count inside the lock.
      rec.set("adaptive_gcr_waiters", ap.gcr_waiters);
      json ladder = json::array();
      for (const char* rung : adaptive_lock::ladder()) ladder.push(rung);
      rec.set("adaptive_ladder", std::move(ladder));
    }
  }
  rec.set("total_ops", r.total_ops);
  rec.set("whole_run_ops", r.whole_run_ops);
  rec.set("throughput_ops_s", r.throughput_ops_s);
  rec.set("fairness_cv", r.fairness_cv);
  rec.set("timeouts", r.timeouts);
  rec.set("mutual_exclusion_ok", r.mutual_exclusion_ok);
  if (kv) {
    rec.set("hit_rate", r.hit_rate);
    json kvs = json::object();
    kvs.set("gets", r.kv.gets);
    kvs.set("get_hits", r.kv.get_hits);
    kvs.set("sets", r.kv.sets);
    kvs.set("deletes", r.kv.deletes);
    kvs.set("evictions", r.kv.evictions);
    kvs.set("final_size", static_cast<std::uint64_t>(r.kv_final_size));
    rec.set("kv", std::move(kvs));
  }
  if (kvnet) {
    json net = json::object();
    net.set("connections", r.net_connections);
    net.set("commands", r.net_commands);
    net.set("protocol_errors", r.net_protocol_errors);
    net.set("closed", r.net_closed);
    net.set("shed", r.net_shed);
    net.set("timeouts", r.net_timeouts);
    net.set("resets", r.net_resets);
    net.set("drained", r.net_drained);
    net.set("injected_faults", r.net_injected_faults);
    net.set("client_retries", r.net_client_retries);
    net.set("drain_clean", r.net_drain_clean);
    rec.set("net", std::move(net));
  }
  json ops = json::array();
  for (std::uint64_t v : r.per_thread_ops) ops.push(v);
  rec.set("per_thread_ops", std::move(ops));
  if (kv) {
    json per_shard = json::array();
    for (std::size_t s = 0; s < r.shard_reports.size(); ++s) {
      const shard_report& sr = r.shard_reports[s];
      json sh = json::object();
      sh.set("shard", static_cast<std::uint64_t>(s));
      sh.set("home_cluster", sr.home_cluster);
      sh.set("items", static_cast<std::uint64_t>(sr.items));
      sh.set("gets", sr.kv.gets);
      sh.set("get_hits", sr.kv.get_hits);
      sh.set("sets", sr.kv.sets);
      sh.set("deletes", sr.kv.deletes);
      sh.set("evictions", sr.kv.evictions);
      if (sr.has_cohort) sh.set("cohort", cohort_to_json(sr.cohort));
      per_shard.push(std::move(sh));
    }
    rec.set("per_shard", std::move(per_shard));
  }
  if (alloc) {
    json al = json::object();
    al.set("alloc_calls", static_cast<std::uint64_t>(r.alloc.alloc_calls));
    al.set("free_calls", static_cast<std::uint64_t>(r.alloc.free_calls));
    al.set("failed_allocs", static_cast<std::uint64_t>(r.alloc.failures));
    al.set("splits", static_cast<std::uint64_t>(r.alloc.splits));
    al.set("coalesces", static_cast<std::uint64_t>(r.alloc.coalesces));
    // Bytes still handed out after the post-join drain: any non-zero value
    // is a leak and fails the audit.
    al.set("leak_bytes", static_cast<std::uint64_t>(r.alloc.allocated_bytes));
    al.set("tag_mismatches", r.tag_mismatches);
    rec.set("alloc", std::move(al));
    json per_arena = json::array();
    for (std::size_t a = 0; a < r.arena_reports.size(); ++a) {
      const arena_report& ar = r.arena_reports[a];
      json aj = json::object();
      aj.set("arena", static_cast<std::uint64_t>(a));
      aj.set("home_cluster", ar.home_cluster);
      aj.set("alloc_calls", static_cast<std::uint64_t>(ar.alloc.alloc_calls));
      aj.set("free_calls", static_cast<std::uint64_t>(ar.alloc.free_calls));
      aj.set("failed_allocs", static_cast<std::uint64_t>(ar.alloc.failures));
      aj.set("splits", static_cast<std::uint64_t>(ar.alloc.splits));
      aj.set("coalesces", static_cast<std::uint64_t>(ar.alloc.coalesces));
      aj.set("free_chunks", static_cast<std::uint64_t>(ar.alloc.free_chunks));
      aj.set("leak_bytes",
             static_cast<std::uint64_t>(ar.alloc.allocated_bytes));
      aj.set("heap_ok", ar.heap_ok);
      if (ar.has_cohort) aj.set("cohort", cohort_to_json(ar.cohort));
      per_arena.push(std::move(aj));
    }
    rec.set("per_arena", std::move(per_arena));
  }
  if (r.has_cohort_stats) rec.set("cohort", cohort_to_json(r.cohort));
  rec.set("avg_batch", r.has_cohort_stats ? r.cohort.avg_batch() : 0.0);
  // Batch-length telemetry over time: one entry per snapshot interval, the
  // warmup windows first, tiling the run up to the measured-window close.
  json windows = json::array();
  for (const bench_window& w : r.windows) {
    json wj = json::object();
    wj.set("t0_s", w.t0_s);
    wj.set("t1_s", w.t1_s);
    wj.set("warmup", w.warmup);
    wj.set("ops", w.ops);
    wj.set("throughput_ops_s", w.throughput_ops_s);
    if (w.timeouts != 0) wj.set("timeouts", w.timeouts);
    if (w.has_cohort) {
      json cj = json::object();
      cj.set("acquisitions", w.acquisitions);
      cj.set("global_acquires", w.global_acquires);
      cj.set("fast_acquires", w.fast_acquires);
      cj.set("fissions", w.fissions);
      cj.set("deferrals", w.deferrals);
      cj.set("active_set", w.active_set);
      cj.set("active_target", w.active_target);
      cj.set("parked", w.parked);
      cj.set("rotations", w.rotations);
      cj.set("policy_switches", w.policy_switches);
      cj.set("current_policy", w.current_policy);
      cj.set("mean_batch", w.mean_batch);
      wj.set("cohort", std::move(cj));
    }
    // Served-path deltas over time (kvnet): accepts, answered commands,
    // and the robustness events inside this window.
    if (w.has_net) {
      json nj = json::object();
      nj.set("connections", w.net_connections);
      nj.set("commands", w.net_commands);
      nj.set("protocol_errors", w.net_protocol_errors);
      nj.set("shed", w.net_shed);
      nj.set("timeouts", w.net_timeouts);
      nj.set("resets", w.net_resets);
      nj.set("drained", w.net_drained);
      nj.set("injected_faults", w.net_injected_faults);
      wj.set("net", std::move(nj));
    }
    // Per-shard hit-rate over time (kv workloads): one entry per shard.
    if (!w.shards.empty()) {
      json per_shard = json::array();
      for (const shard_window& sw : w.shards) {
        json sj = json::object();
        sj.set("gets", sw.gets);
        sj.set("get_hits", sw.get_hits);
        sj.set("hit_rate", sw.hit_rate);
        sj.set("current_policy", sw.current_policy);
        sj.set("policy_switches", sw.policy_switches);
        per_shard.push(std::move(sj));
      }
      wj.set("per_shard", std::move(per_shard));
    }
    windows.push(std::move(wj));
  }
  rec.set("windows", std::move(windows));
  return rec;
}

std::string to_text(const bench_result& r) {
  char buf[256];
  if (r.config.workload == "alloc") {
    std::snprintf(
        buf, sizeof(buf),
        "alloc %-12s threads=%-3u arenas=%-2zu %12.0f ops/s  cv=%5.1f%%  "
        "batch=%6.2f%s%s",
        r.config.lock_name.c_str(), r.config.threads, r.arena_reports.size(),
        r.throughput_ops_s, 100.0 * r.fairness_cv,
        r.has_cohort_stats ? r.cohort.avg_batch() : 0.0,
        r.timeouts > 0 ? "  (failed allocs)" : "",
        r.mutual_exclusion_ok ? "" : "  [ARENA AUDIT FAILED]");
  } else if (r.config.workload == "kv" || r.config.workload == "kvnet") {
    std::snprintf(
        buf, sizeof(buf),
        "%-5s %-12s threads=%-3u shards=%-3zu %12.0f ops/s  hit=%5.1f%%  "
        "cv=%5.1f%%  batch=%6.2f%s",
        r.config.workload.c_str(), r.config.lock_name.c_str(),
        r.config.threads, r.config.shards, r.throughput_ops_s,
        100.0 * r.hit_rate, 100.0 * r.fairness_cv,
        r.has_cohort_stats ? r.cohort.avg_batch() : 0.0,
        r.mutual_exclusion_ok ? "" : "  [COUNTER AUDIT FAILED]");
  } else {
    std::snprintf(
        buf, sizeof(buf),
        "%-12s threads=%-3u  %12.0f ops/s  cv=%5.1f%%  batch=%6.2f%s%s",
        r.config.lock_name.c_str(), r.config.threads, r.throughput_ops_s,
        100.0 * r.fairness_cv,
        r.has_cohort_stats ? r.cohort.avg_batch() : 0.0,
        r.timeouts > 0 ? "  (timeouts)" : "",
        r.mutual_exclusion_ok ? "" : "  [MUTEX VIOLATION]");
  }
  return buf;
}

}  // namespace cohort::bench
