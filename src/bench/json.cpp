#include "bench/json.hpp"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace cohort::bench {

json& json::set(std::string key, json value) {
  assert(kind_ == kind::object);
  fields_.emplace_back(std::move(key), std::move(value));
  return *this;
}

json& json::push(json value) {
  assert(kind_ == kind::array);
  items_.push_back(std::move(value));
  return *this;
}

namespace {

void escape_into(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void number_into(std::string& out, double v) {
  // JSON has no NaN/Inf; clamp to null per common practice.
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  out.append(buf, p);
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void json::dump_to(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case kind::null: out += "null"; break;
    case kind::boolean: out += bool_ ? "true" : "false"; break;
    case kind::integer: out += std::to_string(int_); break;
    case kind::uinteger: out += std::to_string(uint_); break;
    case kind::number: number_into(out, num_); break;
    case kind::string: escape_into(out, str_); break;
    case kind::object: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : fields_) {
        if (!first) out += ',';
        first = false;
        newline_indent(out, indent, depth + 1);
        escape_into(out, k);
        out += indent < 0 ? ":" : ": ";
        v.dump_to(out, indent, depth + 1);
      }
      if (!fields_.empty()) newline_indent(out, indent, depth);
      out += '}';
      break;
    }
    case kind::array: {
      out += '[';
      bool first = true;
      for (const auto& v : items_) {
        if (!first) out += ',';
        first = false;
        newline_indent(out, indent, depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      if (!items_.empty()) newline_indent(out, indent, depth);
      out += ']';
      break;
    }
  }
}

std::string json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

}  // namespace cohort::bench
