// Fissile-style fast path over the cohort transformation.
//
// The cohort lock wins at saturation but charges every acquisition two lock
// operations (local + global) even when a single thread owns the lock --
// exactly the low-contention tax bench/fig4_low_contention.cpp and
// bench/real_lock_overhead.cpp exist to expose.  Fissile Locks (Dice &
// Kogan, 2020) close that gap by composing a test-and-set fast path with a
// queue-lock slow path; Compact NUMA-Aware Locks (Dice & Kogan, 2019) make
// the same argument that NUMA-awareness must not tax the uncontended case.
//
// fissile_lock<Inner> wraps a composed cohort lock with a top-level gate
// word that is the *sole* mutual-exclusion authority:
//
//   * fast path   -- one CAS on the gate word.  On success the acquirer is
//                    in the critical section having touched neither the
//                    local queue nor the global lock.
//   * slow path   -- acquire the inner cohort lock exactly as before (local
//                    lock, global lock, batching, handoffs), then take the
//                    gate word.  Because the inner lock admits one holder at
//                    a time, the gate sees at most one slow contender, plus
//                    whatever fast-path traffic is in flight.
//
// The adaptive hysteresis (the "fissile" part):
//
//   engaged ──(fission_limit consecutive failed CASes)──▶ fissioned
//   fissioned ──(reengage_drains consecutive global releases)──▶ engaged
//
// While engaged, an acquirer attempts one CAS; on failure it "fissions"
// into the cohort slow path and bumps a consecutive-failure counter.  Once
// the counter hits fastpath_policy::fission_limit the fast path disengages:
// new arrivals skip the CAS entirely and flow into the cohort path, so
// saturation batching (the whole point of the paper) is preserved and the
// gate degenerates to one uncontended CAS per critical section.  A slow
// holder that cannot take the gate (a stream of fast thieves is barging)
// disengages it for the same reason -- after that, only in-flight fast
// attempts can hold the gate, so the slow holder acquires in bounded time
// and fast traffic cannot starve the cohort.  The path re-engages when
// traffic drains: inner unlocks report release_kind (core.hpp), and
// reengage_drains consecutive *global* releases -- no waiting cluster-mate
// anywhere in the batch window -- mean the lock is back in its low-traffic
// regime where the single CAS pays.
//
// Cache-line layout (util/align.hpp): the gate word + engagement flag, the
// multi-writer hysteresis/fission counters, and the holder-serialised
// fast-acquire stat cell live on three distinct interference-sized lines,
// so fissioning threads and sampling coordinators never invalidate the line
// the fast path CASes.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>

#include "cohort/cohort_lock.hpp"
#include "cohort/core.hpp"
#include "util/align.hpp"
#include "util/spin.hpp"

namespace cohort {

// Hysteresis knobs for the fast path's engage/disengage state machine.
struct fastpath_policy {
  // Consecutive failed gate CASes (fast attempts, or a slow holder's gate
  // spin) before the fast path disengages.
  std::uint32_t fission_limit = 8;
  // Consecutive global (cohort-drained) releases before it re-engages.
  std::uint32_t reengage_drains = 4;
};

// Fast-path observability, alongside the inner lock's cohort_stats.
struct fastpath_stats {
  std::uint64_t fast_acquires = 0;  // acquisitions served by the gate CAS
  std::uint64_t fissions = 0;       // fast attempts that fell to the cohort
  std::uint64_t disengages = 0;     // engaged -> fissioned transitions
  std::uint64_t reengages = 0;      // fissioned -> engaged transitions
  std::uint64_t gate_timeouts = 0;  // abortable: gave up waiting on the gate
};

// Inner can be any fp_composable_lock (core.hpp): the cohort compositions,
// but equally the compact single-word locks (cna_lock, reciprocating_lock)
// -- the fast path only needs context-based lock/unlock and a release_kind
// that says "the lock actually drained" for its re-engagement hysteresis.
template <fp_composable_lock Inner>
class fissile_lock {
 public:
  using inner_lock = Inner;

  struct context {
    typename Inner::context inner{};
    bool fast = false;  // which path this acquisition took; set by lock()
  };

  fissile_lock() = default;

  // The fast-path knobs come first; everything after is forwarded to the
  // inner lock's constructor (pass_policy + clusters for the cohort
  // compositions, pass_policy for CNA, nothing for reciprocating).
  template <typename... Args>
  explicit fissile_lock(fastpath_policy fp, Args&&... args)
      : fp_(fp), inner_(std::forward<Args>(args)...) {}

  fissile_lock(const fissile_lock&) = delete;
  fissile_lock& operator=(const fissile_lock&) = delete;

  void lock(context& ctx) {
    if (try_fast()) {
      ctx.fast = true;
      return;
    }
    ctx.fast = false;
    inner_.lock(ctx.inner);
    gate(deadline_never());  // cannot fail with infinite patience
  }

  // Bounded-patience acquisition, available when the inner cohort lock is
  // abortable.  A thread that acquired the inner lock but times out on the
  // gate backs out by releasing the inner lock normally -- a successor may
  // inherit G and retry the gate with its own patience.
  bool try_lock(context& ctx, deadline d)
    requires requires(Inner& i, typename Inner::context& c, deadline dd) {
      { i.try_lock(c, dd) } -> std::same_as<bool>;
    }
  {
    if (try_fast()) {
      ctx.fast = true;
      return true;
    }
    ctx.fast = false;
    if (!inner_.try_lock(ctx.inner, d)) return false;
    if (!gate(d)) {
      gate_timeouts_.fetch_add(1, std::memory_order_relaxed);
      inner_.unlock(ctx.inner);
      return false;
    }
    return true;
  }

  // Reports the release kind like the inner transformations do: a fast
  // release never held the global lock, so the next acquirer must earn the
  // gate itself -- that is release_kind::global.
  release_kind unlock(context& ctx) {
    // Release the gate first in both paths: for slow releases the inner
    // handoff successor will spin on it, and holding it across the inner
    // release would serialise the handoff behind this thread.
    word_.store(word_free, std::memory_order_release);
    if (ctx.fast) return release_kind::global;
    const release_kind kind = inner_.unlock(ctx.inner);
    if (kind == release_kind::local) {
      // A cluster-mate inherited G: traffic is live, drain streak over.
      drains_.store(0, std::memory_order_relaxed);
    } else if (drains_.fetch_add(1, std::memory_order_relaxed) + 1 >=
               fp_.reengage_drains) {
      reengage();
    }
    return kind;
  }

  bool fast_path_engaged() const {
    return engaged_.load(std::memory_order_relaxed);
  }

  // Cohort-composition plumbing, present exactly when the inner lock has it
  // (compact inners have no clusters, no global lock, no local locks).
  unsigned clusters() const noexcept
    requires composed_cohort_lock<Inner>
  {
    return inner_.clusters();
  }
  const fastpath_policy& fastpath() const noexcept { return fp_; }
  Inner& inner() noexcept { return inner_; }
  auto& global() noexcept
    requires requires(Inner& i) { i.global(); }
  {
    return inner_.global();
  }
  template <typename F>
  void for_each_local(F&& f)
    requires requires(Inner& i, F&& g) { i.for_each_local(g); }
  {
    inner_.for_each_local(static_cast<F&&>(f));
  }

  // Inner cohort stats with the fast path folded in: fast acquisitions
  // count as acquisitions (they completed a lock() call) but not as global
  // acquires (they never touched G), preserving the quiescent identity
  //   acquisitions == fast_acquires + global_acquires + local_handoffs
  //                   + handoff_failures.
  // Mid-run samples are race-free: every constituent is a relaxed-atomic
  // cell.  Returns cohort_stats or abortable_stats, matching Inner.
  auto stats() const {
    auto s = inner_.stats();
    s.fast_acquires = fast_acquires_.get();
    s.fissions = fissions_.load(std::memory_order_relaxed);
    s.acquisitions += s.fast_acquires;
    return s;
  }

  fastpath_stats fp_stats() const {
    fastpath_stats s;
    s.fast_acquires = fast_acquires_.get();
    s.fissions = fissions_.load(std::memory_order_relaxed);
    s.disengages = disengages_.load(std::memory_order_relaxed);
    s.reengages = reengages_.load(std::memory_order_relaxed);
    s.gate_timeouts = gate_timeouts_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  static constexpr std::uint32_t word_free = 0;
  static constexpr std::uint32_t word_held = 1;

  // One CAS, no waiting: the fast path either wins the gate immediately or
  // fissions into the cohort slow path.
  bool try_fast() {
    if (!engaged_.load(std::memory_order_relaxed)) return false;
    std::uint32_t expect = word_free;
    if (word_.load(std::memory_order_relaxed) == word_free &&
        word_.compare_exchange_strong(expect, word_held,
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
      // A success ends any failure streak; skip the store when the counter
      // is already clear so the steady fast path never dirties line 1.
      if (failures_.load(std::memory_order_relaxed) != 0)
        failures_.store(0, std::memory_order_relaxed);
      ++fast_acquires_;  // holder-serialised cell, sampled concurrently
      return true;
    }
    fissions_.fetch_add(1, std::memory_order_relaxed);
    if (failures_.fetch_add(1, std::memory_order_relaxed) + 1 >=
        fp_.fission_limit)
      disengage();
    return false;
  }

  // Slow-path gate acquisition, entered holding the inner cohort lock, so
  // at most one thread is ever here.  Competition comes only from fast
  // arrivals; after fission_limit failed attempts we disengage the fast
  // path, after which only already-in-flight fast CASes can take the word
  // and the acquisition completes in bounded time.
  bool gate(deadline d) {
    spin_wait w;
    std::uint32_t attempts = 0;
    for (;;) {
      std::uint32_t expect = word_free;
      if (word_.load(std::memory_order_relaxed) == word_free &&
          word_.compare_exchange_weak(expect, word_held,
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed))
        return true;
      if (++attempts == fp_.fission_limit) disengage();
      if (expired(d)) return false;
      w.spin();
    }
  }

  void disengage() {
    if (engaged_.exchange(false, std::memory_order_relaxed)) {
      disengages_.fetch_add(1, std::memory_order_relaxed);
      drains_.store(0, std::memory_order_relaxed);
    }
  }

  void reengage() {
    drains_.store(0, std::memory_order_relaxed);
    if (!engaged_.exchange(true, std::memory_order_relaxed)) {
      reengages_.fetch_add(1, std::memory_order_relaxed);
      failures_.store(0, std::memory_order_relaxed);
    }
  }

  // Line 0: the gate word and the engagement flag -- everything the fast
  // path reads or writes.  They share deliberately: an acquirer touches
  // both back to back, and the CAS owns the line anyway.
  alignas(destructive_interference_size) std::atomic<std::uint32_t> word_{
      word_free};
  std::atomic<bool> engaged_{true};

  // Line 1: multi-writer hysteresis and fission counters.  Bumped only on
  // contention/transition paths, kept off the gate line so a fissioning
  // thread never invalidates the word the fast path is about to CAS.
  alignas(destructive_interference_size) std::atomic<std::uint32_t>
      failures_{0};
  std::atomic<std::uint32_t> drains_{0};
  std::atomic<std::uint64_t> fissions_{0};
  std::atomic<std::uint64_t> disengages_{0};
  std::atomic<std::uint64_t> reengages_{0};
  std::atomic<std::uint64_t> gate_timeouts_{0};

  // Line 2: the holder-serialised fast-acquire cell (coordinators sample
  // it mid-run) and the cold policy words.
  alignas(destructive_interference_size) stat_cell fast_acquires_{};
  fastpath_policy fp_{};

  // The inner composed cohort lock (its slots are padded internally).
  Inner inner_{};
};

}  // namespace cohort
