// Generic Concurrency Restriction over any composable lock.
//
// Past the machine's sweet spot every spin-based composition collapses:
// surplus waiters burn the cycles the holder needs, pollute its caches, and
// lengthen the very critical sections they are waiting on.  "Avoiding
// Scalability Collapse by Restricting Concurrency" (Dice & Kogan, 2019)
// fixes this *outside* the lock: an admission layer splits arrivals into a
// bounded ACTIVE set that competes for the inner lock as usual and a
// PASSIVE set that is futex-parked, consuming no CPU at all.  Throughput
// then tracks the active-set size, not the offered thread count -- the
// collapse curve flattens into a plateau.
//
// gcr<Inner> is that layer as a combinator in the mould of
// fissile_lock<Inner> (fastpath.hpp): Inner is any fp_composable_lock --
// the cohort compositions, the compact locks, their -fp wraps, or bare
// TATAS -- and is entirely unaware it is being throttled.
//
// Admission protocol (per ACQUISITION, not per thread: a slot is held from
// admission to release, so threads that exit between critical sections can
// never leak active-set capacity):
//
//   lock:    CAS `active_` up while it is below `target_`; on success go
//            straight to the inner lock.  On failure enqueue a passive node
//            (FIFO, under a tiny internal spinlock) and futex-park on the
//            node's grant word.
//   unlock:  holder-serialised bookkeeping (release counter, rotation due?,
//            hysteresis tuning) happens *before* the inner release, like
//            the cohort locks' holder-protected stat cells; then the inner
//            unlock; then the slot is either HANDED to the oldest passive
//            waiter (rotation, every `rotation_interval` releases -- the
//            long-term-fairness guarantee; the donor's own next arrival
//            faces admission and parks, which is the "retire an active
//            thread" half) or released with `active_ -= 1`.
//
// Two races are closed deterministically rather than by timeout:
//   * park-vs-release: a releaser decrements `active_` and then checks for
//     passive waiters; a parker enqueues and then re-checks `active_` --
//     both on seq_cst operations, so one of the two must observe the other
//     (the classic store-buffer shape) and either the releaser wakes the
//     new waiter or the waiter cancels itself and claims the free slot.
//   * timeout-vs-grant: cancellation unlinks under the same list lock the
//     granter pops under; whoever gets the lock first wins, and a loser
//     that finds its node already popped just waits for the (imminent)
//     grant word.
//
// The park timeout (gcr_policy::park_timeout_us) is a liveness *backstop*,
// not a wake path: a waiter that times out force-admits itself past the
// target (counted in park_timeouts), transiently overshooting; admission
// stays closed until releases shed the overshoot.  No thread can be
// stranded by a crashed or exited peer for longer than one timeout.
//
// The active-set target self-tunes by hysteresis over windowed throughput:
// every `tune_window` releases the holder computes the release rate of the
// closing window and hill-climbs `target_` -- keep moving the same
// direction while the rate improves, reverse when it degrades beyond a
// noise margin, clamp to [min_active, max_active].  All tuner state is
// holder-serialised plain data; only the `target_` word itself is shared.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>

#include "cohort/cohort_lock.hpp"
#include "cohort/core.hpp"
#include "util/align.hpp"
#include "util/futex.hpp"
#include "util/spin.hpp"
#include "util/stat_cell.hpp"

namespace cohort {

// Admission knobs.  Zero-valued fields resolve to defaults at construction.
struct gcr_policy {
  std::uint32_t min_active = 1;   // tuner floor (and force-admission keeps
                                  // at least one thread live regardless)
  std::uint32_t max_active = 0;   // tuner ceiling; 0 = one per online CPU
  std::uint32_t rotation_interval = 1024;  // releases between fairness
                                           // grants to the oldest waiter
  std::uint32_t tune_window = 8192;  // releases per hysteresis window
  std::uint32_t park_timeout_us = 10'000;  // passive-waiter liveness backstop
};

// Admission observability, alongside the inner lock's cohort_stats.
struct gcr_stats {
  std::uint64_t active_set = 0;     // gauge: currently admitted
  std::uint64_t active_target = 0;  // gauge: current tuned bound
  std::uint64_t parks = 0;          // admissions that futex-parked
  std::uint64_t unparks = 0;        // grants delivered to parked waiters
  std::uint64_t rotations = 0;      // grants made for fairness rotation
  std::uint64_t park_timeouts = 0;  // backstop force-admissions
  std::uint64_t target_moves = 0;   // hysteresis raises + lowers
};

template <fp_composable_lock Inner>
class gcr {
 public:
  using inner_lock = Inner;

  struct context {
    typename Inner::context inner{};
    // Passive-set node, linked into the FIFO list while this acquisition
    // is parked.  grant is the futex word: 0 = waiting, 1 = admitted.
    struct passive_node {
      std::atomic<std::uint32_t> grant{0};
      passive_node* prev = nullptr;
      passive_node* next = nullptr;
      bool queued = false;  // guarded by the list lock
    } node;
  };

  gcr() : gcr(gcr_policy{}) {}

  // The admission knobs come first; everything after is forwarded to the
  // inner lock's constructor, exactly like fissile_lock.
  template <typename... Args>
  explicit gcr(gcr_policy gp, Args&&... args)
      : gp_(resolve(gp)), inner_(std::forward<Args>(args)...) {
    target_.store(gp_.max_active, std::memory_order_relaxed);
    next_rotation_ = gp_.rotation_interval;
    next_tune_ = gp_.tune_window;
  }

  gcr(const gcr&) = delete;
  gcr& operator=(const gcr&) = delete;

  void lock(context& ctx) {
    if (!try_admit()) park_until_admitted(ctx);
    inner_.lock(ctx.inner);
    if constexpr (!inner_has_stats) {
      // Stat-less inner (bare TATAS): synthesise the acquisition counters
      // ourselves.  Holder-serialised cells -- we hold the inner lock.
      ++acquisitions_;
    }
  }

  // Reports the inner lock's release kind, with `none` promoted to
  // `global`: a plain inner's release always actually frees the lock, and
  // downstream consumers (the registry's release-kind contract) read
  // `global` as exactly that.
  release_kind unlock(context& ctx) {
    // Holder-serialised bookkeeping while we still own the inner lock:
    // plain fields, no atomics needed.
    ++releases_;
    bool rotate = false;
    if (releases_ >= next_rotation_) {
      next_rotation_ = releases_ + gp_.rotation_interval;
      rotate = parked_now_.load(std::memory_order_relaxed) != 0;
    }
    maybe_tune();
    const release_kind kind = inner_.unlock(ctx.inner);
    // Past this point the inner lock is free; dispose of the admission slot.
    if (rotate) {
      if (typename context::passive_node* n = pop_waiter()) {
        // Hand this acquisition's slot to the oldest waiter: active_ is
        // unchanged, the wakee inherits it.  The donor's own next arrival
        // will face a full set and park -- that is the retirement.
        rotations_.fetch_add(1, std::memory_order_relaxed);
        grant(n);
        return kind == release_kind::none ? release_kind::global : kind;
      }
      // Everyone parked has timed out or cancelled; fall through.
    }
    release_slot();
    return kind == release_kind::none ? release_kind::global : kind;
  }

  // ---- observability ------------------------------------------------------

  std::uint32_t active_set() const {
    return active_.load(std::memory_order_relaxed);
  }
  std::uint32_t active_target() const {
    return target_.load(std::memory_order_relaxed);
  }
  std::uint32_t parked_now() const {
    return parked_now_.load(std::memory_order_relaxed);
  }

  gcr_stats admission_stats() const {
    gcr_stats s;
    s.active_set = active_set();
    s.active_target = active_target();
    s.parks = parks_.load(std::memory_order_relaxed);
    s.unparks = unparks_.load(std::memory_order_relaxed);
    s.rotations = rotations_.load(std::memory_order_relaxed);
    s.park_timeouts = park_timeouts_.load(std::memory_order_relaxed);
    s.target_moves = target_moves_.load(std::memory_order_relaxed);
    return s;
  }

  // Inner cohort stats with the admission telemetry folded in.  A stat-less
  // inner gets synthesised acquisition counters (every acquisition took the
  // whole lock, so global_acquires == acquisitions keeps the quiescent
  // identity and avg_batch meaningful).  Mid-run samples are race-free:
  // every constituent is a relaxed-atomic cell.
  cohort_stats stats() const {
    cohort_stats s;
    if constexpr (inner_has_stats) {
      s = inner_.stats();
    } else {
      s.acquisitions = acquisitions_.get();
      s.global_acquires = s.acquisitions;
    }
    s.active_set = active_set();
    s.active_target = active_target();
    s.parked = parks_.load(std::memory_order_relaxed);
    s.rotations = rotations_.load(std::memory_order_relaxed);
    return s;
  }

  const gcr_policy& admission() const noexcept { return gp_; }
  Inner& inner() noexcept { return inner_; }

  // Cohort-composition plumbing, present exactly when the inner lock has it.
  unsigned clusters() const noexcept
    requires composed_cohort_lock<Inner>
  {
    return inner_.clusters();
  }
  auto& global() noexcept
    requires requires(Inner& i) { i.global(); }
  {
    return inner_.global();
  }
  template <typename F>
  void for_each_local(F&& f)
    requires requires(Inner& i, F&& g) { i.for_each_local(g); }
  {
    inner_.for_each_local(static_cast<F&&>(f));
  }

 private:
  using passive_node = typename context::passive_node;

  static constexpr bool inner_has_stats =
      requires(const Inner& i) { i.stats(); };

  static gcr_policy resolve(gcr_policy gp) {
    if (gp.min_active == 0) gp.min_active = 1;
    if (gp.max_active == 0) {
      const unsigned n = std::thread::hardware_concurrency();
      gp.max_active = n == 0 ? 1 : n;
    }
    if (gp.max_active < gp.min_active) gp.max_active = gp.min_active;
    if (gp.rotation_interval == 0) gp.rotation_interval = 1;
    if (gp.tune_window == 0) gp.tune_window = 1;
    return gp;
  }

  // ---- admission ----------------------------------------------------------

  bool try_admit() {
    std::uint32_t a = active_.load(std::memory_order_relaxed);
    const std::uint32_t t = target_.load(std::memory_order_relaxed);
    while (a < t) {
      if (active_.compare_exchange_weak(a, a + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed))
        return true;
    }
    return false;
  }

  void park_until_admitted(context& ctx) {
    passive_node& n = ctx.node;
    for (;;) {
      n.grant.store(0, std::memory_order_relaxed);
      push_waiter(n);
      parks_.fetch_add(1, std::memory_order_relaxed);
      // Post-enqueue re-check, seq_cst against the releaser's decrement
      // (which happens before its waiter check): either the releaser saw
      // our node and a grant is coming, or we see its decrement here and
      // claim the slot ourselves.  Without this a release could slip
      // between our failed admission and our enqueue and be lost.
      if (n.grant.load(std::memory_order_acquire) == 0 &&
          active_.load(std::memory_order_seq_cst) <
              target_.load(std::memory_order_relaxed)) {
        if (try_cancel(n)) {
          if (try_admit()) return;
          continue;  // capacity was snatched; queue up again
        }
        // A granter already popped us; its grant store is imminent.
      }
      // Park.  The timeout is a liveness backstop against stranding (e.g.
      // the last active thread exits with the set full), not a wake path.
      const deadline until =
          deadline_after(std::chrono::microseconds(gp_.park_timeout_us));
      bool granted = false;
      for (;;) {
        if (n.grant.load(std::memory_order_acquire) == 1) {
          granted = true;
          break;
        }
        const auto left = until - lock_clock::now();
        if (left <= std::chrono::nanoseconds::zero()) break;
        futex::wait_for(n.grant, 0, left);
      }
      if (granted) return;  // slot transferred or reserved by the granter
      if (try_cancel(n)) {
        // Timed out while still queued: force admission past the target so
        // no thread is ever stranded.  The overshoot is transient --
        // admissions stay closed until releases shed it.
        park_timeouts_.fetch_add(1, std::memory_order_relaxed);
        active_.fetch_add(1, std::memory_order_seq_cst);
        return;
      }
      // Lost the cancel race to a granter: wait out the grant store.
      spin_until([&] {
        return n.grant.load(std::memory_order_acquire) == 1;
      });
      return;
    }
  }

  void release_slot() {
    const std::uint32_t after =
        active_.fetch_sub(1, std::memory_order_seq_cst) - 1;
    // Top-up: only when capacity stays open even after our own return
    // (after + 1 < target, i.e. the set went idle-ish) and someone is
    // parked -- a target raise or an active thread exiting.  Steady-state
    // churn (release then immediate re-admission) never triggers this.
    if (after + 1 < target_.load(std::memory_order_relaxed) &&
        parked_now_.load(std::memory_order_seq_cst) != 0) {
      if (passive_node* n = pop_waiter()) {
        active_.fetch_add(1, std::memory_order_seq_cst);  // wakee's slot
        grant(n);
      }
    }
  }

  void grant(passive_node* n) {
    unparks_.fetch_add(1, std::memory_order_relaxed);
    n->grant.store(1, std::memory_order_release);
    futex::wake_one(n->grant);
  }

  // ---- passive list (FIFO, under a tiny spinlock) -------------------------

  struct list_guard {
    explicit list_guard(std::atomic<bool>& l) : l_(l) {
      while (l_.exchange(true, std::memory_order_acquire)) {
        spin_wait w;
        while (l_.load(std::memory_order_relaxed)) w.spin();
      }
    }
    ~list_guard() { l_.store(false, std::memory_order_release); }
    std::atomic<bool>& l_;
  };

  void push_waiter(passive_node& n) {
    list_guard g(list_lock_);
    n.prev = tail_;
    n.next = nullptr;
    n.queued = true;
    if (tail_)
      tail_->next = &n;
    else
      head_ = &n;
    tail_ = &n;
    parked_now_.fetch_add(1, std::memory_order_seq_cst);
  }

  void unlink(passive_node& n) {
    if (n.prev)
      n.prev->next = n.next;
    else
      head_ = n.next;
    if (n.next)
      n.next->prev = n.prev;
    else
      tail_ = n.prev;
    n.queued = false;
    parked_now_.fetch_sub(1, std::memory_order_relaxed);
  }

  bool try_cancel(passive_node& n) {
    list_guard g(list_lock_);
    if (!n.queued) return false;
    unlink(n);
    return true;
  }

  passive_node* pop_waiter() {
    list_guard g(list_lock_);
    passive_node* n = head_;
    if (n) unlink(*n);
    return n;
  }

  // ---- hysteresis tuner (holder-serialised) -------------------------------

  void maybe_tune() {
    if (releases_ < next_tune_) return;
    next_tune_ = releases_ + gp_.tune_window;
    const auto now = lock_clock::now();
    if (gp_.max_active == gp_.min_active) return;  // nothing to tune
    if (!window_open_) {
      window_open_ = true;
      window_start_ = now;
      window_releases_ = releases_;
      return;
    }
    const double dt = std::chrono::duration<double>(now - window_start_).count();
    window_start_ = now;
    const auto done = releases_ - window_releases_;
    window_releases_ = releases_;
    if (dt <= 0.0) return;
    const double rate = static_cast<double>(done) / dt;
    // Hill climb: keep direction while the rate holds up, reverse when it
    // degrades beyond the noise margin, always clamped to the policy bounds.
    if (last_rate_ > 0.0 && rate < last_rate_ * degrade_margin) dir_ = -dir_;
    last_rate_ = rate;
    const std::uint32_t t = target_.load(std::memory_order_relaxed);
    std::uint32_t next = t;
    if (dir_ > 0 && t < gp_.max_active) next = t + 1;
    if (dir_ < 0 && t > gp_.min_active) next = t - 1;
    if (next != t) {
      target_.store(next, std::memory_order_seq_cst);
      target_moves_.fetch_add(1, std::memory_order_relaxed);
      // A raise opens capacity no release will notice on its own; wake a
      // parked waiter per fresh slot to fill it.
      for (std::uint32_t i = t; i < next; ++i) {
        if (parked_now_.load(std::memory_order_seq_cst) == 0) break;
        if (passive_node* n = pop_waiter()) {
          active_.fetch_add(1, std::memory_order_seq_cst);
          grant(n);
        }
      }
    }
  }

  // Tolerate this much window-to-window degradation before reversing.
  static constexpr double degrade_margin = 0.98;

  // Line 0: the admission words every acquisition touches.
  alignas(destructive_interference_size) std::atomic<std::uint32_t> active_{0};
  std::atomic<std::uint32_t> target_{1};

  // Line 1: the passive list and its lock -- touched only when parking,
  // granting, or rotating, never on the admitted hot path.
  alignas(destructive_interference_size) std::atomic<bool> list_lock_{false};
  passive_node* head_ = nullptr;
  passive_node* tail_ = nullptr;
  std::atomic<std::uint32_t> parked_now_{0};

  // Line 2: multi-writer event counters (parkers and granters race here).
  alignas(destructive_interference_size) std::atomic<std::uint64_t> parks_{0};
  std::atomic<std::uint64_t> unparks_{0};
  std::atomic<std::uint64_t> rotations_{0};
  std::atomic<std::uint64_t> park_timeouts_{0};
  std::atomic<std::uint64_t> target_moves_{0};

  // Line 3: holder-serialised rotation/tuner state (plain fields -- the
  // inner lock orders every access) and the synthesised stat cell.
  alignas(destructive_interference_size) std::uint64_t releases_ = 0;
  std::uint64_t next_rotation_ = 1;
  std::uint64_t next_tune_ = 1;
  std::uint64_t window_releases_ = 0;
  lock_clock::time_point window_start_{};
  double last_rate_ = 0.0;
  int dir_ = -1;  // start by probing downward: restriction is the thesis
  bool window_open_ = false;
  stat_cell acquisitions_{};

  gcr_policy gp_{};
  Inner inner_;
};

}  // namespace cohort
