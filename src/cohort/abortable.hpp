// Abortable (timeout-capable) cohort locks (paper §3.6).
//
// The transformation is the same as cohort_lock, with two extra moving
// parts:
//  * waiting on either level can give up when patience expires;
//  * a thread that acquired its local lock in GLOBAL-RELEASE state but timed
//    out on the global lock must back out by releasing the local lock in
//    GLOBAL-RELEASE state, so a successor acquires G itself.
// The strengthened cohort-detection requirement -- release_local() must
// guarantee a *viable* successor or fail -- lives in the local locks
// (cohort_bo_lock<.., true> and cohort_aclh_lock).
//
// A waiter whose local grant arrives in LOCAL-RELEASE state just as it tries
// to abort has inherited the global lock and cannot refuse it; try_lock then
// reports success even though the deadline passed (§3.6: such a thread "is
// in the critical section").
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "cohort/cohort_lock.hpp"
#include "cohort/core.hpp"
#include "numa/topology.hpp"
#include "util/align.hpp"

namespace cohort {

struct abortable_stats : cohort_stats {
  std::uint64_t local_timeouts = 0;   // gave up waiting on the local lock
  std::uint64_t global_timeouts = 0;  // gave up waiting on the global lock
};

template <abortable_global_lock G, abortable_cohort_local_lock L>
class abortable_cohort_lock {
 public:
  struct context {
    typename L::context local{};
    unsigned cluster = 0;
    release_kind acquired{};
  };

  abortable_cohort_lock() : abortable_cohort_lock(pass_policy{}) {}

  explicit abortable_cohort_lock(pass_policy policy, unsigned clusters = 0)
      : policy_(policy),
        clusters_(clusters != 0 ? clusters
                                : numa::system_topology().clusters()),
        slots_(clusters_) {}

  abortable_cohort_lock(const abortable_cohort_lock&) = delete;
  abortable_cohort_lock& operator=(const abortable_cohort_lock&) = delete;

  // Returns false if the lock could not be acquired before d.
  bool try_lock(context& ctx, deadline d) {
    ctx.cluster = numa::thread_cluster() % clusters_;
    slot& s = slots_[ctx.cluster].get();
    auto r = s.lock.try_lock(ctx.local, d);
    if (!r.has_value()) {
      // A timed-out waiter holds no lock, so this counter must be atomic.
      s.local_timeouts.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    ctx.acquired = *r;
    if (*r == release_kind::global) {
      if (!global_.try_lock(d)) {
        // Back out: whoever acquires the local lock next must take G.
        s.global_timeouts.fetch_add(1, std::memory_order_relaxed);
        s.lock.release_global(ctx.local);
        return false;
      }
      s.batch = 0;
      ++s.stats.global_acquires;
    }
    ++s.stats.acquisitions;
    return true;
  }

  void lock(context& ctx) { (void)try_lock(ctx, deadline_never()); }

  // Reports the release kind exactly like cohort_lock::unlock: local for a
  // successful handoff, global otherwise (including failed handoffs, which
  // end in a global release per §3.6).
  release_kind unlock(context& ctx) {
    slot& s = slots_[ctx.cluster].get();
    if (s.batch < policy_.limit && !s.lock.alone(ctx.local)) {
      ++s.batch;
      // Optimistic: a successful release_local transfers the lock with the
      // CAS itself, so the counter must move while we still hold it.
      ++s.stats.local_handoffs;
      if (s.lock.release_local(ctx.local)) return release_kind::local;
      // No viable successor could be guaranteed: the local lock is already
      // released in GLOBAL-RELEASE state, so just release G.  The counter
      // patch is ordered before the next holder by the global lock we still
      // hold.
      --s.stats.local_handoffs;
      ++s.stats.handoff_failures;
      global_.unlock();
      return release_kind::global;
    }
    global_.unlock();
    s.lock.release_global(ctx.local);
    return release_kind::global;
  }

  unsigned clusters() const noexcept { return clusters_; }
  G& global() noexcept { return global_; }
  template <typename F>
  void for_each_local(F&& f) {
    for (auto& s : slots_) f(s->lock);
  }

  // Exact at quiescence, sampleable mid-run (relaxed-atomic cells).
  abortable_stats stats() const {
    abortable_stats total;
    for (const auto& s : slots_) {
      s->stats.add_into(total);
      total.local_timeouts +=
          s->local_timeouts.load(std::memory_order_relaxed);
      total.global_timeouts +=
          s->global_timeouts.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct slot {
    // Leading lines belong to the local lock alone (waiters spin on it).
    L lock{};
    // Owner-only batch counter, kept off the lock's lines (see cohort_lock).
    alignas(destructive_interference_size) std::uint64_t batch = 0;
    // Holder-serialised counter cells (see cohort_counters); the struct is
    // interference-aligned, so it also closes out the batch line above.
    cohort_counters stats{};
    // Timeout counters are bumped by threads that failed to acquire and
    // therefore hold nothing; they need their own synchronisation -- and
    // their own line, so losers' bumps don't invalidate the holder's cells.
    alignas(destructive_interference_size)
        std::atomic<std::uint64_t> local_timeouts{0};
    std::atomic<std::uint64_t> global_timeouts{0};
  };

  pass_policy policy_;
  unsigned clusters_;
  G global_;
  std::vector<padded<slot>> slots_;
};

}  // namespace cohort
