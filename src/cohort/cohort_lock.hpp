// The lock cohorting transformation (paper §2.1) and its fairness bound
// (§3.7).
//
// cohort_lock<G, L> turns a thread-oblivious global lock G and a
// cohort-detecting local lock L into a NUMA-aware lock: one L instance per
// cluster, one shared G.  The common path -- handing the lock to a waiting
// cluster-mate without touching G -- costs exactly one local-lock release.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "cohort/core.hpp"
#include "numa/topology.hpp"
#include "util/align.hpp"
#include "util/stat_cell.hpp"

namespace cohort {

// Releases the global lock after `limit` consecutive local handoffs (64 in
// all of the paper's experiments).  A limit of 0 disables local handoff
// entirely (every release is global); use unbounded_pass() to reproduce the
// paper's "deeply unfair" unbounded variant.
struct pass_policy {
  std::uint64_t limit = 64;
};

inline constexpr std::uint64_t unbounded_pass =
    ~static_cast<std::uint64_t>(0);

// Snapshot of a cohort lock's batching counters.  Exact at quiescence; a
// mid-run sample (the benchmark's windowed telemetry) sees each counter at
// some recent instant -- counters move independently, so cross-counter
// identities only hold exactly on a quiescent lock.
struct cohort_stats {
  std::uint64_t acquisitions = 0;    // total lock() calls completed
  std::uint64_t global_acquires = 0; // acquisitions that took the global lock
  std::uint64_t local_handoffs = 0;  // successful release_local() handoffs
  std::uint64_t handoff_failures = 0;// release_local() returned false (§3.6)
  // Fast-path accounting (fastpath.hpp); always 0 for the plain cohort
  // compositions.  At quiescence the acquisition identity is
  //   acquisitions ==
  //       fast_acquires + global_acquires + local_handoffs + handoff_failures.
  std::uint64_t fast_acquires = 0;   // took the top-level CAS, no inner lock
  std::uint64_t fissions = 0;        // attempted fast, fell into the cohort
  // Compact-lock accounting (locks/cna.hpp): waiters moved to the deferred
  // (secondary) list because a same-socket successor was preferred.  Always
  // 0 for the per-cluster cohort compositions -- they never reorder a
  // queue, they instantiate one per cluster.  Not part of the acquisition
  // identity: a deferred waiter still acquires (and is counted) later.
  std::uint64_t deferrals = 0;
  // Admission accounting (cohort/gcr.hpp); always 0 outside a gcr<Inner>
  // wrapper.  active_set and active_target are *gauges* (the instantaneous
  // set size / tuned target at sample time), parked and rotations are
  // cumulative event counters.  None participate in the acquisition
  // identity: a parked thread still acquires (and is counted) once admitted.
  std::uint64_t active_set = 0;     // threads currently admitted (gauge)
  std::uint64_t active_target = 0;  // tuned admission bound (gauge)
  std::uint64_t parked = 0;         // admission rejections that futex-parked
  std::uint64_t rotations = 0;      // fairness grants to the oldest waiter
  // Adaptive-ladder accounting (locks/adaptive.hpp); always 0 outside the
  // adaptive wrapper.  policy_switches counts completed hot-swaps;
  // current_policy is a gauge, the 1-based ladder rung of the live inner
  // lock at sample time (so 0 distinguishes "not adaptive" from the TATAS
  // rung).  Summing the gauge across shard locks follows the active_set
  // idiom: per-shard values carry the signal, the aggregate is a total.
  std::uint64_t policy_switches = 0;
  std::uint64_t current_policy = 0;

  // Lock migrations in the paper's sense: the global lock moved between
  // clusters.  global_acquires counts them (plus the very first acquire).
  // Fast acquires never touch the global lock, so they are excluded -- the
  // batch length keeps measuring how much work one global acquire amortises.
  double avg_batch() const {
    return global_acquires == 0
               ? 0.0
               : static_cast<double>(acquisitions - fast_acquires) /
                     static_cast<double>(global_acquires);
  }

  // Aggregation across shard/arena locks (the harness samplers).
  cohort_stats& operator+=(const cohort_stats& o) {
    acquisitions += o.acquisitions;
    global_acquires += o.global_acquires;
    local_handoffs += o.local_handoffs;
    handoff_failures += o.handoff_failures;
    fast_acquires += o.fast_acquires;
    fissions += o.fissions;
    deferrals += o.deferrals;
    active_set += o.active_set;
    active_target += o.active_target;
    parked += o.parked;
    rotations += o.rotations;
    policy_switches += o.policy_switches;
    current_policy += o.current_policy;
    return *this;
  }
};

// The live per-cluster counters behind cohort_stats.  stat_cell
// (util/stat_cell.hpp) is the single-writer relaxed-atomic cell: only the
// current lock holder increments, coordinators sample concurrently.  Aligned to the
// destructive-interference size so a cluster's stat cells never share a
// line with the hot lock state (or another cluster's cells) they sit next
// to inside a slot: the benchmark coordinator reads these concurrently with
// the workers, and a shared line would turn every sample into cross-cluster
// invalidation traffic on the lock words.
struct alignas(destructive_interference_size) cohort_counters {
  stat_cell acquisitions;
  stat_cell global_acquires;
  stat_cell local_handoffs;
  stat_cell handoff_failures;
  stat_cell deferrals;

  cohort_stats snapshot() const {
    cohort_stats s;
    s.acquisitions = acquisitions.get();
    s.global_acquires = global_acquires.get();
    s.local_handoffs = local_handoffs.get();
    s.handoff_failures = handoff_failures.get();
    s.deferrals = deferrals.get();
    return s;
  }
  void add_into(cohort_stats& total) const {
    total.acquisitions += acquisitions.get();
    total.global_acquires += global_acquires.get();
    total.local_handoffs += local_handoffs.get();
    total.handoff_failures += handoff_failures.get();
    total.deferrals += deferrals.get();
  }
  void reset() {
    acquisitions.reset();
    global_acquires.reset();
    local_handoffs.reset();
    handoff_failures.reset();
    deferrals.reset();
  }
};

template <global_lock G, cohort_local_lock L>
class cohort_lock {
 public:
  struct context {
    typename L::context local{};
    unsigned cluster = 0;        // filled in by lock()
    release_kind acquired{};     // how the local lock was acquired
  };

  cohort_lock() : cohort_lock(pass_policy{}) {}

  explicit cohort_lock(pass_policy policy, unsigned clusters = 0)
      : policy_(policy),
        clusters_(clusters != 0 ? clusters
                                : numa::system_topology().clusters()),
        slots_(clusters_) {}

  // Locks contain atomics and cannot be copied, so per-instance tuning
  // (e.g. backoff parameters) is applied in place after construction,
  // before first use.
  G& global() noexcept { return global_; }
  template <typename F>
  void for_each_local(F&& f) {
    for (auto& s : slots_) f(s->lock);
  }

  // Non-copyable, non-movable: waiters hold pointers into the lock.
  cohort_lock(const cohort_lock&) = delete;
  cohort_lock& operator=(const cohort_lock&) = delete;

  void lock(context& ctx) {
    ctx.cluster = numa::thread_cluster() % clusters_;
    slot& s = slots_[ctx.cluster].get();
    ctx.acquired = s.lock.lock(ctx.local);
    if (ctx.acquired == release_kind::global) {
      // Previous local owner released the global lock: acquire it ourselves
      // and start a fresh batch for this cluster.
      global_.lock();
      s.batch = 0;
      ++s.stats.global_acquires;
    }
    ++s.stats.acquisitions;
  }

  // Returns how the release went: release_kind::local when the lock was
  // handed to a waiting cluster-mate (the batch continues), release_kind::
  // global when the global lock was released (the cohort drained or the
  // pass bound was reached).  The fast-path layer keys its re-engagement
  // hysteresis off consecutive global releases.
  release_kind unlock(context& ctx) {
    slot& s = slots_[ctx.cluster].get();
    if (s.batch < policy_.limit && !s.lock.alone(ctx.local)) {
      ++s.batch;
      // Count the handoff optimistically *before* the release: a successful
      // release_local transfers the lock, and any update after that instant
      // would race with the inheritor's own accounting.
      ++s.stats.local_handoffs;
      if (s.lock.release_local(ctx.local)) return release_kind::local;
      // Abortable local locks may fail the handoff (no viable successor);
      // the local lock is then already released in GLOBAL-RELEASE state and
      // we only release the global lock (§3.6).  We still hold the global
      // lock here, which orders the counter patch before the next holder's
      // updates.
      --s.stats.local_handoffs;
      ++s.stats.handoff_failures;
      global_.unlock();
      return release_kind::global;
    }
    // Cohort empty or batch bound reached: release globally.  Order per the
    // paper: global first, then the local lock in GLOBAL-RELEASE state.
    global_.unlock();
    s.lock.release_global(ctx.local);
    return release_kind::global;
  }

  unsigned clusters() const noexcept { return clusters_; }
  const pass_policy& policy() const noexcept { return policy_; }

  // Aggregated statistics: exact at quiescence, sampleable mid-run (the
  // counters are relaxed-atomic cells, so concurrent reads are race-free).
  cohort_stats stats() const {
    cohort_stats total;
    for (const auto& s : slots_) s->stats.add_into(total);
    return total;
  }

  cohort_stats cluster_stats(unsigned c) const {
    return slots_.at(c)->stats.snapshot();
  }

  void reset_stats() {
    for (auto& s : slots_) s->stats.reset();
  }

 private:
  struct slot {
    // The local lock gets the slot's leading lines to itself: waiters of
    // this cluster spin on it, and nothing below may share those lines.
    L lock{};
    // batch counts consecutive local handoffs; only ever accessed by the
    // current cohort-lock owner of this cluster, so a plain field is safe
    // (the local lock's release/acquire edges order the accesses).  Aligned
    // off the lock's tail line so owner writes never invalidate spinners.
    alignas(destructive_interference_size) std::uint64_t batch = 0;
    // Sampled concurrently by the benchmark coordinator; cohort_counters is
    // itself interference-aligned, which also pads batch out to a full line.
    cohort_counters stats{};
  };

  pass_policy policy_;
  unsigned clusters_;
  G global_;
  std::vector<padded<slot>> slots_;
};

// RAII guard for context-based locks.
template <typename Lock>
class scoped {
 public:
  explicit scoped(Lock& lock) : lock_(lock) { lock_.lock(ctx_); }
  ~scoped() { lock_.unlock(ctx_); }
  scoped(const scoped&) = delete;
  scoped& operator=(const scoped&) = delete;

 private:
  Lock& lock_;
  typename Lock::context ctx_{};
};

}  // namespace cohort
