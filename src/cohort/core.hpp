// Core vocabulary of the lock-cohorting transformation (paper §2).
//
// A cohort lock composes:
//   * a global lock G that is *thread-oblivious*  -- the unlock may run on a
//     different thread than the matching lock; and
//   * per-cluster local locks S_i with *cohort detection* -- a releaser can
//     ask alone() ("is some thread concurrently acquiring S_i?") and can
//     release either in LOCAL-RELEASE state (successor inherits G) or in
//     GLOBAL-RELEASE state (successor must acquire G itself).
//
// The concepts below pin down the exact interface the transformation in
// cohort_lock.hpp consumes.  alone() may return false positives (claiming a
// cohort exists when none does is only a throughput loss -- it causes an
// unnecessary global release); it must never return a false negative in the
// non-abortable locks, and in abortable locks release_local() additionally
// guarantees a *viable* successor or fails (paper §3.6).
#pragma once

#include <chrono>
#include <concepts>
#include <cstdint>
#include <optional>

namespace cohort {

// How a lock was released.  Every registry lock's unlock() returns this --
// it is the one piece of the unlock contract the composition layers consume.
//
// For the cohort transformations (cohort_lock, abortable_cohort_lock) the
// value is also what the next acquirer observes: `local` means the release
// handed G to a cluster-mate, `global` means the global lock was released
// (the cohort drained or the pass bound hit).  The compact NUMA locks (CNA,
// Reciprocating) report `local` for any in-queue handoff and `global` when
// the lock was actually freed.  Plain locks (MCS, TATAS, pthread, ...) have
// no handoff concept and always report `none`.
//
// The fast-path layer (fastpath.hpp) keys its re-engagement hysteresis off
// consecutive `global` releases: traffic has drained enough for the
// single-CAS fast path to pay again.  `none` releases carry no drain
// information and never occur under the fast path (plain locks are not
// fp-composable).
enum class release_kind : std::uint8_t {
  global,  // previous holder released the global lock: acquire G yourself
  local,   // previous holder kept G: you inherit ownership of G
  none,    // plain lock: no handoff/drain semantics to report
};

// ---- timeouts -------------------------------------------------------------

using lock_clock = std::chrono::steady_clock;
using deadline = lock_clock::time_point;

inline deadline deadline_after(std::chrono::nanoseconds d) {
  return lock_clock::now() + d;
}

inline deadline deadline_never() { return deadline::max(); }

inline bool expired(deadline d) {
  return d != deadline::max() && lock_clock::now() >= d;
}

// ---- concepts -------------------------------------------------------------

// A thread-oblivious lock usable as the cohort global lock.  No
// per-acquisition context: ownership state that must travel between threads
// lives inside the lock (e.g. the oblivious MCS lock's current queue node).
// unlock()'s release_kind::none return is ignored here -- the cohort
// transformation derives its own release kind from the local lock.
template <typename G>
concept global_lock = requires(G g) {
  { g.lock() } -> std::same_as<void>;
  g.unlock();
  requires G::is_thread_oblivious;
};

// A global lock that additionally supports bounded-patience acquisition.
template <typename G>
concept abortable_global_lock = global_lock<G> && requires(G g, deadline d) {
  { g.try_lock(d) } -> std::same_as<bool>;
};

// A cohort-detecting local lock.
//
//   lock(ctx)           blocks; returns the release state it acquired in.
//   alone(ctx)          cohort detection; callable only by the holder.
//   release_local(ctx)  attempt a local handoff (successor inherits G).
//                       Returns true on success.  On false the lock has been
//                       released in GLOBAL-RELEASE state and the caller must
//                       release G (and must NOT call release_global).
//                       Non-abortable locks never fail here.
//   release_global(ctx) release; next acquirer must acquire G.
template <typename L>
concept cohort_local_lock =
    requires(L l, typename L::context c) {
      { l.lock(c) } -> std::same_as<release_kind>;
      { l.alone(c) } -> std::same_as<bool>;
      { l.release_local(c) } -> std::same_as<bool>;
      { l.release_global(c) } -> std::same_as<void>;
    };

// A local lock whose acquisition can abort.  try_lock returns nullopt when
// patience runs out; the strengthened cohort-detection requirement (§3.6) is
// carried by release_local()'s may-fail contract above.
template <typename L>
concept abortable_cohort_local_lock =
    cohort_local_lock<L> && requires(L l, typename L::context c, deadline d) {
      {
        l.try_lock(c, d)
      } -> std::same_as<std::optional<release_kind>>;
    };

// What the fast-path layer (fastpath.hpp) consumes: context-based
// lock/unlock where unlock reports a meaningful release kind (local handoff
// vs global/drained release) to drive the re-engagement hysteresis.  The
// cohort transformations model this, and so do the compact NUMA locks (CNA,
// Reciprocating) -- nothing here assumes per-cluster structure.
template <typename C>
concept fp_composable_lock = requires(C c, typename C::context ctx) {
  { c.lock(ctx) } -> std::same_as<void>;
  { c.unlock(ctx) } -> std::same_as<release_kind>;
};

// A fully composed cohort lock: fp-composable plus the per-cluster shape.
// Both cohort_lock and abortable_cohort_lock model this.
template <typename C>
concept composed_cohort_lock =
    fp_composable_lock<C> && requires(C c) {
      { c.clusters() } -> std::same_as<unsigned>;
    };

// ---- empty context --------------------------------------------------------

// Locks that keep no per-acquisition state (BO, ticket) use this.
struct empty_context {};

}  // namespace cohort
