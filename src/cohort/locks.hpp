// Named cohort-lock instantiations matching the paper (§3), plus the one
// public umbrella header a downstream user needs.
//
//   C-BO-BO     global BO,     local BO            (§3.1)
//   C-TKT-TKT   global ticket, local ticket        (§3.2)
//   C-BO-MCS    global BO,     local MCS           (§3.3, Figure 1)
//   C-MCS-MCS   global MCS,    local MCS           (§3.4)
//   C-TKT-MCS   global ticket, local MCS           (§3.5)
//   A-C-BO-BO   abortable: global BO, local BO     (§3.6.1)
//   A-C-BO-CLH  abortable: global BO, local A-CLH  (§3.6.2)
//
// Per the paper's implementation note (§4.1.1), the *global* BO lock of a
// cohort lock is expected to be lightly contended, so it spins bare-bones
// and never backs off (tas_spin_lock).
#pragma once

#include "cohort/abortable.hpp"
#include "cohort/cohort_lock.hpp"
#include "cohort/fastpath.hpp"
#include "cohort/gcr.hpp"
#include "locks/clh.hpp"
#include "locks/cna.hpp"
#include "locks/mcs.hpp"
#include "locks/park.hpp"
#include "locks/reciprocating.hpp"
#include "locks/tatas.hpp"
#include "locks/ticket.hpp"

namespace cohort {

using c_bo_bo_lock = cohort_lock<tas_spin_lock, cohort_bo_lock<exp_backoff>>;
using c_tkt_tkt_lock = cohort_lock<ticket_lock, cohort_ticket_lock>;
using c_bo_mcs_lock = cohort_lock<tas_spin_lock, cohort_mcs_lock>;
using c_tkt_mcs_lock = cohort_lock<ticket_lock, cohort_mcs_lock>;
using c_mcs_mcs_lock = cohort_lock<oblivious_mcs_lock, cohort_mcs_lock>;

using a_c_bo_bo_lock =
    abortable_cohort_lock<tas_spin_lock, cohort_bo_lock<exp_backoff, true>>;
using a_c_bo_clh_lock =
    abortable_cohort_lock<tas_spin_lock, cohort_aclh_lock>;

// Extension (paper §2.1's "as easily applied to blocking-locks"): a hybrid
// that spins within a cluster and *blocks* across clusters -- remote cohorts
// sleep in the kernel on the futex-based global lock while the owning
// cluster works through its batch.
using c_park_mcs_lock = cohort_lock<park_lock, cohort_mcs_lock>;

// Fissile-style fast-path variants (fastpath.hpp): one top-level CAS when
// the lock is quiet, fission into the cohort slow path -- with hysteresis --
// when it is not.  Registered as "<name>-fp"; every cohort composition above
// has one.
using c_bo_bo_fp_lock = fissile_lock<c_bo_bo_lock>;
using c_tkt_tkt_fp_lock = fissile_lock<c_tkt_tkt_lock>;
using c_bo_mcs_fp_lock = fissile_lock<c_bo_mcs_lock>;
using c_tkt_mcs_fp_lock = fissile_lock<c_tkt_mcs_lock>;
using c_mcs_mcs_fp_lock = fissile_lock<c_mcs_mcs_lock>;
using c_park_mcs_fp_lock = fissile_lock<c_park_mcs_lock>;
using a_c_bo_bo_fp_lock = fissile_lock<a_c_bo_bo_lock>;
using a_c_bo_clh_fp_lock = fissile_lock<a_c_bo_clh_lock>;

// The compact single-word NUMA locks (locks/cna.hpp, locks/reciprocating.hpp)
// compose with the same fast path: fp_composable_lock is all fissile_lock
// requires, and both report release_kind::global exactly when they drain.
using cna_fp_lock = fissile_lock<cna_lock>;
using reciprocating_fp_lock = fissile_lock<reciprocating_lock>;

// GCR admission wrappers (cohort/gcr.hpp): a bounded active set in front of
// the inner lock, surplus acquirers futex-parked.  Registered as
// "gcr-<name>"; any fp_composable_lock qualifies as the inner, including
// bare TATAS (the combinator synthesises its stats) and the -fp composites
// (fast path inside the admission gate).
using gcr_tatas_lock = gcr<tas_spin_lock>;
using gcr_c_bo_mcs_lock = gcr<c_bo_mcs_lock>;
using gcr_c_mcs_mcs_lock = gcr<c_mcs_mcs_lock>;
using gcr_cna_lock = gcr<cna_lock>;
using gcr_reciprocating_lock = gcr<reciprocating_lock>;
using gcr_c_bo_mcs_fp_lock = gcr<c_bo_mcs_fp_lock>;
using gcr_c_mcs_mcs_fp_lock = gcr<c_mcs_mcs_fp_lock>;
using gcr_cna_fp_lock = gcr<cna_fp_lock>;
using gcr_reciprocating_fp_lock = gcr<reciprocating_fp_lock>;

}  // namespace cohort
