// The kv front-end (DESIGN.md §6, hardening in §11): event-loop worker
// threads serving the memcached text-protocol subset over the sharded
// engine, every operation routed through the shared command layer
// (kvstore/command.hpp).
//
// Threading model: `io_threads` workers, each with its own poller
// (epoll/poll), its own connection table, and its own
// command_executor<any_sharded_store> -- a connection is owned by exactly
// one worker for its whole life, so connection state needs no locks, and
// the only cross-thread contention is where it belongs: on the shard locks
// inside the store.  All workers watch the (non-blocking) listen socket and
// race to accept; with pin_io_threads each worker is pinned to cluster
// (i mod clusters), so a worker's shard-lock acquisitions come from one
// cluster -- the arrival pattern cohort locks batch best.
//
// Robustness (all per-worker, no cross-thread state):
//   - Admission: past max_conns_per_worker live connections or
//     max_parked_writers output-parked ones, new sockets are shed --
//     `SERVER_ERROR busy` and an immediate close -- instead of letting
//     oversubscription collapse the loop (the GCR philosophy one layer up).
//   - Timeouts: a lazy 32-slot timing wheel evicts connections idle past
//     idle_timeout_ms (slowloris) or alive past max_conn_lifetime_ms;
//     max_requests_per_conn bounds what one connection may consume.
//   - Drain: drain() stops accepting, half-closes every connection so
//     buffered requests execute and replies flush, then force-closes
//     whatever remains at drain_deadline_ms.  Returns true when no
//     force-close was needed.
// Every close is attributed to exactly one reason, so
//   connections == shed + closed + timeouts + resets + drained
// holds at quiescence -- the chaos tests assert exactly this identity.
//
// All socket I/O goes through the io_ops seam (net/io_ops.hpp), so a
// fault plan (net/fault.hpp) can inject short I/O, EINTR/EAGAIN storms,
// resets, and fd exhaustion into every one of these paths on demand.
//
// Shutdown: stop() flips a flag and writes one byte down each worker's
// self-pipe; workers drain, close their connections, and join.  Server
// counters are single-writer cells per worker, summed on read, so the
// `stats` command and tests may sample them live.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "kvstore/command.hpp"
#include "kvstore/sharded_store.hpp"
#include "net/memcache_proto.hpp"
#include "net/poller.hpp"
#include "net/socket.hpp"
#include "util/stat_cell.hpp"

namespace cohort::net {

struct server_config {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; kv_server::port() reports it
  unsigned io_threads = 1;
  bool pin_io_threads = false;  // pin worker i to cluster i % clusters
  proto_limits limits{};
  // Overload shedding (0 = unlimited): a worker refuses new sockets with
  // `SERVER_ERROR busy` past this many live connections, or past this many
  // connections parked on the output high-water mark.
  unsigned max_conns_per_worker = 0;
  unsigned max_parked_writers = 0;
  // Eviction (0 = off): close connections that sent no byte for
  // idle_timeout_ms, outlived max_conn_lifetime_ms, or issued
  // max_requests_per_conn requests.
  std::uint32_t idle_timeout_ms = 0;
  std::uint32_t max_conn_lifetime_ms = 0;
  std::uint64_t max_requests_per_conn = 0;
  // Hard ceiling on how long drain() lets replies flush.
  std::uint32_t drain_deadline_ms = 2000;
};

struct server_counters {
  std::uint64_t connections = 0;      // accepted over the server's lifetime
  std::uint64_t commands = 0;         // requests answered (noreply included)
  std::uint64_t protocol_errors = 0;  // error replies (ERROR/CLIENT_/SERVER_)
  // Close-reason attribution; sums to `connections` at quiescence.
  std::uint64_t closed = 0;    // normal lifecycle (quit, EOF, request cap)
  std::uint64_t shed = 0;      // refused at admission (SERVER_ERROR busy)
  std::uint64_t timeouts = 0;  // idle / lifetime eviction
  std::uint64_t resets = 0;    // read/write error mid-connection
  std::uint64_t drained = 0;   // closed by drain()
  // Faults the injection layer fired process-wide (0 without a plan).
  std::uint64_t injected_faults = 0;
};

class kv_server {
 public:
  // The store must outlive the server.  The server adds no locking of its
  // own around store operations -- the shard locks are the experiment.
  kv_server(kvstore::any_sharded_store& store, server_config cfg);
  ~kv_server();
  kv_server(const kv_server&) = delete;
  kv_server& operator=(const kv_server&) = delete;

  // Bind + spawn the worker threads.  False (with *error) on failure.
  bool start(std::string* error);
  // Idempotent; joins the workers and closes every connection abruptly
  // (remaining connections are accounted as `closed`).
  void stop();
  // Graceful shutdown: stop accepting, execute already-buffered requests,
  // flush replies, close; force-close at cfg.drain_deadline_ms.  Joins the
  // workers.  True when every connection drained before the deadline.
  bool drain();

  bool running() const noexcept { return running_; }
  std::uint16_t port() const noexcept { return port_; }
  const server_config& config() const noexcept { return cfg_; }
  kvstore::any_sharded_store& store() noexcept { return store_; }

  // Live sample (single-writer cells, summed across workers).
  server_counters counters() const;

 private:
  struct connection;
  struct worker;

  void io_loop(worker& w);
  void accept_ready(worker& w);
  void begin_drain(worker& w);
  void connection_readable(worker& w, connection& c);
  // Returns true when the parser went idle (needs more bytes) or the
  // connection is closing; false when it parked on the output high-water
  // mark with complete requests still buffered.
  bool drain_parser(worker& w, connection& c);
  // Pure write pass: sends as much buffered output as the socket accepts.
  // False only on a dead peer (write error).
  bool flush_output(connection& c);
  // Flush + resume parked parser work as the buffer drains + keep poller
  // interest in sync.  False = close the connection.
  bool pump(worker& w, connection& c);
  void update_interest(worker& w, connection& c);
  void execute(worker& w, connection& c, text_request& req);
  void close_connection(worker& w, int fd);
  std::chrono::steady_clock::time_point conn_deadline(
      const connection& c) const;
  void wheel_insert(worker& w, int fd, std::uint64_t gen,
                    std::chrono::steady_clock::time_point deadline);
  void sweep_timeouts(worker& w, std::chrono::steady_clock::time_point now);
  void wake_workers();
  void join_workers();

  static std::size_t pending_out(const connection& c);
  bool throttled(const connection& c) const;

  kvstore::any_sharded_store& store_;
  server_config cfg_;
  // Output high-water mark per connection: while more than this many reply
  // bytes are buffered, the worker stops reading and parsing that
  // connection until writes drain -- a pipelining client cannot drive
  // unbounded buffering.  (A single reply can still exceed it by one
  // bounded request's worth: max_get_keys values.)
  std::size_t high_water_ = 0;
  // Timing-wheel tick; 0 when no timeout is configured.
  std::uint32_t wheel_tick_ms_ = 0;
  unique_fd listen_fd_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_flag_{false};
  std::atomic<bool> drain_flag_{false};
  std::chrono::steady_clock::time_point drain_deadline_{};
  bool running_ = false;
  std::vector<std::unique_ptr<worker>> workers_;
  std::vector<std::thread> threads_;
};

}  // namespace cohort::net
