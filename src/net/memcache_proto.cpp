#include "net/memcache_proto.hpp"

#include <charconv>

namespace cohort::net {

namespace {

constexpr const char* reply_bad_line =
    "CLIENT_ERROR bad command line format\r\n";
constexpr const char* reply_bad_chunk = "CLIENT_ERROR bad data chunk\r\n";
constexpr const char* reply_line_too_long =
    "CLIENT_ERROR command line too long\r\n";

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ') ++j;
    if (j > i) out.emplace_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

bool parse_u64(const std::string& s, std::uint64_t* out) {
  const char* b = s.data();
  const char* e = b + s.size();
  auto [p, ec] = std::from_chars(b, e, *out);
  return ec == std::errc() && p == e;
}

}  // namespace

void request_parser::feed(const char* p, std::size_t n) {
  buf_.append(p, n);
}

void request_parser::compact() {
  // Drop the consumed prefix once it dominates the buffer so long-lived
  // connections do not accrete every request they ever sent.
  if (pos_ > 4096 && pos_ * 2 >= buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
}

bool request_parser::take_line(std::string* line) {
  const std::size_t eol = buf_.find("\r\n", pos_);
  if (eol == std::string::npos) return false;
  line->assign(buf_, pos_, eol - pos_);
  pos_ = eol + 2;
  compact();
  return true;
}

parse_event request_parser::next() {
  parse_event ev;

  if (state_ == state::swallow) {
    const std::size_t have = buf_.size() - pos_;
    const std::size_t take = have < swallow_need_ ? have : swallow_need_;
    pos_ += take;
    swallow_need_ -= take;
    compact();
    if (swallow_need_ > 0) return ev;  // need_more
    state_ = state::line;
    ev.what = parse_event::kind::error;
    ev.reply = swallow_reply_;
    swallow_reply_.clear();
    return ev;
  }

  if (state_ == state::body) {
    if (buf_.size() - pos_ < body_need_) return ev;  // need_more
    // body_need_ = data bytes + CRLF terminator.
    const std::size_t data_len = body_need_ - 2;
    pending_.data.assign(buf_, pos_, data_len);
    const bool terminated =
        buf_[pos_ + data_len] == '\r' && buf_[pos_ + data_len + 1] == '\n';
    pos_ += body_need_;
    body_need_ = 0;
    state_ = state::line;
    compact();
    if (!terminated) {
      // Data block did not end in CRLF: the byte count and the stream
      // disagree.  Report and keep parsing at the next CRLF boundary --
      // the two trailing bytes were already consumed as data.
      ev.what = parse_event::kind::error;
      ev.reply = reply_bad_chunk;
      return ev;
    }
    ev.what = parse_event::kind::request;
    ev.request = std::move(pending_);
    pending_ = {};
    return ev;
  }

  // state::line
  std::string line;
  if (!take_line(&line)) {
    if (buf_.size() - pos_ > limits_.max_line_bytes) {
      // No CRLF within the line cap: the framing is unrecoverable because
      // we cannot tell where the next request starts.
      ev.what = parse_event::kind::fatal_error;
      ev.reply = reply_line_too_long;
      return ev;
    }
    return ev;  // need_more
  }
  if (line.size() > limits_.max_line_bytes) {
    ev.what = parse_event::kind::fatal_error;
    ev.reply = reply_line_too_long;
    return ev;
  }
  return parse_command_line(line);
}

parse_event request_parser::parse_command_line(const std::string& line) {
  parse_event ev;
  const std::vector<std::string> tok = split_ws(line);
  if (tok.empty()) {
    ev.what = parse_event::kind::error;
    ev.reply = reply_error;
    return ev;
  }
  const std::string& cmd = tok[0];

  if (cmd == "get") {
    if (tok.size() < 2) {
      ev.what = parse_event::kind::error;
      ev.reply = reply_bad_line;
      return ev;
    }
    if (tok.size() - 1 > limits_.max_get_keys) {
      ev.what = parse_event::kind::error;
      ev.reply = "CLIENT_ERROR too many keys in get\r\n";
      return ev;
    }
    ev.what = parse_event::kind::request;
    ev.request.op = text_request::kind::get;
    ev.request.keys.assign(tok.begin() + 1, tok.end());
    return ev;
  }

  if (cmd == "set") {
    // set <key> <flags> <exptime> <bytes> [noreply]
    const bool noreply = tok.size() == 6 && tok[5] == "noreply";
    std::uint64_t flags = 0;
    std::uint64_t exptime = 0;
    std::uint64_t bytes = 0;
    if ((tok.size() != 5 && !(tok.size() == 6 && noreply)) ||
        !parse_u64(tok[2], &flags) || !parse_u64(tok[3], &exptime) ||
        !parse_u64(tok[4], &bytes)) {
      // The byte count is unusable, so the following data block cannot be
      // skipped reliably; memcached replies and resynchronises at the next
      // line, and so do we.
      ev.what = parse_event::kind::error;
      ev.reply = reply_bad_line;
      return ev;
    }
    if (bytes > limits_.max_value_bytes) {
      // Discard the data block in bounded memory, then report (silently
      // for noreply, which suppresses error replies too).
      state_ = state::swallow;
      swallow_need_ = static_cast<std::size_t>(bytes) + 2;
      swallow_reply_ = noreply ? "" : reply_too_large;
      return next();
    }
    pending_ = {};
    pending_.op = text_request::kind::set;
    pending_.key = tok[1];
    pending_.flags = static_cast<std::uint32_t>(flags);
    pending_.noreply = noreply;
    state_ = state::body;
    body_need_ = static_cast<std::size_t>(bytes) + 2;
    return next();
  }

  if (cmd == "delete") {
    const bool noreply = tok.size() == 3 && tok[2] == "noreply";
    if (tok.size() != 2 && !noreply) {
      ev.what = parse_event::kind::error;
      ev.reply = reply_bad_line;
      return ev;
    }
    ev.what = parse_event::kind::request;
    ev.request.op = text_request::kind::del;
    ev.request.key = tok[1];
    ev.request.noreply = noreply;
    return ev;
  }

  if (cmd == "stats" && tok.size() == 1) {
    ev.what = parse_event::kind::request;
    ev.request.op = text_request::kind::stats;
    return ev;
  }

  if (cmd == "flush_all") {
    const bool noreply = tok.size() == 2 && tok[1] == "noreply";
    if (tok.size() != 1 && !noreply) {
      ev.what = parse_event::kind::error;
      ev.reply = reply_bad_line;
      return ev;
    }
    ev.what = parse_event::kind::request;
    ev.request.op = text_request::kind::flush;
    ev.request.noreply = noreply;
    return ev;
  }

  if (cmd == "version" && tok.size() == 1) {
    ev.what = parse_event::kind::request;
    ev.request.op = text_request::kind::version;
    return ev;
  }

  if (cmd == "quit") {
    ev.what = parse_event::kind::request;
    ev.request.op = text_request::kind::quit;
    return ev;
  }

  ev.what = parse_event::kind::error;
  ev.reply = reply_error;
  return ev;
}

void append_value_reply(std::string& out, const std::string& key,
                        std::uint32_t flags, const std::string& data) {
  out += "VALUE ";
  out += key;
  out += ' ';
  out += std::to_string(flags);
  out += ' ';
  out += std::to_string(data.size());
  out += "\r\n";
  out += data;
  out += "\r\n";
}

void append_stat(std::string& out, const std::string& name,
                 std::uint64_t value) {
  out += "STAT ";
  out += name;
  out += ' ';
  out += std::to_string(value);
  out += "\r\n";
}

}  // namespace cohort::net
