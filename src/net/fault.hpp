// Deterministic fault injection behind the io_ops seam (DESIGN.md §11).
//
// A fault_plan is a set of per-operation probabilities: on each read the
// injector may return EINTR, EAGAIN, ECONNRESET, or deliver only a random
// prefix of what the kernel had (short read); on each send it may do the
// same plus short writes; accept4 may fail with EINTR or EMFILE (fd
// exhaustion); connect may fail with EINTR; any faulty op may first stall
// the calling thread for a bounded time (slowloris / scheduling-jitter
// simulation).  All draws come from thread-local xorshift streams expanded
// from the plan seed with splitmix64, so a plan with a fixed seed produces
// the same per-thread fault schedule run over run -- chaos tests are
// reproducible, not flaky.
//
// Faults are injected *before* the real syscall for error results, and
// *after* it for short I/O (the injector truncates what the kernel
// returned; it never invents data).  Every injection bumps a process-wide
// counter, so tests and the server's quiescent report can assert the plan
// actually fired and bound the damage it may have caused.
//
// Install/clear are meant for quiescent moments (a plan swap mid-run is
// safe -- readers see either table -- but the counters then mix plans).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace cohort::net {

struct fault_plan {
  std::uint64_t seed = 1;
  // Per-op probabilities in [0, 1].  Each is drawn independently.
  double short_read = 0;   // deliver a random prefix of a successful read
  double short_write = 0;  // accept only a random prefix of a send
  double eintr = 0;        // read/send/accept/connect fail with EINTR
  double eagain = 0;       // read/send fail with EAGAIN
  double reset = 0;        // read/send fail with ECONNRESET
  double emfile = 0;       // accept4 fails with EMFILE
  double stall = 0;        // op sleeps stall_us first (bounded)
  std::uint32_t stall_us = 1000;  // clamped to [1, 100000]

  bool active() const {
    return short_read > 0 || short_write > 0 || eintr > 0 || eagain > 0 ||
           reset > 0 || emfile > 0 || stall > 0;
  }
};

// Process-wide injection counters (multi-writer, relaxed).
struct fault_counters {
  std::atomic<std::uint64_t> short_reads{0};
  std::atomic<std::uint64_t> short_writes{0};
  std::atomic<std::uint64_t> eintrs{0};
  std::atomic<std::uint64_t> eagains{0};
  std::atomic<std::uint64_t> resets{0};
  std::atomic<std::uint64_t> emfiles{0};
  std::atomic<std::uint64_t> stalls{0};

  std::uint64_t total() const {
    return short_reads.load(std::memory_order_relaxed) +
           short_writes.load(std::memory_order_relaxed) +
           eintrs.load(std::memory_order_relaxed) +
           eagains.load(std::memory_order_relaxed) +
           resets.load(std::memory_order_relaxed) +
           emfiles.load(std::memory_order_relaxed) +
           stalls.load(std::memory_order_relaxed);
  }
  void reset_all() {
    short_reads.store(0, std::memory_order_relaxed);
    short_writes.store(0, std::memory_order_relaxed);
    eintrs.store(0, std::memory_order_relaxed);
    eagains.store(0, std::memory_order_relaxed);
    resets.store(0, std::memory_order_relaxed);
    emfiles.store(0, std::memory_order_relaxed);
    stalls.store(0, std::memory_order_relaxed);
  }
};

fault_counters& fault_stats() noexcept;

// Parse "seed=42,short_read=0.1,reset=0.02,stall=0.01,stall_us=500".
// Keys: seed, short_read, short_write, eintr, eagain, reset, emfile,
// stall, stall_us.  Returns false (and leaves *out untouched) on an
// unknown key or malformed value; err, when non-null, gets a message.
bool parse_fault_spec(const std::string& spec, fault_plan* out,
                      std::string* err = nullptr);

// Build a plan from COHORT_NET_FAULT_{SEED,SHORT_READ,SHORT_WRITE,EINTR,
// EAGAIN,RESET,EMFILE,STALL,STALL_US}.  Unset variables leave the field at
// its default; the result may be inactive (all zeros) if nothing is set.
fault_plan fault_plan_from_env();

// Install a faulty io_ops table driven by `plan` (a copy is taken) and
// reset the injection counters.  An inactive plan is equivalent to
// clear_fault_plan().
void install_fault_plan(const fault_plan& plan);

// Restore the real io_ops table.  Counters are left readable.
void clear_fault_plan();

// The currently installed plan, or an inactive one if none.
fault_plan current_fault_plan();

}  // namespace cohort::net
