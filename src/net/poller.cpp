#include "net/poller.hpp"

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <poll.h>

#if defined(__linux__)
#include <sys/epoll.h>
#endif

#include <unistd.h>

namespace cohort::net {

poller::poller() {
#if defined(__linux__)
  const char* force_poll = std::getenv("COHORT_NET_POLL");
  if (force_poll == nullptr || force_poll[0] == '\0' ||
      force_poll[0] == '0') {
    epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
  }
#endif
}

poller::~poller() {
  if (epfd_ >= 0) ::close(epfd_);
}

#if defined(__linux__)
namespace {
std::uint32_t epoll_mask(bool want_read, bool want_write) {
  std::uint32_t ev = 0;
  if (want_read) ev |= EPOLLIN;
  if (want_write) ev |= EPOLLOUT;
  return ev;
}
}  // namespace
#endif

bool poller::add(int fd, bool want_read, bool want_write) {
  fds_[fd] = {want_read, want_write};
#if defined(__linux__)
  if (epfd_ >= 0) {
    epoll_event ev{};
    ev.events = epoll_mask(want_read, want_write);
    ev.data.fd = fd;
    return ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) == 0;
  }
#endif
  return true;
}

bool poller::modify(int fd, bool want_read, bool want_write) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) return false;
  it->second = {want_read, want_write};
#if defined(__linux__)
  if (epfd_ >= 0) {
    epoll_event ev{};
    ev.events = epoll_mask(want_read, want_write);
    ev.data.fd = fd;
    return ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) == 0;
  }
#endif
  return true;
}

void poller::remove(int fd) {
  fds_.erase(fd);
#if defined(__linux__)
  if (epfd_ >= 0) ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
#endif
}

bool poller::wait(std::vector<poll_event>& out, int timeout_ms) {
  out.clear();
#if defined(__linux__)
  if (epfd_ >= 0) {
    epoll_event evs[64];
    int n;
    do {
      n = ::epoll_wait(epfd_, evs, 64, timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n < 0) return false;
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      poll_event e;
      e.fd = evs[i].data.fd;
      e.readable = (evs[i].events & EPOLLIN) != 0;
      e.writable = (evs[i].events & EPOLLOUT) != 0;
      e.hangup = (evs[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(e);
    }
    return true;
  }
#endif
  // poll(2) fallback: rebuild the pollfd array from the interest map each
  // call.  O(fds) per wait, which is fine at the connection counts the
  // fallback exists for.
  std::vector<pollfd> pfds;
  pfds.reserve(fds_.size());
  for (const auto& [fd, in] : fds_) {
    pollfd p{};
    p.fd = fd;
    if (in.read) p.events |= POLLIN;
    if (in.write) p.events |= POLLOUT;
    pfds.push_back(p);
  }
  int n;
  do {
    n = ::poll(pfds.data(), pfds.size(), timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return false;
  for (const pollfd& p : pfds) {
    if (p.revents == 0) continue;
    poll_event e;
    e.fd = p.fd;
    e.readable = (p.revents & POLLIN) != 0;
    e.writable = (p.revents & POLLOUT) != 0;
    e.hangup = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    out.push_back(e);
  }
  return true;
}

}  // namespace cohort::net
