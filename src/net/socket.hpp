// Small socket vocabulary for the net layer (DESIGN.md §6): an owning fd
// wrapper plus the three operations the server and client need -- listen on
// a host:port (port 0 = ephemeral, the bound port is reported back),
// connect to one, and flip O_NONBLOCK.  IPv4 only: the front-end serves
// loopback benchmarks and LAN memcached clients, not the open internet.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace cohort::net {

// Owning file descriptor; -1 means empty.
class unique_fd {
 public:
  unique_fd() = default;
  explicit unique_fd(int fd) noexcept : fd_(fd) {}
  unique_fd(unique_fd&& o) noexcept : fd_(o.release()) {}
  unique_fd& operator=(unique_fd&& o) noexcept {
    if (this != &o) {
      reset(o.release());
    }
    return *this;
  }
  unique_fd(const unique_fd&) = delete;
  unique_fd& operator=(const unique_fd&) = delete;
  ~unique_fd() { reset(); }

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept { return std::exchange(fd_, -1); }
  void reset(int fd = -1) noexcept;

 private:
  int fd_ = -1;
};

// TCP listener bound to host:port with SO_REUSEADDR, non-blocking, backlog
// applied.  On success returns the fd and writes the actually bound port
// (useful with port 0).  On failure returns an empty fd and fills *error.
unique_fd listen_tcp(const std::string& host, std::uint16_t port,
                     std::uint16_t* bound_port, std::string* error);

// Blocking TCP connect, with TCP_NODELAY set (the benchmark client does
// request/response round trips; Nagle would serialise them against delayed
// ACKs).  Empty fd + *error on failure.
unique_fd connect_tcp(const std::string& host, std::uint16_t port,
                      std::string* error);

bool set_nonblocking(int fd, bool on);

}  // namespace cohort::net
