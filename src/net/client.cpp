#include "net/client.hpp"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

namespace cohort::net {

using kvstore::cmd_status;

bool memcache_client::connect(const std::string& host, std::uint16_t port) {
  fd_ = connect_tcp(host, port, &error_);
  rbuf_.clear();
  rpos_ = 0;
  return fd_.valid();
}

bool memcache_client::send_raw(const std::string& bytes) {
  if (!fd_.valid()) {
    error_ = "not connected";
    return false;
  }
  std::size_t off = 0;
  while (off < bytes.size()) {
    // MSG_NOSIGNAL: a dropped server must surface as EPIPE, not SIGPIPE.
    const ssize_t n = ::send(fd_.get(), bytes.data() + off,
                             bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      error_ = std::string("send: ") + std::strerror(errno);
      fd_.reset();
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void memcache_client::shutdown_write() {
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_WR);
}

bool memcache_client::fill() {
  char buf[16384];
  ssize_t n;
  do {
    n = ::read(fd_.get(), buf, sizeof(buf));
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    error_ = std::string("read: ") + std::strerror(errno);
    fd_.reset();
    return false;
  }
  if (n == 0) {
    error_ = "server closed the connection";
    fd_.reset();
    return false;
  }
  rbuf_.append(buf, static_cast<std::size_t>(n));
  return true;
}

bool memcache_client::read_line(std::string* line) {
  if (!fd_.valid()) {
    error_ = "not connected";
    return false;
  }
  for (;;) {
    const std::size_t eol = rbuf_.find("\r\n", rpos_);
    if (eol != std::string::npos) {
      line->assign(rbuf_, rpos_, eol - rpos_);
      rpos_ = eol + 2;
      if (rpos_ == rbuf_.size()) {
        rbuf_.clear();
        rpos_ = 0;
      }
      return true;
    }
    if (!fill()) return false;
  }
}

bool memcache_client::read_exact(std::size_t n, std::string* out) {
  if (!fd_.valid()) {
    error_ = "not connected";
    return false;
  }
  while (rbuf_.size() - rpos_ < n) {
    if (!fill()) return false;
  }
  out->assign(rbuf_, rpos_, n);
  rpos_ += n;
  if (rpos_ == rbuf_.size()) {
    rbuf_.clear();
    rpos_ = 0;
  }
  return true;
}

cmd_status memcache_client::get(const std::string& key, std::string* out) {
  if (!send_raw("get " + key + "\r\n")) return cmd_status::error;
  std::string line;
  if (!read_line(&line)) return cmd_status::error;
  if (line == "END") return cmd_status::miss;
  // VALUE <key> <flags> <bytes>
  if (line.rfind("VALUE ", 0) != 0) {
    error_ = "unexpected get reply: " + line;
    return cmd_status::error;
  }
  const std::size_t last_sp = line.find_last_of(' ');
  std::size_t bytes = 0;
  try {
    bytes = static_cast<std::size_t>(
        std::stoull(line.substr(last_sp + 1)));
  } catch (...) {
    error_ = "bad VALUE byte count: " + line;
    return cmd_status::error;
  }
  std::string data;
  if (!read_exact(bytes + 2, &data)) return cmd_status::error;
  data.resize(bytes);  // trim the CRLF
  std::string end_line;
  if (!read_line(&end_line)) return cmd_status::error;
  if (end_line != "END") {
    error_ = "missing END after VALUE: " + end_line;
    return cmd_status::error;
  }
  if (out != nullptr) *out = std::move(data);
  return cmd_status::hit;
}

cmd_status memcache_client::set(const std::string& key,
                                const std::string& value) {
  std::string req = "set " + key + " 0 0 " + std::to_string(value.size()) +
                    "\r\n";
  req += value;
  req += "\r\n";
  if (!send_raw(req)) return cmd_status::error;
  std::string line;
  if (!read_line(&line)) return cmd_status::error;
  if (line == "STORED") return cmd_status::stored;
  if (line.rfind("SERVER_ERROR object too large", 0) == 0)
    return cmd_status::too_large;
  error_ = "unexpected set reply: " + line;
  return cmd_status::error;
}

cmd_status memcache_client::del(const std::string& key) {
  if (!send_raw("delete " + key + "\r\n")) return cmd_status::error;
  std::string line;
  if (!read_line(&line)) return cmd_status::error;
  if (line == "DELETED") return cmd_status::deleted;
  if (line == "NOT_FOUND") return cmd_status::not_found;
  error_ = "unexpected delete reply: " + line;
  return cmd_status::error;
}

cmd_status memcache_client::flush() {
  if (!send_raw("flush_all\r\n")) return cmd_status::error;
  std::string line;
  if (!read_line(&line)) return cmd_status::error;
  if (line == "OK") return cmd_status::ok;
  error_ = "unexpected flush_all reply: " + line;
  return cmd_status::error;
}

bool memcache_client::stats(
    std::vector<std::pair<std::string, std::string>>* out) {
  if (!send_raw("stats\r\n")) return false;
  std::string line;
  for (;;) {
    if (!read_line(&line)) return false;
    if (line == "END") return true;
    if (line.rfind("STAT ", 0) != 0) {
      error_ = "unexpected stats reply: " + line;
      return false;
    }
    const std::size_t sp = line.find(' ', 5);
    if (out != nullptr) {
      if (sp == std::string::npos)
        out->emplace_back(line.substr(5), "");
      else
        out->emplace_back(line.substr(5, sp - 5), line.substr(sp + 1));
    }
  }
}

bool memcache_client::version(std::string* out) {
  if (!send_raw("version\r\n")) return false;
  std::string line;
  if (!read_line(&line)) return false;
  if (line.rfind("VERSION ", 0) != 0) {
    error_ = "unexpected version reply: " + line;
    return false;
  }
  if (out != nullptr) *out = line.substr(8);
  return true;
}

void memcache_client::quit() {
  if (fd_.valid()) (void)send_raw("quit\r\n");
  fd_.reset();
}

}  // namespace cohort::net
