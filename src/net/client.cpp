#include "net/client.hpp"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>

#include "net/io_ops.hpp"

namespace cohort::net {

using kvstore::cmd_status;

namespace {

void sleep_ms(std::uint32_t ms) {
  timespec ts{ms / 1000, static_cast<long>(ms % 1000) * 1000000};
  ::nanosleep(&ts, nullptr);
}

}  // namespace

bool memcache_client::apply_timeouts() {
  if (cfg_.op_timeout_ms == 0) return true;
  timeval tv{};
  tv.tv_sec = cfg_.op_timeout_ms / 1000;
  tv.tv_usec = static_cast<long>(cfg_.op_timeout_ms % 1000) * 1000;
  return ::setsockopt(fd_.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) ==
             0 &&
         ::setsockopt(fd_.get(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) ==
             0;
}

bool memcache_client::connect(const std::string& host, std::uint16_t port) {
  host_ = host;
  port_ = port;
  fd_ = connect_tcp(host, port, &error_);
  rbuf_.clear();
  rpos_ = 0;
  if (fd_.valid() && !apply_timeouts()) {
    error_ = std::string("setsockopt(SO_RCVTIMEO): ") + std::strerror(errno);
    fd_.reset();
  }
  return fd_.valid();
}

bool memcache_client::send_raw(const std::string& bytes) {
  if (!fd_.valid()) {
    error_ = "not connected";
    return false;
  }
  std::size_t off = 0;
  while (off < bytes.size()) {
    // MSG_NOSIGNAL: a dropped server must surface as EPIPE, not SIGPIPE.
    const ssize_t n = io().send(fd_.get(), bytes.data() + off,
                                bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_SNDTIMEO expired: the op deadline passed with the server not
        // draining its socket.
        error_ = "send timeout";
      } else {
        error_ = std::string("send: ") + std::strerror(errno);
      }
      fd_.reset();
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void memcache_client::shutdown_write() {
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_WR);
}

bool memcache_client::fill() {
  char buf[16384];
  ssize_t n;
  do {
    n = io().read(fd_.get(), buf, sizeof(buf));
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      error_ = "read timeout";  // SO_RCVTIMEO expired
    else
      error_ = std::string("read: ") + std::strerror(errno);
    fd_.reset();
    return false;
  }
  if (n == 0) {
    error_ = "server closed the connection";
    fd_.reset();
    return false;
  }
  rbuf_.append(buf, static_cast<std::size_t>(n));
  return true;
}

bool memcache_client::read_line(std::string* line) {
  if (!fd_.valid()) {
    error_ = "not connected";
    return false;
  }
  for (;;) {
    const std::size_t eol = rbuf_.find("\r\n", rpos_);
    if (eol != std::string::npos) {
      line->assign(rbuf_, rpos_, eol - rpos_);
      rpos_ = eol + 2;
      if (rpos_ == rbuf_.size()) {
        rbuf_.clear();
        rpos_ = 0;
      }
      return true;
    }
    if (!fill()) return false;
  }
}

bool memcache_client::read_exact(std::size_t n, std::string* out) {
  if (!fd_.valid()) {
    error_ = "not connected";
    return false;
  }
  while (rbuf_.size() - rpos_ < n) {
    if (!fill()) return false;
  }
  out->assign(rbuf_, rpos_, n);
  rpos_ += n;
  if (rpos_ == rbuf_.size()) {
    rbuf_.clear();
    rpos_ = 0;
  }
  return true;
}

bool memcache_client::busy_reply(const std::string& line) {
  if (line.rfind("SERVER_ERROR busy", 0) != 0) return false;
  // Shed at admission: the server already closed its side; any buffered
  // bytes belong to a dead conversation.
  busy_ = true;
  error_ = "server busy (shed)";
  fd_.reset();
  return true;
}

// Re-run `op` after a *transient* failure: the transport died (reset,
// timeout, refused reconnect -- the server may be mid-restart) or the
// server shed us with SERVER_ERROR busy.  A protocol violation on a live
// connection is a bug, not weather, and is returned as-is.  Each retry
// reconnects first (the failed attempt left the transport dead) and backs
// off exponentially.
template <typename Op>
cmd_status memcache_client::with_retry(Op&& op) {
  std::uint32_t backoff = std::max<std::uint32_t>(1, cfg_.backoff_base_ms);
  const std::uint32_t backoff_cap =
      std::max<std::uint32_t>(backoff, cfg_.backoff_max_ms);
  for (unsigned attempt = 0;; ++attempt) {
    busy_ = false;
    if (!fd_.valid() && host_.empty()) {
      error_ = "not connected";
      return cmd_status::error;
    }
    if (fd_.valid() || connect(host_, port_)) {
      const cmd_status st = op();
      if (st != cmd_status::error) return st;
      // Transient = transport gone (reset/timeout/busy killed the fd).
      if (fd_.valid()) return st;
    }
    if (attempt >= cfg_.max_retries) return cmd_status::error;
    ++retries_;
    sleep_ms(backoff);
    backoff = std::min(backoff * 2, backoff_cap);
  }
}

cmd_status memcache_client::get(const std::string& key, std::string* out) {
  return with_retry([&] { return do_get(key, out); });
}

cmd_status memcache_client::set(const std::string& key,
                                const std::string& value) {
  return with_retry([&] { return do_set(key, value); });
}

cmd_status memcache_client::del(const std::string& key) {
  return with_retry([&] { return do_del(key); });
}

cmd_status memcache_client::flush() {
  return with_retry([&] { return do_flush(); });
}

cmd_status memcache_client::do_get(const std::string& key,
                                   std::string* out) {
  if (!send_raw("get " + key + "\r\n")) return cmd_status::error;
  std::string line;
  if (!read_line(&line)) return cmd_status::error;
  if (line == "END") return cmd_status::miss;
  if (busy_reply(line)) return cmd_status::error;
  // VALUE <key> <flags> <bytes>
  if (line.rfind("VALUE ", 0) != 0) {
    error_ = "unexpected get reply: " + line;
    return cmd_status::error;
  }
  const std::size_t last_sp = line.find_last_of(' ');
  std::size_t bytes = 0;
  try {
    bytes = static_cast<std::size_t>(
        std::stoull(line.substr(last_sp + 1)));
  } catch (...) {
    error_ = "bad VALUE byte count: " + line;
    return cmd_status::error;
  }
  std::string data;
  if (!read_exact(bytes + 2, &data)) return cmd_status::error;
  data.resize(bytes);  // trim the CRLF
  std::string end_line;
  if (!read_line(&end_line)) return cmd_status::error;
  if (end_line != "END") {
    error_ = "missing END after VALUE: " + end_line;
    return cmd_status::error;
  }
  if (out != nullptr) *out = std::move(data);
  return cmd_status::hit;
}

cmd_status memcache_client::do_set(const std::string& key,
                                   const std::string& value) {
  std::string req = "set " + key + " 0 0 " + std::to_string(value.size()) +
                    "\r\n";
  req += value;
  req += "\r\n";
  if (!send_raw(req)) return cmd_status::error;
  std::string line;
  if (!read_line(&line)) return cmd_status::error;
  if (line == "STORED") return cmd_status::stored;
  if (line.rfind("SERVER_ERROR object too large", 0) == 0)
    return cmd_status::too_large;
  if (busy_reply(line)) return cmd_status::error;
  error_ = "unexpected set reply: " + line;
  return cmd_status::error;
}

cmd_status memcache_client::do_del(const std::string& key) {
  if (!send_raw("delete " + key + "\r\n")) return cmd_status::error;
  std::string line;
  if (!read_line(&line)) return cmd_status::error;
  if (line == "DELETED") return cmd_status::deleted;
  if (line == "NOT_FOUND") return cmd_status::not_found;
  if (busy_reply(line)) return cmd_status::error;
  error_ = "unexpected delete reply: " + line;
  return cmd_status::error;
}

cmd_status memcache_client::do_flush() {
  if (!send_raw("flush_all\r\n")) return cmd_status::error;
  std::string line;
  if (!read_line(&line)) return cmd_status::error;
  if (line == "OK") return cmd_status::ok;
  if (busy_reply(line)) return cmd_status::error;
  error_ = "unexpected flush_all reply: " + line;
  return cmd_status::error;
}

bool memcache_client::stats(
    std::vector<std::pair<std::string, std::string>>* out) {
  if (!send_raw("stats\r\n")) return false;
  std::string line;
  for (;;) {
    if (!read_line(&line)) return false;
    if (line == "END") return true;
    if (line.rfind("STAT ", 0) != 0) {
      error_ = "unexpected stats reply: " + line;
      return false;
    }
    const std::size_t sp = line.find(' ', 5);
    if (out != nullptr) {
      if (sp == std::string::npos)
        out->emplace_back(line.substr(5), "");
      else
        out->emplace_back(line.substr(5, sp - 5), line.substr(sp + 1));
    }
  }
}

bool memcache_client::version(std::string* out) {
  if (!send_raw("version\r\n")) return false;
  std::string line;
  if (!read_line(&line)) return false;
  if (line.rfind("VERSION ", 0) != 0) {
    error_ = "unexpected version reply: " + line;
    return false;
  }
  if (out != nullptr) *out = line.substr(8);
  return true;
}

void memcache_client::quit() {
  if (fd_.valid()) (void)send_raw("quit\r\n");
  fd_.reset();
}

}  // namespace cohort::net
