// Readiness notification for the server's event-loop threads (DESIGN.md
// §6): epoll on Linux, falling back to poll(2) when epoll is unavailable
// (non-Linux build, restricted sandbox, or COHORT_NET_POLL=1 in the
// environment -- the CI protocol test forces the fallback once so both
// backends stay exercised).  One poller per worker thread; not thread-safe.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

namespace cohort::net {

struct poll_event {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool hangup = false;  // peer closed or error; caller should drop the fd
};

class poller {
 public:
  poller();
  ~poller();
  poller(const poller&) = delete;
  poller& operator=(const poller&) = delete;

  bool add(int fd, bool want_read, bool want_write);
  bool modify(int fd, bool want_read, bool want_write);
  void remove(int fd);

  // Blocks up to timeout_ms (-1 = forever), appends ready fds to out
  // (cleared first).  Returns false on unrecoverable backend failure.
  bool wait(std::vector<poll_event>& out, int timeout_ms);

  bool using_epoll() const noexcept { return epfd_ >= 0; }

 private:
  struct interest {
    bool read = false;
    bool write = false;
  };

  int epfd_ = -1;  // -1 = poll fallback
  // Registered fds; the poll backend rebuilds its pollfd array from this,
  // the epoll backend only uses it to validate add/modify pairs.
  std::unordered_map<int, interest> fds_;
};

}  // namespace cohort::net
