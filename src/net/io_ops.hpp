// The syscall seam of the net layer (DESIGN.md §11): every I/O operation
// the server, client, and socket helpers perform on a connection goes
// through this function table instead of calling the libc wrappers
// directly.  The default table forwards straight to the real syscalls; the
// fault layer (net/fault.hpp) installs a wrapping table that injects short
// reads/writes, EINTR/EAGAIN/ECONNRESET, EMFILE on accept, and bounded
// stalls according to a seeded, deterministic plan -- which is what makes
// every error-handling path in the stack testable on demand instead of
// waiting for the kernel to produce the failure.
//
// Cost on the happy path: one relaxed atomic pointer load plus an indirect
// call per I/O operation, noise next to the syscall behind it (the
// acceptance bar for this seam is "within noise of the direct-call
// numbers", checked by the bench matrix).
//
// The table is process-wide.  Install/restore is meant for quiescent
// moments (before a server starts, after it stops, around a test); the
// pointer itself is atomic so a racing reader sees either table, never a
// torn one.
#pragma once

#include <sys/socket.h>
#include <sys/types.h>

#include <cstddef>

namespace cohort::net {

struct io_ops {
  ssize_t (*read)(int fd, void* buf, std::size_t n);
  ssize_t (*send)(int fd, const void* buf, std::size_t n, int flags);
  int (*accept4)(int fd, sockaddr* addr, socklen_t* len, int flags);
  int (*connect)(int fd, const sockaddr* addr, socklen_t len);
  int (*close)(int fd);
};

// The table forwarding to the real syscalls (always valid, never faulty).
const io_ops& real_io_ops() noexcept;

// The table currently in effect.
const io_ops& io() noexcept;

// Install a table (nullptr restores the real one).  The pointee must
// outlive its installation.
void set_io_ops(const io_ops* table) noexcept;

}  // namespace cohort::net
