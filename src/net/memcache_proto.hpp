// Incremental parser and reply formatter for the memcached text-protocol
// subset the front-end serves (DESIGN.md §6):
//
//   get <key> [<key>...]\r\n
//   set <key> <flags> <exptime> <bytes> [noreply]\r\n<data>\r\n
//   delete <key> [noreply]\r\n
//   stats\r\n
//   flush_all [noreply]\r\n
//   version\r\n
//   quit\r\n
//
// Flags given on the set line are NOT persisted -- the store keeps raw
// values, so VALUE replies always report flags 0.  exptime is accepted and
// ignored (no TTLs in the engine).
//
// The parser is a per-connection state machine fed arbitrary byte chunks:
// it yields one event per complete request (pipelined requests in one read
// are yielded back to back), asks for more bytes mid-request, and reports
// protocol errors as ready-made reply lines.  An oversized set payload is
// *swallowed* in bounded memory -- the parser discards the data stream
// chunk by chunk instead of buffering it, then yields the SERVER_ERROR.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cohort::net {

struct proto_limits {
  std::size_t max_value_bytes = 1 << 20;  // set payload cap
  std::size_t max_line_bytes = 8192;      // command-line cap (keys included)
  // Keys per multi-get line.  Bounds the reply a single request can
  // generate (max_get_keys * max_value_bytes) -- without it an 8 KB get
  // line repeating one large key could demand gigabytes of reply
  // buffering.  More keys draw CLIENT_ERROR.
  std::size_t max_get_keys = 64;
};

struct text_request {
  enum class kind : std::uint8_t {
    get,
    set,
    del,
    stats,
    flush,
    version,
    quit,
  };
  kind op = kind::get;
  std::vector<std::string> keys;  // get: one or more
  std::string key;                // set/delete
  std::uint32_t flags = 0;        // set, echoed in VALUE replies
  std::string data;               // set payload (without the trailing \r\n)
  bool noreply = false;
};

struct parse_event {
  enum class kind : std::uint8_t {
    need_more,   // feed more bytes
    request,     // `request` is complete
    error,       // send `reply`, keep the connection
    fatal_error, // send `reply`, then close (framing is unrecoverable)
  };
  kind what = kind::need_more;
  text_request request{};
  std::string reply;  // error reply line(s), CRLF included
};

class request_parser {
 public:
  explicit request_parser(proto_limits limits = {}) : limits_(limits) {}

  // Append raw bytes from the socket.
  void feed(const char* p, std::size_t n);

  // Yield the next event.  Call in a loop after each feed() until
  // need_more comes back.
  parse_event next();

  std::size_t buffered() const noexcept { return buf_.size() - pos_; }

 private:
  enum class state : std::uint8_t { line, body, swallow };

  bool take_line(std::string* line);
  void compact();
  parse_event parse_command_line(const std::string& line);

  proto_limits limits_;
  std::string buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_

  state state_ = state::line;
  text_request pending_{};        // set header awaiting its data block
  std::size_t body_need_ = 0;     // data bytes (+CRLF) still to collect
  std::size_t swallow_need_ = 0;  // bytes still to discard (oversized set)
  std::string swallow_reply_;     // error to emit once swallowed
};

// ---- reply formatting -------------------------------------------------------

inline constexpr const char* reply_end = "END\r\n";
inline constexpr const char* reply_stored = "STORED\r\n";
inline constexpr const char* reply_deleted = "DELETED\r\n";
inline constexpr const char* reply_not_found = "NOT_FOUND\r\n";
inline constexpr const char* reply_ok = "OK\r\n";
inline constexpr const char* reply_error = "ERROR\r\n";
inline constexpr const char* reply_too_large =
    "SERVER_ERROR object too large for cache\r\n";

// VALUE <key> <flags> <bytes>\r\n<data>\r\n  (caller appends END after the
// last key of a multi-get).
void append_value_reply(std::string& out, const std::string& key,
                        std::uint32_t flags, const std::string& data);

// STAT <name> <value>\r\n
void append_stat(std::string& out, const std::string& name,
                 std::uint64_t value);

}  // namespace cohort::net
