#include "net/socket.hpp"

#include "net/io_ops.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace cohort::net {

namespace {

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

bool parse_addr(const std::string& host, std::uint16_t port,
                sockaddr_in* addr, std::string* error) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  const char* h = host.empty() ? "0.0.0.0" : host.c_str();
  if (inet_pton(AF_INET, h, &addr->sin_addr) != 1) {
    if (error != nullptr)
      *error = "bad IPv4 address '" + host + "' (hostnames not supported)";
    return false;
  }
  return true;
}

}  // namespace

void unique_fd::reset(int fd) noexcept {
  if (fd_ >= 0) io().close(fd_);
  fd_ = fd;
}

bool set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, want) == 0;
}

unique_fd listen_tcp(const std::string& host, std::uint16_t port,
                     std::uint16_t* bound_port, std::string* error) {
  sockaddr_in addr;
  if (!parse_addr(host, port, &addr, error)) return {};

  unique_fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    if (error != nullptr) *error = errno_string("socket");
    return {};
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    if (error != nullptr) *error = errno_string("bind");
    return {};
  }
  if (::listen(fd.get(), 128) != 0) {
    if (error != nullptr) *error = errno_string("listen");
    return {};
  }
  if (!set_nonblocking(fd.get(), true)) {
    if (error != nullptr) *error = errno_string("fcntl(O_NONBLOCK)");
    return {};
  }
  if (bound_port != nullptr) {
    sockaddr_in got;
    socklen_t len = sizeof(got);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&got), &len) !=
        0) {
      if (error != nullptr) *error = errno_string("getsockname");
      return {};
    }
    *bound_port = ntohs(got.sin_port);
  }
  return fd;
}

unique_fd connect_tcp(const std::string& host, std::uint16_t port,
                      std::string* error) {
  sockaddr_in addr;
  if (!parse_addr(host.empty() ? "127.0.0.1" : host, port, &addr, error))
    return {};

  unique_fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    if (error != nullptr) *error = errno_string("socket");
    return {};
  }
  int rc;
  do {
    rc = io().connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    if (error != nullptr) *error = errno_string("connect");
    return {};
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace cohort::net
