// Blocking memcached-text-protocol client for the served-traffic paths
// (DESIGN.md §6, resilience in §11): the `--workload kvnet` benchmark
// drives one instance per worker thread over loopback, the CTest protocol
// suite scripts exchanges with it, and `cohort_bench --workload kvnet
// --smoke` uses it against an externally started server.
//
// Executor-shaped on purpose: get/set/del return kvstore::cmd_status, the
// same vocabulary as command_executor, so kvstore::mix_workload::step()
// drives a socket exactly like it drives the in-process store.  Transport
// or protocol failures come back as cmd_status::error (and last_error()
// explains); the benchmark counts those as failed ops.
//
// Resilience knobs (client_config): op_timeout_ms puts SO_RCVTIMEO /
// SO_SNDTIMEO on the socket so a stalled or drained server surfaces as an
// error instead of a hang; max_retries re-runs a failed get/set/del/flush
// after reconnecting, with exponential backoff, when the failure was
// *transient* -- the transport died (reset, timeout, server gone) or the
// server shed the connection with `SERVER_ERROR busy`.  Protocol
// violations on a live connection are never retried.  retries() counts
// every retry taken, so workloads can report how much fault-induced work
// the run absorbed.  The raw escape hatches and the bool-surface helpers
// (stats/version) stay unretried: protocol tests need exact byte
// behavior.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "kvstore/command.hpp"
#include "net/socket.hpp"

namespace cohort::net {

struct client_config {
  std::uint32_t op_timeout_ms = 0;  // 0 = block forever
  unsigned max_retries = 0;         // per op, on transient failure only
  std::uint32_t backoff_base_ms = 1;
  std::uint32_t backoff_max_ms = 64;
};

class memcache_client {
 public:
  memcache_client() = default;
  explicit memcache_client(client_config cfg) : cfg_(cfg) {}

  bool connect(const std::string& host, std::uint16_t port);
  void close() { fd_.reset(); }
  bool connected() const noexcept { return fd_.valid(); }
  const std::string& last_error() const noexcept { return error_; }
  // Retries taken across all ops on this client (reconnect + re-issue).
  std::uint64_t retries() const noexcept { return retries_; }

  // The executor-shaped command surface (cmd_status results).
  kvstore::cmd_status get(const std::string& key, std::string* out);
  kvstore::cmd_status set(const std::string& key, const std::string& value);
  kvstore::cmd_status del(const std::string& key);
  kvstore::cmd_status flush();

  // STAT name value pairs until END; false on transport/protocol failure.
  bool stats(std::vector<std::pair<std::string, std::string>>* out);
  // "VERSION ..." line; false on failure.
  bool version(std::string* out);
  // Polite shutdown: send quit and close.
  void quit();

  // Raw escape hatches for protocol tests (send bytes verbatim / read one
  // CRLF-terminated line without interpretation / half-close the write
  // side after a pipelined burst while continuing to read replies).
  bool send_raw(const std::string& bytes);
  bool read_line(std::string* line);
  bool read_exact(std::size_t n, std::string* out);
  void shutdown_write();

 private:
  bool fill();  // one blocking read into rbuf_
  bool apply_timeouts();
  // True when `line` is the shed reply: records the busy state (transient,
  // reconnect-and-retry) and kills the transport -- the server has already
  // closed its side.
  bool busy_reply(const std::string& line);
  template <typename Op>
  kvstore::cmd_status with_retry(Op&& op);
  kvstore::cmd_status do_get(const std::string& key, std::string* out);
  kvstore::cmd_status do_set(const std::string& key,
                             const std::string& value);
  kvstore::cmd_status do_del(const std::string& key);
  kvstore::cmd_status do_flush();

  client_config cfg_{};
  unique_fd fd_;
  std::string host_;
  std::uint16_t port_ = 0;
  std::string rbuf_;
  std::size_t rpos_ = 0;
  std::string error_;
  std::uint64_t retries_ = 0;
  bool busy_ = false;  // last failure was a shed (SERVER_ERROR busy)
};

}  // namespace cohort::net
