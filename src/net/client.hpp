// Blocking memcached-text-protocol client for the served-traffic paths
// (DESIGN.md §6): the `--workload kvnet` benchmark drives one instance per
// worker thread over loopback, the CTest protocol suite scripts exchanges
// with it, and `cohort_bench --workload kvnet --smoke` uses it against an
// externally started server.
//
// Executor-shaped on purpose: get/set/del return kvstore::cmd_status, the
// same vocabulary as command_executor, so kvstore::mix_workload::step()
// drives a socket exactly like it drives the in-process store.  Transport
// or protocol failures come back as cmd_status::error (and last_error()
// explains); the benchmark counts those as failed ops.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "kvstore/command.hpp"
#include "net/socket.hpp"

namespace cohort::net {

class memcache_client {
 public:
  memcache_client() = default;

  bool connect(const std::string& host, std::uint16_t port);
  void close() { fd_.reset(); }
  bool connected() const noexcept { return fd_.valid(); }
  const std::string& last_error() const noexcept { return error_; }

  // The executor-shaped command surface (cmd_status results).
  kvstore::cmd_status get(const std::string& key, std::string* out);
  kvstore::cmd_status set(const std::string& key, const std::string& value);
  kvstore::cmd_status del(const std::string& key);
  kvstore::cmd_status flush();

  // STAT name value pairs until END; false on transport/protocol failure.
  bool stats(std::vector<std::pair<std::string, std::string>>* out);
  // "VERSION ..." line; false on failure.
  bool version(std::string* out);
  // Polite shutdown: send quit and close.
  void quit();

  // Raw escape hatches for protocol tests (send bytes verbatim / read one
  // CRLF-terminated line without interpretation / half-close the write
  // side after a pipelined burst while continuing to read replies).
  bool send_raw(const std::string& bytes);
  bool read_line(std::string* line);
  bool read_exact(std::size_t n, std::string* out);
  void shutdown_write();

 private:
  bool fill();  // one blocking read into rbuf_

  unique_fd fd_;
  std::string rbuf_;
  std::size_t rpos_ = 0;
  std::string error_;
};

}  // namespace cohort::net
