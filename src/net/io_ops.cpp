#include "net/io_ops.hpp"

#include <unistd.h>

#include <atomic>

namespace cohort::net {
namespace {

ssize_t real_read(int fd, void* buf, std::size_t n) {
  return ::read(fd, buf, n);
}
ssize_t real_send(int fd, const void* buf, std::size_t n, int flags) {
  return ::send(fd, buf, n, flags);
}
int real_accept4(int fd, sockaddr* addr, socklen_t* len, int flags) {
  return ::accept4(fd, addr, len, flags);
}
int real_connect(int fd, const sockaddr* addr, socklen_t len) {
  return ::connect(fd, addr, len);
}
int real_close(int fd) { return ::close(fd); }

constexpr io_ops k_real{real_read, real_send, real_accept4, real_connect,
                        real_close};

std::atomic<const io_ops*> g_current{&k_real};

}  // namespace

const io_ops& real_io_ops() noexcept { return k_real; }

const io_ops& io() noexcept {
  return *g_current.load(std::memory_order_relaxed);
}

void set_io_ops(const io_ops* table) noexcept {
  g_current.store(table ? table : &k_real, std::memory_order_release);
}

}  // namespace cohort::net
