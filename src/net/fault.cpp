#include "net/fault.hpp"

#include <errno.h>
#include <time.h>

#include <algorithm>
#include <cstdlib>
#include <mutex>

#include "net/io_ops.hpp"
#include "util/rng.hpp"

namespace cohort::net {
namespace {

fault_counters g_stats;

// The installed plan.  Guarded by g_plan_mu for writers; readers take a
// copy under the lock only on their first draw per epoch (see die below),
// so the per-op cost is an atomic epoch load.
std::mutex g_plan_mu;
fault_plan g_plan;
std::atomic<std::uint64_t> g_epoch{0};   // bumped on every install
std::atomic<std::uint64_t> g_streams{0}; // thread stream allocator

// Each thread draws from its own xorshift stream, (re)seeded from the plan
// seed + a fresh stream id whenever the install epoch changes.  Same seed
// => same per-thread schedule, independent of what other threads do.
struct die {
  xorshift rng{0};
  fault_plan plan;                 // copy; no lock on the draw path
  std::uint64_t epoch = ~0ULL;

  void refresh() {
    const std::uint64_t e = g_epoch.load(std::memory_order_acquire);
    if (epoch == e) return;
    epoch = e;
    {
      std::lock_guard<std::mutex> lk(g_plan_mu);
      plan = g_plan;
    }
    std::uint64_t s =
        plan.seed + 0x9e3779b97f4a7c15ULL *
                        (1 + g_streams.fetch_add(1, std::memory_order_relaxed));
    rng = xorshift(splitmix64(s));
  }
  bool roll(double p) { return p > 0 && rng.next_double() < p; }
};

die& this_die() {
  thread_local die d;
  d.refresh();
  return d;
}

void bump(std::atomic<std::uint64_t>& c) {
  c.fetch_add(1, std::memory_order_relaxed);
}

void maybe_stall(die& d) {
  if (!d.roll(d.plan.stall)) return;
  bump(g_stats.stalls);
  const std::uint32_t us = std::clamp(d.plan.stall_us, 1u, 100000u);
  timespec ts{us / 1000000, static_cast<long>(us % 1000000) * 1000};
  ::nanosleep(&ts, nullptr);
}

ssize_t faulty_read(int fd, void* buf, std::size_t n) {
  die& d = this_die();
  maybe_stall(d);
  if (d.roll(d.plan.eintr)) {
    bump(g_stats.eintrs);
    errno = EINTR;
    return -1;
  }
  if (d.roll(d.plan.eagain)) {
    bump(g_stats.eagains);
    errno = EAGAIN;
    return -1;
  }
  if (d.roll(d.plan.reset)) {
    bump(g_stats.resets);
    errno = ECONNRESET;
    return -1;
  }
  // Short read: ask the kernel for only a prefix, so unread bytes stay
  // queued in the socket and the caller's resume logic gets exercised.
  if (n > 1 && d.roll(d.plan.short_read)) {
    bump(g_stats.short_reads);
    n = 1 + static_cast<std::size_t>(d.rng.next_range(n - 1));
  }
  return real_io_ops().read(fd, buf, n);
}

ssize_t faulty_send(int fd, const void* buf, std::size_t n, int flags) {
  die& d = this_die();
  maybe_stall(d);
  if (d.roll(d.plan.eintr)) {
    bump(g_stats.eintrs);
    errno = EINTR;
    return -1;
  }
  if (d.roll(d.plan.eagain)) {
    bump(g_stats.eagains);
    errno = EAGAIN;
    return -1;
  }
  if (d.roll(d.plan.reset)) {
    bump(g_stats.resets);
    errno = ECONNRESET;
    return -1;
  }
  if (n > 1 && d.roll(d.plan.short_write)) {
    bump(g_stats.short_writes);
    n = 1 + static_cast<std::size_t>(d.rng.next_range(n - 1));
  }
  return real_io_ops().send(fd, buf, n, flags);
}

int faulty_accept4(int fd, sockaddr* addr, socklen_t* len, int flags) {
  die& d = this_die();
  maybe_stall(d);
  if (d.roll(d.plan.eintr)) {
    bump(g_stats.eintrs);
    errno = EINTR;
    return -1;
  }
  if (d.roll(d.plan.emfile)) {
    bump(g_stats.emfiles);
    errno = EMFILE;
    return -1;
  }
  return real_io_ops().accept4(fd, addr, len, flags);
}

int faulty_connect(int fd, const sockaddr* addr, socklen_t len) {
  die& d = this_die();
  maybe_stall(d);
  if (d.roll(d.plan.eintr)) {
    bump(g_stats.eintrs);
    errno = EINTR;
    return -1;
  }
  return real_io_ops().connect(fd, addr, len);
}

// close is never made to fail: a close that "fails" still closes the fd on
// Linux, and injecting EINTR here would only teach callers the wrong
// retry-close habit (retrying can close a recycled fd).
int faulty_close(int fd) { return real_io_ops().close(fd); }

constexpr io_ops k_faulty{faulty_read, faulty_send, faulty_accept4,
                          faulty_connect, faulty_close};

bool parse_double(const std::string& v, double* out) {
  char* end = nullptr;
  const double x = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0' || x < 0 || x > 1) return false;
  *out = x;
  return true;
}

}  // namespace

fault_counters& fault_stats() noexcept { return g_stats; }

bool parse_fault_spec(const std::string& spec, fault_plan* out,
                      std::string* err) {
  fault_plan p;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string kv = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (kv.empty()) continue;
    const std::size_t eq = kv.find('=');
    if (eq == std::string::npos) {
      if (err) *err = "missing '=' in \"" + kv + "\"";
      return false;
    }
    const std::string key = kv.substr(0, eq);
    const std::string val = kv.substr(eq + 1);
    bool ok = true;
    if (key == "seed") {
      char* end = nullptr;
      p.seed = std::strtoull(val.c_str(), &end, 10);
      ok = end != val.c_str() && *end == '\0';
    } else if (key == "stall_us") {
      char* end = nullptr;
      const unsigned long long us = std::strtoull(val.c_str(), &end, 10);
      ok = end != val.c_str() && *end == '\0' && us >= 1 && us <= 100000;
      if (ok) p.stall_us = static_cast<std::uint32_t>(us);
    } else if (key == "short_read") {
      ok = parse_double(val, &p.short_read);
    } else if (key == "short_write") {
      ok = parse_double(val, &p.short_write);
    } else if (key == "eintr") {
      ok = parse_double(val, &p.eintr);
    } else if (key == "eagain") {
      ok = parse_double(val, &p.eagain);
    } else if (key == "reset") {
      ok = parse_double(val, &p.reset);
    } else if (key == "emfile") {
      ok = parse_double(val, &p.emfile);
    } else if (key == "stall") {
      ok = parse_double(val, &p.stall);
    } else {
      if (err) *err = "unknown fault key \"" + key + "\"";
      return false;
    }
    if (!ok) {
      if (err) *err = "bad value for \"" + key + "\": \"" + val + "\"";
      return false;
    }
  }
  *out = p;
  return true;
}

fault_plan fault_plan_from_env() {
  fault_plan p;
  auto envd = [](const char* name, double* out) {
    if (const char* v = std::getenv(name)) parse_double(v, out);
  };
  if (const char* v = std::getenv("COHORT_NET_FAULT_SEED"))
    p.seed = std::strtoull(v, nullptr, 10);
  envd("COHORT_NET_FAULT_SHORT_READ", &p.short_read);
  envd("COHORT_NET_FAULT_SHORT_WRITE", &p.short_write);
  envd("COHORT_NET_FAULT_EINTR", &p.eintr);
  envd("COHORT_NET_FAULT_EAGAIN", &p.eagain);
  envd("COHORT_NET_FAULT_RESET", &p.reset);
  envd("COHORT_NET_FAULT_EMFILE", &p.emfile);
  envd("COHORT_NET_FAULT_STALL", &p.stall);
  if (const char* v = std::getenv("COHORT_NET_FAULT_STALL_US")) {
    const unsigned long long us = std::strtoull(v, nullptr, 10);
    if (us >= 1 && us <= 100000) p.stall_us = static_cast<std::uint32_t>(us);
  }
  return p;
}

void install_fault_plan(const fault_plan& plan) {
  if (!plan.active()) {
    clear_fault_plan();
    return;
  }
  {
    std::lock_guard<std::mutex> lk(g_plan_mu);
    g_plan = plan;
  }
  g_stats.reset_all();
  g_streams.store(0, std::memory_order_relaxed);
  g_epoch.fetch_add(1, std::memory_order_release);
  set_io_ops(&k_faulty);
}

void clear_fault_plan() {
  set_io_ops(nullptr);
  {
    std::lock_guard<std::mutex> lk(g_plan_mu);
    g_plan = fault_plan{};
  }
  g_epoch.fetch_add(1, std::memory_order_release);
}

fault_plan current_fault_plan() {
  std::lock_guard<std::mutex> lk(g_plan_mu);
  return g_plan;
}

}  // namespace cohort::net
