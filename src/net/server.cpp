#include "net/server.hpp"

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>
#include <unordered_map>

#include "net/fault.hpp"
#include "net/io_ops.hpp"
#include "numa/topology.hpp"

namespace cohort::net {

namespace {

constexpr const char* reply_version = "VERSION cohort-kv 1.0\r\n";
constexpr char reply_busy[] = "SERVER_ERROR busy\r\n";

using clock = std::chrono::steady_clock;

std::uint64_t to_ms(clock::time_point tp) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          tp.time_since_epoch())
          .count());
}

// Remaining time as a poll timeout: 0 when already past, else at least 1
// (rounding down to 0 would busy-spin until the deadline).
int remaining_ms(clock::time_point now, clock::time_point deadline) {
  if (now >= deadline) return 0;
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - now)
                      .count();
  return std::max<int>(1, static_cast<int>(std::min<long long>(ms, 1000)));
}

// accept(2): already-accepted sockets that died in the backlog surface
// their pending network error here; treat them like ECONNABORTED and move
// on to the next waiting socket.
bool accept_transient(int err) {
  switch (err) {
    case EINTR:
    case ECONNABORTED:
    case EPROTO:
    case ENETDOWN:
    case ENETUNREACH:
    case EHOSTDOWN:
    case EHOSTUNREACH:
    case EOPNOTSUPP:
      return true;
    default:
      return false;
  }
}

}  // namespace

// Why a connection left the table; each close is attributed exactly once,
// so the reason cells sum to the accept count at quiescence.
enum class close_reason : std::uint8_t { closed, timeout, reset, drained };

// Per-connection state; owned by exactly one worker, so unsynchronised.
struct kv_server::connection {
  explicit connection(unique_fd f, proto_limits limits)
      : fd(std::move(f)), parser(limits) {}

  unique_fd fd;
  request_parser parser;
  std::string out;
  std::size_t out_pos = 0;
  std::uint64_t gen = 0;       // guards timing-wheel entries across fd reuse
  std::uint64_t requests = 0;  // served on this connection (request cap)
  clock::time_point created{};
  clock::time_point last_activity{};  // last byte read from the peer
  close_reason why = close_reason::closed;
  bool want_read = true;    // current poller interest
  bool want_write = false;
  bool parked_writer = false;  // throttled on the output high-water mark
  bool eof = false;         // peer half-closed: drain replies, then close
  bool closing = false;     // quit/fatal error: close once output drains
};

struct kv_server::worker {
  worker(kvstore::any_sharded_store& store, proto_limits limits)
      : exec(store, limits.max_value_bytes) {}

  poller pl;
  kvstore::command_executor<kvstore::any_sharded_store> exec;
  std::unordered_map<int, std::unique_ptr<connection>> conns;
  unique_fd wake_rd, wake_wr;  // self-pipe for stop()/drain()
  // Accept backpressure: after a hard accept failure (EMFILE/ENFILE) the
  // listen fd is removed from this worker's poller until the backoff
  // passes -- level-triggered readiness would otherwise spin the thread.
  // The backoff doubles per consecutive failure and resets on success.
  bool listen_parked = false;
  clock::time_point listen_parked_until{};
  std::uint32_t accept_backoff_ms = 0;
  // Lazy timing wheel: slots hold (fd, gen) hints; the sweep recomputes
  // the true deadline and re-inserts entries whose connection saw
  // activity, so reads never touch the wheel.
  struct wheel_entry {
    int fd;
    std::uint64_t gen;
  };
  static constexpr unsigned kWheelSlots = 32;
  std::array<std::vector<wheel_entry>, kWheelSlots> wheel;
  std::uint64_t wheel_cursor = 0;  // last swept tick (0 = not started)
  std::uint64_t gen_counter = 0;
  int parked_writers = 0;  // live count; admission input
  bool drain_forced = false;  // hit the drain deadline with conns open
  // Single-writer counter cells (this worker's thread), sampled live.
  stat_cell connections, commands, protocol_errors;
  stat_cell closed, shed, timeouts, resets, drained;
  std::vector<poll_event> events;  // reused wait buffer
};

std::size_t kv_server::pending_out(const connection& c) {
  return c.out.size() - c.out_pos;
}

bool kv_server::throttled(const connection& c) const {
  return pending_out(c) > high_water_;
}

kv_server::kv_server(kvstore::any_sharded_store& store, server_config cfg)
    : store_(store), cfg_(std::move(cfg)) {
  if (cfg_.io_threads == 0) cfg_.io_threads = 1;
  high_water_ = 256 * 1024 + cfg_.limits.max_value_bytes;
  std::uint32_t min_timeout = 0;
  for (std::uint32_t t : {cfg_.idle_timeout_ms, cfg_.max_conn_lifetime_ms}) {
    if (t != 0) min_timeout = min_timeout == 0 ? t : std::min(min_timeout, t);
  }
  // Tick at 1/8 of the tightest timeout: eviction lands within 12.5% of
  // the nominal deadline, and the 32-slot wheel spans 4x the timeout.
  wheel_tick_ms_ =
      min_timeout == 0 ? 0 : std::max<std::uint32_t>(1, min_timeout / 8);
}

kv_server::~kv_server() { stop(); }

bool kv_server::start(std::string* error) {
  if (running_) return true;
  listen_fd_ = listen_tcp(cfg_.host, cfg_.port, &port_, error);
  if (!listen_fd_.valid()) return false;

  stop_flag_.store(false, std::memory_order_relaxed);
  drain_flag_.store(false, std::memory_order_relaxed);
  workers_.clear();
  for (unsigned i = 0; i < cfg_.io_threads; ++i) {
    auto w = std::make_unique<worker>(store_, cfg_.limits);
    int pipe_fds[2];
    if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
      if (error != nullptr)
        *error = std::string("pipe2: ") + std::strerror(errno);
      listen_fd_.reset();
      workers_.clear();
      return false;
    }
    w->wake_rd.reset(pipe_fds[0]);
    w->wake_wr.reset(pipe_fds[1]);
    w->pl.add(listen_fd_.get(), /*want_read=*/true, /*want_write=*/false);
    w->pl.add(w->wake_rd.get(), /*want_read=*/true, /*want_write=*/false);
    workers_.push_back(std::move(w));
  }
  threads_.clear();
  for (unsigned i = 0; i < cfg_.io_threads; ++i) {
    threads_.emplace_back([this, i] {
      if (cfg_.pin_io_threads) {
        const auto& topo = numa::system_topology();
        const unsigned k = topo.clusters() != 0 ? topo.clusters() : 1;
        numa::pin_thread_to_cluster(topo, i % k);
      } else {
        numa::set_thread_cluster(i);
      }
      io_loop(*workers_[i]);
    });
  }
  running_ = true;
  return true;
}

void kv_server::wake_workers() {
  for (auto& w : workers_) {
    const char byte = 1;
    // The wake pipe stays off the io_ops seam: shutdown must work even
    // under a hostile fault plan.
    [[maybe_unused]] ssize_t rc = ::write(w->wake_wr.get(), &byte, 1);
  }
}

void kv_server::join_workers() {
  for (auto& t : threads_) t.join();
  threads_.clear();
}

void kv_server::stop() {
  if (!running_) return;
  stop_flag_.store(true, std::memory_order_release);
  wake_workers();
  join_workers();
  for (auto& w : workers_) {
    // Abrupt shutdown: whatever was still open counts as a normal close,
    // keeping the close-reason identity intact.  Safe post-join: the
    // owning thread is gone.
    w->closed.add(w->conns.size());
    w->conns.clear();
  }
  listen_fd_.reset();
  stop_flag_.store(false, std::memory_order_relaxed);
  running_ = false;
}

bool kv_server::drain() {
  if (!running_) return true;
  // Written before the release store below; workers read it only after
  // the acquire load of drain_flag_.
  drain_deadline_ =
      clock::now() + std::chrono::milliseconds(cfg_.drain_deadline_ms);
  drain_flag_.store(true, std::memory_order_release);
  wake_workers();
  join_workers();
  bool clean = true;
  for (auto& w : workers_) {
    if (w->drain_forced) clean = false;
    w->conns.clear();  // emptied by the workers unless the deadline hit
  }
  listen_fd_.reset();
  drain_flag_.store(false, std::memory_order_relaxed);
  running_ = false;
  return clean;
}

server_counters kv_server::counters() const {
  server_counters total;
  for (const auto& w : workers_) {
    total.connections += w->connections.get();
    total.commands += w->commands.get();
    total.protocol_errors += w->protocol_errors.get();
    total.closed += w->closed.get();
    total.shed += w->shed.get();
    total.timeouts += w->timeouts.get();
    total.resets += w->resets.get();
    total.drained += w->drained.get();
  }
  total.injected_faults = fault_stats().total();
  return total;
}

void kv_server::io_loop(worker& w) {
  bool draining = false;
  while (!stop_flag_.load(std::memory_order_acquire)) {
    if (!draining && drain_flag_.load(std::memory_order_acquire)) {
      draining = true;
      begin_drain(w);
    }
    clock::time_point now = clock::now();
    if (draining) {
      if (w.conns.empty()) break;
      if (now >= drain_deadline_) {
        // Deadline: force-close whatever is still flushing.
        w.drain_forced = true;
        std::vector<int> fds;
        fds.reserve(w.conns.size());
        for (const auto& [fd, c] : w.conns) fds.push_back(fd);
        for (int fd : fds) close_connection(w, fd);
        break;
      }
    }
    int timeout_ms = 1000;  // backstop; the self-pipe makes stop() prompt
    if (w.listen_parked && !draining) {
      if (now >= w.listen_parked_until) {
        w.pl.add(listen_fd_.get(), /*want_read=*/true, /*want_write=*/false);
        w.listen_parked = false;
      } else {
        timeout_ms = std::min(timeout_ms, remaining_ms(now, w.listen_parked_until));
      }
    }
    if (draining)
      timeout_ms = std::min(timeout_ms, remaining_ms(now, drain_deadline_));
    if (wheel_tick_ms_ != 0 && !w.conns.empty())
      timeout_ms = std::min(timeout_ms, static_cast<int>(wheel_tick_ms_));
    if (!w.pl.wait(w.events, timeout_ms)) break;
    for (const poll_event& ev : w.events) {
      if (ev.fd == listen_fd_.get()) {
        if (ev.readable && !draining) accept_ready(w);
        continue;
      }
      if (ev.fd == w.wake_rd.get()) {
        char drain_buf[16];
        while (::read(w.wake_rd.get(), drain_buf, sizeof(drain_buf)) > 0) {
        }
        continue;
      }
      auto it = w.conns.find(ev.fd);
      if (it == w.conns.end()) continue;
      connection& c = *it->second;
      if (ev.hangup) {
        close_connection(w, ev.fd);
        continue;
      }
      if (ev.readable) {
        connection_readable(w, c);  // reads, drains, pumps, closes
        continue;
      }
      if (ev.writable && !pump(w, c)) close_connection(w, ev.fd);
    }
    if (!draining) sweep_timeouts(w, clock::now());
  }
}

// Drain entry: stop accepting, then half-close every connection -- already
// buffered requests still execute and their replies flush; pump() closes
// each connection once both directions are empty.
void kv_server::begin_drain(worker& w) {
  if (!w.listen_parked) w.pl.remove(listen_fd_.get());
  w.listen_parked = true;
  w.listen_parked_until = clock::time_point::max();
  std::vector<int> fds;
  fds.reserve(w.conns.size());
  for (const auto& [fd, c] : w.conns) fds.push_back(fd);
  for (int fd : fds) {
    auto it = w.conns.find(fd);
    if (it == w.conns.end()) continue;
    connection& c = *it->second;
    c.eof = true;
    c.why = close_reason::drained;
    if (!pump(w, c)) close_connection(w, fd);
  }
}

void kv_server::accept_ready(worker& w) {
  for (;;) {
    const int fd = io().accept4(listen_fd_.get(), nullptr, nullptr,
                                SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (accept_transient(errno)) continue;
      // EAGAIN: another worker won the race or the backlog drained.
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      // Hard failure (EMFILE/ENFILE/ENOMEM): under level-triggered
      // readiness the listen fd would re-fire immediately and spin this
      // worker, so park it for a capped exponential backoff.
      w.accept_backoff_ms =
          w.accept_backoff_ms == 0
              ? 10
              : std::min<std::uint32_t>(w.accept_backoff_ms * 2, 1000);
      w.pl.remove(listen_fd_.get());
      w.listen_parked = true;
      w.listen_parked_until =
          clock::now() + std::chrono::milliseconds(w.accept_backoff_ms);
      return;
    }
    w.accept_backoff_ms = 0;
    ++w.connections;
    // Admission control: past the connection or parked-writer cap, tell
    // the client why and close -- a bounded refusal beats oversubscribing
    // the loop until every connection times out.
    const bool over_conns = cfg_.max_conns_per_worker != 0 &&
                            w.conns.size() >= cfg_.max_conns_per_worker;
    const bool over_parked =
        cfg_.max_parked_writers != 0 &&
        w.parked_writers >= static_cast<int>(cfg_.max_parked_writers);
    if (over_conns || over_parked) {
      ++w.shed;
      (void)io().send(fd, reply_busy, sizeof(reply_busy) - 1, MSG_NOSIGNAL);
      io().close(fd);
      continue;
    }
    auto conn = std::make_unique<connection>(unique_fd(fd), cfg_.limits);
    conn->gen = ++w.gen_counter;
    conn->created = conn->last_activity = clock::now();
    w.pl.add(fd, /*want_read=*/true, /*want_write=*/false);
    if (wheel_tick_ms_ != 0)
      wheel_insert(w, fd, conn->gen, conn_deadline(*conn));
    w.conns.emplace(fd, std::move(conn));
  }
}

clock::time_point kv_server::conn_deadline(const connection& c) const {
  clock::time_point dl = clock::time_point::max();
  if (cfg_.idle_timeout_ms != 0)
    dl = std::min(dl, c.last_activity +
                          std::chrono::milliseconds(cfg_.idle_timeout_ms));
  if (cfg_.max_conn_lifetime_ms != 0)
    dl = std::min(
        dl, c.created + std::chrono::milliseconds(cfg_.max_conn_lifetime_ms));
  return dl;
}

void kv_server::wheel_insert(worker& w, int fd, std::uint64_t gen,
                             clock::time_point deadline) {
  const std::uint64_t tick = to_ms(deadline) / wheel_tick_ms_;
  w.wheel[tick % worker::kWheelSlots].push_back({fd, gen});
}

void kv_server::sweep_timeouts(worker& w, clock::time_point now) {
  if (wheel_tick_ms_ == 0) return;
  const std::uint64_t cur = to_ms(now) / wheel_tick_ms_;
  if (w.wheel_cursor == 0) {
    w.wheel_cursor = cur;
    return;
  }
  if (cur <= w.wheel_cursor) return;
  const std::uint64_t steps =
      std::min<std::uint64_t>(cur - w.wheel_cursor, worker::kWheelSlots);
  for (std::uint64_t i = 1; i <= steps; ++i) {
    auto& slot = w.wheel[(w.wheel_cursor + i) % worker::kWheelSlots];
    std::vector<worker::wheel_entry> pending;
    pending.swap(slot);
    for (const worker::wheel_entry& e : pending) {
      auto it = w.conns.find(e.fd);
      if (it == w.conns.end() || it->second->gen != e.gen)
        continue;  // closed (or the fd was reused) since insertion
      connection& c = *it->second;
      const clock::time_point dl = conn_deadline(c);
      if (dl <= now) {
        c.why = close_reason::timeout;
        close_connection(w, e.fd);
      } else {
        wheel_insert(w, e.fd, e.gen, dl);  // saw activity; lazy re-insert
      }
    }
  }
  w.wheel_cursor = cur;
}

// Drain the complete requests the parser holds (pipelining: several may
// arrive in one read), stopping at the output high-water mark so a
// pipelining client cannot drive unbounded reply buffering.
bool kv_server::drain_parser(worker& w, connection& c) {
  while (!c.closing) {
    if (throttled(c)) return false;  // parked; pump() resumes after writes
    parse_event ev = c.parser.next();
    if (ev.what == parse_event::kind::need_more) return true;
    if (ev.what == parse_event::kind::request) {
      execute(w, c, ev.request);
      continue;
    }
    // error / fatal_error (the reply is empty for suppressed noreply
    // errors, which still count)
    ++w.protocol_errors;
    c.out += ev.reply;
    if (ev.what == parse_event::kind::fatal_error) c.closing = true;
  }
  return true;  // closing: remaining input is irrelevant
}

void kv_server::connection_readable(worker& w, connection& c) {
  const int fd = c.fd.get();
  char buf[16384];
  // Parse after every chunk, not after the whole burst, so an oversized
  // set being swallowed is discarded chunk by chunk instead of accreting
  // in the parser buffer; stop reading at the output high-water mark.
  while (!c.closing && !c.eof && !throttled(c)) {
    const ssize_t n = io().read(fd, buf, sizeof(buf));
    if (n > 0) {
      c.last_activity = clock::now();
      c.parser.feed(buf, static_cast<std::size_t>(n));
      drain_parser(w, c);
      continue;
    }
    if (n == 0) {
      // Half-close: no further requests, but buffered replies still go
      // out -- pump() closes once both directions are drained.
      c.eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    // Read error: the peer is gone; drop whatever was queued.
    c.why = close_reason::reset;
    c.closing = true;
    c.out.clear();
    c.out_pos = 0;
    break;
  }
  if (!pump(w, c)) close_connection(w, fd);
}

bool kv_server::flush_output(connection& c) {
  while (c.out_pos < c.out.size()) {
    // MSG_NOSIGNAL: a peer that vanished mid-reply must surface as EPIPE,
    // not kill the server process.
    const ssize_t n = io().send(c.fd.get(), c.out.data() + c.out_pos,
                                c.out.size() - c.out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return true;  // wait for writability
    if (n < 0 && errno == EINTR) continue;
    c.why = close_reason::reset;
    return false;  // write error: drop the connection
  }
  c.out.clear();
  c.out_pos = 0;
  return true;
}

bool kv_server::pump(worker& w, connection& c) {
  // Alternate flushing and parsing until the socket stops accepting
  // writes (throttled with EAGAIN), the parser runs out of complete
  // requests, or the connection is closing.  Flushing first means a
  // writable event resumes parser work that parked on the high-water
  // mark even when no further readable event will arrive (half-close).
  bool parser_idle = false;
  for (;;) {
    if (!flush_output(c)) return false;
    if (c.closing || throttled(c) || parser_idle) break;
    parser_idle = drain_parser(w, c);
  }
  const bool drained = pending_out(c) == 0;
  if (c.closing && drained) return false;    // quit/fatal: done
  if (c.eof && parser_idle && drained) return false;  // both sides drained
  update_interest(w, c);
  return true;
}

// Poller interest follows connection state: reads stop while closing,
// half-closed, or throttled on output; writes are wanted while replies
// are buffered.  The parked-writer count feeds admission control.
void kv_server::update_interest(worker& w, connection& c) {
  const bool parked = throttled(c);
  if (parked != c.parked_writer) {
    c.parked_writer = parked;
    w.parked_writers += parked ? 1 : -1;
  }
  const bool want_read = !c.closing && !c.eof && !parked;
  const bool want_write = pending_out(c) > 0;
  if (want_read != c.want_read || want_write != c.want_write) {
    c.want_read = want_read;
    c.want_write = want_write;
    w.pl.modify(c.fd.get(), want_read, want_write);
  }
}

void kv_server::execute(worker& w, connection& c, text_request& req) {
  using kind = text_request::kind;
  ++w.commands;
  ++c.requests;
  switch (req.op) {
    case kind::get: {
      std::string value;
      for (const std::string& key : req.keys) {
        if (w.exec.get(key, &value) == kvstore::cmd_status::hit)
          append_value_reply(c.out, key, 0, value);
      }
      c.out += reply_end;
      break;
    }
    case kind::set: {
      const auto st = w.exec.set(req.key, std::move(req.data));
      if (!req.noreply)
        c.out += st == kvstore::cmd_status::stored ? reply_stored
                                                   : reply_too_large;
      break;
    }
    case kind::del: {
      const auto st = w.exec.del(req.key);
      if (!req.noreply)
        c.out += st == kvstore::cmd_status::deleted ? reply_deleted
                                                    : reply_not_found;
      break;
    }
    case kind::flush:
      w.exec.flush();
      if (!req.noreply) c.out += reply_ok;
      break;
    case kind::stats: {
      const kvstore::store_snapshot snap = w.exec.stats();
      const server_counters sc = counters();
      append_stat(c.out, "cmd_get", snap.counters.gets);
      append_stat(c.out, "cmd_set", snap.counters.sets);
      append_stat(c.out, "cmd_delete", snap.counters.deletes);
      append_stat(c.out, "get_hits", snap.counters.get_hits);
      // Clamp: cells move independently, so a live sample may transiently
      // observe hits ahead of gets.
      append_stat(c.out, "get_misses",
                  snap.counters.gets >= snap.counters.get_hits
                      ? snap.counters.gets - snap.counters.get_hits
                      : 0);
      append_stat(c.out, "evictions", snap.counters.evictions);
      append_stat(c.out, "curr_items", snap.items);
      append_stat(c.out, "shards", snap.shards);
      append_stat(c.out, "threads", cfg_.io_threads);
      append_stat(c.out, "total_connections", sc.connections);
      append_stat(c.out, "cmd_total", sc.commands);
      append_stat(c.out, "protocol_errors", sc.protocol_errors);
      append_stat(c.out, "closed", sc.closed);
      append_stat(c.out, "shed", sc.shed);
      append_stat(c.out, "timeouts", sc.timeouts);
      append_stat(c.out, "resets", sc.resets);
      append_stat(c.out, "drained", sc.drained);
      append_stat(c.out, "injected_faults", sc.injected_faults);
      c.out += reply_end;
      break;
    }
    case kind::version:
      c.out += reply_version;
      break;
    case kind::quit:
      c.closing = true;
      break;
  }
  // Request cap: the reply above still flushes (closing closes only once
  // the output buffer drains), then the connection goes away.
  if (cfg_.max_requests_per_conn != 0 &&
      c.requests >= cfg_.max_requests_per_conn)
    c.closing = true;
}

void kv_server::close_connection(worker& w, int fd) {
  auto it = w.conns.find(fd);
  if (it == w.conns.end()) return;
  connection& c = *it->second;
  if (c.parked_writer) --w.parked_writers;
  switch (c.why) {
    case close_reason::closed:
      ++w.closed;
      break;
    case close_reason::timeout:
      ++w.timeouts;
      break;
    case close_reason::reset:
      ++w.resets;
      break;
    case close_reason::drained:
      ++w.drained;
      break;
  }
  w.pl.remove(fd);
  w.conns.erase(it);  // unique_fd closes it
}

}  // namespace cohort::net
