#include "net/server.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>
#include <unordered_map>

#include "numa/topology.hpp"

namespace cohort::net {

namespace {
constexpr const char* reply_version = "VERSION cohort-kv 1.0\r\n";
}

// Per-connection state; owned by exactly one worker, so unsynchronised.
struct kv_server::connection {
  explicit connection(unique_fd f, proto_limits limits)
      : fd(std::move(f)), parser(limits) {}

  unique_fd fd;
  request_parser parser;
  std::string out;
  std::size_t out_pos = 0;
  bool want_read = true;    // current poller interest
  bool want_write = false;
  bool eof = false;         // peer half-closed: drain replies, then close
  bool closing = false;     // quit/fatal error: close once output drains
};

struct kv_server::worker {
  worker(kvstore::any_sharded_store& store, proto_limits limits)
      : exec(store, limits.max_value_bytes) {}

  poller pl;
  kvstore::command_executor<kvstore::any_sharded_store> exec;
  std::unordered_map<int, std::unique_ptr<connection>> conns;
  unique_fd wake_rd, wake_wr;  // self-pipe for stop()
  // Accept backpressure: after a hard accept failure (EMFILE/ENFILE) the
  // listen fd is removed from this worker's poller until the cooldown
  // passes -- level-triggered readiness would otherwise spin the thread.
  bool listen_parked = false;
  std::chrono::steady_clock::time_point listen_parked_until{};
  // Single-writer counter cells (this worker's thread), sampled live.
  stat_cell connections, commands, protocol_errors;
  std::vector<poll_event> events;  // reused wait buffer
};

std::size_t kv_server::pending_out(const connection& c) {
  return c.out.size() - c.out_pos;
}

bool kv_server::throttled(const connection& c) const {
  return pending_out(c) > high_water_;
}

kv_server::kv_server(kvstore::any_sharded_store& store, server_config cfg)
    : store_(store), cfg_(std::move(cfg)) {
  if (cfg_.io_threads == 0) cfg_.io_threads = 1;
  high_water_ = 256 * 1024 + cfg_.limits.max_value_bytes;
}

kv_server::~kv_server() { stop(); }

bool kv_server::start(std::string* error) {
  if (running_) return true;
  listen_fd_ = listen_tcp(cfg_.host, cfg_.port, &port_, error);
  if (!listen_fd_.valid()) return false;

  stop_flag_.store(false, std::memory_order_relaxed);
  workers_.clear();
  for (unsigned i = 0; i < cfg_.io_threads; ++i) {
    auto w = std::make_unique<worker>(store_, cfg_.limits);
    int pipe_fds[2];
    if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
      if (error != nullptr)
        *error = std::string("pipe2: ") + std::strerror(errno);
      listen_fd_.reset();
      workers_.clear();
      return false;
    }
    w->wake_rd.reset(pipe_fds[0]);
    w->wake_wr.reset(pipe_fds[1]);
    w->pl.add(listen_fd_.get(), /*want_read=*/true, /*want_write=*/false);
    w->pl.add(w->wake_rd.get(), /*want_read=*/true, /*want_write=*/false);
    workers_.push_back(std::move(w));
  }
  threads_.clear();
  for (unsigned i = 0; i < cfg_.io_threads; ++i) {
    threads_.emplace_back([this, i] {
      if (cfg_.pin_io_threads) {
        const auto& topo = numa::system_topology();
        const unsigned k = topo.clusters() != 0 ? topo.clusters() : 1;
        numa::pin_thread_to_cluster(topo, i % k);
      } else {
        numa::set_thread_cluster(i);
      }
      io_loop(*workers_[i]);
    });
  }
  running_ = true;
  return true;
}

void kv_server::stop() {
  if (!running_) return;
  stop_flag_.store(true, std::memory_order_release);
  for (auto& w : workers_) {
    const char byte = 1;
    [[maybe_unused]] ssize_t rc = ::write(w->wake_wr.get(), &byte, 1);
  }
  for (auto& t : threads_) t.join();
  threads_.clear();
  for (auto& w : workers_) w->conns.clear();
  listen_fd_.reset();
  running_ = false;
}

server_counters kv_server::counters() const {
  server_counters total;
  for (const auto& w : workers_) {
    total.connections += w->connections.get();
    total.commands += w->commands.get();
    total.protocol_errors += w->protocol_errors.get();
  }
  return total;
}

void kv_server::io_loop(worker& w) {
  while (!stop_flag_.load(std::memory_order_acquire)) {
    int timeout_ms = 1000;  // backstop; the self-pipe makes stop() prompt
    if (w.listen_parked) {
      if (std::chrono::steady_clock::now() >= w.listen_parked_until) {
        w.pl.add(listen_fd_.get(), /*want_read=*/true, /*want_write=*/false);
        w.listen_parked = false;
      } else {
        timeout_ms = 100;  // wake in time to un-park
      }
    }
    if (!w.pl.wait(w.events, timeout_ms)) break;
    for (const poll_event& ev : w.events) {
      if (ev.fd == listen_fd_.get()) {
        if (ev.readable) accept_ready(w);
        continue;
      }
      if (ev.fd == w.wake_rd.get()) {
        char drain[16];
        while (::read(w.wake_rd.get(), drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      auto it = w.conns.find(ev.fd);
      if (it == w.conns.end()) continue;
      connection& c = *it->second;
      if (ev.hangup) {
        close_connection(w, ev.fd);
        continue;
      }
      if (ev.readable) {
        connection_readable(w, c);  // reads, drains, pumps, closes
        continue;
      }
      if (ev.writable && !pump(w, c)) close_connection(w, ev.fd);
    }
  }
}

void kv_server::accept_ready(worker& w) {
  for (;;) {
    const int fd = ::accept4(listen_fd_.get(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // EAGAIN: another worker won the race or the backlog drained.
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      // Hard failure (EMFILE/ENFILE/ENOMEM): under level-triggered
      // readiness the listen fd would re-fire immediately and spin this
      // worker, so park it for a cooldown and retry then.
      w.pl.remove(listen_fd_.get());
      w.listen_parked = true;
      w.listen_parked_until = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(100);
      return;
    }
    ++w.connections;
    auto conn = std::make_unique<connection>(unique_fd(fd), cfg_.limits);
    w.pl.add(fd, /*want_read=*/true, /*want_write=*/false);
    w.conns.emplace(fd, std::move(conn));
  }
}

// Drain the complete requests the parser holds (pipelining: several may
// arrive in one read), stopping at the output high-water mark so a
// pipelining client cannot drive unbounded reply buffering.
bool kv_server::drain_parser(worker& w, connection& c) {
  while (!c.closing) {
    if (throttled(c)) return false;  // parked; pump() resumes after writes
    parse_event ev = c.parser.next();
    if (ev.what == parse_event::kind::need_more) return true;
    if (ev.what == parse_event::kind::request) {
      execute(w, c, ev.request);
      continue;
    }
    // error / fatal_error (the reply is empty for suppressed noreply
    // errors, which still count)
    ++w.protocol_errors;
    c.out += ev.reply;
    if (ev.what == parse_event::kind::fatal_error) c.closing = true;
  }
  return true;  // closing: remaining input is irrelevant
}

void kv_server::connection_readable(worker& w, connection& c) {
  const int fd = c.fd.get();
  char buf[16384];
  // Parse after every chunk, not after the whole burst, so an oversized
  // set being swallowed is discarded chunk by chunk instead of accreting
  // in the parser buffer; stop reading at the output high-water mark.
  while (!c.closing && !c.eof && !throttled(c)) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      c.parser.feed(buf, static_cast<std::size_t>(n));
      drain_parser(w, c);
      continue;
    }
    if (n == 0) {
      // Half-close: no further requests, but buffered replies still go
      // out -- pump() closes once both directions are drained.
      c.eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    // Read error: the peer is gone; drop whatever was queued.
    c.closing = true;
    c.out.clear();
    c.out_pos = 0;
    break;
  }
  if (!pump(w, c)) close_connection(w, fd);
}

bool kv_server::flush_output(connection& c) {
  while (c.out_pos < c.out.size()) {
    // MSG_NOSIGNAL: a peer that vanished mid-reply must surface as EPIPE,
    // not kill the server process.
    const ssize_t n = ::send(c.fd.get(), c.out.data() + c.out_pos,
                             c.out.size() - c.out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return true;  // wait for writability
    if (n < 0 && errno == EINTR) continue;
    return false;  // write error: drop the connection
  }
  c.out.clear();
  c.out_pos = 0;
  return true;
}

bool kv_server::pump(worker& w, connection& c) {
  // Alternate flushing and parsing until the socket stops accepting
  // writes (throttled with EAGAIN), the parser runs out of complete
  // requests, or the connection is closing.  Flushing first means a
  // writable event resumes parser work that parked on the high-water
  // mark even when no further readable event will arrive (half-close).
  bool parser_idle = false;
  for (;;) {
    if (!flush_output(c)) return false;
    if (c.closing || throttled(c) || parser_idle) break;
    parser_idle = drain_parser(w, c);
  }
  const bool drained = pending_out(c) == 0;
  if (c.closing && drained) return false;    // quit/fatal: done
  if (c.eof && parser_idle && drained) return false;  // both sides drained
  update_interest(w, c);
  return true;
}

// Poller interest follows connection state: reads stop while closing,
// half-closed, or throttled on output; writes are wanted while replies
// are buffered.
void kv_server::update_interest(worker& w, connection& c) {
  const bool want_read = !c.closing && !c.eof && !throttled(c);
  const bool want_write = pending_out(c) > 0;
  if (want_read != c.want_read || want_write != c.want_write) {
    c.want_read = want_read;
    c.want_write = want_write;
    w.pl.modify(c.fd.get(), want_read, want_write);
  }
}

void kv_server::execute(worker& w, connection& c, text_request& req) {
  using kind = text_request::kind;
  ++w.commands;
  switch (req.op) {
    case kind::get: {
      std::string value;
      for (const std::string& key : req.keys) {
        if (w.exec.get(key, &value) == kvstore::cmd_status::hit)
          append_value_reply(c.out, key, 0, value);
      }
      c.out += reply_end;
      return;
    }
    case kind::set: {
      const auto st = w.exec.set(req.key, std::move(req.data));
      if (req.noreply) return;
      c.out += st == kvstore::cmd_status::stored ? reply_stored
                                                 : reply_too_large;
      return;
    }
    case kind::del: {
      const auto st = w.exec.del(req.key);
      if (req.noreply) return;
      c.out += st == kvstore::cmd_status::deleted ? reply_deleted
                                                  : reply_not_found;
      return;
    }
    case kind::flush:
      w.exec.flush();
      if (!req.noreply) c.out += reply_ok;
      return;
    case kind::stats: {
      const kvstore::store_snapshot snap = w.exec.stats();
      const server_counters sc = counters();
      append_stat(c.out, "cmd_get", snap.counters.gets);
      append_stat(c.out, "cmd_set", snap.counters.sets);
      append_stat(c.out, "cmd_delete", snap.counters.deletes);
      append_stat(c.out, "get_hits", snap.counters.get_hits);
      // Clamp: cells move independently, so a live sample may transiently
      // observe hits ahead of gets.
      append_stat(c.out, "get_misses",
                  snap.counters.gets >= snap.counters.get_hits
                      ? snap.counters.gets - snap.counters.get_hits
                      : 0);
      append_stat(c.out, "evictions", snap.counters.evictions);
      append_stat(c.out, "curr_items", snap.items);
      append_stat(c.out, "shards", snap.shards);
      append_stat(c.out, "threads", cfg_.io_threads);
      append_stat(c.out, "total_connections", sc.connections);
      append_stat(c.out, "cmd_total", sc.commands);
      append_stat(c.out, "protocol_errors", sc.protocol_errors);
      c.out += reply_end;
      return;
    }
    case kind::version:
      c.out += reply_version;
      return;
    case kind::quit:
      c.closing = true;
      return;
  }
}

void kv_server::close_connection(worker& w, int fd) {
  w.pl.remove(fd);
  w.conns.erase(fd);  // unique_fd closes it
}

}  // namespace cohort::net
