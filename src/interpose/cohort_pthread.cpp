// libcohort_pthread.so: installs cohort locks under the pthread_mutex API.
//
// This is the paper's deployment vehicle (§4.2): memcached was evaluated
// *without touching its sources or binary* by LD_PRELOADing an interpose
// library over the dynamically linked pthread functions.  Usage:
//
//   LD_PRELOAD=./libcohort_pthread.so ./your_program
//
// Every pthread_mutex_t is transparently backed by a C-TKT-TKT cohort lock
// (chosen because both its component locks are context-light: the only
// per-acquisition state is the local ticket, kept in a per-thread table).
//
// Scope: pthread_mutex_lock / trylock / unlock.  Programs that rely on
// pthread_cond_* with interposed mutexes are not supported (condition
// variables reach into the mutex representation); the paper's memcached
// experiment interposed on Solaris which has the same caveat class.
#include <pthread.h>

#include <atomic>
#include <cstdint>

#include "cohort/locks.hpp"

namespace {

using lock_type = cohort::c_tkt_tkt_lock;

// Fixed-size, lock-free (CAS-insert) open-addressing table from mutex
// address to cohort lock instance.  No allocation on the lock path after
// the lazily constructed singleton; slots are never removed (mutex destroy
// just abandons the slot -- bounded by table capacity).
constexpr std::size_t table_bits = 12;
constexpr std::size_t table_size = 1u << table_bits;  // 4096 distinct mutexes

struct slot {
  std::atomic<pthread_mutex_t*> owner{nullptr};
  lock_type* lock = nullptr;
};

struct registry {
  slot slots[table_size];

  lock_type* lookup(pthread_mutex_t* m) {
    const std::uintptr_t h =
        (reinterpret_cast<std::uintptr_t>(m) >> 4) * 0x9e3779b97f4a7c15ULL;
    std::size_t i = (h >> (64 - table_bits)) & (table_size - 1);
    for (std::size_t probes = 0; probes < table_size; ++probes) {
      slot& s = slots[i];
      pthread_mutex_t* cur = s.owner.load(std::memory_order_acquire);
      if (cur == m) return s.lock;
      if (cur == nullptr) {
        // Claim the slot; construct the lock first so a racing reader that
        // observes owner==m also sees the lock pointer.
        auto* lk = new lock_type;
        pthread_mutex_t* expected = nullptr;
        s.lock = lk;  // benign race: only the CAS winner's value is read
        if (s.owner.compare_exchange_strong(expected, m,
                                            std::memory_order_release,
                                            std::memory_order_acquire)) {
          return lk;
        }
        delete lk;
        if (expected == m) return s.lock;
      }
      i = (i + 1) & (table_size - 1);
    }
    return nullptr;  // table full
  }
};

registry& get_registry() {
  static registry* r = new registry;  // leaked: must outlive everything
  return *r;
}

// Per-thread acquisition contexts, one per registry slot.
thread_local lock_type::context tls_ctx[table_size];

std::size_t slot_index(lock_type* lk) {
  registry& r = get_registry();
  for (std::size_t i = 0; i < table_size; ++i)
    if (r.slots[i].lock == lk) return i;
  return 0;
}

}  // namespace

extern "C" {

int pthread_mutex_lock(pthread_mutex_t* m) {
  registry& r = get_registry();
  lock_type* lk = r.lookup(m);
  if (lk == nullptr) return 0;
  const std::uintptr_t h =
      (reinterpret_cast<std::uintptr_t>(m) >> 4) * 0x9e3779b97f4a7c15ULL;
  std::size_t i = (h >> (64 - table_bits)) & (table_size - 1);
  // Re-probe to the actual slot index for the context table.
  while (r.slots[i].lock != lk) i = (i + 1) & (table_size - 1);
  lk->lock(tls_ctx[i]);
  return 0;
}

int pthread_mutex_trylock(pthread_mutex_t* m) {
  // Cohort locks do not expose try_lock in the non-abortable variant; fall
  // back to a full acquisition (safe: strictly stronger).
  return pthread_mutex_lock(m);
}

int pthread_mutex_unlock(pthread_mutex_t* m) {
  registry& r = get_registry();
  lock_type* lk = r.lookup(m);
  if (lk == nullptr) return 0;
  const std::uintptr_t h =
      (reinterpret_cast<std::uintptr_t>(m) >> 4) * 0x9e3779b97f4a7c15ULL;
  std::size_t i = (h >> (64 - table_bits)) & (table_size - 1);
  while (r.slots[i].lock != lk) i = (i + 1) & (table_size - 1);
  lk->unlock(tls_ctx[i]);
  return 0;
}

}  // extern "C"
