// Small deterministic PRNGs.
//
// Lock backoff and workload generation must not allocate or take locks, so
// std::mt19937 (2.5 KB of state) is a poor fit; xorshift128+ and splitmix64
// are the standard lightweight choices.  Everything seeded => every test and
// every simulator run is reproducible.
#pragma once

#include <cstdint>

namespace cohort {

// splitmix64: used to expand a single seed into independent streams.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xorshift128+ : fast, passes BigCrush except linearity tests, fine for
// backoff jitter and workload mixing.
class xorshift {
 public:
  explicit constexpr xorshift(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    // Never allow the all-zero state.
    std::uint64_t s = seed ? seed : 0x2545f4914f6cdd1dULL;
    s0_ = splitmix64(s);
    s1_ = splitmix64(s);
  }

  constexpr std::uint64_t next() noexcept {
    std::uint64_t x = s0_;
    const std::uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  // Uniform in [0, bound); bound == 0 yields 0.
  constexpr std::uint64_t next_range(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    // Multiply-shift rejection-free mapping (Lemire); bias is negligible for
    // the bounds used here (backoff windows, workload mixes).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t s0_;
  std::uint64_t s1_;
};

}  // namespace cohort
