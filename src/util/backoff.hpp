// Backoff policies for test-and-test-and-set style locks.
//
// The paper's BO lock is TATAS with exponential backoff [Agarwal & Cherian];
// its memcached tables additionally use a Fibonacci-backoff variant (Fib-BO),
// and HBO [Radovic & Hagersten] needs *two* independently tuned backoff
// ranges (local vs remote cluster).  Policies are value types so each lock
// instance can carry its own tuning.
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/rng.hpp"
#include "util/spin.hpp"

namespace cohort {

// Bounded exponential backoff with multiplicative growth and jitter.
class exp_backoff {
 public:
  struct params {
    std::uint32_t min_spins = 16;
    std::uint32_t max_spins = 4 * 1024;
    std::uint32_t multiplier = 2;
  };

  exp_backoff() : exp_backoff(params{}) {}
  explicit exp_backoff(params p) : p_(p), limit_(p.min_spins) {}

  // One backoff episode; grows the window for the next episode.
  void pause(xorshift& rng) {
    const std::uint32_t spins = rng.next_range(limit_) + 1;
    for (std::uint32_t i = 0; i < spins; ++i) cpu_relax();
    limit_ = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(limit_) * p_.multiplier, p_.max_spins);
  }

  void reset() noexcept { limit_ = p_.min_spins; }
  std::uint32_t window() const noexcept { return limit_; }

 private:
  params p_;
  std::uint32_t limit_;
};

// Fibonacci backoff: the window grows along the Fibonacci sequence, a gentler
// ramp than doubling.  This is the "Fib-BO" configuration from Table 1.
class fib_backoff {
 public:
  struct params {
    std::uint32_t min_spins = 16;
    std::uint32_t max_spins = 4 * 1024;
  };

  fib_backoff() : fib_backoff(params{}) {}
  explicit fib_backoff(params p) : p_(p), prev_(0), cur_(p.min_spins) {}

  void pause(xorshift& rng) {
    const std::uint32_t spins = rng.next_range(cur_) + 1;
    for (std::uint32_t i = 0; i < spins; ++i) cpu_relax();
    const std::uint64_t next = static_cast<std::uint64_t>(prev_) + cur_;
    prev_ = cur_;
    cur_ = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(next, p_.max_spins));
  }

  void reset() noexcept {
    prev_ = 0;
    cur_ = p_.min_spins;
  }
  std::uint32_t window() const noexcept { return cur_; }

 private:
  params p_;
  std::uint32_t prev_;
  std::uint32_t cur_;
};

}  // namespace cohort
