// Zipfian index sampler for skewed workload generation.
//
// P(k) ∝ 1/(k+1)^theta over [0, n): index 0 is the hottest item.  The
// sampler precomputes the cumulative distribution once (O(n) doubles, built
// before the worker threads start) and answers each draw with a binary
// search, so sampling itself allocates nothing and is safe to share
// read-only across threads -- each worker draws through its own RNG.
//
// theta == 0 degenerates to the uniform distribution and skips the table
// entirely, so an unskewed workload pays nothing.  Typical web-cache skew
// is theta ≈ 0.99 (the YCSB default); theta > 1 concentrates most traffic
// on a handful of keys.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace cohort {

class zipf_sampler {
 public:
  // n = population size; theta <= 0 selects the uniform fallback.
  zipf_sampler(std::size_t n, double theta) : n_(n != 0 ? n : 1) {
    if (theta <= 0.0) return;
    cdf_.resize(n_);
    double sum = 0.0;
    for (std::size_t k = 0; k < n_; ++k) {
      sum += 1.0 / std::pow(static_cast<double>(k + 1), theta);
      cdf_[k] = sum;
    }
    for (double& c : cdf_) c /= sum;
    cdf_.back() = 1.0;  // guard against rounding leaving the tail short
  }

  bool uniform() const noexcept { return cdf_.empty(); }
  std::size_t size() const noexcept { return n_; }

  // P(index <= k); the uniform fallback answers analytically.  Exposed for
  // tests (monotonicity, hot-key mass) and tooling.
  double cdf(std::size_t k) const noexcept {
    if (k + 1 >= n_) return 1.0;
    if (cdf_.empty())
      return static_cast<double>(k + 1) / static_cast<double>(n_);
    return cdf_[k];
  }

  // Draw one index in [0, n) through the caller's RNG.
  std::size_t operator()(xorshift& rng) const {
    if (cdf_.empty()) return static_cast<std::size_t>(rng.next_range(n_));
    const double u = rng.next_double();
    return static_cast<std::size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::size_t n_;
  std::vector<double> cdf_;  // empty => uniform
};

}  // namespace cohort
