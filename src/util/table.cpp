#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace cohort {

text_table::text_table(std::vector<std::string> header)
    : header_(std::move(header)) {}

void text_table::start_row() { rows_.emplace_back(); }

void text_table::add(const std::string& cell) { rows_.back().push_back(cell); }

void text_table::add(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  add(ss.str());
}

void text_table::add(std::uint64_t v) { add(std::to_string(v)); }

void text_table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::setw(static_cast<int>(width[c])) << cells[c];
      os << (c + 1 == cells.size() ? "\n" : "  ");
    }
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace cohort
