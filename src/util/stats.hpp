// Descriptive statistics used by the benchmark harness.
//
// Figure 5 reports the standard deviation of per-thread throughput as a
// percentage of the mean; the harness also wants percentiles for batch-size
// histograms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cohort {

struct summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // population standard deviation
  double min = 0.0;
  double max = 0.0;

  // Fig 5's metric: stddev as a percentage of the mean (0 when mean == 0).
  double stddev_pct() const noexcept {
    return mean == 0.0 ? 0.0 : 100.0 * stddev / mean;
  }
};

summary summarize(const std::vector<double>& xs);

// Linear-interpolated percentile, p in [0, 100].  Sorts a copy.
double percentile(std::vector<double> xs, double p);

// Streaming mean/variance (Welford) for counters that are too hot to buffer.
class running_stats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  summary finish() const noexcept;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Fixed-bucket histogram for batch lengths (bucket i counts values == i,
// with one overflow bucket).
class histogram {
 public:
  explicit histogram(std::size_t buckets) : counts_(buckets + 1, 0) {}

  void add(std::uint64_t v) noexcept {
    const std::size_t i =
        v < counts_.size() - 1 ? static_cast<std::size_t>(v)
                               : counts_.size() - 1;
    ++counts_[i];
  }

  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  std::size_t buckets() const noexcept { return counts_.size(); }
  std::uint64_t total() const noexcept;
  double mean() const noexcept;

 private:
  std::vector<std::uint64_t> counts_;
};

}  // namespace cohort
