#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace cohort {

summary summarize(const std::vector<double>& xs) {
  running_stats rs;
  for (double x : xs) rs.add(x);
  return rs.finish();
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (p <= 0.0) return xs.front();
  if (p >= 100.0) return xs.back();
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

summary running_stats::finish() const noexcept {
  summary s;
  s.count = n_;
  s.mean = mean_;
  s.stddev = n_ > 0 ? std::sqrt(m2_ / static_cast<double>(n_)) : 0.0;
  s.min = min_;
  s.max = max_;
  return s;
}

std::uint64_t histogram::total() const noexcept {
  std::uint64_t t = 0;
  for (auto c : counts_) t += c;
  return t;
}

double histogram::mean() const noexcept {
  std::uint64_t t = 0;
  double acc = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    acc += static_cast<double>(i) * static_cast<double>(counts_[i]);
    t += counts_[i];
  }
  return t == 0 ? 0.0 : acc / static_cast<double>(t);
}

}  // namespace cohort
