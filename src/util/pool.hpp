// Node pools for queue locks whose nodes outlive the acquiring thread's
// critical section.
//
// C-MCS-MCS needs this (paper §3.4): the thread that enqueues a node on the
// *global* MCS queue is usually not the thread that dequeues it, so the node
// must circulate back to its owner's pool.  A-C-BO-CLH needs it too: the
// successor of an aborted CLH node reclaims that node on the aborter's
// behalf.  Returns can therefore race (many releasers, one owner), so the
// free list is a Treiber stack; pops are single-consumer (only the owner
// allocates), which sidesteps ABA.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "util/align.hpp"

namespace cohort {

// Intrusive hook: pool-managed nodes embed a pool_node base.
struct pool_node {
  std::atomic<pool_node*> pool_next{nullptr};
};

// A single-owner pool with multi-producer returns.
//
// - acquire(): owner thread only.
// - release(): any thread.
// Nodes are heap-allocated on demand and owned (and eventually freed) by the
// pool.
// Node must derive from pool_node (checked where nodes are used; a concept
// here would force completeness of Node at the point a node declares its
// owning pool, which self-referential node types cannot satisfy).
template <typename Node>
class node_pool {
 public:
  node_pool() = default;
  node_pool(const node_pool&) = delete;
  node_pool& operator=(const node_pool&) = delete;

  ~node_pool() {
    for (auto& n : owned_) n.reset();
  }

  // Owner-only.  Pops from the shared free stack; allocates when empty.
  Node* acquire() {
    pool_node* head = free_.load(std::memory_order_acquire);
    while (head != nullptr) {
      pool_node* next = head->pool_next.load(std::memory_order_relaxed);
      if (free_.compare_exchange_weak(head, next, std::memory_order_acquire,
                                      std::memory_order_acquire)) {
        head->pool_next.store(nullptr, std::memory_order_relaxed);
        return static_cast<Node*>(head);
      }
    }
    owned_.push_back(std::make_unique<Node>());
    ++allocated_;
    return owned_.back().get();
  }

  // Any thread.  Pushes the node back on the owner's free stack.
  void release(Node* node) noexcept {
    pool_node* head = free_.load(std::memory_order_relaxed);
    do {
      node->pool_next.store(head, std::memory_order_relaxed);
    } while (!free_.compare_exchange_weak(head, node,
                                          std::memory_order_release,
                                          std::memory_order_relaxed));
  }

  // Total nodes ever allocated; a bounded value demonstrates that node
  // circulation works (tests assert on it).
  std::size_t allocated() const noexcept { return allocated_; }

 private:
  alignas(cache_line_size) std::atomic<pool_node*> free_{nullptr};
  std::vector<std::unique_ptr<Node>> owned_;
  std::size_t allocated_ = 0;
};

// This thread's process-lifetime pool for Node.
//
// The registry and the pools are deliberately leaked: queue-lock nodes may be
// returned to a pool *after* the owning thread exited (e.g. a C-MCS-MCS
// global node released by a cohort-mate, or an aborted CLH node reclaimed by
// its successor), so pools must never be destroyed.  Total leakage is bounded
// by (threads ever created) x (peak nodes per thread), a few cache lines per
// thread in practice.
template <typename Node>
node_pool<Node>& thread_local_pool() {
  static std::vector<node_pool<Node>*>* registry = [] {
    return new std::vector<node_pool<Node>*>;
  }();
  static std::atomic<int> registry_guard{0};
  thread_local node_pool<Node>* pool = [] {
    auto* p = new node_pool<Node>;
    // Tiny spin mutex: registration is rare (once per thread).
    int expected = 0;
    while (!registry_guard.compare_exchange_weak(expected, 1,
                                                 std::memory_order_acquire,
                                                 std::memory_order_relaxed))
      expected = 0;
    registry->push_back(p);
    registry_guard.store(0, std::memory_order_release);
    return p;
  }();
  return *pool;
}

}  // namespace cohort
