// Cache-line alignment helpers used throughout the lock library.
//
// Every mutable word that different threads contend on gets its own cache
// line; cohort locks in particular keep each cluster's local lock on lines
// owned by that cluster.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace cohort {

// std::hardware_destructive_interference_size exists but is famously
// unreliable across toolchains; 64 bytes is correct for x86-64 and SPARC T2+,
// and 128 covers adjacent-line prefetchers when doubled padding is requested.
inline constexpr std::size_t cache_line_size = 64;

// A T padded out to a whole number of cache lines and aligned to one.
// Access the payload through get()/operator*.
template <typename T>
struct alignas(cache_line_size) padded {
  T value{};

  padded() = default;

  template <typename... Args>
  explicit padded(Args&&... args) : value(std::forward<Args>(args)...) {}

  T& get() noexcept { return value; }
  const T& get() const noexcept { return value; }
  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }

 private:
  // Tail padding so sizeof(padded<T>) is a multiple of the line size even
  // when T is larger than one line.
  char pad_[(sizeof(T) % cache_line_size) == 0
                ? cache_line_size
                : cache_line_size - (sizeof(T) % cache_line_size)] = {};
};

static_assert(sizeof(padded<char>) == cache_line_size);
static_assert(alignof(padded<char>) == cache_line_size);

}  // namespace cohort
