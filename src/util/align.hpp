// Cache-line alignment helpers used throughout the lock library.
//
// Every mutable word that different threads contend on gets its own cache
// line; cohort locks in particular keep each cluster's local lock on lines
// owned by that cluster.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace cohort {

// std::hardware_destructive_interference_size exists but is famously
// unreliable across toolchains; 64 bytes is correct for x86-64 and SPARC T2+,
// and 128 covers adjacent-line prefetchers when doubled padding is requested.
inline constexpr std::size_t cache_line_size = 64;

// Destructive-interference padding for state that distinct threads hammer
// concurrently (stat cells vs. lock words, the fast-path word vs. its
// hysteresis counters).  Where the library header provides the constant we
// honour it -- it may be 128 on targets with adjacent-line prefetch -- and
// fall back to cache_line_size elsewhere.
#if defined(__cpp_lib_hardware_interference_size)
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winterference-size"
#endif
inline constexpr std::size_t destructive_interference_size =
    std::hardware_destructive_interference_size > cache_line_size
        ? std::hardware_destructive_interference_size
        : cache_line_size;
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
#else
inline constexpr std::size_t destructive_interference_size = cache_line_size;
#endif

namespace detail {
// Stride padded<T> rounds to: at least a cache line, and never weaker than
// T's own alignment (T may carry destructive_interference_size members).
template <typename T>
inline constexpr std::size_t pad_stride =
    alignof(T) > cache_line_size ? alignof(T) : cache_line_size;
}  // namespace detail

// A T padded out to a whole number of cache lines (or of T's own stricter
// alignment) and aligned to one.  Access the payload through get()/operator*.
template <typename T>
struct alignas(detail::pad_stride<T>) padded {
  T value{};

  padded() = default;

  template <typename... Args>
  explicit padded(Args&&... args) : value(std::forward<Args>(args)...) {}

  T& get() noexcept { return value; }
  const T& get() const noexcept { return value; }
  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }

 private:
  // Tail padding so sizeof(padded<T>) is a multiple of the stride even
  // when T is larger than one line.
  char pad_[(sizeof(T) % detail::pad_stride<T>) == 0
                ? detail::pad_stride<T>
                : detail::pad_stride<T> -
                      (sizeof(T) % detail::pad_stride<T>)] = {};
};

static_assert(sizeof(padded<char>) == cache_line_size);
static_assert(alignof(padded<char>) == cache_line_size);

}  // namespace cohort
