// Raw futex wait/wake wrappers over a 32-bit atomic word -- the one audited
// copy of the kernel-parking protocol, shared by the spin-then-park lock
// (locks/park.hpp) and the GCR admission combinator's passive set
// (cohort/gcr.hpp).
//
// Semantics follow the futex contract, not a condition variable's: a wait
// returns when the word no longer holds `expected`, when another thread
// wakes the word, or spuriously (EINTR).  Callers must therefore re-check
// their predicate in a loop around every wait.  On non-Linux hosts the
// calls degrade to the escalating spin/yield waiter (util/spin.hpp); the
// protocol stays correct, only the kernel sleep is lost.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "util/spin.hpp"

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <climits>
#include <ctime>
#endif

namespace cohort::futex {

// Sleep while `word == expected`.  May return spuriously; loop on the
// predicate.
inline void wait(std::atomic<std::uint32_t>& word, std::uint32_t expected) {
#if defined(__linux__)
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word),
          FUTEX_WAIT_PRIVATE, expected, nullptr, nullptr, 0);
#else
  spin_until([&] {
    return word.load(std::memory_order_acquire) != expected;
  });
#endif
}

// Bounded wait: sleep while `word == expected`, for at most `timeout`.
// Returns false exactly when the kernel reported a timeout; true on a wake,
// a value mismatch, or a spurious return -- so a false return means the
// full timeout elapsed without a wake, and a true return still requires the
// caller to re-check its predicate.
inline bool wait_for(std::atomic<std::uint32_t>& word, std::uint32_t expected,
                     std::chrono::nanoseconds timeout) {
  if (timeout <= std::chrono::nanoseconds::zero()) return false;
#if defined(__linux__)
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(timeout.count() / 1'000'000'000);
  ts.tv_nsec = static_cast<long>(timeout.count() % 1'000'000'000);
  const long rc =
      syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word),
              FUTEX_WAIT_PRIVATE, expected, &ts, nullptr, 0);
  return !(rc == -1 && errno == ETIMEDOUT);
#else
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  spin_wait w;
  while (word.load(std::memory_order_acquire) == expected) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    w.spin();
  }
  return true;
#endif
}

// Wake one waiter sleeping on the word.  (The non-Linux fallback has no
// sleepers -- waiters spin on the word itself -- so there is nothing to do.)
inline void wake_one(std::atomic<std::uint32_t>& word) {
#if defined(__linux__)
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word),
          FUTEX_WAKE_PRIVATE, 1, nullptr, nullptr, 0);
#else
  (void)word;
#endif
}

// Wake every waiter sleeping on the word.
inline void wake_all(std::atomic<std::uint32_t>& word) {
#if defined(__linux__)
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word),
          FUTEX_WAKE_PRIVATE, INT_MAX, nullptr, nullptr, 0);
#else
  (void)word;
#endif
}

}  // namespace cohort::futex
