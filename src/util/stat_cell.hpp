// Single-writer counter cell: only one thread at a time increments it (a
// lock orders the writers), while benchmark coordinators and server stats
// threads may sample it concurrently.  store(load + 1) keeps read-modify-
// write instructions off the hot path; relaxed ordering is enough because
// samplers tolerate slightly stale values.
//
// Shared by the cohort locks' batching counters (cohort/cohort_lock.hpp)
// and the kv shard counters (kvstore/kv_shard.hpp), so both are safe to
// sample mid-run for the windows[] telemetry and the server's live `stats`
// command.
#pragma once

#include <atomic>
#include <cstdint>

namespace cohort {

class stat_cell {
 public:
  void operator++() {
    v_.store(v_.load(std::memory_order_relaxed) + 1,
             std::memory_order_relaxed);
  }
  void operator--() {
    v_.store(v_.load(std::memory_order_relaxed) - 1,
             std::memory_order_relaxed);
  }
  void add(std::uint64_t n) {
    v_.store(v_.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
  }
  std::uint64_t get() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

}  // namespace cohort
