// Plain-text table printing for the benchmark harness.
//
// Every bench binary prints rows shaped like the paper's figures/tables
// (thread count in the first column, one column per lock).  Columns are
// right-aligned and sized to fit so the output is diffable run-to-run.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cohort {

class text_table {
 public:
  explicit text_table(std::vector<std::string> header);

  // Begin a new row; subsequent add() calls fill its cells left to right.
  void start_row();
  void add(const std::string& cell);
  void add(double v, int precision = 2);
  void add(std::uint64_t v);

  void print(std::ostream& os) const;

  std::size_t rows() const noexcept { return rows_.size(); }
  const std::vector<std::string>& row(std::size_t i) const {
    return rows_.at(i);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cohort
