// Spin-wait primitives.
//
// All spin loops in the library go through spin_wait so that the
// pause/yield policy lives in one place.  On over-subscribed hosts (more
// runnable threads than cores -- the common case for this repository's CI
// machine) pure busy-waiting livelocks the holder off the CPU, so after a
// bounded number of pauses the waiter starts yielding to the scheduler.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace cohort {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

// Escalating waiter: pause a while, then yield, then sleep-yield.
class spin_wait {
 public:
  void spin() noexcept {
    if (count_ < pause_limit) {
      cpu_relax();
    } else {
      std::this_thread::yield();
    }
    ++count_;
  }

  void reset() noexcept { count_ = 0; }
  std::uint32_t count() const noexcept { return count_; }

  static constexpr std::uint32_t pause_limit = 64;

 private:
  std::uint32_t count_ = 0;
};

// Spin until pred() becomes true.  pred must be cheap and must read the
// watched location with at least acquire semantics itself.
template <typename Pred>
void spin_until(Pred&& pred) {
  spin_wait w;
  while (!pred()) w.spin();
}

}  // namespace cohort
