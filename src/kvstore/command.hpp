// The shared kv command layer (DESIGN.md §6): one request API over the
// sharded engine with per-op result codes, and the one get/set mix loop
// behind every load driver.
//
// Before this layer each kv consumer open-coded its own get/set mix against
// the store (`--workload kv`, bench/real_kvstore.cpp, the old server
// example).  Now exactly one implementation exists:
//
//   * command_executor<Store>  -- binds a store and a per-thread handle and
//     exposes get/set/del/flush/stats with cmd_status result codes.  Store
//     is sharded_store<Lock> (monomorphised, the benchmark hot path) or
//     any_sharded_store (type-erased, the server).  One instance per
//     driving thread; must not outlive the store.
//   * mix_workload             -- the memaslap-style op generator (keyspace,
//     Zipf key skew, get/set coin); step() drives any executor-shaped
//     target, including the network client (net/client.hpp), so the served
//     path and the in-process path run the identical mix.
//   * prefill_keyspace         -- NUMA-aware keyspace prefill shared by the
//     benchmark workloads and the server's --prefill option.
//
// The net front-end (src/net/) translates the memcached text protocol into
// these calls; the windowed benchmark workloads call them directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "kvstore/sharded_store.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace kvstore {

enum class cmd_op : std::uint8_t { get, set, del, flush, stats };

// Per-op result codes.  get yields hit/miss, set yields stored/too_large,
// del yields deleted/not_found, flush/stats yield ok.  `error` never comes
// from the in-process executor; the network client (net/client.hpp) shares
// this vocabulary and reports transport/protocol failure with it.
enum class cmd_status : std::uint8_t {
  hit,
  miss,
  stored,
  too_large,
  deleted,
  not_found,
  ok,
  error,
};

// Stable lowercase name ("hit", "stored", ...) for logs and tests.
const char* status_name(cmd_status s) noexcept;

struct command {
  cmd_op op = cmd_op::get;
  std::string key;
  std::string value;  // set payload
};

// Live sample of the whole store, shaped for the server's `stats` command:
// summed operation cells plus resident items.  Safe to take while other
// threads operate (single-writer cells); identities exact at quiescence.
struct store_snapshot {
  kv_stats counters{};
  std::size_t items = 0;
  std::size_t shards = 0;
};

struct command_reply {
  cmd_status status = cmd_status::ok;
  std::string value;       // get hit payload
  store_snapshot stats{};  // stats op only
};

template <typename Store>
class command_executor {
 public:
  // max_value_bytes == 0 means unbounded; the server passes its protocol
  // cap so oversized sets are refused in one place.
  explicit command_executor(Store& store, std::size_t max_value_bytes = 0)
      : store_(&store),
        h_(store.make_handle()),
        max_value_bytes_(max_value_bytes) {}

  cmd_status get(const std::string& key, std::string* out) {
    auto v = store_->get(h_, key);
    if (!v.has_value()) return cmd_status::miss;
    if (out != nullptr) *out = std::move(*v);
    return cmd_status::hit;
  }

  cmd_status set(const std::string& key, std::string value) {
    if (max_value_bytes_ != 0 && value.size() > max_value_bytes_)
      return cmd_status::too_large;
    store_->set(h_, key, std::move(value));
    return cmd_status::stored;
  }

  cmd_status del(const std::string& key) {
    return store_->erase(h_, key) ? cmd_status::deleted
                                  : cmd_status::not_found;
  }

  cmd_status flush() {
    store_->flush(h_);
    return cmd_status::ok;
  }

  store_snapshot stats() const {
    store_snapshot s;
    s.counters = store_->stats();
    s.items = store_->size();
    s.shards = store_->shard_count();
    return s;
  }

  command_reply execute(const command& c) {
    command_reply r;
    switch (c.op) {
      case cmd_op::get: r.status = get(c.key, &r.value); break;
      case cmd_op::set: r.status = set(c.key, c.value); break;
      case cmd_op::del: r.status = del(c.key); break;
      case cmd_op::flush: r.status = flush(); break;
      case cmd_op::stats:
        r.stats = stats();
        r.status = cmd_status::ok;
        break;
    }
    return r;
  }

  Store& store() noexcept { return *store_; }

 private:
  Store* store_;
  typename Store::handle h_;
  std::size_t max_value_bytes_;
};

// The memaslap-style get/set mix (paper §4.2's memcached load): each step
// draws one key through the shared Zipf CDF (theta 0 = uniform, hottest key
// first) and flips the get/set coin.  One instance is shared read-only by
// all worker threads; each worker draws through its own RNG.  Target is
// anything executor-shaped: command_executor<Store> in process,
// net::memcache_client over a socket.
class mix_workload {
 public:
  mix_workload(const std::vector<std::string>& keys, double get_ratio,
               double zipf_theta, std::string value)
      : keys_(&keys),
        value_(std::move(value)),
        get_ratio_(get_ratio),
        pick_(keys.size(), zipf_theta) {}

  template <typename Executor>
  cmd_status step(Executor& ex, cohort::xorshift& rng) const {
    const std::string& key = (*keys_)[pick_(rng)];
    if (rng.next_double() < get_ratio_) return ex.get(key, nullptr);
    return ex.set(key, value_);
  }

  const std::vector<std::string>& keys() const noexcept { return *keys_; }
  const std::string& value() const noexcept { return value_; }

 private:
  const std::vector<std::string>* keys_;
  std::string value_;
  double get_ratio_;
  cohort::zipf_sampler pick_;
};

// Prefill every key so gets can hit.  With numa_place each shard's items
// (the LRU nodes and value payloads) are inserted -- first-touched -- from
// a thread pinned to the shard's home cluster, completing the placement the
// store constructor started with the bucket tables.
template <typename Store>
void prefill_keyspace(Store& store, const std::vector<std::string>& keys,
                      const std::string& value, bool numa_place) {
  if (!numa_place) {
    command_executor<Store> ex(store);
    for (const auto& k : keys) ex.set(k, value);
    return;
  }
  // One partition pass, then one pinned insertion thread per shard.
  std::vector<std::vector<const std::string*>> by_shard(store.shard_count());
  for (const auto& k : keys) by_shard[store.shard_of(k)].push_back(&k);
  const auto& topo = cohort::numa::system_topology();
  for (std::size_t s = 0; s < store.shard_count(); ++s) {
    std::thread([&, s] {
      cohort::numa::pin_thread_to_cluster(topo, store.home_cluster(s));
      command_executor<Store> ex(store);
      for (const std::string* k : by_shard[s]) ex.set(*k, value);
    }).join();
  }
}

}  // namespace kvstore
