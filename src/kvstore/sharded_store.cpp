#include "kvstore/sharded_store.hpp"

namespace kvstore {

std::unique_ptr<any_sharded_store> make_any_sharded_store(
    const std::string& lock_name, const kv_config& cfg,
    const cohort::reg::lock_params& lp) {
  if (!cohort::reg::is_lock_name(lock_name)) return nullptr;
  return std::make_unique<any_sharded_store>(
      cfg, [&] { return cohort::reg::make_lock(lock_name, lp); });
}

}  // namespace kvstore
