// The lock-free-of-locking cache core (DESIGN.md §3): one hash table, one
// LRU list and one set of counters, with *no* synchronisation of its own.
// A kv_shard is always driven under exactly one lock — the sharded_store
// engine owns that lock and the shard-selection policy; this class owns only
// the memcached-1.4 data-structure semantics (chained buckets, bump-on-access
// LRU, eviction of the coldest item past the budget).
//
// Counters are single-writer relaxed-atomic cells (util/stat_cell.hpp): the
// shard lock orders the writers, so the holder is the only incrementer, and
// coordinators may *sample* them concurrently — the windows[] per-shard
// hit-rate telemetry and the server's live `stats` command both do.  The
// data structure itself (buckets, LRU) stays quiescent-only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <vector>

#include "util/stat_cell.hpp"

namespace kvstore {

// FNV-1a, the classic string hash (memcached's default family).
std::uint64_t fnv1a64(const std::string& s) noexcept;

// Plain snapshot of a shard's operation counters (exact at quiescence; a
// mid-run sample sees each counter at some recent instant).
struct kv_stats {
  std::uint64_t gets = 0;
  std::uint64_t get_hits = 0;
  std::uint64_t sets = 0;
  std::uint64_t deletes = 0;
  std::uint64_t evictions = 0;

  kv_stats& operator+=(const kv_stats& o) noexcept {
    gets += o.gets;
    get_hits += o.get_hits;
    sets += o.sets;
    deletes += o.deletes;
    evictions += o.evictions;
    return *this;
  }
};

// The live cells behind kv_stats, plus the resident-item count so size()
// is sampleable too.
struct kv_counters {
  cohort::stat_cell gets;
  cohort::stat_cell get_hits;
  cohort::stat_cell sets;
  cohort::stat_cell deletes;
  cohort::stat_cell evictions;
  cohort::stat_cell items;

  kv_stats snapshot() const {
    kv_stats s;
    s.gets = gets.get();
    s.get_hits = get_hits.get();
    s.sets = sets.get();
    s.deletes = deletes.get();
    s.evictions = evictions.get();
    return s;
  }
};

class kv_shard {
 public:
  // max_items == 0 disables LRU eviction.
  explicit kv_shard(std::size_t buckets = 1024, std::size_t max_items = 0)
      : buckets_(buckets != 0 ? buckets : 1),
        max_items_(max_items),
        table_(buckets_) {}

  // All mutators take the key's fnv1a64 hash so the engine hashes once for
  // both shard selection (high bits) and bucket selection (low bits).

  std::optional<std::string> get(const std::string& key, std::uint64_t hash) {
    ++stats_.gets;
    item* it = find(key, hash);
    if (it == nullptr) return std::nullopt;
    ++stats_.get_hits;
    touch(it);
    return it->value;
  }

  void set(const std::string& key, std::string value, std::uint64_t hash) {
    ++stats_.sets;
    item* it = find(key, hash);
    if (it != nullptr) {
      it->value = std::move(value);
      touch(it);
      return;
    }
    lru_.push_front(item{key, std::move(value), hash, {}});
    item& fresh = lru_.front();
    fresh.lru_pos = lru_.begin();
    table_[bucket_index(hash)].push_back(&fresh);
    ++stats_.items;
    if (max_items_ != 0 && lru_.size() > max_items_) evict_oldest();
  }

  bool erase(const std::string& key, std::uint64_t hash) {
    ++stats_.deletes;
    item* it = find(key, hash);
    if (it == nullptr) return false;
    unlink(it);
    return true;
  }

  // Drop every resident item (the `flush` command).  Cumulative operation
  // counters are preserved, memcached-style; only `items` resets.
  void clear() {
    for (auto& bucket : table_) bucket.clear();
    while (!lru_.empty()) {
      lru_.pop_back();
      --stats_.items;
    }
  }

  // Sampleable live reads (relaxed cells): safe concurrently with the shard
  // holder's mutations.  Cross-counter identities are exact only at
  // quiescence.
  std::size_t size() const noexcept {
    return static_cast<std::size_t>(stats_.items.get());
  }
  kv_stats stats() const noexcept { return stats_.snapshot(); }
  const kv_counters& counters() const noexcept { return stats_; }
  std::size_t buckets() const noexcept { return buckets_; }
  std::size_t max_items() const noexcept { return max_items_; }

  // Touch the bucket table and pre-reserve short chains so the backing pages
  // are faulted in from the calling thread (NUMA first-touch placement; the
  // engine calls this from a thread pinned to the shard's home cluster).
  void prefault() {
    for (auto& bucket : table_) bucket.reserve(4);
  }

 private:
  struct item {
    std::string key;
    std::string value;
    std::uint64_t hash;
    std::list<item>::iterator lru_pos;
  };

  std::size_t bucket_index(std::uint64_t hash) const noexcept {
    return hash % buckets_;
  }

  item* find(const std::string& key, std::uint64_t hash) {
    for (item* it : table_[bucket_index(hash)])
      if (it->key == key) return it;
    return nullptr;
  }

  void touch(item* it) {
    // Move to the LRU front (memcached's bump on access).
    lru_.splice(lru_.begin(), lru_, it->lru_pos);
    it->lru_pos = lru_.begin();
  }

  void unlink(item* it) {
    auto& bucket = table_[bucket_index(it->hash)];
    for (auto b = bucket.begin(); b != bucket.end(); ++b) {
      if (*b == it) {
        bucket.erase(b);
        break;
      }
    }
    lru_.erase(it->lru_pos);
    --stats_.items;
  }

  void evict_oldest() {
    item& victim = lru_.back();
    ++stats_.evictions;
    unlink(&victim);
  }

  std::size_t buckets_;
  std::size_t max_items_;
  std::vector<std::vector<item*>> table_;
  std::list<item> lru_;
  kv_counters stats_;
};

// Pre-generated key names ("key<i>") shared by driver threads.
std::vector<std::string> make_keyspace(std::size_t n);

}  // namespace kvstore
