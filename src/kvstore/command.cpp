#include "kvstore/command.hpp"

namespace kvstore {

const char* status_name(cmd_status s) noexcept {
  switch (s) {
    case cmd_status::hit: return "hit";
    case cmd_status::miss: return "miss";
    case cmd_status::stored: return "stored";
    case cmd_status::too_large: return "too_large";
    case cmd_status::deleted: return "deleted";
    case cmd_status::not_found: return "not_found";
    case cmd_status::ok: return "ok";
    case cmd_status::error: return "error";
  }
  return "unknown";
}

}  // namespace kvstore
