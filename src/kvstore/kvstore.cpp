#include "kvstore/kv_shard.hpp"

namespace kvstore {

std::uint64_t fnv1a64(const std::string& s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::vector<std::string> make_keyspace(std::size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) keys.push_back("key" + std::to_string(i));
  return keys;
}

}  // namespace kvstore
