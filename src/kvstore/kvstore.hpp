// In-memory key-value store with a single "cache lock", the memcached
// substitute for Table 1 (DESIGN.md §2).
//
// memcached 1.4 mediates all hash-table and LRU access through one pthread
// mutex; kv_store reproduces that architecture with the lock type as a
// template parameter so the paper's interposition experiment becomes a
// one-line type change.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <vector>

#include "cohort/cohort_lock.hpp"
#include "cohort/locks.hpp"

namespace kvstore {

// FNV-1a, the classic string hash (memcached's default family).
std::uint64_t fnv1a64(const std::string& s) noexcept;

struct kv_stats {
  std::uint64_t gets = 0;
  std::uint64_t get_hits = 0;
  std::uint64_t sets = 0;
  std::uint64_t evictions = 0;
};

template <typename Lock = cohort::c_tkt_tkt_lock>
class kv_store {
 public:
  // max_items == 0 disables LRU eviction.
  explicit kv_store(std::size_t buckets = 1024, std::size_t max_items = 0)
      : buckets_(buckets), max_items_(max_items) {}

  std::optional<std::string> get(const std::string& key) {
    cohort::scoped<Lock> g(cache_lock_);
    ++stats_.gets;
    item* it = find(key);
    if (it == nullptr) return std::nullopt;
    ++stats_.get_hits;
    touch(it);
    return it->value;
  }

  void set(const std::string& key, std::string value) {
    cohort::scoped<Lock> g(cache_lock_);
    ++stats_.sets;
    item* it = find(key);
    if (it != nullptr) {
      it->value = std::move(value);
      touch(it);
      return;
    }
    lru_.push_front(item{key, std::move(value), {}});
    item& fresh = lru_.front();
    fresh.lru_pos = lru_.begin();
    bucket_of(key).push_back(&fresh);
    if (max_items_ != 0 && lru_.size() > max_items_) evict_oldest();
  }

  bool erase(const std::string& key) {
    cohort::scoped<Lock> g(cache_lock_);
    item* it = find(key);
    if (it == nullptr) return false;
    unlink(it);
    return true;
  }

  std::size_t size() {
    cohort::scoped<Lock> g(cache_lock_);
    return lru_.size();
  }

  kv_stats stats() {
    cohort::scoped<Lock> g(cache_lock_);
    return stats_;
  }

  Lock& cache_lock() noexcept { return cache_lock_; }

 private:
  struct item {
    std::string key;
    std::string value;
    typename std::list<item>::iterator lru_pos;
  };

  std::vector<item*>& bucket_of(const std::string& key) {
    return table_[fnv1a64(key) % buckets_];
  }

  item* find(const std::string& key) {
    for (item* it : bucket_of(key))
      if (it->key == key) return it;
    return nullptr;
  }

  void touch(item* it) {
    // Move to the LRU front (memcached's bump on access).
    lru_.splice(lru_.begin(), lru_, it->lru_pos);
    it->lru_pos = lru_.begin();
  }

  void unlink(item* it) {
    auto& bucket = bucket_of(it->key);
    for (auto b = bucket.begin(); b != bucket.end(); ++b) {
      if (*b == it) {
        bucket.erase(b);
        break;
      }
    }
    lru_.erase(it->lru_pos);
  }

  void evict_oldest() {
    item& victim = lru_.back();
    ++stats_.evictions;
    unlink(&victim);
  }

  std::size_t buckets_;
  std::size_t max_items_;
  std::vector<std::vector<item*>> table_{buckets_};
  std::list<item> lru_;
  kv_stats stats_;
  Lock cache_lock_;
};

// memaslap-style load description: a get/set mix over a keyspace.
struct workload_mix {
  double get_ratio = 0.9;
  std::size_t keyspace = 10'000;
  std::size_t value_bytes = 64;
};

// Pre-generated key names ("key<i>") shared by driver threads.
std::vector<std::string> make_keyspace(std::size_t n);

}  // namespace kvstore
