// The sharded NUMA-aware kv engine (DESIGN.md §3).
//
// Layering, bottom up:
//   * kv_shard        -- hash table + LRU + counters, no locking (kv_shard.hpp)
//   * sharded_store   -- N independent shards selected by key hash, each with
//                        its own lock instance, bucket table, LRU and slice of
//                        the eviction budget.  shards == 1 reproduces the old
//                        single-cache-lock memcached architecture exactly.
//   * policy layer    -- lock choice is a registry *name*, not a template
//                        parameter at the call site: with_store() monomorphises
//                        the hot path through reg::with_lock_type (benchmarks),
//                        make_any_sharded_store() builds on the type-erased
//                        reg::any_lock (long-lived consumers like the server
//                        example).
//
// NUMA placement: with kv_config::numa_place set, each shard (its slot, lock,
// and bucket table) is constructed -- and therefore first-touched -- from a
// short-lived thread pinned to the shard's home cluster, so on a real NUMA
// box the shard's memory lands on the cluster whose threads the cohort lock
// will batch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "kvstore/kv_shard.hpp"
#include "locks/registry.hpp"
#include "numa/topology.hpp"
#include "util/align.hpp"

namespace kvstore {

struct kv_config {
  std::size_t shards = 1;
  std::size_t buckets = 1024;  // per-shard bucket count
  // Total eviction budget; 0 = off.  Each shard gets ceil(max_items/shards),
  // so effective capacity is rounded up to a multiple of the shard count.
  std::size_t max_items = 0;
  bool numa_place = false;     // first-touch shards from their home cluster
};

// Engine over any context-style lock: every registry lock type works, and so
// does the type-erased reg::any_lock (it exposes the same lock(ctx)/unlock(ctx)
// shape).  Constructed through the policy layer below, not by spelling out a
// lock type at the call site.
template <typename Lock>
class sharded_store {
 public:
  using lock_type = Lock;

  // make_lock: () -> std::unique_ptr<Lock>, called once per shard.
  template <typename Factory>
  sharded_store(const kv_config& cfg, Factory&& make_lock) {
    const std::size_t n = cfg.shards != 0 ? cfg.shards : 1;
    const std::size_t per_shard_budget =
        cfg.max_items == 0 ? 0 : (cfg.max_items + n - 1) / n;
    const auto& topo = cohort::numa::system_topology();
    const unsigned clusters = topo.clusters() != 0 ? topo.clusters() : 1;

    shards_.resize(n);
    for (std::size_t s = 0; s < n; ++s) {
      const unsigned home = static_cast<unsigned>(s % clusters);
      auto build = [&, s, home] {
        if (cfg.numa_place) cohort::numa::pin_thread_to_cluster(topo, home);
        auto slot = std::make_unique<shard_slot>(cfg.buckets, per_shard_budget);
        slot->core.prefault();
        slot->lock = make_lock();
        slot->home_cluster = home;
        shards_[s] = std::move(slot);
      };
      if (cfg.numa_place)
        std::thread(build).join();  // sequential one-shot placement threads
      else
        build();
    }
  }

  // Per-thread acquisition state: one lock context per shard, at a stable
  // address for its whole lifetime (queue-lock contexts are identity
  // sensitive).  Must not outlive the store.
  class handle {
   public:
    handle() = default;
    handle(handle&&) noexcept = default;
    handle& operator=(handle&&) noexcept = default;

   private:
    friend class sharded_store;
    std::unique_ptr<typename Lock::context[]> ctx_;
  };

  handle make_handle() {
    handle h;
    h.ctx_ = std::make_unique<typename Lock::context[]>(shards_.size());
    // any_lock contexts are created through the owning lock; plain lock
    // contexts are ready as default-constructed.
    if constexpr (requires(Lock& l) { l.make_context(); })
      for (std::size_t s = 0; s < shards_.size(); ++s)
        h.ctx_[s] = shards_[s]->lock->make_context();
    return h;
  }

  std::optional<std::string> get(handle& h, const std::string& key) {
    const std::uint64_t hash = fnv1a64(key);
    shard_slot& s = slot_of(hash);
    guard g(*s.lock, h.ctx_[shard_index(hash)]);
    return s.core.get(key, hash);
  }

  void set(handle& h, const std::string& key, std::string value) {
    const std::uint64_t hash = fnv1a64(key);
    shard_slot& s = slot_of(hash);
    guard g(*s.lock, h.ctx_[shard_index(hash)]);
    s.core.set(key, std::move(value), hash);
  }

  bool erase(handle& h, const std::string& key) {
    const std::uint64_t hash = fnv1a64(key);
    shard_slot& s = slot_of(hash);
    guard g(*s.lock, h.ctx_[shard_index(hash)]);
    return s.core.erase(key, hash);
  }

  // Drop every resident item, one shard lock at a time (the command layer's
  // flush).  Not atomic across shards: concurrent sets may repopulate shards
  // already flushed, which matches memcached's flush_all semantics closely
  // enough for the protocol subset.
  void flush(handle& h) {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      guard g(*shards_[s]->lock, h.ctx_[s]);
      shards_[s]->core.clear();
    }
  }

  std::size_t shard_count() const noexcept { return shards_.size(); }
  unsigned home_cluster(std::size_t s) const { return shards_[s]->home_cluster; }
  std::size_t shard_of(const std::string& key) const {
    return shard_index(fnv1a64(key));
  }

  // ---- counter aggregation --------------------------------------------------
  //
  // Lock-free reads over the shards' single-writer relaxed-atomic cells
  // (util/stat_cell.hpp): safe to *sample* while operations run -- the
  // windows[] per-shard telemetry and the server's live `stats` command do
  // -- though cross-counter identities (gets == hits + misses per op count)
  // are exact only at quiescence.  The item *data* (buckets, LRU) remains
  // reachable only under the shard locks.

  std::size_t size() const {
    std::size_t total = 0;
    for (const auto& s : shards_) total += s->core.size();
    return total;
  }

  kv_stats stats() const {
    kv_stats total;
    for (const auto& s : shards_) total += s->core.stats();
    return total;
  }

  const kv_shard& shard(std::size_t s) const { return shards_[s]->core; }

  // Per-shard cohort batching counters; nullopt for plain locks.  Unlike
  // the kv counters above, these are relaxed-atomic cells (cohort_counters)
  // and may be sampled mid-run -- the benchmark's windows[] telemetry does.
  std::optional<cohort::cohort_stats> lock_stats(std::size_t s) const {
    const Lock& l = *shards_[s]->lock;
    if constexpr (requires { l.stats(); }) {
      auto st = l.stats();
      if constexpr (requires { st.has_value(); })
        return st;  // any_lock already reports optional<erased_stats>
      else
        return cohort::cohort_stats(st);  // abortable_stats slices to base
    } else {
      return std::nullopt;
    }
  }

 private:
  struct alignas(cohort::cache_line_size) shard_slot {
    shard_slot(std::size_t buckets, std::size_t budget)
        : core(buckets, budget) {}
    kv_shard core;
    std::unique_ptr<Lock> lock;
    unsigned home_cluster = 0;
  };

  struct guard {
    guard(Lock& l, typename Lock::context& c) : l_(l), c_(c) { l_.lock(c_); }
    ~guard() { l_.unlock(c_); }
    guard(const guard&) = delete;
    guard& operator=(const guard&) = delete;
    Lock& l_;
    typename Lock::context& c_;
  };

  // High hash bits pick the shard, low bits pick the bucket inside it, so
  // the two indices stay decorrelated for power-of-two counts.
  std::size_t shard_index(std::uint64_t hash) const noexcept {
    return static_cast<std::size_t>(hash >> 32) % shards_.size();
  }
  shard_slot& slot_of(std::uint64_t hash) { return *shards_[shard_index(hash)]; }

  std::vector<std::unique_ptr<shard_slot>> shards_;
};

// ---- policy layer -----------------------------------------------------------

// Monomorphised dispatch: constructs a sharded_store<L> for the named registry
// lock and invokes fn(store).  Returns false for unknown lock names.  The hot
// path inside fn is fully typed -- this is what the benchmark harness uses.
template <typename Fn>
bool with_store(const std::string& lock_name, const kv_config& cfg,
                const cohort::reg::lock_params& lp, Fn&& fn) {
  return cohort::reg::with_lock_type(lock_name, lp, [&](auto factory) {
    using lock_t = typename decltype(factory())::element_type;
    sharded_store<lock_t> store(cfg, factory);
    fn(store);
  });
}

// Type-erased store for long-lived consumers that want a uniform runtime
// handle (the server example): one virtual dispatch per lock/unlock.
using any_sharded_store = sharded_store<cohort::reg::any_lock>;

// nullptr for unknown lock names.
std::unique_ptr<any_sharded_store> make_any_sharded_store(
    const std::string& lock_name, const kv_config& cfg = {},
    const cohort::reg::lock_params& lp = {});

}  // namespace kvstore
