// mmicro on the real splay-tree arena (the paper's §4.3 experiment executed
// on the host): each thread repeatedly allocates a 64-byte block, writes its
// first words and frees it.  Locks are dispatched by registry name, so any
// comparison set can be run:
//
//   build/examples/allocator_stress [threads] [iters_per_thread] [lock...]
//   e.g.  allocator_stress 8 200000 pthread C-BO-MCS C-MCS-MCS
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "alloc/arena.hpp"
#include "locks/registry.hpp"
#include "numa/topology.hpp"

namespace {

template <typename Lock>
double run_mmicro(const std::string& name, int threads, int iters) {
  cohortalloc::arena<Lock> arena(32u << 20);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&arena, iters, t] {
      cohort::numa::set_thread_cluster(static_cast<unsigned>(t));
      for (int i = 0; i < iters; ++i) {
        void* p = arena.allocate(64);
        if (p != nullptr) {
          std::memset(p, 0x5a, 32);  // first four words, as in mmicro
          arena.deallocate(p);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const std::chrono::duration<double, std::milli> elapsed =
      std::chrono::steady_clock::now() - t0;
  const double pairs_per_ms =
      static_cast<double>(threads) * iters / elapsed.count();
  std::printf("%-14s %8.0f malloc-free pairs/ms\n", name.c_str(),
              pairs_per_ms);
  return pairs_per_ms;
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 4;
  const int iters = argc > 2 ? std::atoi(argv[2]) : 100'000;
  std::vector<std::string> locks;
  for (int i = 3; i < argc; ++i) locks.emplace_back(argv[i]);
  if (locks.empty()) locks = {"pthread", "C-TKT-TKT", "C-BO-MCS"};

  // Validate up front so a typo'd name fails fast instead of after the
  // earlier locks' multi-minute runs.
  for (const auto& name : locks) {
    if (!cohort::reg::is_lock_name(name)) {
      std::fprintf(stderr, "%s\n",
                   cohort::reg::unknown_lock_message(name).c_str());
      return 2;
    }
  }

  if (cohort::numa::system_topology().clusters() == 1)
    cohort::numa::set_system_topology(cohort::numa::topology::synthetic(2));

  std::printf("mmicro: %d threads x %d malloc/free pairs, 64-byte blocks\n",
              threads, iters);
  for (const auto& name : locks) {
    cohort::reg::with_lock_type(name, {}, [&](auto factory) {
      using lock_t = typename decltype(factory())::element_type;
      run_mmicro<lock_t>(name, threads, iters);
    });
  }
  std::printf(
      "(NUMA speedups require a NUMA host; see bench/table2_malloc for the\n"
      " simulated T5440 reproduction.)\n");
  return 0;
}
