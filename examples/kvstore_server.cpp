// memaslap-style load driver against the real sharded kv engine (the paper's
// memcached experiment, §4.2, executed on the host and grown along the shard
// axis).
//
//   build/kvstore_server [threads] [get_percent] [seconds] [lock] [shards]
//
// Drives a get/set mix against the sharded_store through the type-erased
// any_lock policy path -- any registry lock name (default C-TKT-TKT, the
// paper's memcached winner) -- and prints throughput plus each shard's
// cohort batching statistics when its lock keeps them.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "kvstore/sharded_store.hpp"
#include "numa/topology.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 4;
  const int get_percent = argc > 2 ? std::atoi(argv[2]) : 90;
  const double seconds = argc > 3 ? std::atof(argv[3]) : 2.0;
  const std::string lock_name = argc > 4 ? argv[4] : "C-TKT-TKT";
  const int shards_arg = argc > 5 ? std::atoi(argv[5]) : 4;
  if (threads <= 0 || shards_arg <= 0) {
    std::fprintf(stderr,
                 "usage: %s [threads] [get_percent] [seconds] [lock] [shards]"
                 " (threads and shards must be positive)\n",
                 argv[0]);
    return 2;
  }
  const auto shards = static_cast<std::size_t>(shards_arg);

  if (cohort::numa::system_topology().clusters() == 1)
    cohort::numa::set_system_topology(cohort::numa::topology::synthetic(2));

  auto store = kvstore::make_any_sharded_store(
      lock_name, {.shards = shards, .buckets = 4096});
  if (store == nullptr) {
    std::fprintf(stderr, "unknown lock '%s' (see cohort_bench --list)\n",
                 lock_name.c_str());
    return 2;
  }
  std::printf("cache lock           = %s x %zu shards\n", lock_name.c_str(),
              store->shard_count());

  const auto keys = kvstore::make_keyspace(10'000);
  {
    auto h = store->make_handle();
    for (const auto& k : keys) store->set(h, k, std::string(64, 'x'));
  }

  std::atomic<bool> stop{false};
  std::atomic<long> ops{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      cohort::numa::set_thread_cluster(static_cast<unsigned>(t));
      auto h = store->make_handle();
      cohort::xorshift rng(static_cast<std::uint64_t>(t) + 42);
      long local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto& key = keys[rng.next_range(keys.size())];
        if (rng.next_range(100) < static_cast<std::uint64_t>(get_percent)) {
          (void)store->get(h, key);
        } else {
          store->set(h, key, std::string(64, 'y'));
        }
        ++local;
      }
      ops.fetch_add(local, std::memory_order_relaxed);
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop = true;
  for (auto& w : workers) w.join();

  // Workers are joined: quiescent reads of the per-shard counters are safe.
  const auto ks = store->stats();
  std::printf("mix                  = %d%% gets / %d%% sets, %d threads\n",
              get_percent, 100 - get_percent, threads);
  std::printf("throughput           = %.0f ops/sec\n",
              static_cast<double>(ops.load()) / seconds);
  std::printf("gets=%llu (hits %llu)  sets=%llu  items=%zu\n",
              static_cast<unsigned long long>(ks.gets),
              static_cast<unsigned long long>(ks.get_hits),
              static_cast<unsigned long long>(ks.sets), store->size());
  for (std::size_t s = 0; s < store->shard_count(); ++s) {
    if (auto ls = store->lock_stats(s))
      std::printf(
          "shard %-2zu (cluster %u) = %zu items, %.1f acquisitions/global\n",
          s, store->home_cluster(s), store->shard(s).size(),
          ls->avg_batch());
  }
  return 0;
}
