// memaslap-style load driver against the real key-value store (the paper's
// memcached experiment, §4.2, executed on the host).
//
//   build/examples/kvstore_server [threads] [get_percent] [seconds] [lock]
//
// Drives a get/set mix against kv_store's single cache lock -- any registry
// lock name (default C-TKT-TKT, the paper's memcached winner) -- and prints
// throughput plus the cache-lock's cohort statistics when it has them.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "kvstore/kvstore.hpp"
#include "locks/registry.hpp"
#include "numa/topology.hpp"
#include "util/rng.hpp"

namespace {

template <typename Lock>
void run_mix(int threads, int get_percent, double seconds) {
  kvstore::kv_store<Lock> kv(4096);
  const auto keys = kvstore::make_keyspace(10'000);
  for (const auto& k : keys) kv.set(k, std::string(64, 'x'));

  std::atomic<bool> stop{false};
  std::atomic<long> ops{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      cohort::numa::set_thread_cluster(static_cast<unsigned>(t));
      cohort::xorshift rng(static_cast<std::uint64_t>(t) + 42);
      long local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto& key = keys[rng.next_range(keys.size())];
        if (rng.next_range(100) < static_cast<std::uint64_t>(get_percent)) {
          (void)kv.get(key);
        } else {
          kv.set(key, std::string(64, 'y'));
        }
        ++local;
      }
      ops.fetch_add(local, std::memory_order_relaxed);
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop = true;
  for (auto& w : workers) w.join();

  const auto ks = kv.stats();
  std::printf("mix                  = %d%% gets / %d%% sets, %d threads\n",
              get_percent, 100 - get_percent, threads);
  std::printf("throughput           = %.0f ops/sec\n",
              static_cast<double>(ops.load()) / seconds);
  std::printf("gets=%llu (hits %llu)  sets=%llu\n",
              static_cast<unsigned long long>(ks.gets),
              static_cast<unsigned long long>(ks.get_hits),
              static_cast<unsigned long long>(ks.sets));
  if constexpr (requires(const Lock& l) { l.stats(); }) {
    std::printf("cache-lock batching  = %.1f acquisitions per global lock\n",
                kv.cache_lock().stats().avg_batch());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 4;
  const int get_percent = argc > 2 ? std::atoi(argv[2]) : 90;
  const double seconds = argc > 3 ? std::atof(argv[3]) : 2.0;
  const std::string lock_name = argc > 4 ? argv[4] : "C-TKT-TKT";

  if (cohort::numa::system_topology().clusters() == 1)
    cohort::numa::set_system_topology(cohort::numa::topology::synthetic(2));

  const bool known =
      cohort::reg::with_lock_type(lock_name, {}, [&](auto factory) {
        using lock_t = typename decltype(factory())::element_type;
        std::printf("cache lock           = %s\n", lock_name.c_str());
        run_mix<lock_t>(threads, get_percent, seconds);
      });
  if (!known) {
    std::fprintf(stderr, "unknown lock '%s' (see cohort_bench --list)\n",
                 lock_name.c_str());
    return 2;
  }
  return 0;
}
