// The kv server binary (DESIGN.md §6): the sharded NUMA-aware engine of
// §4.2 behind a real network front-end -- epoll event-loop workers speaking
// the memcached text-protocol subset, every operation routed through the
// shared command layer, cache lock chosen by registry name.
//
//   build/kvstore_server --lock C-TKT-TKT --shards 4 --port 11222
//   printf 'set k 0 0 5\r\nhello\r\nget k\r\nquit\r\n' | nc 127.0.0.1 11222
//
// --port 0 binds an ephemeral port; the "listening on" line reports the
// real one (the CI loopback smoke job scrapes it).  SIGINT/SIGTERM drain
// gracefully -- stop accepting, finish buffered requests, flush replies,
// force-close at --drain-ms -- and print the engine's quiescent report,
// including the close-reason accounting the chaos script asserts, before
// exiting 0.  A clean shutdown under ASan is part of the CI contract.
//
// --net-fault installs a fault plan (net/fault.hpp) into this process's
// io_ops seam, so the binary can run its own chaos: injected short I/O,
// EINTR/EAGAIN storms, resets, accept EMFILE, and stalls, all deterministic
// under a fixed seed.  COHORT_NET_FAULT_* environment variables work too.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "kvstore/command.hpp"
#include "locks/registry.hpp"
#include "net/fault.hpp"
#include "net/server.hpp"
#include "numa/topology.hpp"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --host H             bind address (default 127.0.0.1)\n"
      "  --port P             TCP port; 0 = ephemeral (default 11222)\n"
      "  --lock NAME          registry cache lock (default C-TKT-TKT)\n"
      "  --shards N           engine shards (default 4)\n"
      "  --buckets N          hash buckets per shard (default 4096)\n"
      "  --max-items N        eviction budget, 0 = off (default 0)\n"
      "  --io-threads N       event-loop worker threads (default 2)\n"
      "  --net-pin            pin io threads to NUMA clusters\n"
      "  --numa-place         first-touch shards on their home cluster\n"
      "  --max-value-bytes N  largest accepted value (default 1 MiB)\n"
      "  --pass-limit N       cohort may-pass-local bound (default 64)\n"
      "  --prefill N          preload N keys (key0..) before serving\n"
      "  --duration S         serve S seconds then exit; 0 = until signal\n"
      "  --net-fault SPEC     install a fault plan, e.g.\n"
      "                       seed=42,short_read=0.1,reset=0.02 (default:\n"
      "                       COHORT_NET_FAULT_* env, else none)\n"
      "  --idle-timeout-ms N  evict connections idle this long (0 = off)\n"
      "  --conn-lifetime-ms N evict connections older than this (0 = off)\n"
      "  --max-requests N     close a connection after N requests (0 = off)\n"
      "  --max-conns N        shed new sockets past N live connections per\n"
      "                       worker (0 = off)\n"
      "  --drain-ms N         graceful-drain deadline at shutdown\n"
      "                       (default 2000)\n",
      argv0);
}

bool parse_u64(const char* s, unsigned long long& out) {
  char* end = nullptr;
  out = std::strtoull(s, &end, 10);
  return end != s && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  unsigned long long port = 11222;
  std::string lock_name = "C-TKT-TKT";
  kvstore::kv_config kcfg{.shards = 4, .buckets = 4096, .max_items = 0,
                          .numa_place = false};
  cohort::net::server_config scfg;
  cohort::reg::lock_params lp;
  unsigned long long prefill = 0;
  double duration_s = 0.0;
  std::string fault_spec;
  scfg.io_threads = 2;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    unsigned long long n = 0;
    if (arg == "--host") {
      host = next();
    } else if (arg == "--port" && parse_u64(next(), n) && n <= 65535) {
      port = n;
    } else if (arg == "--lock") {
      lock_name = next();
    } else if (arg == "--shards" && parse_u64(next(), n) && n > 0) {
      kcfg.shards = static_cast<std::size_t>(n);
    } else if (arg == "--buckets" && parse_u64(next(), n) && n > 0) {
      kcfg.buckets = static_cast<std::size_t>(n);
    } else if (arg == "--max-items" && parse_u64(next(), n)) {
      kcfg.max_items = static_cast<std::size_t>(n);
    } else if (arg == "--io-threads" && parse_u64(next(), n) && n > 0) {
      scfg.io_threads = static_cast<unsigned>(n);
    } else if (arg == "--net-pin") {
      scfg.pin_io_threads = true;
    } else if (arg == "--numa-place") {
      kcfg.numa_place = true;
    } else if (arg == "--max-value-bytes" && parse_u64(next(), n) && n > 0) {
      scfg.limits.max_value_bytes = static_cast<std::size_t>(n);
    } else if (arg == "--pass-limit" && parse_u64(next(), n)) {
      lp.cohort.pass_limit = n;
    } else if (arg == "--prefill" && parse_u64(next(), n)) {
      prefill = n;
    } else if (arg == "--duration") {
      duration_s = std::atof(next());
    } else if (arg == "--net-fault") {
      fault_spec = next();
    } else if (arg == "--idle-timeout-ms" && parse_u64(next(), n)) {
      scfg.idle_timeout_ms = static_cast<std::uint32_t>(n);
    } else if (arg == "--conn-lifetime-ms" && parse_u64(next(), n)) {
      scfg.max_conn_lifetime_ms = static_cast<std::uint32_t>(n);
    } else if (arg == "--max-requests" && parse_u64(next(), n)) {
      scfg.max_requests_per_conn = n;
    } else if (arg == "--max-conns" && parse_u64(next(), n)) {
      scfg.max_conns_per_worker = static_cast<unsigned>(n);
    } else if (arg == "--drain-ms" && parse_u64(next(), n) && n > 0) {
      scfg.drain_deadline_ms = static_cast<std::uint32_t>(n);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "%s: bad argument '%s'\n", argv[0], arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  scfg.host = host;
  scfg.port = static_cast<std::uint16_t>(port);

  auto store = kvstore::make_any_sharded_store(lock_name, kcfg, lp);
  if (store == nullptr) {
    std::fprintf(stderr, "%s\n",
                 cohort::reg::unknown_lock_message(lock_name).c_str());
    return 2;
  }
  if (prefill != 0) {
    const auto keys =
        kvstore::make_keyspace(static_cast<std::size_t>(prefill));
    kvstore::prefill_keyspace(*store, keys, std::string(64, 'x'),
                              kcfg.numa_place);
  }

  cohort::net::fault_plan plan;
  if (!fault_spec.empty()) {
    std::string ferr;
    if (!cohort::net::parse_fault_spec(fault_spec, &plan, &ferr)) {
      std::fprintf(stderr, "bad --net-fault spec: %s\n", ferr.c_str());
      return 2;
    }
  } else {
    plan = cohort::net::fault_plan_from_env();
  }
  if (plan.active()) cohort::net::install_fault_plan(plan);

  cohort::net::kv_server server(*store, scfg);
  std::string err;
  if (!server.start(&err)) {
    std::fprintf(stderr, "failed to start: %s\n", err.c_str());
    return 1;
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  std::printf("listening on %s:%u\n", host.c_str(), server.port());
  std::printf("cache lock = %s x %zu shards, %u io threads%s%s\n",
              lock_name.c_str(), store->shard_count(), scfg.io_threads,
              scfg.pin_io_threads ? ", pinned" : "",
              kcfg.numa_place ? ", numa-placed" : "");
  if (plan.active())
    std::printf("fault plan active (seed %llu)\n",
                static_cast<unsigned long long>(plan.seed));
  std::fflush(stdout);

  const auto t0 = std::chrono::steady_clock::now();
  while (!g_stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (duration_s > 0.0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count() >= duration_s)
      break;
  }

  // Graceful exit: stop accepting, finish buffered requests, flush
  // replies; whatever is still open at --drain-ms is force-closed.
  const bool drain_clean = server.drain();

  // Workers joined: quiescent reads of the engine are exact now.
  const auto sc = server.counters();
  const auto ks = store->stats();
  std::printf("served %llu commands on %llu connections "
              "(%llu protocol errors)\n",
              static_cast<unsigned long long>(sc.commands),
              static_cast<unsigned long long>(sc.connections),
              static_cast<unsigned long long>(sc.protocol_errors));
  std::printf("closed=%llu shed=%llu timeouts=%llu resets=%llu "
              "drained=%llu injected_faults=%llu\n",
              static_cast<unsigned long long>(sc.closed),
              static_cast<unsigned long long>(sc.shed),
              static_cast<unsigned long long>(sc.timeouts),
              static_cast<unsigned long long>(sc.resets),
              static_cast<unsigned long long>(sc.drained),
              static_cast<unsigned long long>(sc.injected_faults));
  // The two lines the chaos script greps: every accepted connection must
  // land in exactly one close-reason bucket, and the drain must have beaten
  // its deadline.
  const bool accounted = sc.connections == sc.shed + sc.closed +
                                               sc.timeouts + sc.resets +
                                               sc.drained;
  std::printf("accounting %s\n", accounted ? "ok" : "MISMATCH");
  std::printf("drain %s\n", drain_clean ? "ok" : "forced");
  std::printf("gets=%llu (hits %llu)  sets=%llu  deletes=%llu  items=%zu\n",
              static_cast<unsigned long long>(ks.gets),
              static_cast<unsigned long long>(ks.get_hits),
              static_cast<unsigned long long>(ks.sets),
              static_cast<unsigned long long>(ks.deletes), store->size());
  for (std::size_t s = 0; s < store->shard_count(); ++s) {
    if (auto ls = store->lock_stats(s))
      std::printf(
          "shard %-2zu (cluster %u) = %zu items, %.1f acquisitions/global\n",
          s, store->home_cluster(s), store->shard(s).size(),
          ls->avg_batch());
  }
  return accounted ? 0 : 1;
}
