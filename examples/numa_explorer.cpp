// Explore the simulated NUMA machine interactively: run LBench under any
// lock/thread-count/topology combination and print the full diagnostics
// (throughput, coherence misses, migrations, batch length, fairness).
//
//   build/examples/numa_explorer [lock] [threads] [clusters] [pass_limit]
//
// e.g.  numa_explorer C-BO-MCS 128 4 64
//       numa_explorer MCS 64 8
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/apps/lbench.hpp"
#include "sim/locks/registry.hpp"

int main(int argc, char** argv) {
  const std::string lock = argc > 1 ? argv[1] : "C-BO-MCS";
  const unsigned threads = argc > 2 ? std::atoi(argv[2]) : 64;
  const unsigned clusters = argc > 3 ? std::atoi(argv[3]) : 4;
  const std::uint64_t pass_limit = argc > 4 ? std::atoll(argv[4]) : 64;

  sim::lbench_params p;
  p.threads = threads;
  p.clusters = clusters;
  p.machine.clusters = clusters;
  p.pass_limit = pass_limit;
  p.warmup_ns = 300'000;
  p.duration_ns = 3'000'000;

  const auto r = sim::run_lbench(lock, p);
  if (r.throughput_per_sec < 0) {
    std::fprintf(stderr, "unknown lock '%s'; known locks:\n", lock.c_str());
    for (const auto& n : sim::table1_lock_names())
      std::fprintf(stderr, "  %s\n", n.c_str());
    return 1;
  }
  std::printf("lock         = %s\n", lock.c_str());
  std::printf("threads      = %u over %u clusters\n", threads, clusters);
  std::printf("throughput   = %.3f M ops/sec\n", r.throughput_per_sec / 1e6);
  std::printf("L2 misses/CS = %.3f\n", r.l2_misses_per_cs);
  std::printf("migrations   = %.3f per CS\n", r.migrations_per_cs);
  std::printf("fairness     = %.1f%% per-thread stddev\n", r.stddev_pct);
  if (r.avg_batch > 0)
    std::printf("avg batch    = %.1f acquisitions per global acquire\n",
                r.avg_batch);
  return 0;
}
