// Quickstart: protect shared state with a cohort lock.
//
//   build/examples/quickstart [threads] [iterations]
//
// Shows the three things a new user needs:
//   1. pick a named cohort lock (C-BO-MCS here, Figure 1's lock),
//   2. give each acquisition a context (queue locks carry their node in it),
//   3. (optional) read the batching statistics that explain the speedup.
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "cohort/locks.hpp"
#include "numa/topology.hpp"

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 4;
  const int iters = argc > 2 ? std::atoi(argv[2]) : 50'000;

  // The lock sizes itself to the machine's NUMA topology (sysfs); on a
  // non-NUMA box we install a virtual 2-cluster topology so the cohort
  // machinery still has clusters to work with.
  if (cohort::numa::system_topology().clusters() == 1)
    cohort::numa::set_system_topology(cohort::numa::topology::synthetic(2));

  cohort::c_bo_mcs_lock lock;  // global BO + per-cluster MCS (paper Fig. 1)
  long counter = 0;

  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      // Threads announce their cluster; a real deployment would pin with
      // cohort::numa::pin_thread_to_cluster instead.
      cohort::numa::set_thread_cluster(static_cast<unsigned>(t));
      cohort::c_bo_mcs_lock::context ctx;
      for (int i = 0; i < iters; ++i) {
        lock.lock(ctx);
        ++counter;  // the critical section
        lock.unlock(ctx);
      }
    });
  }
  for (auto& w : workers) w.join();

  const auto s = lock.stats();
  std::printf("counter                = %ld (expected %ld)\n", counter,
              static_cast<long>(threads) * iters);
  std::printf("acquisitions           = %llu\n",
              static_cast<unsigned long long>(s.acquisitions));
  std::printf("global-lock acquires   = %llu\n",
              static_cast<unsigned long long>(s.global_acquires));
  std::printf("local handoffs         = %llu\n",
              static_cast<unsigned long long>(s.local_handoffs));
  std::printf("average cohort batch   = %.1f acquisitions per global lock\n",
              s.avg_batch());
  return counter == static_cast<long>(threads) * iters ? 0 : 1;
}
